//! Quickstart: compress an embedding table with MEmCom and verify the
//! accuracy cost against the uncompressed baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Trains the paper's Code-1 classifier twice on a synthetic power-law
//! recommendation dataset — once with a full `v×e` embedding table and
//! once with MEmCom at 10x fewer shared rows — then prints the parameter
//! counts, compression ratio, and accuracy of both.

use memcom::core::budget::compression_ratio;
use memcom::core::MethodSpec;
use memcom::data::DatasetSpec;
use memcom::models::trainer::{train, TrainConfig};
use memcom::models::{ModelConfig, ModelKind, RecModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An Arcade-shaped synthetic dataset, scaled to run in seconds.
    let mut spec = DatasetSpec::arcade().scaled(100);
    spec.train_samples = 3_000;
    spec.eval_samples = 800;
    let data = spec.generate(42);
    println!(
        "dataset: {} (vocab {}, {} classes, {} train examples)",
        spec.name,
        spec.input_vocab(),
        spec.output_vocab,
        data.train.len()
    );

    let config = ModelConfig {
        kind: ModelKind::Classifier,
        vocab: spec.input_vocab(),
        embedding_dim: 32,
        input_len: spec.input_len,
        n_classes: spec.output_vocab,
        dropout: 0.05,
        seed: 7,
    };
    let train_config = TrainConfig {
        epochs: 6,
        ..TrainConfig::default()
    };

    // Uncompressed baseline.
    let mut baseline = RecModel::new(&config, &MethodSpec::Uncompressed)?;
    let base_report = train(&mut baseline, &data.train, &data.eval, &train_config)?;
    let base_params = baseline.param_count();
    println!(
        "\nuncompressed: {} params, accuracy {:.4}, ndcg {:.4}",
        base_params, base_report.eval_accuracy, base_report.eval_ndcg
    );

    // MEmCom (Algorithm 2): 10x fewer shared rows + one multiplier per id.
    let memcom_spec = MethodSpec::MemCom {
        hash_size: spec.input_vocab() / 10,
        bias: false,
    };
    let mut compressed = RecModel::new(&config, &memcom_spec)?;
    let memcom_report = train(&mut compressed, &data.train, &data.eval, &train_config)?;
    let memcom_params = compressed.param_count();
    println!(
        "memcom:       {} params, accuracy {:.4}, ndcg {:.4}",
        memcom_params, memcom_report.eval_accuracy, memcom_report.eval_ndcg
    );

    let ratio = compression_ratio(base_params, memcom_params);
    let loss =
        (base_report.eval_accuracy - memcom_report.eval_accuracy) / base_report.eval_accuracy;
    println!("\ncompression ratio: {ratio:.1}x (whole model)");
    println!("relative accuracy loss: {:.1}%", loss * 100.0);
    println!("\npaper's claim: a few percent quality loss at ~4-40x compression — the");
    println!("shared rows carry the geometry, the per-entity multipliers keep ids distinct.");
    Ok(())
}
