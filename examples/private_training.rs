//! Differentially-private on-device training (§A.3 scenario).
//!
//! ```text
//! cargo run --release --example private_training
//! ```
//!
//! Simulates the paper's private-federated-learning appendix: a compressed
//! MEmCom ranker is trained with DP-SGD (per-example clipping + Gaussian
//! noise) at several noise multipliers, with the Rényi accountant
//! reporting the (ε, δ = 1/N) guarantee each run buys.

use memcom::core::MethodSpec;
use memcom::data::DatasetSpec;
use memcom::dp::rdp::compute_epsilon;
use memcom::models::{ModelConfig, ModelKind, RecModel};
use memcom_bench::dp_train::{dp_train, DpTrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = DatasetSpec::arcade().scaled(400);
    spec.train_samples = 800;
    spec.eval_samples = 300;
    spec.input_len = 32; // shorter contexts keep per-example DP passes fast
    let data = spec.generate(9);
    println!(
        "arcade stand-in: {} train users, δ = 1/{} (the paper's choice)",
        data.train.len(),
        data.train.len()
    );

    let config = ModelConfig {
        kind: ModelKind::PointwiseRanker,
        vocab: spec.input_vocab(),
        embedding_dim: 16,
        input_len: spec.input_len,
        n_classes: spec.output_vocab,
        dropout: 0.0,
        seed: 1,
    };
    println!(
        "\n{:<8} {:>10} {:>10} {:>10}",
        "sigma", "epsilon", "accuracy", "ndcg"
    );
    for sigma in [0.5f32, 1.0, 2.0, 4.0] {
        let mut model = RecModel::new(
            &config,
            &MethodSpec::MemCom {
                hash_size: spec.input_vocab() / 10,
                bias: false,
            },
        )?;
        let report = dp_train(
            &mut model,
            &data.train,
            &data.eval,
            &DpTrainConfig {
                epochs: 2,
                lot_size: 40,
                noise_multiplier: sigma,
                ..DpTrainConfig::default()
            },
        )?;
        println!(
            "{sigma:<8.1} {:>10.3} {:>10.4} {:>10.4}",
            report.epsilon, report.eval_accuracy, report.eval_ndcg
        );
    }

    // The accountant alone, for planning: what would 10 epochs cost?
    let q = 40.0 / data.train.len() as f64;
    let steps = (data.train.len() as f64 / 40.0 * 10.0) as u64;
    let eps = compute_epsilon(steps, q, 1.0, 1.0 / data.train.len() as f64)?;
    println!("\nplanning: 10 epochs at sigma=1.0 would spend epsilon = {eps:.2}");
    println!("paper (Figure 5): MEmCom's nDCG degrades the least as sigma grows.");
    Ok(())
}
