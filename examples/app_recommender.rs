//! Next-app recommendation with on-device deployment (Arcade scenario).
//!
//! ```text
//! cargo run --release --example app_recommender
//! ```
//!
//! The paper's motivating workload: predict a user's next app from their
//! purchase history + country (§5.1's shared vocabulary layout). Trains a
//! MEmCom classifier, serializes it into the flat on-device format, loads
//! it through the simulated mmap, and compares the on-device prediction
//! with the training stack's — then prints what the phone pays per query.

use memcom::core::MethodSpec;
use memcom::data::DatasetSpec;
use memcom::models::trainer::{train, TrainConfig};
use memcom::models::{ModelConfig, ModelKind, RecModel};
use memcom::ondevice::format::OnDeviceModel;
use memcom::ondevice::{ComputeUnit, Dtype, InferenceSession};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Arcade-shaped data: app ids n+1.., country ids 1..=n, padding 0.
    let mut spec = DatasetSpec::arcade().scaled(100);
    spec.train_samples = 2_500;
    spec.eval_samples = 600;
    let data = spec.generate(11);
    println!(
        "arcade stand-in: {} apps + {} countries (+ padding), {} output classes",
        spec.items, spec.countries, spec.output_vocab
    );

    let config = ModelConfig {
        kind: ModelKind::Classifier,
        vocab: spec.input_vocab(),
        embedding_dim: 32,
        input_len: spec.input_len,
        n_classes: spec.output_vocab,
        dropout: 0.05,
        seed: 3,
    };
    // ~20x input-embedding compression: v/32 shared rows + per-app scalar.
    let m = spec.input_vocab() / 32;
    let mut model = RecModel::new(
        &config,
        &MethodSpec::MemCom {
            hash_size: m,
            bias: true,
        },
    )?;
    let report = train(&mut model, &data.train, &data.eval, &TrainConfig::default())?;
    println!(
        "trained memcom(m={m}): accuracy {:.4}, ndcg {:.4}",
        report.eval_accuracy, report.eval_ndcg
    );

    // Ship it: serialize → parse → run through the mmap-backed engine.
    let bytes =
        OnDeviceModel::serialize(model.embedding(), model.head(), spec.input_len, Dtype::F32)?;
    println!("\non-disk model: {} KB", bytes.len() / 1024);
    let session = InferenceSession::new(OnDeviceModel::parse(bytes)?);

    let user = &data.eval[0];
    let (device_logits, stats) = session.run(&user.input_ids)?;
    let server_logits = model.infer(&user.input_ids, 1)?;
    let max_diff = device_logits
        .iter()
        .zip(server_logits.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0f32, f32::max);
    println!("device vs training-stack logits: max |Δ| = {max_diff:.2e}");

    let top = device_logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty");
    println!(
        "recommended next app class: {top} (true label {})",
        user.label
    );

    println!("\nper-query cost on simulated devices:");
    for unit in ComputeUnit::all() {
        println!(
            "  {:<18} {:>7.3} ms   footprint {:>6.2} MB",
            unit.label(),
            stats.time_ms(unit),
            stats.footprint_mb(unit)
        );
    }
    println!(
        "\nresident model pages after one query: {} KB of {} KB file",
        stats.resident_model_bytes / 1024,
        session.mmap().len() / 1024
    );
    Ok(())
}
