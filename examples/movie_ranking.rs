//! Pointwise movie ranking with a compression sweep (MovieLens scenario).
//!
//! ```text
//! cargo run --release --example movie_ranking
//! ```
//!
//! The §5.2 workload: rank the output catalogue by softmax score for each
//! user and measure nDCG of the held-out next interaction. Sweeps MEmCom
//! against naive hashing and the quotient-remainder trick at three
//! compression levels and prints the Figure-2-style table.

use memcom::core::{MethodSpec, QrCombiner};
use memcom::data::DatasetSpec;
use memcom::models::sweep::{run_sweep, SweepConfig};
use memcom::models::trainer::TrainConfig;
use memcom::models::ModelKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = DatasetSpec::movielens().scaled(8);
    spec.train_samples = 2_500;
    spec.eval_samples = 700;
    let data = spec.generate(4);
    println!(
        "movielens stand-in: vocab {}, {} output movies, {} train users",
        spec.input_vocab(),
        spec.output_vocab,
        data.train.len()
    );

    let v = spec.input_vocab();
    let mut specs = Vec::new();
    for divisor in [4usize, 16, 64] {
        let m = (v / divisor).max(1);
        specs.push(MethodSpec::MemCom {
            hash_size: m,
            bias: false,
        });
        specs.push(MethodSpec::NaiveHash { hash_size: m });
        specs.push(MethodSpec::QuotientRemainder {
            hash_size: m,
            combiner: QrCombiner::Multiply,
        });
    }
    let config = SweepConfig {
        kind: ModelKind::PointwiseRanker,
        embedding_dim: 32,
        train: TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        },
        ..SweepConfig::default()
    };
    let result = run_sweep(&spec, &data, &specs, &config)?;
    println!("\n{}", result.to_table());
    println!("paper (Figure 2a): MEmCom holds ≈4% nDCG loss at 16x input-embedding");
    println!("compression while hashing baselines degrade much faster.");
    Ok(())
}
