//! On-device deployment pipeline: serialize → quantize → mmap → measure.
//!
//! ```text
//! cargo run --release --example ondevice_deploy
//! ```
//!
//! Walks the full §5.3/§A.2 deployment story for one trained model:
//! on-disk size at each precision, the page-level memory behaviour of the
//! simulated mmap, and the Table-3-style cost comparison between MEmCom's
//! lookup front end and Weinberger's one-hot front end.

use memcom::core::{MemCom, MemComConfig, OneHotHashEncoder};
use memcom::nn::{AveragePool1d, BatchNorm1d, Dense, Relu, Sequential};
use memcom::ondevice::format::OnDeviceModel;
use memcom::ondevice::{ComputeUnit, Dtype, InferenceSession};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vocab = 100_000; // Table-3 scale vocabulary
    let e = 64;
    let m = 10_000; // the paper's fixed hash size
    let input_len = 128;
    let classes = 500;

    let mut rng = StdRng::seed_from_u64(0);
    let memcom = MemCom::new(MemComConfig::new(vocab, e, m), &mut rng)?;
    let onehot = OneHotHashEncoder::new(vocab, e, m, &mut rng)?;
    let mut head = Sequential::new();
    head.push(AveragePool1d::new());
    head.push(Relu::new());
    head.push(BatchNorm1d::new(e));
    head.push(Dense::new(e, classes, &mut rng));

    // 1. On-disk size per precision (§A.2's motivation).
    println!("on-disk model size (memcom front end):");
    for bits in [32usize, 16, 8, 4, 2] {
        let dtype = Dtype::for_bits(bits)?;
        let bytes = OnDeviceModel::serialize(&memcom, &head, input_len, dtype)?;
        println!(
            "  {bits:>2}-bit: {:>8.2} MB",
            bytes.len() as f64 / 1_048_576.0
        );
    }

    // 2. mmap paging behaviour: one query touches a sliver of the file.
    let bytes = OnDeviceModel::serialize(&memcom, &head, input_len, Dtype::F32)?;
    let file_mb = bytes.len() as f64 / 1_048_576.0;
    let session = InferenceSession::new(OnDeviceModel::parse(bytes)?);
    let ids: Vec<usize> = (0..input_len).map(|_| rng.gen_range(0..vocab)).collect();
    let (_, stats) = session.run(&ids)?;
    println!(
        "\nafter one query: {:.2} MB of the {:.2} MB file resident ({} page faults)",
        stats.resident_model_bytes as f64 / 1_048_576.0,
        file_mb,
        session.mmap().faults()
    );

    // 3. Table-3-style comparison at FP32.
    let onehot_bytes = OnDeviceModel::serialize(&onehot, &head, input_len, Dtype::F32)?;
    let onehot_session = InferenceSession::new(OnDeviceModel::parse(onehot_bytes)?);
    let (_, onehot_stats) = onehot_session.run(&ids)?;
    println!("\nper-query cost (batch 1, FP32), memcom vs weinberger:");
    println!(
        "{:<18} {:>12} {:>12} {:>10} {:>10}",
        "unit", "memcom_ms", "weinb_ms", "memcom_MB", "weinb_MB"
    );
    for unit in ComputeUnit::all() {
        println!(
            "{:<18} {:>12.3} {:>12.3} {:>10.2} {:>10.2}",
            unit.label(),
            stats.time_ms(unit),
            onehot_stats.time_ms(unit),
            stats.footprint_mb(unit),
            onehot_stats.footprint_mb(unit),
        );
    }
    println!("\npaper (Table 3): lookup front ends stay sub-millisecond and few-MB;");
    println!("the one-hot front end pays the whole kernel plus an L×m activation,");
    println!("catastrophically so on TF-Lite's CPU path (~31 ms, ~30 MB).");
    Ok(())
}
