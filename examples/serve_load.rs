//! Serve compressed embeddings under concurrent Zipf traffic.
//!
//! Spins up the sharded, micro-batching embedding server on (a) MEmCom
//! and (b) the uncompressed baseline, drives both with closed-loop
//! power-law lookup traffic from multiple client threads, and prints a
//! QPS / latency / cache table, plus a shard-scaling sweep for MEmCom.
//!
//! Run with: `cargo run --release --example serve_load`

use std::time::Duration;

use memcom::core::MethodSpec;
use memcom::serve::{fmt_nanos, run_load, EmbedServer, LoadGenConfig, LoadMode, ServeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const VOCAB: usize = 50_000;
const DIM: usize = 32;
const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 200;
/// The paper's fixed session length (§5.1): each request embeds one
/// 128-id session, fanning out across shards.
const IDS_PER_REQUEST: usize = 128;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== memcom-serve: Zipf load over {VOCAB}-entity vocabulary (dim {DIM}) ===\n");

    // --- Method comparison at 4 shards --------------------------------
    let load = LoadGenConfig {
        clients: CLIENTS,
        requests_per_client: REQUESTS_PER_CLIENT,
        ids_per_request: IDS_PER_REQUEST,
        zipf_exponent: 1.1,
        mode: LoadMode::Closed,
        seed: 42,
    };
    let serve_config = |n_shards: usize| ServeConfig {
        n_shards,
        max_batch: 64,
        max_wait: Duration::from_micros(50),
        ..ServeConfig::default()
    };
    println!(
        "{} clients x {} closed-loop requests x {} ids each, 4 shards, \
         max_batch 64 / max_wait 50us\n",
        load.clients, load.requests_per_client, load.ids_per_request
    );
    println!(
        "{:<14} {:>9} {:>8} {:>11} {:>9} {:>9} {:>9} {:>7} {:>7}",
        "method", "store", "req/s", "lookups/s", "p50", "p95", "p99", "hit%", "batch"
    );
    for spec in [
        MethodSpec::MemCom {
            hash_size: VOCAB / 10,
            bias: false,
        },
        MethodSpec::MemCom {
            hash_size: VOCAB / 10,
            bias: true,
        },
        MethodSpec::Uncompressed,
    ] {
        let mut rng = StdRng::seed_from_u64(7);
        let emb = spec.build(VOCAB, DIM, &mut rng)?;
        let server = EmbedServer::start(emb.as_ref(), serve_config(4))?;
        let report = run_load(&server.handle(), &load)?;
        let stored_mb = server.store().stored_bytes() as f64 / 1_048_576.0;
        let stats = server.shutdown();
        println!(
            "{:<14} {:>7.2}MB {:>8.0} {:>11.0} {:>9} {:>9} {:>9} {:>6.1}% {:>7.1}",
            emb.method_name(),
            stored_mb,
            report.qps(),
            report.lookups_per_sec(),
            fmt_nanos(report.histogram.p50()),
            fmt_nanos(report.histogram.p95()),
            fmt_nanos(report.histogram.p99()),
            100.0 * stats.cache.hit_rate(),
            stats.mean_batch(),
        );
    }

    // --- Shard scaling for MEmCom -------------------------------------
    println!("\nMEmCom shard scaling (same load):\n");
    println!(
        "{:<7} {:>8} {:>11} {:>9} {:>9} {:>9} {:>10} {:>11}",
        "shards", "req/s", "lookups/s", "p50", "p95", "p99", "batches", "full/timeo"
    );
    for n_shards in [1usize, 2, 4, 8] {
        let mut rng = StdRng::seed_from_u64(7);
        let emb = MethodSpec::MemCom {
            hash_size: VOCAB / 10,
            bias: false,
        }
        .build(VOCAB, DIM, &mut rng)?;
        let server = EmbedServer::start(emb.as_ref(), serve_config(n_shards))?;
        let report = run_load(&server.handle(), &load)?;
        let stats = server.shutdown();
        println!(
            "{:<7} {:>8.0} {:>11.0} {:>9} {:>9} {:>9} {:>10} {:>5}/{:<5}",
            n_shards,
            report.qps(),
            report.lookups_per_sec(),
            fmt_nanos(report.histogram.p50()),
            fmt_nanos(report.histogram.p95()),
            fmt_nanos(report.histogram.p99()),
            stats.batches,
            stats.flushes_full,
            stats.flushes_timeout,
        );
    }

    println!(
        "\nHot rows answer from each shard's LRU; cold rows fault through the shard's\n\
         simulated mmap. MEmCom partitions its per-entity tables and replicates only\n\
         the small shared table, so it serves from a smaller store at comparable QPS —\n\
         the paper's on-device story carried over to a serving tier."
    );
    Ok(())
}
