//! Serve compressed embeddings under concurrent Zipf traffic.
//!
//! Nine acts:
//!
//! 1. **Method comparison** — the sharded, micro-batching server on
//!    MEmCom vs the uncompressed baseline under closed-loop power-law
//!    traffic (QPS / latency / cache table).
//! 2. **Shard scaling** — the same load at 1/2/4/8 shards.
//! 3. **Multi-model router** — three country variants behind one
//!    [`Router`] sharing the shard workers, driven by weighted mixed
//!    traffic with per-model QPS/p99, plus a live snapshot swap.
//! 4. **Quantized serving** — an fp32/f16/int8/int4 dtype sweep of one
//!    table as four registered variants on one worker set (the
//!    fp32-vs-int8 A/B is two `register` calls), reporting store and
//!    resident bytes, QPS, and the certified dequantization error bound.
//! 5. **Overload** — an open-loop sweep from half capacity to 4×
//!    capacity under `Block` vs `Shed` admission: blocking turns the
//!    open loop closed and p99 collapses with the backlog, while
//!    shedding holds p99 bounded and goodput at the capacity plateau,
//!    trading the overflow for an explicit shed rate.
//! 6. **Online refresh** — row-level delta snapshots vs the full
//!    rebuild+swap baseline, applied continuously *under* foreground
//!    traffic: refresh latency, bytes materialized per refresh, the
//!    peak-memory proxy (old snapshot + the new snapshot's unshared
//!    pages), and the p99 impact on the foreground requests.
//! 7. **Telemetry** — the act-5 overload point once more with full
//!    telemetry on: the server-side stage breakdown (admission wait,
//!    queue wait, batch assembly/size, store decode, response write)
//!    printed next to the client-side numbers it must reconcile with,
//!    the slowest sampled traces, and the snapshot dumped to
//!    `ACT7_telemetry.json` for the CI artifact.
//! 8. **Networked serving** — the same tiers behind a wire: a
//!    [`NetServer`] speaking the length-framed binary protocol over
//!    loopback, first at the act-1 closed-loop workload next to the
//!    in-process baseline (what a socket hop costs), then at the act-5
//!    open-loop overload point where every client tally must reconcile
//!    exactly with the server's [`ServeStats`] and shed responses carry
//!    `retry_after` hints a closed-loop run demonstrably sleeps on.
//! 9. **Full-model serving** — a RankNet scoring pipeline (embedding
//!    gather + pooling + dense head) registered behind the same router
//!    via the `InferBackend` registry, driven over the wire by the
//!    score-path loadgen: lookup vs score QPS/p99 on identical Zipf
//!    traffic (equal checksums), an fp32 vs int8 store A/B with the
//!    certified score-error bound, and the snapshot dumped to
//!    `ACT9_infer.json` for the CI artifact.
//!
//! Run with: `cargo run --release --example serve_load`
//! (`-- --quick` shrinks everything for CI smoke runs.)

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use std::sync::Arc;

use memcom::core::MethodSpec;
use memcom::models::{ModelConfig, RecModel};
use memcom::net::{run_net_load, run_net_score_load, NetServer, NetServerConfig};
use memcom::serve::{
    fmt_nanos, run_load, run_mixed_load, AdmissionPolicy, Dtype, EmbedServer, LatencyHistogram,
    LoadGenConfig, LoadMode, ModelMix, RankNetBackend, Router, ServeConfig, ShardedStore,
    StoreDelta, TelemetryConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 32;
/// The paper's fixed session length (§5.1): each request embeds one
/// 128-id session, fanning out across shards.
const IDS_PER_REQUEST: usize = 128;

struct Scale {
    vocab: usize,
    clients: usize,
    requests_per_client: usize,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        Scale {
            vocab: 5_000,
            clients: 2,
            requests_per_client: 25,
        }
    } else {
        Scale {
            vocab: 50_000,
            clients: 8,
            requests_per_client: 200,
        }
    };
    let vocab = scale.vocab;
    println!("=== memcom-serve: Zipf load over {vocab}-entity vocabulary (dim {DIM}) ===\n");

    // --- Method comparison at 4 shards --------------------------------
    let load = LoadGenConfig {
        clients: scale.clients,
        requests_per_client: scale.requests_per_client,
        ids_per_request: IDS_PER_REQUEST,
        zipf_exponent: 1.1,
        mode: LoadMode::Closed,
        seed: 42,
    };
    let serve_config = |n_shards: usize| ServeConfig {
        n_shards,
        max_batch: 64,
        max_wait: Duration::from_micros(50),
        ..ServeConfig::default()
    };
    println!(
        "{} clients x {} closed-loop requests x {} ids each, 4 shards, \
         max_batch 64 / max_wait 50us\n",
        load.clients, load.requests_per_client, load.ids_per_request
    );
    println!(
        "{:<14} {:>9} {:>8} {:>11} {:>9} {:>9} {:>9} {:>7} {:>7}",
        "method", "store", "req/s", "lookups/s", "p50", "p95", "p99", "hit%", "batch"
    );
    for spec in [
        MethodSpec::MemCom {
            hash_size: vocab / 10,
            bias: false,
        },
        MethodSpec::MemCom {
            hash_size: vocab / 10,
            bias: true,
        },
        MethodSpec::Uncompressed,
    ] {
        let mut rng = StdRng::seed_from_u64(7);
        let emb = spec.build(vocab, DIM, &mut rng)?;
        let server = EmbedServer::start(emb.as_ref(), serve_config(4))?;
        let report = run_load(&server.handle(), &load)?;
        let stored_mb = server.store().stored_bytes() as f64 / 1_048_576.0;
        let stats = server.shutdown();
        println!(
            "{:<14} {:>7.2}MB {:>8.0} {:>11.0} {:>9} {:>9} {:>9} {:>6.1}% {:>7.1}",
            emb.method_name(),
            stored_mb,
            report.qps(),
            report.lookups_per_sec(),
            fmt_nanos(report.histogram.p50()),
            fmt_nanos(report.histogram.p95()),
            fmt_nanos(report.histogram.p99()),
            100.0 * stats.cache.hit_rate(),
            stats.mean_batch(),
        );
    }

    // --- Shard scaling for MEmCom -------------------------------------
    println!("\nMEmCom shard scaling (same load):\n");
    println!(
        "{:<7} {:>8} {:>11} {:>9} {:>9} {:>9} {:>10} {:>11}",
        "shards", "req/s", "lookups/s", "p50", "p95", "p99", "batches", "full/timeo"
    );
    for n_shards in [1usize, 2, 4, 8] {
        let mut rng = StdRng::seed_from_u64(7);
        let emb = MethodSpec::MemCom {
            hash_size: vocab / 10,
            bias: false,
        }
        .build(vocab, DIM, &mut rng)?;
        let server = EmbedServer::start(emb.as_ref(), serve_config(n_shards))?;
        let report = run_load(&server.handle(), &load)?;
        let stats = server.shutdown();
        println!(
            "{:<7} {:>8.0} {:>11.0} {:>9} {:>9} {:>9} {:>10} {:>5}/{:<5}",
            n_shards,
            report.qps(),
            report.lookups_per_sec(),
            fmt_nanos(report.histogram.p50()),
            fmt_nanos(report.histogram.p95()),
            fmt_nanos(report.histogram.p99()),
            stats.batches,
            stats.flushes_full,
            stats.flushes_timeout,
        );
    }

    // --- Multi-model router: weighted mix + snapshot swap -------------
    println!("\nMulti-model router: 3 country variants, one worker set, weighted mix:\n");
    let router = Router::start(serve_config(4))?;
    let countries: [(&str, usize, f64); 3] = [
        ("country/us", vocab, 6.0),
        ("country/de", vocab / 2, 3.0),
        ("country/jp", vocab / 4, 1.0),
    ];
    for (name, model_vocab, _) in countries {
        let mut rng = StdRng::seed_from_u64(11);
        let emb = MethodSpec::MemCom {
            hash_size: (model_vocab / 10).max(1),
            bias: true,
        }
        .build(model_vocab, DIM, &mut rng)?;
        router.register(name, emb.as_ref())?;
    }
    let mix: Vec<ModelMix> = countries
        .iter()
        .map(|&(name, _, weight)| ModelMix::new(name, weight))
        .collect();
    let report = run_mixed_load(&router, &mix, &load)?;
    println!(
        "{:<14} {:>7} {:>9} {:>8} {:>9} {:>9} {:>9}",
        "model", "weight", "requests", "req/s", "p50", "p95", "p99"
    );
    for (share, per_model) in mix.iter().zip(&report.per_model) {
        println!(
            "{:<14} {:>7.1} {:>9} {:>8.0} {:>9} {:>9} {:>9}",
            per_model.model,
            share.weight,
            per_model.requests,
            per_model.qps(),
            fmt_nanos(per_model.histogram.p50()),
            fmt_nanos(per_model.histogram.p95()),
            fmt_nanos(per_model.histogram.p99()),
        );
    }
    println!(
        "{:<14} {:>7} {:>9} {:>8.0}  (aggregate)",
        "total",
        "",
        report.requests,
        report.qps()
    );

    // Online table refresh: rebuild one country's table and flip it in
    // while the router keeps serving.
    let mut rng = StdRng::seed_from_u64(12);
    let retrained = MethodSpec::MemCom {
        hash_size: ((vocab / 4) / 10).max(1),
        bias: true,
    }
    .build(vocab / 4, DIM, &mut rng)?;
    let config = router.config().clone();
    let new_store = ShardedStore::build(
        retrained.as_ref(),
        config.n_shards,
        config.cache_capacity,
        config.page_size,
    )?;
    let old = router.swap("country/jp", new_store)?;
    let after_swap = run_mixed_load(&router, &mix, &load)?;
    println!(
        "\nSwapped country/jp snapshot ({} -> {} stored bytes) with traffic live: \
         {} more requests served, 0 dropped.",
        old.stored_bytes(),
        router.snapshot("country/jp")?.stored_bytes(),
        after_swap.requests
    );

    // --- Quantized serving: dtype sweep as an A/B on one worker set ---
    println!(
        "\nQuantized serving: fp32/f16/int8/int4 variants of one table, one worker set,\n\
         equal-weight mixed traffic (store = on-disk bytes, resident = pages touched):\n"
    );
    let mut rng = StdRng::seed_from_u64(23);
    let table = MethodSpec::Uncompressed.build(vocab / 2, DIM, &mut rng)?;
    let quant_router = Router::start(serve_config(4))?;
    // The fp32-vs-int8 A/B is just two register calls on one router; the
    // f16 and int4 points complete the sweep.
    quant_router.register("table/fp32", table.as_ref())?;
    for (name, dtype) in [
        ("table/f16", Dtype::F16),
        ("table/int8", Dtype::Int8),
        ("table/int4", Dtype::Int4),
    ] {
        quant_router.register_with_dtype(name, table.as_ref(), dtype)?;
    }
    let quant_mix: Vec<ModelMix> = ["table/fp32", "table/f16", "table/int8", "table/int4"]
        .into_iter()
        .map(|name| ModelMix::new(name, 1.0))
        .collect();
    let quant_report = run_mixed_load(&quant_router, &quant_mix, &load)?;
    println!(
        "{:<12} {:>9} {:>10} {:>8} {:>9} {:>9} {:>10}",
        "model", "store", "resident", "req/s", "p50", "p99", "max|err|"
    );
    for per_model in &quant_report.per_model {
        println!(
            "{:<12} {:>7.2}MB {:>8.2}MB {:>8.0} {:>9} {:>9} {:>10.2e}",
            per_model.model,
            per_model.store_bytes as f64 / 1_048_576.0,
            per_model.resident_bytes as f64 / 1_048_576.0,
            per_model.qps(),
            fmt_nanos(per_model.histogram.p50()),
            fmt_nanos(per_model.histogram.p99()),
            per_model.dequant_error_bound,
        );
    }

    // --- Overload: admission control under an open-loop sweep ---------
    // A calibrated capacity makes "2x overload" a configuration, not a
    // race: one shard serving batches of `overload_batch` behind a
    // simulated 2ms backing-store read serves exactly
    // `overload_batch / 2ms` rows/s once saturated.
    // Clients must out-number queue_depth + max_batch, or the
    // open-loop arrival process can never catch the queue full (each
    // synchronous client holds at most one request in flight).
    let store_latency = Duration::from_millis(2);
    let (overload_clients, overload_rpc, overload_batch, overload_depth) =
        if quick { (6, 20, 2, 2) } else { (24, 50, 8, 8) };
    let capacity_qps = overload_batch as f64 / store_latency.as_secs_f64();
    let enqueue_timeout = Duration::from_micros(200);
    let deadline = Duration::from_millis(25);
    println!(
        "\nOverload: open-loop sweep against a 1-shard server with a calibrated capacity\n\
         of {capacity_qps:.0} rows/s (max_batch {overload_batch} / 2ms simulated store read), \
         queue depth {overload_depth};\n\
         shed policy = {enqueue_timeout:?} enqueue budget + {deadline:?} request deadline:\n"
    );
    let mut rng = StdRng::seed_from_u64(31);
    let overload_table = MethodSpec::MemCom {
        hash_size: (vocab / 10).max(1),
        bias: false,
    }
    .build(vocab, DIM, &mut rng)?;
    println!(
        "{:<7} {:>5} {:>10} {:>10} {:>7} {:>9} {:>10} {:>10}",
        "policy", "x cap", "offered/s", "goodput/s", "shed%", "expired%", "p50", "p99"
    );
    for (label, admission) in [
        ("block", AdmissionPolicy::Block),
        (
            "shed",
            AdmissionPolicy::Shed {
                enqueue_timeout,
                request_deadline: Some(deadline),
            },
        ),
    ] {
        for multiple in [0.5f64, 1.0, 2.0, 4.0] {
            let server = EmbedServer::start(
                overload_table.as_ref(),
                ServeConfig {
                    n_shards: 1,
                    max_batch: overload_batch,
                    max_wait: Duration::from_millis(1),
                    queue_depth: overload_depth,
                    store_latency,
                    admission,
                    ..ServeConfig::default()
                },
            )?;
            let report = run_load(
                &server.handle(),
                &LoadGenConfig {
                    clients: overload_clients,
                    requests_per_client: overload_rpc,
                    ids_per_request: 1,
                    zipf_exponent: 1.1,
                    mode: LoadMode::Open {
                        target_qps: multiple * capacity_qps,
                    },
                    seed: 42,
                },
            )?;
            server.shutdown();
            println!(
                "{:<7} {:>5.1} {:>10.0} {:>10.0} {:>6.1}% {:>8.1}% {:>10} {:>10}",
                label,
                multiple,
                report.offered_qps(),
                report.goodput(),
                100.0 * report.shed as f64 / report.offered().max(1) as f64,
                100.0 * report.expired as f64 / report.offered().max(1) as f64,
                fmt_nanos(report.histogram.p50()),
                fmt_nanos(report.histogram.p99()),
            );
        }
    }
    println!(
        "\nPast capacity, Block turns the open loop closed: producers wedge on full\n\
         queues, the backlog grows for the whole run, and scheduled-send p99 collapses\n\
         with it (while shedding nothing, by definition). Shed bounds each producer's\n\
         stall to the enqueue budget plus in-flight service time, so these synchronous\n\
         clients realize much more of the overload schedule (though not all of it) —\n\
         overflow is rejected within the budget, queued requests that outlive the\n\
         deadline are dropped at dequeue before costing a store read, goodput plateaus\n\
         at capacity, and completed-request p99 stays bounded by the deadline plus\n\
         batching slack."
    );

    // --- Online refresh under traffic: delta snapshots vs full swap --
    // One uncompressed (rows-layout) table serves foreground closed-loop
    // traffic while a refresher thread continuously updates it — either
    // with row-level StoreDelta applies (copy-on-write over shared
    // pages) or with the full rebuild+swap baseline. "peak" is the
    // memory proxy at flip time: the old snapshot plus the new
    // snapshot's *unshared* bytes (pages the refresh actually
    // materialized) — deltas stay near 1×, full swaps pay 2×.
    let refresh_vocab = vocab / 2;
    let mut rng = StdRng::seed_from_u64(41);
    let live_table = MethodSpec::Uncompressed.build(refresh_vocab, DIM, &mut rng)?;
    let refresh_pause = Duration::from_millis(if quick { 5 } else { 2 });
    println!(
        "\nOnline refresh under traffic: {refresh_vocab}-row uncompressed table, 4 shards,\n\
         refresher paced at one refresh per {refresh_pause:?} while the act-1 closed loop runs:\n"
    );
    println!(
        "{:<12} {:>9} {:>8} {:>11} {:>12} {:>9} {:>8} {:>9}",
        "refresh", "rows", "refr/s", "refresh", "fresh MB/rf", "peak MB", "fg req/s", "fg p99"
    );
    for (label, mode) in [
        ("none", None),
        ("delta 0.1%", Some(Some(0.001f64))),
        ("delta 1%", Some(Some(0.01))),
        ("delta 10%", Some(Some(0.1))),
        ("full swap", Some(None)),
    ] {
        let router = Router::start(serve_config(4))?;
        router.register("live", live_table.as_ref())?;
        let stop = AtomicBool::new(false);
        let mix = [ModelMix::new("live", 1.0)];
        let (report, refreshes) = std::thread::scope(|scope| {
            let refresher = scope.spawn(|| {
                // (count, apply nanos, fresh bytes, peak alloc bytes)
                let mut tally = (0u64, 0u64, 0u64, 0usize);
                let Some(delta_frac) = mode else {
                    tally.3 = router.snapshot("live").unwrap().stored_bytes();
                    return tally;
                };
                let mut round = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(refresh_pause);
                    let t0 = Instant::now();
                    let (old, new) = match delta_frac {
                        Some(frac) => {
                            // Clustered refreshed ids, sliding per round.
                            let rows = ((refresh_vocab as f64 * frac) as usize).max(1);
                            let start = (round * 997) % (refresh_vocab - rows);
                            let mut delta = StoreDelta::new(DIM);
                            for k in 0..rows {
                                let row: Vec<f32> =
                                    (0..DIM).map(|j| ((round + k + j) as f32) * 1e-3).collect();
                                delta.upsert_row(start + k, &row).unwrap();
                            }
                            let old = router.apply_delta("live", &delta).unwrap();
                            let new = router.snapshot("live").unwrap();
                            (old, new)
                        }
                        None => {
                            let config = router.config();
                            let store = ShardedStore::build(
                                live_table.as_ref(),
                                config.n_shards,
                                config.cache_capacity,
                                config.page_size,
                            )
                            .unwrap();
                            let old = router.swap("live", store).unwrap();
                            let new = router.snapshot("live").unwrap();
                            (old, new)
                        }
                    };
                    tally.0 += 1;
                    tally.1 += t0.elapsed().as_nanos() as u64;
                    let fresh = new.stored_bytes() - new.shared_bytes_with(&old);
                    tally.2 += fresh as u64;
                    tally.3 = tally.3.max(old.stored_bytes() + fresh);
                    round += 1;
                }
                tally
            });
            let report = run_mixed_load(&router, &mix, &load);
            stop.store(true, Ordering::Relaxed);
            (report, refresher.join().expect("refresher panicked"))
        });
        let report = report?;
        let (count, apply_nanos, fresh_bytes, peak_bytes) = refreshes;
        let delta_rows = match mode {
            Some(Some(frac)) => ((refresh_vocab as f64 * frac) as usize).max(1).to_string(),
            Some(None) => refresh_vocab.to_string(),
            None => "-".into(),
        };
        println!(
            "{:<12} {:>9} {:>8.1} {:>11} {:>12.3} {:>9.2} {:>8.0} {:>9}",
            label,
            delta_rows,
            count as f64 / report.elapsed.as_secs_f64(),
            apply_nanos
                .checked_div(count)
                .map_or_else(|| "-".to_string(), fmt_nanos),
            if count == 0 {
                0.0
            } else {
                fresh_bytes as f64 / count as f64 / 1_048_576.0
            },
            peak_bytes as f64 / 1_048_576.0,
            report.qps(),
            fmt_nanos(report.histogram.p99()),
        );
    }
    println!(
        "\nA delta re-encodes only the rows it touches into copy-on-written pages and\n\
         leaves every other page physically shared with the superseded snapshot, so\n\
         refresh cost scales with the delta instead of the table: freshly-materialized\n\
         bytes and peak memory stay near 1x the store where the rebuild+swap baseline\n\
         pays the full store again (2x peak), each shard's hot-row LRU survives with\n\
         only the changed ids invalidated, and foreground p99 stays close to the\n\
         no-refresh row. (At 1M rows the gap is ~500x in refresh latency and ~0.2%\n\
         of store bytes copied — tests/delta.rs measures it.)"
    );

    // --- Telemetry: the server's own view of the overload point -------
    // Act 5 reported what the *clients* measured; this run turns full
    // telemetry on and lets the *server* break the same saturating load
    // into its pipeline stages, with 10%-sampled request traces.
    let telemetry_multiple = 2.0f64;
    println!(
        "\nTelemetry: the {telemetry_multiple}x-capacity shed point again with \
         telemetry = full (10% sampled traces);\n\
         the server's stage breakdown next to the client-side tallies it must match:\n"
    );
    let telemetry_server = EmbedServer::start(
        overload_table.as_ref(),
        ServeConfig {
            n_shards: 1,
            max_batch: overload_batch,
            max_wait: Duration::from_millis(1),
            queue_depth: overload_depth,
            store_latency,
            admission: AdmissionPolicy::Shed {
                enqueue_timeout,
                request_deadline: Some(deadline),
            },
            telemetry: TelemetryConfig::full(0.1),
            ..ServeConfig::default()
        },
    )?;
    let telemetry_report = run_load(
        &telemetry_server.handle(),
        &LoadGenConfig {
            clients: overload_clients,
            requests_per_client: overload_rpc,
            ids_per_request: 1,
            zipf_exponent: 1.1,
            mode: LoadMode::Open {
                target_qps: telemetry_multiple * capacity_qps,
            },
            seed: 42,
        },
    )?;
    let metrics = telemetry_server.metrics();
    telemetry_server.shutdown();

    let model = &metrics.models[0];
    println!(
        "{:<12} {:>8} {:>10} {:>8} {:>8}",
        "", "issued", "completed", "shed", "expired"
    );
    println!(
        "{:<12} {:>8} {:>10} {:>8} {:>8}",
        "client-side",
        telemetry_report.offered(),
        telemetry_report.requests,
        telemetry_report.shed,
        telemetry_report.expired,
    );
    println!(
        "{:<12} {:>8} {:>10} {:>8} {:>8}",
        "server-side", model.issued, model.requests, model.shed, model.expired,
    );

    println!(
        "\n{:<16} {:>8} {:>10} {:>10} {:>10}",
        "stage", "count", "p50", "p99", "max"
    );
    let stage_row = |name: &str, h: &LatencyHistogram| {
        if h.count() > 0 {
            println!(
                "{:<16} {:>8} {:>10} {:>10} {:>10}",
                name,
                h.count(),
                fmt_nanos(h.p50()),
                fmt_nanos(h.p99()),
                fmt_nanos(h.max_nanos()),
            );
        }
    };
    for stage in &metrics.stages {
        stage_row("admission wait", &stage.admission_wait);
        stage_row("queue wait", &stage.queue_wait);
        stage_row("batch assembly", &stage.batch_assembly);
        for (dtype, h) in &stage.decode {
            stage_row(&format!("decode ({dtype})"), h);
        }
        stage_row("response write", &stage.slab_write);
        println!(
            "{:<16} {:>8} rows: mean {:.1}, p99 {}, max {} | decoded {} hit / {} miss",
            "batch size",
            stage.batch_size.count,
            stage.batch_size.mean,
            stage.batch_size.p99,
            stage.batch_size.max,
            stage.decode_rows_hit,
            stage.decode_rows_miss,
        );
    }

    println!(
        "\nSlowest sampled traces ({} spans recorded):",
        metrics.traced_spans
    );
    for span in metrics.slowest_traces.iter().take(3) {
        println!(
            "  #{:<6} shard {} {:>7}: {} queued + {} service = {} total ({} row)",
            span.seq,
            span.shard,
            span.outcome.as_str(),
            fmt_nanos(span.queue_wait_nanos),
            fmt_nanos(span.service_nanos),
            fmt_nanos(span.total_nanos),
            span.rows,
        );
    }

    std::fs::write("ACT7_telemetry.json", metrics.to_json())?;
    println!(
        "\nFull snapshot (level {:?}, {:.1}s uptime) written to ACT7_telemetry.json;\n\
         the same data serves as Prometheus text exposition via to_prometheus().",
        metrics.level,
        metrics.uptime.as_secs_f64()
    );

    // --- Networked serving: the same tiers behind a wire --------------
    // One NetServer feeds the shard queues from many TCP connections;
    // each connection is served synchronously, so over the wire the
    // router's concurrency equals the connection count (exactly like
    // the synchronous in-process clients it is compared against).
    println!(
        "\nNetworked serving: length-framed binary protocol over loopback,\n\
         thread-per-connection server feeding the same shard queues.\n\n\
         Act-1 closed-loop workload, in-process vs one socket hop:\n"
    );
    let baseline_server = EmbedServer::start(overload_table.as_ref(), serve_config(4))?;
    let baseline = run_load(&baseline_server.handle(), &load)?;
    baseline_server.shutdown();

    let net_router = Router::start(serve_config(4))?;
    net_router.register("default", overload_table.as_ref())?;
    let net_server = NetServer::start(net_router, NetServerConfig::default())?;
    let wire = run_net_load(net_server.local_addr(), "default", vocab, &load, None)?;
    net_server.shutdown();

    println!(
        "{:<12} {:>8} {:>11} {:>9} {:>9} {:>9}",
        "path", "req/s", "lookups/s", "p50", "p95", "p99"
    );
    println!(
        "{:<12} {:>8.0} {:>11.0} {:>9} {:>9} {:>9}",
        "in-process",
        baseline.qps(),
        baseline.lookups_per_sec(),
        fmt_nanos(baseline.histogram.p50()),
        fmt_nanos(baseline.histogram.p95()),
        fmt_nanos(baseline.histogram.p99()),
    );
    println!(
        "{:<12} {:>8.0} {:>11.0} {:>9} {:>9} {:>9}",
        "loopback",
        wire.qps(),
        wire.qps() * wire.ids_per_request as f64,
        fmt_nanos(wire.histogram.p50()),
        fmt_nanos(wire.histogram.p95()),
        fmt_nanos(wire.histogram.p99()),
    );

    // The act-5 overload point across the wire: open-loop 2x capacity
    // against the calibrated 1-shard shed server, then the same
    // saturating traffic closed-loop, where the client honors the
    // server's retry_after hints between requests.
    let shed_serve = || ServeConfig {
        n_shards: 1,
        max_batch: overload_batch,
        max_wait: Duration::from_millis(1),
        queue_depth: overload_depth,
        store_latency,
        admission: AdmissionPolicy::Shed {
            enqueue_timeout,
            request_deadline: Some(deadline),
        },
        ..ServeConfig::default()
    };
    println!(
        "\nOverload across the wire ({capacity_qps:.0} rows/s capacity, {overload_clients} \
         connections, wire deadline {deadline:?}):\n"
    );
    println!(
        "{:<8} {:>10} {:>10} {:>7} {:>10} {:>10} {:>12} {:>12}",
        "mode", "offered/s", "goodput/s", "shed%", "p50", "p99", "hint/shed", "slept/shed"
    );
    let mut open_reconciled = None;
    for (label, mode) in [
        (
            "open",
            LoadMode::Open {
                target_qps: 2.0 * capacity_qps,
            },
        ),
        ("closed", LoadMode::Closed),
    ] {
        let router = Router::start(shed_serve())?;
        router.register("default", overload_table.as_ref())?;
        let server = NetServer::start(router, NetServerConfig::default())?;
        let report = run_net_load(
            server.local_addr(),
            "default",
            vocab,
            &LoadGenConfig {
                clients: overload_clients,
                requests_per_client: overload_rpc,
                ids_per_request: 1,
                zipf_exponent: 1.1,
                mode,
                seed: 42,
            },
            Some(deadline),
        )?;
        let (per_model, _net_metrics) = server.shutdown();
        let stats = &per_model[0].1;
        // The reconciliation contract: every wire outcome came from a
        // typed response frame, so client tallies equal ServeStats
        // exactly (single-id requests make rows == requests).
        assert_eq!(
            stats.requests, report.requests,
            "served tallies must reconcile"
        );
        assert_eq!(stats.shed, report.shed, "shed tallies must reconcile");
        assert_eq!(
            stats.expired, report.expired,
            "expired tallies must reconcile"
        );
        assert_eq!(
            stats.issued,
            report.offered(),
            "issued tallies must reconcile"
        );
        if label == "open" {
            open_reconciled = Some((report.requests, report.shed, report.expired));
        }
        let slept_per_shed = report
            .client
            .backoff_slept_nanos
            .checked_div(report.shed)
            .map_or(Duration::ZERO, Duration::from_nanos);
        println!(
            "{:<8} {:>10.0} {:>10.0} {:>6.1}% {:>10} {:>10} {:>12} {:>12}",
            label,
            report.offered_qps(),
            report.goodput(),
            100.0 * report.shed_rate(),
            fmt_nanos(report.histogram.p50()),
            fmt_nanos(report.histogram.p99()),
            fmt_nanos(report.mean_backoff().as_nanos() as u64),
            fmt_nanos(slept_per_shed.as_nanos() as u64),
        );
    }
    let (served, shed, expired) = open_reconciled.expect("open-loop run executed");
    println!(
        "\nOpen-loop client tallies reconciled exactly with the server's ServeStats:\n\
         {served} served + {shed} shed + {expired} expired, every outcome a typed frame.\n\
         Shed frames carry the server's retry_after hint (hint/shed); the closed-loop\n\
         run honors it by sleeping before its next send (slept/shed), turning overload\n\
         into paced retries instead of a thundering herd."
    );

    // --- Full-model serving: RankNet scoring behind the router --------
    // The same shard queues, admission policy, and wire protocol now
    // carry whole scoring requests: N ids in, the RankNet head's score
    // out. The lookup run on identical traffic is the baseline — the
    // QPS gap is exactly what the NN forward costs.
    println!(
        "\nFull-model serving: a RankNet pipeline (gather + pool + dense head) behind\n\
         the same router via the InferBackend registry, driven over loopback by the\n\
         score-path loadgen on act-1 Zipf traffic ({IDS_PER_REQUEST} ids/request):\n"
    );
    let ranker = RecModel::new(
        &ModelConfig::pointwise(vocab, DIM, IDS_PER_REQUEST, 1),
        &MethodSpec::MemCom {
            hash_size: (vocab / 10).max(1),
            bias: false,
        },
    )?;
    let infer_router = Router::start(serve_config(4))?;
    infer_router
        .backends()
        .register("ranknet", Arc::new(RankNetBackend::from_model(&ranker)?))?;
    // One embedding, three serving modes on one worker set: plain row
    // lookups, fp32 scoring, and int8-quantized scoring.
    infer_router.register_with_dtype("rows", ranker.embedding(), Dtype::F32)?;
    infer_router.register_with_backend("score/fp32", ranker.embedding(), Dtype::F32, "ranknet")?;
    infer_router.register_with_backend("score/int8", ranker.embedding(), Dtype::Int8, "ranknet")?;
    let int8_bound = RankNetBackend::from_model(&ranker)?
        .score_error_bound(infer_router.snapshot("score/int8")?.as_ref());
    let infer_server = NetServer::start(infer_router, NetServerConfig::default())?;

    let lookup_run = run_net_load(infer_server.local_addr(), "rows", vocab, &load, None)?;
    let score_fp32 =
        run_net_score_load(infer_server.local_addr(), "score/fp32", vocab, &load, None)?;
    let score_int8 =
        run_net_score_load(infer_server.local_addr(), "score/int8", vocab, &load, None)?;
    infer_server.shutdown();
    assert_eq!(
        score_fp32.traffic_checksum, lookup_run.traffic_checksum,
        "score and lookup runs must issue identical traffic"
    );

    println!(
        "{:<12} {:>8} {:>9} {:>9} {:>9} {:>12}",
        "path", "req/s", "p50", "p95", "p99", "max|err|"
    );
    for (label, report, bound) in [
        ("lookup", &lookup_run, None),
        ("score fp32", &score_fp32, Some(0.0f32)),
        ("score int8", &score_int8, Some(int8_bound)),
    ] {
        println!(
            "{:<12} {:>8.0} {:>9} {:>9} {:>9} {:>12}",
            label,
            report.qps(),
            fmt_nanos(report.histogram.p50()),
            fmt_nanos(report.histogram.p95()),
            fmt_nanos(report.histogram.p99()),
            bound.map_or_else(|| "-".to_string(), |b| format!("{b:.2e}")),
        );
    }

    let act9 = format!(
        "{{\n  \"ids_per_request\": {},\n  \"traffic_checksum\": {},\n  \
         \"lookup\": {{\"qps\": {:.1}, \"p50_nanos\": {}, \"p99_nanos\": {}}},\n  \
         \"score_fp32\": {{\"qps\": {:.1}, \"p50_nanos\": {}, \"p99_nanos\": {}, \"score_error_bound\": 0.0}},\n  \
         \"score_int8\": {{\"qps\": {:.1}, \"p50_nanos\": {}, \"p99_nanos\": {}, \"score_error_bound\": {:e}}}\n}}\n",
        IDS_PER_REQUEST,
        lookup_run.traffic_checksum,
        lookup_run.qps(),
        lookup_run.histogram.p50(),
        lookup_run.histogram.p99(),
        score_fp32.qps(),
        score_fp32.histogram.p50(),
        score_fp32.histogram.p99(),
        score_int8.qps(),
        score_int8.histogram.p50(),
        score_int8.histogram.p99(),
        int8_bound,
    );
    std::fs::write("ACT9_infer.json", act9)?;
    println!(
        "\nIdentical Zipf traffic (equal checksums) through one worker set: the lookup\n\
         row is the serving floor, the fp32 score row adds the RankNet forward to every\n\
         request, and the int8 row serves the same scores from a ~4x smaller resident\n\
         store at a certified worst-case score error. Snapshot written to ACT9_infer.json."
    );

    println!(
        "\nHot rows answer from each shard's LRU; cold rows fault through the shard's\n\
         simulated mmap. MEmCom partitions its per-entity tables and replicates only\n\
         the small shared table, so it serves from a smaller store at comparable QPS —\n\
         and one router serves every table variant from the same shard workers, with\n\
         snapshot swaps refreshing tables under live traffic. Sub-fp32 variants pack\n\
         more rows per page (int8 ~3.5x, int4 ~6x), dequantize only on cache miss, and\n\
         certify their worst-case absolute error next to the bytes they save."
    );
    Ok(())
}
