//! # memcom — facade crate
//!
//! Single-import entry point for the MEmCom reproduction (Pansare et al.,
//! *Learning Compressed Embeddings for On-Device Inference*, MLSys 2022).
//! Re-exports every subsystem crate under one namespace:
//!
//! * [`tensor`] — dense f32 tensors, broadcasting, matmul, activations.
//! * [`nn`] — layers, losses, optimizers, gradient checking.
//! * [`core`] — MEmCom and every baseline embedding-compression technique.
//! * [`data`] — synthetic power-law dataset generators (Table 2 stand-ins).
//! * [`metrics`] — accuracy / top-k / nDCG.
//! * [`models`] — the paper's networks, trainer, and compression sweeps.
//! * [`ondevice`] — model serialization, mmap simulator, inference engines,
//!   post-training quantization.
//! * [`dp`] — DP-SGD and the Rényi-DP accountant.
//! * [`serve`] — sharded, micro-batching embedding-serving engine with
//!   hot-row caching and Zipf load generation.
//! * [`net`] — network-attached serving: length-framed wire protocol,
//!   multi-client server over the serve tier, pipelined client with
//!   deadline and backoff support.
//!
//! # Quickstart
//!
//! ```
//! use memcom::core::{EmbeddingCompressor, MemCom, MemComConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(0);
//! // 10 000-entity vocabulary compressed into 1 000 shared rows + 10 000
//! // scalar multipliers (Algorithm 2 of the paper).
//! let layer = MemCom::new(MemComConfig::new(10_000, 64, 1_000), &mut rng)?;
//! let out = layer.lookup(&[3, 9_999, 3])?;
//! assert_eq!(out.shape().dims(), &[3, 64]);
//! # Ok(())
//! # }
//! ```

pub use memcom_core as core;
pub use memcom_data as data;
pub use memcom_dp as dp;
pub use memcom_metrics as metrics;
pub use memcom_models as models;
pub use memcom_net as net;
pub use memcom_nn as nn;
pub use memcom_ondevice as ondevice;
pub use memcom_serve as serve;
pub use memcom_tensor as tensor;
