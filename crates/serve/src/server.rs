//! Single-model serving facade over the multi-model [`Router`].
//!
//! [`EmbedServer`] and [`ServeHandle`] are the original (PR 1) serving
//! API, kept source-compatible: they start a [`Router`], register one
//! model under [`DEFAULT_MODEL`], and forward every call. New code that
//! needs several models, snapshot swaps, or per-model statistics should
//! use [`Router`] directly — [`EmbedServer::router`] is the escape
//! hatch from an existing server.

use std::sync::Arc;

use crate::router::{Router, RouterHandle, DEFAULT_MODEL};
use crate::store::ShardedStore;
use crate::{EmbedBatch, Result, ServeConfig};

pub use crate::router::ServeStats;

/// A sharded, micro-batching embedding server for a single model.
///
/// One worker thread per shard pops coalesced batches from its queue and
/// answers through each request's response slot. Construction spawns
/// the workers; [`shutdown`](EmbedServer::shutdown) (or drop) closes the
/// queues, drains in-flight work, and joins them.
///
/// Overload behavior follows [`ServeConfig::admission`]: the default
/// [`crate::AdmissionPolicy::Block`] backpressures producers on full
/// queues, while [`crate::AdmissionPolicy::Shed`] bounds enqueue waits
/// and enforces per-request deadlines at dequeue — see
/// [`ServeStats::shed`]/[`ServeStats::expired`] for the counters.
#[derive(Debug)]
pub struct EmbedServer {
    router: Router,
    /// Pinned at construction so the facade stays panic-free even if the
    /// default model is deregistered through [`router`](EmbedServer::router).
    handle: RouterHandle,
}

impl EmbedServer {
    /// Builds a store from `emb` with `config` and starts serving.
    ///
    /// `config.n_shards` decides both the store partitioning and the
    /// worker count. The config is validated unconditionally.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ServeError::BadConfig`] for invalid configs and
    /// propagates store-construction failures.
    pub fn start(emb: &dyn memcom_core::EmbeddingCompressor, config: ServeConfig) -> Result<Self> {
        let router = Router::start(config)?;
        router.register(DEFAULT_MODEL, emb)?;
        let handle = router.handle(DEFAULT_MODEL)?;
        Ok(EmbedServer { router, handle })
    }

    /// Starts serving an already-built store.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ServeError::BadConfig`] when the config is
    /// invalid or its shard count disagrees with the store's.
    pub fn start_with_store(store: ShardedStore, config: ServeConfig) -> Result<Self> {
        let router = Router::start(config)?;
        router.register_store(DEFAULT_MODEL, store)?;
        let handle = router.handle(DEFAULT_MODEL)?;
        Ok(EmbedServer { router, handle })
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        self.router.config()
    }

    /// The underlying router, for graduating to the multi-model API
    /// (register more models, swap snapshots, per-model stats).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The served store snapshot (for footprint/cost inspection). Keeps
    /// answering from the final snapshot even after a deregistration
    /// through [`router`](EmbedServer::router).
    pub fn store(&self) -> Arc<ShardedStore> {
        self.handle.snapshot()
    }

    /// A cloneable client handle. Handles stay valid across shutdown —
    /// requests after shutdown fail with
    /// [`crate::ServeError::ShuttingDown`].
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            inner: self.handle.clone(),
        }
    }

    /// Current aggregated statistics.
    pub fn stats(&self) -> ServeStats {
        self.handle.stats()
    }

    /// A telemetry snapshot (see [`crate::TelemetryConfig`]), renderable
    /// as Prometheus text or JSON.
    pub fn metrics(&self) -> crate::MetricsSnapshot {
        self.router.metrics()
    }

    /// Stops accepting requests, drains queued work, joins the workers,
    /// and returns the final statistics.
    pub fn shutdown(self) -> ServeStats {
        let EmbedServer { router, handle } = self;
        drop(router.shutdown());
        handle.stats()
    }
}

/// A cheap, cloneable, thread-safe client to an [`EmbedServer`].
///
/// Thin wrapper over a [`RouterHandle`] bound to [`DEFAULT_MODEL`].
#[derive(Debug, Clone)]
pub struct ServeHandle {
    inner: RouterHandle,
}

impl ServeHandle {
    /// Looks up one embedding row, blocking until the answer arrives.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ServeError::IdOutOfVocab`] for bad ids and
    /// [`crate::ServeError::ShuttingDown`] after shutdown.
    pub fn get(&self, id: usize) -> Result<Vec<f32>> {
        self.inner.get(id)
    }

    /// Looks up many ids, pipelining across shards before blocking, and
    /// returns owned per-row vectors. Prefer
    /// [`get_batch_into`](Self::get_batch_into) on hot paths — it reuses
    /// one flat buffer instead of allocating a `Vec` per row.
    ///
    /// # Errors
    ///
    /// Same conditions as [`get`](Self::get); the first failure wins.
    pub fn get_many(&self, ids: &[usize]) -> Result<Vec<Vec<f32>>> {
        self.inner.get_many(ids)
    }

    /// Looks up many ids into the caller-owned, reusable `batch` slab —
    /// no per-row heap allocation at a steady batch shape.
    ///
    /// # Errors
    ///
    /// Same conditions as [`get`](Self::get).
    pub fn get_batch_into(&self, ids: &[usize], batch: &mut EmbedBatch) -> Result<()> {
        self.inner.get_batch_into(ids, batch)
    }

    /// The model name this handle routes to ([`DEFAULT_MODEL`]).
    pub fn model_name(&self) -> &str {
        self.inner.model_name()
    }

    /// The current store snapshot (footprint / dtype / error-bound
    /// inspection), regardless of registration state.
    pub fn snapshot(&self) -> Arc<ShardedStore> {
        self.inner.snapshot()
    }

    /// Served vocabulary size.
    pub fn vocab(&self) -> usize {
        self.inner.vocab()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.inner.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeError;
    use memcom_core::{EmbeddingCompressor, MemCom, MemComConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Duration;

    fn server(n_shards: usize, max_batch: usize, max_wait_ms: u64) -> (MemCom, EmbedServer) {
        let mut rng = StdRng::seed_from_u64(21);
        let emb = MemCom::new(MemComConfig::new(200, 8, 20), &mut rng).unwrap();
        let config = ServeConfig {
            n_shards,
            max_batch,
            max_wait: Duration::from_millis(max_wait_ms),
            ..ServeConfig::default()
        };
        let server = EmbedServer::start(&emb, config).unwrap();
        (emb, server)
    }

    #[test]
    fn single_request_round_trip() {
        let (emb, server) = server(4, 8, 2);
        let handle = server.handle();
        let got = handle.get(17).unwrap();
        assert_eq!(got.as_slice(), emb.lookup(&[17]).unwrap().as_slice());
        let stats = server.shutdown();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.shed, 0, "Block policy never sheds");
        assert_eq!(stats.expired, 0, "Block policy never expires");
    }

    #[test]
    fn get_many_spans_shards() {
        let (emb, server) = server(4, 8, 2);
        let handle = server.handle();
        let ids: Vec<usize> = (0..32).map(|i| (i * 13) % 200).collect();
        let rows = handle.get_many(&ids).unwrap();
        for (&id, row) in ids.iter().zip(&rows) {
            assert_eq!(
                row.as_slice(),
                emb.lookup(&[id]).unwrap().as_slice(),
                "id {id}"
            );
        }
    }

    #[test]
    fn get_batch_into_reuses_one_slab() {
        let (emb, server) = server(4, 8, 2);
        let handle = server.handle();
        let mut batch = EmbedBatch::new();
        for round in 0..3 {
            let ids: Vec<usize> = (0..24).map(|i| (i * 7 + round) % 200).collect();
            handle.get_batch_into(&ids, &mut batch).unwrap();
            assert_eq!(batch.len(), ids.len());
            assert_eq!(batch.dim(), 8);
            assert_eq!(batch.ids(), ids.as_slice());
            for (k, &id) in ids.iter().enumerate() {
                assert_eq!(
                    batch.row(k),
                    emb.lookup(&[id]).unwrap().as_slice(),
                    "round {round} id {id}"
                );
            }
        }
        // Duplicates and an empty batch are fine too.
        handle.get_batch_into(&[5, 5, 5], &mut batch).unwrap();
        assert_eq!(batch.row(0), batch.row(2));
        handle.get_batch_into(&[], &mut batch).unwrap();
        assert!(batch.is_empty());
    }

    #[test]
    fn bad_id_fails_fast_without_hanging() {
        let (_, server) = server(2, 4, 2);
        let handle = server.handle();
        assert!(matches!(
            handle.get(5_000),
            Err(ServeError::IdOutOfVocab {
                id: 5_000,
                vocab: 200
            })
        ));
        let mut batch = EmbedBatch::new();
        assert!(matches!(
            handle.get_batch_into(&[1, 5_000], &mut batch),
            Err(ServeError::IdOutOfVocab { .. })
        ));
        // The server still works afterwards.
        assert!(handle.get(3).is_ok());
    }

    #[test]
    fn shutdown_rejects_new_requests() {
        let (_, server) = server(2, 4, 2);
        let handle = server.handle();
        handle.get(1).unwrap();
        let stats = server.shutdown();
        assert!(stats.requests >= 1);
        assert!(matches!(handle.get(2), Err(ServeError::ShuttingDown)));
        let mut batch = EmbedBatch::new();
        assert!(matches!(
            handle.get_batch_into(&[1, 2], &mut batch),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn shard_count_must_match_config() {
        let mut rng = StdRng::seed_from_u64(2);
        let emb = MemCom::new(MemComConfig::new(50, 4, 10), &mut rng).unwrap();
        let store = ShardedStore::build(&emb, 2, 8, 4096).unwrap();
        let config = ServeConfig::with_shards(4);
        assert!(matches!(
            EmbedServer::start_with_store(store, config),
            Err(ServeError::BadConfig { .. })
        ));
    }

    #[test]
    fn facade_survives_deregistration_via_escape_hatch() {
        let (_, server) = server(2, 4, 2);
        let handle = server.handle();
        handle.get(1).unwrap();
        // The router escape hatch can retire the default model; the
        // facade must degrade to errors, not panics.
        server.router().deregister(crate::DEFAULT_MODEL).unwrap();
        assert!(matches!(
            handle.get(1),
            Err(ServeError::ModelNotFound { .. })
        ));
        assert!(server.store().stored_bytes() > 0);
        assert_eq!(server.stats().requests, 1);
        assert_eq!(server.handle().dim(), 8);
        let stats = server.shutdown();
        assert_eq!(stats.requests, 1);
    }

    #[test]
    fn start_validates_config_unconditionally() {
        let mut rng = StdRng::seed_from_u64(2);
        let emb = MemCom::new(MemComConfig::new(50, 4, 10), &mut rng).unwrap();
        for broken in [
            ServeConfig {
                n_shards: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                queue_depth: 0,
                ..ServeConfig::default()
            },
        ] {
            assert!(
                matches!(
                    EmbedServer::start(&emb, broken.clone()),
                    Err(ServeError::BadConfig { .. })
                ),
                "{broken:?} must be rejected by start"
            );
            assert!(
                matches!(
                    crate::Router::start(broken.clone()),
                    Err(ServeError::BadConfig { .. })
                ),
                "{broken:?} must be rejected by the router"
            );
        }
    }
}
