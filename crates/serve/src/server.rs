//! The serving engine: shard workers + client handles.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use memcom_ondevice::engine::RunStats;

use crate::batcher::{FlushReason, Request, ResponseSlot, ShardQueue};
use crate::store::{CacheStats, ShardedStore};
use crate::{Result, ServeConfig, ServeError};

#[derive(Debug, Default)]
struct BatchCounters {
    requests: AtomicU64,
    batches: AtomicU64,
    flushes_full: AtomicU64,
    flushes_timeout: AtomicU64,
    flushes_drain: AtomicU64,
    max_batch_observed: AtomicU64,
}

#[derive(Debug)]
struct ServerInner {
    store: ShardedStore,
    queues: Vec<ShardQueue>,
    counters: BatchCounters,
}

/// Aggregated serving statistics (see [`EmbedServer::stats`]).
#[derive(Debug, Clone, Copy)]
pub struct ServeStats {
    /// Requests answered through batches.
    pub requests: u64,
    /// Batches executed.
    pub batches: u64,
    /// Batches flushed because they reached `max_batch`.
    pub flushes_full: u64,
    /// Batches flushed because `max_wait` elapsed.
    pub flushes_timeout: u64,
    /// Batches flushed while draining at shutdown.
    pub flushes_drain: u64,
    /// Largest batch observed.
    pub max_batch_observed: usize,
    /// Hot-row cache effectiveness.
    pub cache: CacheStats,
    /// Counted work + resident footprint in the on-device cost model's
    /// terms.
    pub run_stats: RunStats,
}

impl ServeStats {
    /// Mean requests per batch (`0` before any traffic).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// A sharded, micro-batching embedding server.
///
/// One worker thread per shard pops coalesced batches from its queue and
/// answers through each request's [`ResponseSlot`]. Construction spawns
/// the workers; [`shutdown`](EmbedServer::shutdown) (or drop) closes the
/// queues, drains in-flight work, and joins them.
#[derive(Debug)]
pub struct EmbedServer {
    inner: Arc<ServerInner>,
    workers: Vec<JoinHandle<()>>,
    config: ServeConfig,
}

impl EmbedServer {
    /// Builds a store from `emb` with `config` and starts serving.
    ///
    /// `config.n_shards` decides both the store partitioning and the
    /// worker count.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for invalid configs and
    /// propagates store-construction failures.
    pub fn start(emb: &dyn memcom_core::EmbeddingCompressor, config: ServeConfig) -> Result<Self> {
        // start_with_store validates the config; no need to do it twice.
        let store = ShardedStore::build(
            emb,
            config.n_shards,
            config.cache_capacity,
            config.page_size,
        )?;
        Self::start_with_store(store, config)
    }

    /// Starts serving an already-built store.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] when the config is invalid or
    /// its shard count disagrees with the store's.
    pub fn start_with_store(store: ShardedStore, config: ServeConfig) -> Result<Self> {
        config.validate()?;
        if store.n_shards() != config.n_shards {
            return Err(ServeError::BadConfig {
                context: format!(
                    "store has {} shards but config asks for {}",
                    store.n_shards(),
                    config.n_shards
                ),
            });
        }
        let queues = (0..config.n_shards)
            .map(|_| ShardQueue::new(config.queue_depth))
            .collect();
        let inner = Arc::new(ServerInner {
            store,
            queues,
            counters: BatchCounters::default(),
        });
        let workers = (0..config.n_shards)
            .map(|shard_idx| {
                let inner = Arc::clone(&inner);
                let (max_batch, max_wait) = (config.max_batch, config.max_wait);
                std::thread::Builder::new()
                    .name(format!("memcom-serve-{shard_idx}"))
                    .spawn(move || worker_loop(&inner, shard_idx, max_batch, max_wait))
                    .expect("spawn serving worker")
            })
            .collect();
        Ok(EmbedServer {
            inner,
            workers,
            config,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The underlying sharded store (for footprint/cost inspection).
    pub fn store(&self) -> &ShardedStore {
        &self.inner.store
    }

    /// A cloneable client handle. Handles stay valid across shutdown —
    /// requests after shutdown fail with [`ServeError::ShuttingDown`].
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Current aggregated statistics.
    pub fn stats(&self) -> ServeStats {
        let c = &self.inner.counters;
        ServeStats {
            requests: c.requests.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            flushes_full: c.flushes_full.load(Ordering::Relaxed),
            flushes_timeout: c.flushes_timeout.load(Ordering::Relaxed),
            flushes_drain: c.flushes_drain.load(Ordering::Relaxed),
            max_batch_observed: c.max_batch_observed.load(Ordering::Relaxed) as usize,
            cache: self.inner.store.cache_stats(),
            run_stats: self.inner.store.run_stats(),
        }
    }

    /// Stops accepting requests, drains queued work, joins the workers,
    /// and returns the final statistics.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        for queue in &self.inner.queues {
            queue.close();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for EmbedServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop(
    inner: &ServerInner,
    shard_idx: usize,
    max_batch: usize,
    max_wait: std::time::Duration,
) {
    let queue = &inner.queues[shard_idx];
    while let Some((batch, reason)) = queue.pop_batch(max_batch, max_wait) {
        // A panic while serving must not strand blocked requesters: keep
        // the slots, answer `WorkerLost` to any left unfilled (fill is
        // first-write-wins), and keep the worker alive for later batches.
        let slots: Vec<Arc<ResponseSlot>> = batch.iter().map(|r| Arc::clone(&r.slot)).collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve_batch(inner, shard_idx, batch, reason);
        }));
        if outcome.is_err() {
            for slot in &slots {
                slot.fill(Err(ServeError::WorkerLost));
            }
        }
    }
}

fn serve_batch(inner: &ServerInner, shard_idx: usize, batch: Vec<Request>, reason: FlushReason) {
    let c = &inner.counters;
    c.requests.fetch_add(batch.len() as u64, Ordering::Relaxed);
    c.batches.fetch_add(1, Ordering::Relaxed);
    match reason {
        FlushReason::Full => c.flushes_full.fetch_add(1, Ordering::Relaxed),
        FlushReason::Timeout => c.flushes_timeout.fetch_add(1, Ordering::Relaxed),
        FlushReason::Drain => c.flushes_drain.fetch_add(1, Ordering::Relaxed),
    };
    c.max_batch_observed
        .fetch_max(batch.len() as u64, Ordering::Relaxed);

    let ids: Vec<usize> = batch.iter().map(|r| r.id).collect();
    match inner.store.get_shard_batch(shard_idx, &ids) {
        Ok(rows) => {
            for (request, row) in batch.into_iter().zip(rows) {
                request.slot.fill(Ok(row));
            }
        }
        Err(_) => {
            // A bad id poisons only its own batch; answer every
            // requester individually so none hangs.
            for request in batch {
                request.slot.fill(inner.store.get(request.id));
            }
        }
    }
}

/// A cheap, cloneable, thread-safe client to an [`EmbedServer`].
#[derive(Debug, Clone)]
pub struct ServeHandle {
    inner: Arc<ServerInner>,
}

impl ServeHandle {
    /// Looks up one embedding row, blocking until the answer arrives.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::IdOutOfVocab`] for bad ids and
    /// [`ServeError::ShuttingDown`] after shutdown.
    pub fn get(&self, id: usize) -> Result<Vec<f32>> {
        self.inner.store.check_id(id)?;
        let slot = Arc::new(ResponseSlot::new());
        let shard = self.inner.store.shard_of(id);
        self.inner.queues[shard].push(Request {
            id,
            slot: Arc::clone(&slot),
        })?;
        slot.wait()
    }

    /// Looks up many ids, pipelining across shards before blocking.
    ///
    /// # Errors
    ///
    /// Same conditions as [`get`](Self::get); the first failure wins.
    pub fn get_many(&self, ids: &[usize]) -> Result<Vec<Vec<f32>>> {
        let mut slots = Vec::with_capacity(ids.len());
        for &id in ids {
            self.inner.store.check_id(id)?;
            let slot = Arc::new(ResponseSlot::new());
            let shard = self.inner.store.shard_of(id);
            self.inner.queues[shard].push(Request {
                id,
                slot: Arc::clone(&slot),
            })?;
            slots.push(slot);
        }
        slots.into_iter().map(|slot| slot.wait()).collect()
    }

    /// Served vocabulary size.
    pub fn vocab(&self) -> usize {
        self.inner.store.vocab()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.inner.store.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcom_core::{EmbeddingCompressor, MemCom, MemComConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Duration;

    fn server(n_shards: usize, max_batch: usize, max_wait_ms: u64) -> (MemCom, EmbedServer) {
        let mut rng = StdRng::seed_from_u64(21);
        let emb = MemCom::new(MemComConfig::new(200, 8, 20), &mut rng).unwrap();
        let config = ServeConfig {
            n_shards,
            max_batch,
            max_wait: Duration::from_millis(max_wait_ms),
            ..ServeConfig::default()
        };
        let server = EmbedServer::start(&emb, config).unwrap();
        (emb, server)
    }

    #[test]
    fn single_request_round_trip() {
        let (emb, server) = server(4, 8, 2);
        let handle = server.handle();
        let got = handle.get(17).unwrap();
        assert_eq!(got.as_slice(), emb.lookup(&[17]).unwrap().as_slice());
        let stats = server.shutdown();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn get_many_spans_shards() {
        let (emb, server) = server(4, 8, 2);
        let handle = server.handle();
        let ids: Vec<usize> = (0..32).map(|i| (i * 13) % 200).collect();
        let rows = handle.get_many(&ids).unwrap();
        for (&id, row) in ids.iter().zip(&rows) {
            assert_eq!(
                row.as_slice(),
                emb.lookup(&[id]).unwrap().as_slice(),
                "id {id}"
            );
        }
    }

    #[test]
    fn bad_id_fails_fast_without_hanging() {
        let (_, server) = server(2, 4, 2);
        let handle = server.handle();
        assert!(matches!(
            handle.get(5_000),
            Err(ServeError::IdOutOfVocab {
                id: 5_000,
                vocab: 200
            })
        ));
        // The server still works afterwards.
        assert!(handle.get(3).is_ok());
    }

    #[test]
    fn shutdown_rejects_new_requests() {
        let (_, server) = server(2, 4, 2);
        let handle = server.handle();
        handle.get(1).unwrap();
        let stats = server.shutdown();
        assert!(stats.requests >= 1);
        assert!(matches!(handle.get(2), Err(ServeError::ShuttingDown)));
    }

    #[test]
    fn shard_count_must_match_config() {
        let mut rng = StdRng::seed_from_u64(2);
        let emb = MemCom::new(MemComConfig::new(50, 4, 10), &mut rng).unwrap();
        let store = ShardedStore::build(&emb, 2, 8, 4096).unwrap();
        let config = ServeConfig::with_shards(4);
        assert!(matches!(
            EmbedServer::start_with_store(store, config),
            Err(ServeError::BadConfig { .. })
        ));
    }
}
