//! Pluggable full-model inference behind the [`Router`](crate::Router).
//!
//! The serving tier's original contract was *row lookups*: N ids in,
//! N embedding rows out. The paper's end task is on-device **model
//! inference** over those compressed rows — embed → pool → dense
//! forward, N ids in, K scores out. This module closes that gap with
//! one seam:
//!
//! * [`InferBackend`] — the trait a scoring pipeline implements. A
//!   backend receives the request's ids, the model's current
//!   [`ShardedStore`] snapshot, and a reusable per-worker
//!   [`InferScratch`]; it writes its [`out_len`](InferBackend::out_len)
//!   output values into the caller's slab.
//! * [`BackendRegistry`] — named backends, pre-seeded with
//!   [`LookupBackend`] under `"lookup"` (the default: exactly the
//!   legacy row-lookup behavior, zero regression). Operators register
//!   model-specific backends (e.g. a [`RankNetBackend`] holding trained
//!   head weights) and then bind a router model to one by name.
//!
//! Score requests flow through the **same** machinery as lookups: the
//! same per-shard micro-batching queues, the same
//! [`AdmissionPolicy`](crate::AdmissionPolicy) shedding and deadlines,
//! the same `issued >= requests + shed + expired` counter contract, and
//! a dedicated `forward` telemetry stage next to decode/slab_write.
//!
//! # Example: registry + score round-trip
//!
//! ```
//! use std::sync::Arc;
//! use memcom_core::MethodSpec;
//! use memcom_models::{ModelConfig, RecModel};
//! use memcom_serve::infer::RankNetBackend;
//! use memcom_serve::{Dtype, Router, ServeConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A trained (here: freshly initialized) pointwise ranker.
//! let config = ModelConfig::pointwise(1_000, 16, 4, 1);
//! let spec = MethodSpec::MemCom { hash_size: 100, bias: false };
//! let model = RecModel::new(&config, &spec)?;
//!
//! let router = Router::start(ServeConfig::with_shards(2))?;
//!
//! // Register the model's head as a named backend, then bind a served
//! // model (its embedding rows, quantized however you like) to it.
//! let backend = Arc::new(RankNetBackend::from_model(&model)?);
//! router.backends().register("ranknet", backend)?;
//! router.register_with_backend("scorer", model.embedding(), Dtype::F32, "ranknet")?;
//!
//! // N item ids in, K scores out — through the shard queues.
//! let scores = router.handle("scorer")?.score(&[1, 2, 3, 4])?;
//! assert_eq!(scores.len(), 1); // pointwise ranker: one score
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use memcom_ondevice::HeadScratch;
use parking_lot::RwLock;

use crate::store::ShardedStore;
use crate::{Result, ServeError};

mod lookup;
mod ranknet;

pub use lookup::LookupBackend;
pub use ranknet::RankNetBackend;

/// The registry name of the default row-lookup backend.
pub const LOOKUP_BACKEND: &str = "lookup";

/// A scoring pipeline servable behind the [`Router`](crate::Router).
///
/// Implementations are called from shard workers, so they must be
/// `Send + Sync` and must not allocate per call at a steady request
/// shape — every intermediate belongs in the caller-provided
/// [`InferScratch`], which each worker owns and reuses.
pub trait InferBackend: Send + Sync + std::fmt::Debug {
    /// A short human-readable kind label (e.g. `"lookup"`,
    /// `"ranknet"`), used in diagnostics.
    fn name(&self) -> &'static str;

    /// Output values produced for a request of `n_ids` ids over
    /// `store` — the `K` in "N ids in, K scores out". The serving layer
    /// sizes the response slab to exactly this.
    fn out_len(&self, n_ids: usize, store: &ShardedStore) -> usize;

    /// Validates that this backend can serve over `store` (called once
    /// at model registration, not per request).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] when the store is incompatible
    /// (e.g. its row width differs from the backend's embedding width).
    fn check_store(&self, store: &ShardedStore) -> Result<()>;

    /// Scores `ids` over `store`, writing exactly
    /// [`out_len`](Self::out_len)`(ids.len(), store)` values into
    /// `out`.
    ///
    /// `ids` are pre-validated against the store's vocabulary and
    /// non-empty; `scratch` is this worker's reusable buffer set.
    ///
    /// # Errors
    ///
    /// Propagates store read failures and returns
    /// [`ServeError::BadConfig`] on internal shape mismatches; on error
    /// the contents of `out` are unspecified.
    fn score_into(
        &self,
        store: &ShardedStore,
        ids: &[usize],
        scratch: &mut InferScratch,
        out: &mut [f32],
    ) -> Result<()>;
}

/// Named [`InferBackend`]s, shared by every model of one router.
///
/// A fresh registry always contains [`LookupBackend`] under
/// [`LOOKUP_BACKEND`] (`"lookup"`) — the backend every model gets
/// unless registered with
/// [`Router::register_with_backend`](crate::Router::register_with_backend)
/// or
/// [`Router::register_store_with_backend`](crate::Router::register_store_with_backend).
/// Registration resolves the backend name once and binds the `Arc` into
/// the model entry, so per-request serving never touches the registry
/// lock.
#[derive(Debug)]
pub struct BackendRegistry {
    backends: RwLock<HashMap<String, Arc<dyn InferBackend>>>,
}

impl BackendRegistry {
    /// A registry holding only the default `"lookup"` backend.
    pub fn new() -> Self {
        let mut backends: HashMap<String, Arc<dyn InferBackend>> = HashMap::new();
        backends.insert(LOOKUP_BACKEND.to_string(), Arc::new(LookupBackend));
        BackendRegistry {
            backends: RwLock::new(backends),
        }
    }

    /// Registers `backend` under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] when `name` is already taken
    /// (including the built-in `"lookup"`).
    pub fn register(&self, name: &str, backend: Arc<dyn InferBackend>) -> Result<()> {
        let mut backends = self.backends.write();
        if backends.contains_key(name) {
            return Err(ServeError::BadConfig {
                context: format!("an inference backend named {name:?} is already registered"),
            });
        }
        backends.insert(name.to_string(), backend);
        Ok(())
    }

    /// The backend registered under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for unknown names.
    pub fn get(&self, name: &str) -> Result<Arc<dyn InferBackend>> {
        self.backends
            .read()
            .get(name)
            .map(Arc::clone)
            .ok_or_else(|| ServeError::BadConfig {
                context: format!("no inference backend named {name:?} is registered"),
            })
    }

    /// Registered backend names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.backends.read().keys().cloned().collect();
        names.sort_unstable();
        names
    }
}

impl Default for BackendRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// Reusable per-worker buffers for [`InferBackend::score_into`].
///
/// Each shard worker owns one scratch for its whole lifetime; at a
/// steady request shape every buffer reaches capacity once and the
/// scoring path stops allocating — the same O(1)-allocations-per-call
/// discipline `tests/alloc_count.rs` certifies for the lookup path.
#[derive(Debug, Default)]
pub struct InferScratch {
    /// Cross-shard gather staging ([`gather_rows`]).
    pub(crate) gather: GatherScratch,
    /// Head-executor intermediates
    /// ([`memcom_ondevice::InferenceSession::forward_head`]).
    pub(crate) head: HeadScratch,
    /// The head's final activation before the copy into the caller's
    /// response slab.
    pub(crate) logits: Vec<f32>,
}

impl InferScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A reusable client-side buffer set for the allocation-free score
/// path
/// ([`RouterHandle::score_batch_into`](crate::RouterHandle::score_batch_into)).
///
/// The request's id and output buffers round-trip through the response
/// slot and come back warm, so at a steady request shape a score call
/// allocates only its response-slot `Arc` — the same discipline as the
/// lookup batch path's [`EmbedBatch`](crate::EmbedBatch).
#[derive(Debug, Default)]
pub struct ScoreBatch {
    /// Warm id buffer for the next request.
    ids: Vec<usize>,
    /// Warm output buffer for the next request.
    spare: Vec<f32>,
    /// The most recent call's scores.
    scores: Vec<f32>,
}

impl ScoreBatch {
    /// An empty batch; buffers warm up over the first calls.
    pub fn new() -> Self {
        Self::default()
    }

    /// The scores of the last successful
    /// [`score_batch_into`](crate::RouterHandle::score_batch_into)
    /// call (unspecified after a failed one).
    pub fn scores(&self) -> &[f32] {
        &self.scores
    }

    /// Hands out the warm request buffers (replaced by empties).
    pub(crate) fn take_buffers(&mut self) -> (Vec<usize>, Vec<f32>) {
        (
            std::mem::take(&mut self.ids),
            std::mem::take(&mut self.spare),
        )
    }

    /// Returns buffers from a rejected request (nothing was served).
    pub(crate) fn recycle_buffers(&mut self, ids: Vec<usize>, out: Vec<f32>) {
        self.ids = ids;
        self.spare = out;
    }

    /// Installs a served outcome: `out` becomes the current scores and
    /// the previous scores buffer rotates in as the next spare.
    pub(crate) fn accept_outcome(&mut self, ids: Vec<usize>, out: Vec<f32>) {
        self.ids = ids;
        self.spare = std::mem::replace(&mut self.scores, out);
    }

    /// Takes the scores out, leaving an empty buffer behind.
    pub(crate) fn take_scores(&mut self) -> Vec<f32> {
        std::mem::take(&mut self.scores)
    }
}

/// Staging buffers for [`gather_rows`]: per-shard id groups, the
/// matching request positions, and one decode slab.
#[derive(Debug, Default)]
pub(crate) struct GatherScratch {
    ids: Vec<Vec<usize>>,
    pos: Vec<Vec<usize>>,
    rows: Vec<f32>,
}

/// Gathers the embedding rows of `ids` (in request order) into the flat
/// `dest` slab (`ids.len() * store.dim()` values), grouping ids by
/// shard so each group goes through the store's zero-copy
/// [`ShardedStore::lookup_batch`] path.
///
/// A score request is routed to *one* shard queue (by its first id) but
/// may reference rows on any shard; the store is thread-safe, so the
/// executing worker reads the other shards' pages directly.
///
/// # Errors
///
/// Returns [`ServeError::IdOutOfVocab`] on any out-of-range id and
/// propagates store read failures.
// memcom-lint: hot-path
pub(crate) fn gather_rows(
    store: &ShardedStore,
    ids: &[usize],
    scratch: &mut GatherScratch,
    dest: &mut [f32],
) -> Result<()> {
    let dim = store.dim();
    debug_assert_eq!(dest.len(), ids.len() * dim);
    let n_shards = store.n_shards();
    if n_shards == 1 {
        return store.lookup_batch(0, ids, dest);
    }
    scratch.ids.resize_with(n_shards, Vec::new);
    scratch.pos.resize_with(n_shards, Vec::new);
    for (group, pos) in scratch.ids.iter_mut().zip(scratch.pos.iter_mut()) {
        group.clear();
        pos.clear();
    }
    for (pos, &id) in ids.iter().enumerate() {
        let s = store.shard_of(id);
        scratch.ids[s].push(id);
        scratch.pos[s].push(pos);
    }
    for s in 0..n_shards {
        let group = &scratch.ids[s];
        if group.is_empty() {
            continue;
        }
        scratch.rows.clear();
        scratch.rows.resize(group.len() * dim, 0.0);
        store.lookup_batch(s, group, &mut scratch.rows)?;
        for (j, &pos) in scratch.pos[s].iter().enumerate() {
            dest[pos * dim..(pos + 1) * dim].copy_from_slice(&scratch.rows[j * dim..(j + 1) * dim]);
        }
    }
    Ok(())
}
// memcom-lint: end-hot-path

#[cfg(test)]
mod tests {
    use super::*;
    use memcom_core::{EmbeddingCompressor, MemCom, MemComConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn registry_defaults_and_errors() {
        let registry = BackendRegistry::new();
        assert_eq!(registry.names(), vec![LOOKUP_BACKEND.to_string()]);
        let lookup = registry.get(LOOKUP_BACKEND).unwrap();
        assert_eq!(lookup.name(), "lookup");
        assert!(matches!(
            registry.get("missing"),
            Err(ServeError::BadConfig { .. })
        ));
        assert!(matches!(
            registry.register(LOOKUP_BACKEND, Arc::new(LookupBackend)),
            Err(ServeError::BadConfig { .. })
        ));
        registry
            .register("lookup2", Arc::new(LookupBackend))
            .unwrap();
        assert_eq!(registry.names().len(), 2);
    }

    #[test]
    fn gather_matches_single_gets_across_shards() {
        let mut rng = StdRng::seed_from_u64(11);
        let emb = MemCom::new(MemComConfig::new(200, 8, 20), &mut rng).unwrap();
        let store = ShardedStore::build(&emb, 4, 16, 4096).unwrap();
        let ids = [7usize, 3, 150, 7, 42, 199, 0];
        let mut scratch = GatherScratch::default();
        let mut dest = vec![0f32; ids.len() * store.dim()];
        gather_rows(&store, &ids, &mut scratch, &mut dest).unwrap();
        for (pos, &id) in ids.iter().enumerate() {
            let want = store.get(id).unwrap();
            assert_eq!(&dest[pos * 8..(pos + 1) * 8], want.as_slice(), "id {id}");
        }
        let flat = emb.lookup(&ids).unwrap();
        assert_eq!(dest, flat.as_slice(), "gather must equal compressor lookup");
    }
}
