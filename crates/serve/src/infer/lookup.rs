//! The default backend: plain row lookups, as before this module
//! existed.

use crate::store::ShardedStore;
use crate::Result;

use super::{gather_rows, InferBackend, InferScratch};

/// The identity "pipeline": N ids in, N embedding rows out
/// (`ids.len() * dim` values, request order).
///
/// This is exactly the behavior every model had before backends
/// existed, and stays the default — a model registered through
/// [`Router::register`](crate::Router::register) serves lookups through
/// this backend with no behavior or performance change.
#[derive(Debug, Clone, Copy, Default)]
pub struct LookupBackend;

impl InferBackend for LookupBackend {
    fn name(&self) -> &'static str {
        "lookup"
    }

    fn out_len(&self, n_ids: usize, store: &ShardedStore) -> usize {
        n_ids * store.dim()
    }

    fn check_store(&self, _store: &ShardedStore) -> Result<()> {
        Ok(())
    }

    // memcom-lint: hot-path
    fn score_into(
        &self,
        store: &ShardedStore,
        ids: &[usize],
        scratch: &mut InferScratch,
        out: &mut [f32],
    ) -> Result<()> {
        gather_rows(store, ids, &mut scratch.gather, out)
    }
    // memcom-lint: end-hot-path
}
