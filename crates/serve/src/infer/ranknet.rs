//! Full-model scoring: the trained RankNet/Code-1 head executed over
//! served embedding rows.

use memcom_models::RecModel;
use memcom_ondevice::compute::WorkCounts;
use memcom_ondevice::format::{HeadOp, OnDeviceModel, TableMeta};
use memcom_ondevice::{decode_row_into, Dtype, InferenceSession};

use crate::store::ShardedStore;
use crate::{Result, ServeError};

use super::{gather_rows, InferBackend, InferScratch};

/// An [`InferBackend`] executing a trained model head (pool → ReLU →
/// batch-norm → dense, the paper's Code-1 / RankNet shapes) over
/// embedding rows gathered from the router's [`ShardedStore`].
///
/// The head runs through
/// [`InferenceSession::forward_head`] — the **same executor**
/// `memcom-ondevice` uses for standalone on-device inference — so for
/// an fp32 store a score served through the router is bit-for-bit the
/// score `InferenceSession::run` computes for the same ids. For a
/// quantized store the only divergence is the rows themselves, and
/// [`score_error_bound`](Self::score_error_bound) certifies how far a
/// served score can drift.
///
/// Per request: N item ids in, K scores out, where K is the head's
/// final dense width (1 for a pointwise ranker). All intermediates live
/// in the worker's [`InferScratch`], so steady-state scoring allocates
/// nothing per call.
#[derive(Debug)]
pub struct RankNetBackend {
    session: InferenceSession,
    /// Worst-case factor by which the head amplifies a per-element
    /// embedding error (computed once from the head parameters).
    error_amplification: f32,
}

impl RankNetBackend {
    /// Builds a backend from a trained [`RecModel`] (e.g.
    /// [`RankNet::shared_model`](memcom_models::RankNet::shared_model)):
    /// the head weights are serialized through the on-device model
    /// format (dropout is eval-mode, i.e. skipped) and loaded into an
    /// [`InferenceSession`]; the embedding tables travel separately, as
    /// the router store the model is registered with.
    ///
    /// # Errors
    ///
    /// Propagates serialization/parse failures from the on-device
    /// format layer.
    pub fn from_model(model: &RecModel) -> Result<Self> {
        let bytes = OnDeviceModel::serialize(
            model.embedding(),
            model.head(),
            model.config().input_len,
            Dtype::F32,
        )?;
        let session = InferenceSession::new(OnDeviceModel::parse(bytes)?);
        let error_amplification = head_error_amplification(&session)?;
        Ok(RankNetBackend {
            session,
            error_amplification,
        })
    }

    /// The loaded on-device session (inspection: head ops, work model).
    pub fn session(&self) -> &InferenceSession {
        &self.session
    }

    /// Certified worst-case absolute error of any score served over
    /// `store`, relative to the same forward over exact fp32 embedding
    /// rows: the store's per-element row bound
    /// ([`ShardedStore::error_bound`], 0 for fp32 stores) propagated
    /// through the head — averaging pool and ReLU are non-expansive,
    /// batch-norm scales by `max_i |gamma_i| / sqrt(var_i + eps)`, and a
    /// dense layer by its largest column L1 norm.
    pub fn score_error_bound(&self, store: &ShardedStore) -> f32 {
        store.error_bound() * self.error_amplification
    }
}

impl InferBackend for RankNetBackend {
    fn name(&self) -> &'static str {
        "ranknet"
    }

    fn out_len(&self, _n_ids: usize, _store: &ShardedStore) -> usize {
        self.session.head_out_len()
    }

    fn check_store(&self, store: &ShardedStore) -> Result<()> {
        let e = self.session.model().emb_dim;
        if store.dim() != e {
            return Err(ServeError::BadConfig {
                context: format!(
                    "ranknet backend expects {e}-wide embedding rows, store serves {}",
                    store.dim()
                ),
            });
        }
        Ok(())
    }

    // memcom-lint: hot-path
    fn score_into(
        &self,
        store: &ShardedStore,
        ids: &[usize],
        scratch: &mut InferScratch,
        out: &mut [f32],
    ) -> Result<()> {
        let InferScratch {
            gather,
            head,
            logits,
        } = scratch;
        let act = head.input(ids.len(), store.dim());
        gather_rows(store, ids, gather, act)?;
        // Work counts are still tallied (the head executor charges
        // flops/activations) but a score request reports no per-run
        // stats; the mmap-level counters aggregate on the session.
        let mut work = WorkCounts::default();
        self.session
            .forward_head(ids.len(), head, logits, &mut work)?;
        if logits.len() != out.len() {
            return Err(ServeError::BadConfig {
                context: format!(
                    "head produced {} values for a {}-value response slab",
                    logits.len(),
                    out.len()
                ),
            });
        }
        out.copy_from_slice(logits);
        Ok(())
    }
    // memcom-lint: end-hot-path
}

/// Worst-case per-element error amplification of the head, composed op
/// by op in execution order (linear error propagation; every bound is
/// exact for the affine ops and conservative for the non-expansive
/// ones).
fn head_error_amplification(session: &InferenceSession) -> Result<f32> {
    let mut amp = 1.0f32;
    let mut buf = Vec::new();
    for op in &session.model().head_ops {
        match op {
            // Mean over rows of per-element errors ≤ the max error;
            // ReLU is 1-Lipschitz.
            HeadOp::AveragePool | HeadOp::Relu => {}
            HeadOp::BatchNorm { tables, eps, .. } => {
                let gamma = read_table_row(session, &tables[0], 0, &mut buf)?.to_vec();
                let var = read_table_row(session, &tables[3], 0, &mut buf)?;
                let mut factor = 0.0f32;
                for (g, v) in gamma.iter().zip(var.iter()) {
                    factor = factor.max(g.abs() / (v + eps).sqrt());
                }
                amp *= factor;
            }
            HeadOp::Dense {
                in_dim,
                out_dim,
                weight,
                ..
            } => {
                // |sum_i w[i][o] * err_i| ≤ δ · max_o Σ_i |w[i][o]|.
                let mut col_l1 = vec![0.0f32; *out_dim];
                for i in 0..*in_dim {
                    let row = read_table_row(session, weight, i, &mut buf)?;
                    for (acc, w) in col_l1.iter_mut().zip(row.iter()) {
                        *acc += w.abs();
                    }
                }
                amp *= col_l1.iter().fold(0.0f32, |a, &b| a.max(b));
            }
        }
    }
    Ok(amp)
}

/// Decodes one parameter-table row into `buf` (resized to the table
/// width), returning it as a slice.
fn read_table_row<'a>(
    session: &InferenceSession,
    table: &TableMeta,
    r: usize,
    buf: &'a mut Vec<f32>,
) -> Result<&'a [f32]> {
    let (offset, len) = table.row_range(r);
    let bytes = session.mmap().read(offset, len)?;
    buf.clear();
    buf.resize(table.cols, 0.0);
    decode_row_into(bytes, table.dtype, table.scale, buf);
    Ok(buf)
}
