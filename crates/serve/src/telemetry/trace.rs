//! Sampled request tracing.
//!
//! At [`crate::TelemetryLevel::Full`] every k-th sub-request (with
//! `k = round(1 / sample_rate)`, so sampling costs one atomic increment
//! and no random-number source) is stamped with a pending span. The
//! worker that finishes the request completes the span with the stage
//! timings it measures anyway, and completed spans land in a
//! [`TraceRing`]: a fixed-size most-recent ring plus a slowest-N
//! retention list, so a p99 outlier can be explained long after the
//! recent ring cycled past it.

use std::time::Instant;

/// How a traced request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Rows were decoded and answered.
    Served,
    /// The request sat in its queue past its deadline and was dropped at
    /// dequeue without a store read.
    Expired,
    /// Admission refused the request (queue full past the enqueue
    /// budget); it never reached a worker.
    Shed,
}

impl SpanOutcome {
    /// Stable lowercase name (exporter label value).
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanOutcome::Served => "served",
            SpanOutcome::Expired => "expired",
            SpanOutcome::Shed => "shed",
        }
    }
}

/// One completed trace span: the per-stage breakdown of a single sampled
/// sub-request (a multi-shard fan-out traces each shard's sub-request
/// independently).
///
/// `queue_wait_nanos` runs from the issue stamp to the moment a worker
/// dequeued the request, so it *includes* the admission wait (the
/// per-stage histograms split the two). `service_nanos` is the duration
/// of the store micro-batch the request rode in — decode plus response
/// write for the whole coalesced run, which is the latency the request
/// actually experienced, not its pro-rata share.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    /// Sample sequence number (global, monotonically increasing).
    pub seq: u64,
    /// Shard that served (or shed/expired) the sub-request.
    pub shard: usize,
    /// Rows the sub-request carried.
    pub rows: usize,
    /// Issue → dequeue, including the admission wait. For a shed
    /// request this is the time spent failing admission.
    pub queue_wait_nanos: u64,
    /// Duration of the store micro-batch that answered the request
    /// (decode + response write). `0` for shed and expired requests.
    pub service_nanos: u64,
    /// Issue → completion, end to end.
    pub total_nanos: u64,
    /// How the request ended.
    pub outcome: SpanOutcome,
}

/// A sampled request in flight: carried on the queued request, completed
/// by whichever side finishes it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingSpan {
    pub(crate) seq: u64,
}

/// Everything a worker needs to finish a sampled span once the store
/// micro-batch it rode in completes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpanSeed {
    pub(crate) seq: u64,
    pub(crate) issued_at: Instant,
    pub(crate) queue_wait_nanos: u64,
    pub(crate) rows: usize,
}

/// Fixed-size retention for completed spans: a most-recent ring plus a
/// slowest-N list (min-replace by `total_nanos`).
#[derive(Debug)]
pub(crate) struct TraceRing {
    recent: Vec<Span>,
    /// Index of the oldest entry once `recent` is full.
    head: usize,
    capacity: usize,
    slowest: Vec<Span>,
    slowest_capacity: usize,
    recorded: u64,
}

impl TraceRing {
    pub(crate) fn new(capacity: usize, slowest_capacity: usize) -> Self {
        TraceRing {
            recent: Vec::with_capacity(capacity),
            head: 0,
            capacity,
            slowest: Vec::with_capacity(slowest_capacity),
            slowest_capacity,
            recorded: 0,
        }
    }

    pub(crate) fn push(&mut self, span: Span) {
        self.recorded += 1;
        if self.capacity > 0 {
            if self.recent.len() < self.capacity {
                self.recent.push(span);
            } else {
                self.recent[self.head] = span;
                self.head = (self.head + 1) % self.capacity;
            }
        }
        if self.slowest_capacity > 0 {
            if self.slowest.len() < self.slowest_capacity {
                self.slowest.push(span);
            } else if let Some((idx, min)) = self
                .slowest
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.total_nanos)
            {
                if span.total_nanos > min.total_nanos {
                    self.slowest[idx] = span;
                }
            }
        }
    }

    /// Spans completed since construction (including ones the ring has
    /// since overwritten).
    pub(crate) fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Most-recent spans, oldest first.
    pub(crate) fn recent(&self) -> Vec<Span> {
        let mut out = Vec::with_capacity(self.recent.len());
        out.extend_from_slice(&self.recent[self.head..]);
        out.extend_from_slice(&self.recent[..self.head]);
        out
    }

    /// Slowest retained spans, slowest first.
    pub(crate) fn slowest(&self) -> Vec<Span> {
        let mut out = self.slowest.clone();
        out.sort_by_key(|s| std::cmp::Reverse(s.total_nanos));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64, total: u64) -> Span {
        Span {
            seq,
            shard: 0,
            rows: 1,
            queue_wait_nanos: total / 2,
            service_nanos: total / 2,
            total_nanos: total,
            outcome: SpanOutcome::Served,
        }
    }

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let mut ring = TraceRing::new(3, 0);
        for seq in 0..5 {
            ring.push(span(seq, 100 + seq));
        }
        assert_eq!(ring.recorded(), 5);
        let recent: Vec<u64> = ring.recent().iter().map(|s| s.seq).collect();
        assert_eq!(recent, vec![2, 3, 4], "oldest first, newest last");
        assert!(ring.slowest().is_empty());
    }

    #[test]
    fn slowest_retention_survives_ring_churn() {
        let mut ring = TraceRing::new(2, 2);
        ring.push(span(0, 9_999)); // the outlier, early
        for seq in 1..50 {
            ring.push(span(seq, 100 + seq));
        }
        let recent: Vec<u64> = ring.recent().iter().map(|s| s.seq).collect();
        assert_eq!(recent, vec![48, 49], "outlier cycled out of the ring");
        let slowest = ring.slowest();
        assert_eq!(slowest[0].seq, 0, "…but survives slowest-N retention");
        assert_eq!(slowest[0].total_nanos, 9_999);
        assert_eq!(slowest[1].total_nanos, 149, "next-slowest kept, sorted");
    }

    #[test]
    fn zero_capacities_record_counts_only() {
        let mut ring = TraceRing::new(0, 0);
        ring.push(span(1, 5));
        assert_eq!(ring.recorded(), 1);
        assert!(ring.recent().is_empty());
        assert!(ring.slowest().is_empty());
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(SpanOutcome::Served.as_str(), "served");
        assert_eq!(SpanOutcome::Expired.as_str(), "expired");
        assert_eq!(SpanOutcome::Shed.as_str(), "shed");
    }
}
