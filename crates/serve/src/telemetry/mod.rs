//! Serve-tier observability: per-stage metrics, sampled request
//! tracing, and exporters.
//!
//! The layer is dependency-free and costs what its
//! [`TelemetryLevel`](crate::TelemetryLevel) says:
//!
//! * **Off** (default) — nothing recorded; the hot path keeps its
//!   zero-allocation, no-extra-clock-read discipline.
//! * **Minimal** — the always-on per-model row counters plus
//!   control-plane counters (swaps, delta applies) are exported; still
//!   no stage timing.
//! * **Full** — per-stage latency histograms (admission wait, queue
//!   wait, batch assembly, store decode per dtype, response write) and
//!   sampled request tracing. Recording is O(1) and shard-local: the
//!   worker folds a whole batch into its shard's accumulators under one
//!   uncontended lock, and a snapshot merges per-shard state on demand.
//!
//! Entry points: [`crate::Router::metrics`] returns a
//! [`MetricsSnapshot`] renderable as Prometheus text or JSON;
//! [`StatsReporter`] periodically dumps either.

mod export;
mod registry;
mod trace;

pub use export::{MetricsSnapshot, ModelMetrics, ShardStageMetrics, SizeStats, StatsReporter};
pub use trace::{Span, SpanOutcome};

pub(crate) use registry::{dtype_idx, MetricsRegistry, SIZE_SCALE};
pub(crate) use trace::{PendingSpan, SpanSeed};
