//! The dependency-free metrics registry.
//!
//! Scoping follows the serving architecture: **per-model** counters live
//! on the router's model entries (they survive snapshot swaps), while
//! **per-shard** stage state lives here, owned by the shard it
//! describes. The record discipline is O(1) on the hot path:
//!
//! * counters are relaxed atomics;
//! * stage histograms are shard-local accumulators behind a mutex the
//!   shard's *single worker* locks once per batch (uncontended except
//!   for the brief clone a snapshot takes), merged only at snapshot
//!   time;
//! * nothing on the store lookup path takes a telemetry lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use memcom_ondevice::Dtype;
use parking_lot::{Mutex, MutexGuard};

use crate::config::{TelemetryConfig, TelemetryLevel};
use crate::histogram::LatencyHistogram;

use super::export::{ShardStageMetrics, SizeStats};
use super::trace::{PendingSpan, Span, TraceRing};

/// Exporter label values for the per-dtype decode histograms, indexed by
/// [`dtype_idx`].
pub(crate) const DTYPE_NAMES: [&str; 5] = ["f32", "f16", "int8", "int4", "int2"];

/// Dense index of a [`Dtype`] into the per-dtype decode histograms.
pub(crate) fn dtype_idx(dtype: Dtype) -> usize {
    match dtype {
        Dtype::F32 => 0,
        Dtype::F16 => 1,
        Dtype::Int8 => 2,
        Dtype::Int4 => 3,
        Dtype::Int2 => 4,
    }
}

/// Batch sizes are recorded into a [`LatencyHistogram`] scaled by this
/// factor so the geometric buckets (which start at ~50 "nanos") resolve
/// single-digit row counts; [`SizeStats`] unscales on snapshot.
pub(crate) const SIZE_SCALE: u64 = 1_000;

/// One shard's stage histograms — owned by the shard's worker, locked
/// once per batch.
#[derive(Debug, Clone, Default)]
pub(crate) struct StageSet {
    /// Issue → dequeue per request (includes the admission wait; the
    /// separate admission-wait histogram isolates that component).
    pub(crate) queue_wait: LatencyHistogram,
    /// Batch-open → flush (the phase-2 hold of the micro-batcher).
    pub(crate) batch_assembly: LatencyHistogram,
    /// Batch sizes in rows, scaled by [`SIZE_SCALE`].
    pub(crate) batch_size: LatencyHistogram,
    /// Store decode duration per micro-batch run, by storage dtype
    /// (see [`dtype_idx`]).
    pub(crate) decode: [LatencyHistogram; 5],
    /// Inference-backend execution per score request (embedding gather
    /// + NN forward), recorded on the full-model scoring path.
    pub(crate) forward: LatencyHistogram,
    /// Response write duration per run (slot fills / slab hand-back).
    pub(crate) slab_write: LatencyHistogram,
}

/// Per-shard telemetry state.
#[derive(Debug)]
pub(crate) struct ShardTelemetry {
    stages: Mutex<StageSet>,
    /// Recorded client-side around admission, so producer threads (not
    /// the worker) contend on this one — kept separate from `stages` so
    /// they never block the worker's once-per-batch lock.
    admission_wait: Mutex<LatencyHistogram>,
    decode_rows_hit: AtomicU64,
    decode_rows_miss: AtomicU64,
}

impl ShardTelemetry {
    fn new() -> Self {
        ShardTelemetry {
            stages: Mutex::new(StageSet::default()),
            admission_wait: Mutex::new(LatencyHistogram::new()),
            decode_rows_hit: AtomicU64::new(0),
            decode_rows_miss: AtomicU64::new(0),
        }
    }

    /// The worker's once-per-batch lock on the stage histograms.
    pub(crate) fn stages(&self) -> MutexGuard<'_, StageSet> {
        self.stages.lock()
    }

    pub(crate) fn record_admission_wait(&self, nanos: u64) {
        self.admission_wait.lock().record(nanos);
    }

    pub(crate) fn add_decode_rows(&self, hit: u64, miss: u64) {
        if hit > 0 {
            self.decode_rows_hit.fetch_add(hit, Ordering::Relaxed);
        }
        if miss > 0 {
            self.decode_rows_miss.fetch_add(miss, Ordering::Relaxed);
        }
    }
}

/// The router's telemetry registry: per-shard stage state, the sampling
/// sequence, and the trace ring.
#[derive(Debug)]
pub(crate) struct MetricsRegistry {
    level: TelemetryLevel,
    /// Trace every k-th sub-request; `0` disables tracing.
    sample_every: u64,
    seq: AtomicU64,
    shards: Vec<ShardTelemetry>,
    traces: Mutex<TraceRing>,
    started_at: Instant,
}

impl MetricsRegistry {
    pub(crate) fn new(config: &TelemetryConfig, n_shards: usize) -> Self {
        let sample_every = if config.level == TelemetryLevel::Full && config.sample_rate > 0.0 {
            (1.0 / config.sample_rate).round().max(1.0) as u64
        } else {
            0
        };
        MetricsRegistry {
            level: config.level,
            sample_every,
            seq: AtomicU64::new(0),
            shards: (0..n_shards).map(|_| ShardTelemetry::new()).collect(),
            traces: Mutex::new(TraceRing::new(
                config.trace_ring_capacity,
                config.slowest_capacity,
            )),
            started_at: Instant::now(),
        }
    }

    pub(crate) fn level(&self) -> TelemetryLevel {
        self.level
    }

    /// Whether stage histograms and tracing are on (`Full`).
    pub(crate) fn stages_on(&self) -> bool {
        self.level == TelemetryLevel::Full
    }

    pub(crate) fn shard(&self, idx: usize) -> &ShardTelemetry {
        &self.shards[idx]
    }

    /// Sampling decision for one sub-request: one atomic increment, a
    /// span for every k-th caller.
    pub(crate) fn sample(&self) -> Option<PendingSpan> {
        if self.sample_every == 0 {
            return None;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        seq.is_multiple_of(self.sample_every)
            .then_some(PendingSpan { seq })
    }

    /// Lands a completed span in the trace ring (sampled — rare, so the
    /// lock is cold).
    pub(crate) fn complete(&self, span: Span) {
        self.traces.lock().push(span);
    }

    pub(crate) fn uptime(&self) -> Duration {
        self.started_at.elapsed()
    }

    /// `(completed, most-recent, slowest)` spans.
    pub(crate) fn traces_snapshot(&self) -> (u64, Vec<Span>, Vec<Span>) {
        let ring = self.traces.lock();
        (ring.recorded(), ring.recent(), ring.slowest())
    }

    /// Snapshot of every shard's stage state (clones the accumulators
    /// under their locks, one shard at a time).
    pub(crate) fn stage_metrics(&self) -> Vec<ShardStageMetrics> {
        self.shards
            .iter()
            .enumerate()
            .map(|(idx, shard)| {
                let stages = shard.stages.lock().clone();
                let admission_wait = shard.admission_wait.lock().clone();
                ShardStageMetrics {
                    shard: idx,
                    decode_rows_hit: shard.decode_rows_hit.load(Ordering::Relaxed),
                    decode_rows_miss: shard.decode_rows_miss.load(Ordering::Relaxed),
                    admission_wait,
                    queue_wait: stages.queue_wait,
                    batch_assembly: stages.batch_assembly,
                    batch_size: SizeStats::from_scaled(&stages.batch_size),
                    forward: stages.forward,
                    slab_write: stages.slab_write,
                    decode: DTYPE_NAMES.iter().copied().zip(stages.decode).collect(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_every_kth() {
        let registry = MetricsRegistry::new(&TelemetryConfig::full(0.25), 1);
        let sampled: Vec<bool> = (0..8).map(|_| registry.sample().is_some()).collect();
        assert_eq!(
            sampled,
            vec![true, false, false, false, true, false, false, false]
        );
        // Off and zero-rate never sample.
        assert!(MetricsRegistry::new(&TelemetryConfig::off(), 1)
            .sample()
            .is_none());
        assert!(MetricsRegistry::new(&TelemetryConfig::full(0.0), 1)
            .sample()
            .is_none());
    }

    #[test]
    fn levels_gate_what_records() {
        let off = MetricsRegistry::new(&TelemetryConfig::off(), 2);
        assert!(!off.stages_on());
        assert_eq!(off.level(), TelemetryLevel::Off);
        let minimal = MetricsRegistry::new(&TelemetryConfig::minimal(), 2);
        assert!(!minimal.stages_on());
        assert_eq!(minimal.level(), TelemetryLevel::Minimal);
        let full = MetricsRegistry::new(&TelemetryConfig::full(1.0), 2);
        assert!(full.stages_on());
        assert_eq!(full.level(), TelemetryLevel::Full);
        assert_eq!(full.stage_metrics().len(), 2);
    }

    #[test]
    fn dtype_indices_align_with_names() {
        for (dtype, name) in [
            (Dtype::F32, "f32"),
            (Dtype::F16, "f16"),
            (Dtype::Int8, "int8"),
            (Dtype::Int4, "int4"),
            (Dtype::Int2, "int2"),
        ] {
            assert_eq!(DTYPE_NAMES[dtype_idx(dtype)], name);
        }
    }

    #[test]
    fn shard_state_snapshots_cleanly() {
        let registry = MetricsRegistry::new(&TelemetryConfig::full(1.0), 1);
        let shard = registry.shard(0);
        shard.record_admission_wait(1_000);
        shard.add_decode_rows(3, 2);
        {
            let mut stages = shard.stages();
            stages.queue_wait.record(5_000);
            stages.batch_size.record(4 * SIZE_SCALE);
        }
        let snap = &registry.stage_metrics()[0];
        assert_eq!(snap.admission_wait.count(), 1);
        assert_eq!(snap.queue_wait.count(), 1);
        assert_eq!((snap.decode_rows_hit, snap.decode_rows_miss), (3, 2));
        assert_eq!(snap.batch_size.count, 1);
        assert_eq!(snap.batch_size.max, 4);
        assert_eq!(snap.decode.len(), 5);
    }
}
