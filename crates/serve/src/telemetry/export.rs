//! Exporters: point-in-time snapshots of the metrics registry, rendered
//! as Prometheus text exposition or JSON, plus a periodic
//! [`StatsReporter`].
//!
//! A [`MetricsSnapshot`] is plain owned data — taking one clones the
//! shard-local accumulators under their (uncontended) locks and reads
//! the counters once, so rendering never blocks the serving path and a
//! snapshot stays internally consistent while being formatted.

use std::fmt::Write as _;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::config::TelemetryLevel;
use crate::histogram::LatencyHistogram;
use crate::store::ShardCacheStats;

use super::registry::SIZE_SCALE;
use super::trace::Span;

/// Stable lowercase name of a [`TelemetryLevel`] (exporter field value).
fn level_name(level: TelemetryLevel) -> &'static str {
    match level {
        TelemetryLevel::Off => "off",
        TelemetryLevel::Minimal => "minimal",
        TelemetryLevel::Full => "full",
    }
}

/// Row-count distribution summarized out of the scaled batch-size
/// histogram (see `SIZE_SCALE` in the registry).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SizeStats {
    /// Batches observed.
    pub count: u64,
    /// Total rows across all observed batches.
    pub sum: u64,
    /// Mean rows per batch.
    pub mean: f64,
    /// Median rows per batch.
    pub p50: u64,
    /// 99th-percentile rows per batch.
    pub p99: u64,
    /// Largest batch observed, in rows.
    pub max: u64,
}

impl SizeStats {
    /// Unscales a histogram whose observations were multiplied by
    /// [`SIZE_SCALE`] at record time.
    pub(crate) fn from_scaled(h: &LatencyHistogram) -> Self {
        if h.count() == 0 {
            return SizeStats::default();
        }
        let unscale = |v: u64| (v + SIZE_SCALE / 2) / SIZE_SCALE;
        SizeStats {
            count: h.count(),
            sum: (h.sum_nanos() / SIZE_SCALE as u128) as u64,
            mean: h.mean_nanos() / SIZE_SCALE as f64,
            p50: unscale(h.p50()),
            p99: unscale(h.p99()),
            max: unscale(h.max_nanos()),
        }
    }
}

/// Always-on counters for one registered model (rows plus control-plane
/// events), with its current snapshot's per-shard cache state.
///
/// The row counters are updated with relaxed atomics from many threads,
/// so a snapshot is *eventually exact*, not linearizable — see the
/// consistency contract on [`crate::ServeStats`]. Within one snapshot,
/// `issued >= requests + shed + expired` always holds.
#[derive(Debug, Clone)]
pub struct ModelMetrics {
    /// Registered model name.
    pub name: String,
    /// Rows that entered this model's serving path (counted before
    /// admission).
    pub issued: u64,
    /// Rows served through batches.
    pub requests: u64,
    /// Rows shed at admission.
    pub shed: u64,
    /// Rows dropped at dequeue past their deadline.
    pub expired: u64,
    /// Full snapshot swaps ([`crate::Router::swap`]).
    pub snapshot_swaps: u64,
    /// Incremental refreshes ([`crate::Router::apply_delta`]).
    pub delta_applies: u64,
    /// Bytes physically copied by copy-on-write page updates across all
    /// delta applies.
    pub delta_cow_bytes: u64,
    /// Pages touched (copied before first write) across all delta
    /// applies.
    pub delta_pages_touched: u64,
    /// Hot-row cache entries invalidated by delta applies (rows whose
    /// ids changed and were dropped from the carried-over LRUs).
    pub lru_invalidations: u64,
    /// Per-shard hot-row cache state of the *current* store snapshot
    /// (restarts after a swap; each entry is one consistent pass over
    /// that shard's cache).
    pub cache_shards: Vec<ShardCacheStats>,
}

/// One shard's stage-latency breakdown (populated at
/// [`TelemetryLevel::Full`]; all-empty otherwise).
#[derive(Debug, Clone)]
pub struct ShardStageMetrics {
    /// Shard index.
    pub shard: usize,
    /// Time producers spent inside admission (blocking for queue space
    /// or shedding), per sub-request.
    pub admission_wait: LatencyHistogram,
    /// Issue → worker dequeue per request. Includes the admission wait;
    /// subtract the admission-wait histogram to isolate pure queueing.
    pub queue_wait: LatencyHistogram,
    /// Batch-open → flush, per flushed batch.
    pub batch_assembly: LatencyHistogram,
    /// Rows per flushed batch.
    pub batch_size: SizeStats,
    /// Store decode duration per micro-batch run, by storage dtype.
    pub decode: Vec<(&'static str, LatencyHistogram)>,
    /// Inference-backend execution per score request (embedding gather
    /// plus NN forward) — populated only for models served through a
    /// scoring [`crate::InferBackend`].
    pub forward: LatencyHistogram,
    /// Response write duration per run (slot fills / slab hand-back).
    pub slab_write: LatencyHistogram,
    /// Rows answered from the hot-row cache.
    pub decode_rows_hit: u64,
    /// Rows decoded from the backing store.
    pub decode_rows_miss: u64,
}

/// A point-in-time snapshot of everything the telemetry layer knows,
/// with Prometheus and JSON renderers.
///
/// Taken via [`crate::Router::metrics`] (or
/// [`crate::EmbedServer::metrics`]):
///
/// ```
/// use memcom_core::FullEmbedding;
/// use memcom_serve::{Router, ServeConfig, TelemetryConfig, DEFAULT_MODEL};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let emb = FullEmbedding::new(1_000, 16, &mut rng)?;
/// let config = ServeConfig {
///     telemetry: TelemetryConfig::full(1.0),
///     ..ServeConfig::with_shards(2)
/// };
/// let router = Router::start(config)?;
/// router.register(DEFAULT_MODEL, &emb)?;
/// router.handle(DEFAULT_MODEL)?.get(42)?;
///
/// let snapshot = router.metrics();
/// assert_eq!(snapshot.models[0].issued, 1);
/// assert_eq!(snapshot.models[0].requests, 1);
/// let text = snapshot.to_prometheus();
/// assert!(text.contains("memcom_requests_total{model=\"default\"} 1\n"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Telemetry level the router runs at.
    pub level: TelemetryLevel,
    /// Time since the router started.
    pub uptime: Duration,
    /// Sampled spans completed since start (including ones the trace
    /// ring has since overwritten).
    pub traced_spans: u64,
    /// Per-model counters, sorted by model name.
    pub models: Vec<ModelMetrics>,
    /// Per-shard stage breakdowns (all-empty below
    /// [`TelemetryLevel::Full`]).
    pub stages: Vec<ShardStageMetrics>,
    /// Most recently completed sampled spans, oldest first.
    pub recent_traces: Vec<Span>,
    /// Slowest sampled spans retained since start, slowest first.
    pub slowest_traces: Vec<Span>,
}

/// Escapes a Prometheus label value (`\`, `"`, and newlines).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes a JSON string value.
fn escape_json(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            _ => out.push(c),
        }
    }
    out
}

/// `# HELP` / `# TYPE` preamble for one metric family.
fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders one histogram as Prometheus `_bucket`/`_sum`/`_count` samples
/// under `labels` (no trailing comma). Zero-count buckets are elided —
/// a valid exposition, since `le` boundaries are cumulative — and the
/// open-above top bucket folds into `+Inf`.
fn render_hist(out: &mut String, name: &str, labels: &str, h: &LatencyHistogram) {
    let buckets: Vec<(u64, u64)> = h.iter_buckets().collect();
    let mut cumulative = 0u64;
    for (idx, &(upper, count)) in buckets.iter().enumerate() {
        cumulative += count;
        if count == 0 || idx == buckets.len() - 1 {
            continue;
        }
        let _ = writeln!(out, "{name}_bucket{{{labels},le=\"{upper}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{{labels},le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{name}_sum{{{labels}}} {}", h.sum_nanos());
    let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count());
}

/// Summary stats of one latency histogram for the JSON rendering.
fn json_hist(h: &LatencyHistogram) -> String {
    format!(
        "{{\"count\":{},\"mean_nanos\":{:.1},\"p50_nanos\":{},\"p99_nanos\":{},\"max_nanos\":{}}}",
        h.count(),
        h.mean_nanos(),
        h.p50(),
        h.p99(),
        h.max_nanos()
    )
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP`/`# TYPE` preambles, `_total`-suffixed
    /// counters, label values escaped per the format rules.
    ///
    /// Stage histograms and traces appear only at
    /// [`TelemetryLevel::Full`]; the always-on model counters render at
    /// every level.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);

        family(
            &mut out,
            "memcom_uptime_seconds",
            "gauge",
            "Seconds since the router started.",
        );
        let _ = writeln!(
            out,
            "memcom_uptime_seconds {:.3}",
            self.uptime.as_secs_f64()
        );

        family(
            &mut out,
            "memcom_traced_spans_total",
            "counter",
            "Sampled request spans completed.",
        );
        let _ = writeln!(out, "memcom_traced_spans_total {}", self.traced_spans);

        // Per-model row and control-plane counters: one family at a
        // time, every model as a sample.
        type ModelValue = fn(&ModelMetrics) -> u64;
        let model_counters: [(&str, &str, ModelValue); 9] = [
            (
                "memcom_issued_rows_total",
                "Rows entering the serving path, before admission.",
                |m| m.issued,
            ),
            (
                "memcom_requests_total",
                "Rows served through batches.",
                |m| m.requests,
            ),
            ("memcom_shed_rows_total", "Rows shed at admission.", |m| {
                m.shed
            }),
            (
                "memcom_expired_rows_total",
                "Rows dropped at dequeue past their deadline.",
                |m| m.expired,
            ),
            (
                "memcom_snapshot_swaps_total",
                "Full store snapshot swaps.",
                |m| m.snapshot_swaps,
            ),
            (
                "memcom_delta_applies_total",
                "Incremental delta refreshes applied.",
                |m| m.delta_applies,
            ),
            (
                "memcom_delta_cow_bytes_total",
                "Bytes copied by copy-on-write page updates during delta applies.",
                |m| m.delta_cow_bytes,
            ),
            (
                "memcom_delta_pages_touched_total",
                "Pages copied before first write during delta applies.",
                |m| m.delta_pages_touched,
            ),
            (
                "memcom_cache_invalidations_total",
                "Hot-row cache entries invalidated by delta applies.",
                |m| m.lru_invalidations,
            ),
        ];
        for (name, help, value) in model_counters {
            family(&mut out, name, "counter", help);
            for model in &self.models {
                let _ = writeln!(
                    out,
                    "{name}{{model=\"{}\"}} {}",
                    escape_label(&model.name),
                    value(model)
                );
            }
        }

        // Per-model, per-shard hot-row cache state.
        type ShardValue = fn(&ShardCacheStats) -> u64;
        let cache_families: [(&str, &str, &str, ShardValue); 5] = [
            (
                "memcom_cache_hits_total",
                "counter",
                "Hot-row cache hits (current snapshot).",
                |s| s.hits,
            ),
            (
                "memcom_cache_misses_total",
                "counter",
                "Hot-row cache misses (current snapshot).",
                |s| s.misses,
            ),
            (
                "memcom_cache_evictions_total",
                "counter",
                "Hot-row cache evictions by capacity pressure (current snapshot).",
                |s| s.evictions,
            ),
            (
                "memcom_cache_resident_bytes",
                "gauge",
                "Bytes of row data resident in the hot-row cache.",
                |s| s.resident_bytes as u64,
            ),
            (
                "memcom_cache_rows",
                "gauge",
                "Rows resident in the hot-row cache.",
                |s| s.cached_rows as u64,
            ),
        ];
        for (name, kind, help, value) in cache_families {
            family(&mut out, name, kind, help);
            for model in &self.models {
                for (shard, stats) in model.cache_shards.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "{name}{{model=\"{}\",shard=\"{shard}\"}} {}",
                        escape_label(&model.name),
                        value(stats)
                    );
                }
            }
        }

        if self.level == TelemetryLevel::Full {
            family(
                &mut out,
                "memcom_decode_rows_total",
                "counter",
                "Rows decoded per shard by source (hot-row cache vs store read).",
            );
            for stage in &self.stages {
                let shard = stage.shard;
                let _ = writeln!(
                    out,
                    "memcom_decode_rows_total{{shard=\"{shard}\",source=\"cache\"}} {}",
                    stage.decode_rows_hit
                );
                let _ = writeln!(
                    out,
                    "memcom_decode_rows_total{{shard=\"{shard}\",source=\"store\"}} {}",
                    stage.decode_rows_miss
                );
            }

            family(
                &mut out,
                "memcom_stage_latency_nanos",
                "histogram",
                "Per-stage request lifecycle latency in nanoseconds.",
            );
            for stage in &self.stages {
                let shard = stage.shard;
                for (label, hist) in [
                    ("admission_wait", &stage.admission_wait),
                    ("queue_wait", &stage.queue_wait),
                    ("batch_assembly", &stage.batch_assembly),
                    ("forward", &stage.forward),
                    ("slab_write", &stage.slab_write),
                ] {
                    let labels = format!("stage=\"{label}\",shard=\"{shard}\"");
                    render_hist(&mut out, "memcom_stage_latency_nanos", &labels, hist);
                }
                for (dtype, hist) in &stage.decode {
                    if hist.count() == 0 {
                        continue;
                    }
                    let labels = format!("stage=\"decode\",shard=\"{shard}\",dtype=\"{dtype}\"");
                    render_hist(&mut out, "memcom_stage_latency_nanos", &labels, hist);
                }
            }

            family(
                &mut out,
                "memcom_batch_size",
                "summary",
                "Rows per flushed batch.",
            );
            for stage in &self.stages {
                let (shard, size) = (stage.shard, &stage.batch_size);
                for (q, v) in [("0.5", size.p50), ("0.99", size.p99), ("1", size.max)] {
                    let _ = writeln!(
                        out,
                        "memcom_batch_size{{shard=\"{shard}\",quantile=\"{q}\"}} {v}"
                    );
                }
                let _ = writeln!(
                    out,
                    "memcom_batch_size_sum{{shard=\"{shard}\"}} {}",
                    size.sum
                );
                let _ = writeln!(
                    out,
                    "memcom_batch_size_count{{shard=\"{shard}\"}} {}",
                    size.count
                );
            }
        }

        out
    }

    /// Renders the snapshot as a single JSON object (histograms as
    /// summary stats, traces as span arrays) — the machine-readable
    /// counterpart of [`to_prometheus`](Self::to_prometheus).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push('{');
        let _ = write!(
            out,
            "\"level\":\"{}\",\"uptime_seconds\":{:.3},\"traced_spans\":{}",
            level_name(self.level),
            self.uptime.as_secs_f64(),
            self.traced_spans
        );

        out.push_str(",\"models\":[");
        for (i, m) in self.models.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"issued\":{},\"requests\":{},\"shed\":{},\"expired\":{},\
                 \"snapshot_swaps\":{},\"delta_applies\":{},\"delta_cow_bytes\":{},\
                 \"delta_pages_touched\":{},\"lru_invalidations\":{},\"cache_shards\":[",
                escape_json(&m.name),
                m.issued,
                m.requests,
                m.shed,
                m.expired,
                m.snapshot_swaps,
                m.delta_applies,
                m.delta_cow_bytes,
                m.delta_pages_touched,
                m.lru_invalidations
            );
            for (j, s) in m.cache_shards.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"resident_bytes\":{},\
                     \"cached_rows\":{}}}",
                    s.hits, s.misses, s.evictions, s.resident_bytes, s.cached_rows
                );
            }
            out.push_str("]}");
        }
        out.push(']');

        out.push_str(",\"stages\":[");
        for (i, stage) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"shard\":{},\"decode_rows\":{{\"cache\":{},\"store\":{}}},\
                 \"admission_wait\":{},\"queue_wait\":{},\"batch_assembly\":{},\
                 \"forward\":{},\"slab_write\":{}",
                stage.shard,
                stage.decode_rows_hit,
                stage.decode_rows_miss,
                json_hist(&stage.admission_wait),
                json_hist(&stage.queue_wait),
                json_hist(&stage.batch_assembly),
                json_hist(&stage.forward),
                json_hist(&stage.slab_write)
            );
            let size = &stage.batch_size;
            let _ = write!(
                out,
                ",\"batch_size\":{{\"count\":{},\"sum\":{},\"mean\":{:.2},\"p50\":{},\
                 \"p99\":{},\"max\":{}}}",
                size.count, size.sum, size.mean, size.p50, size.p99, size.max
            );
            out.push_str(",\"decode\":{");
            let mut first = true;
            for (dtype, hist) in &stage.decode {
                if hist.count() == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\"{dtype}\":{}", json_hist(hist));
            }
            out.push_str("}}");
        }
        out.push(']');

        for (key, spans) in [
            ("recent_traces", &self.recent_traces),
            ("slowest_traces", &self.slowest_traces),
        ] {
            let _ = write!(out, ",\"{key}\":[");
            for (i, span) in spans.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"seq\":{},\"shard\":{},\"rows\":{},\"queue_wait_nanos\":{},\
                     \"service_nanos\":{},\"total_nanos\":{},\"outcome\":\"{}\"}}",
                    span.seq,
                    span.shard,
                    span.rows,
                    span.queue_wait_nanos,
                    span.service_nanos,
                    span.total_nanos,
                    span.outcome.as_str()
                );
            }
            out.push(']');
        }

        out.push('}');
        out
    }
}

/// A background thread that invokes a report callback at a fixed
/// interval — periodic stats dumps without wiring a scrape endpoint.
///
/// The callback typically captures a router and prints or ships
/// [`crate::Router::metrics`] output. The reporter stops (and joins its
/// thread) on [`stop`](Self::stop) or drop.
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
/// use std::time::Duration;
/// use memcom_serve::StatsReporter;
///
/// let ticks = Arc::new(AtomicUsize::new(0));
/// let seen = Arc::clone(&ticks);
/// let reporter = StatsReporter::spawn(Duration::from_millis(5), move || {
///     seen.fetch_add(1, Ordering::Relaxed);
/// });
/// std::thread::sleep(Duration::from_millis(50));
/// reporter.stop();
/// assert!(ticks.load(Ordering::Relaxed) >= 1);
/// ```
#[derive(Debug)]
pub struct StatsReporter {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl StatsReporter {
    /// Spawns the reporter thread; `report` runs every `interval` until
    /// the reporter is stopped or dropped.
    pub fn spawn(interval: Duration, mut report: impl FnMut() + Send + 'static) -> Self {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("memcom-stats".to_string())
            .spawn(move || {
                let (lock, condvar) = &*flag;
                let mut stopped = lock.lock();
                while !*stopped {
                    let timed_out = condvar.wait_for(&mut stopped, interval).timed_out();
                    if *stopped {
                        break;
                    }
                    if timed_out {
                        // Report outside the lock so `stop()` never
                        // waits on a slow callback to acquire it.
                        drop(stopped);
                        report();
                        stopped = lock.lock();
                    }
                }
            })
            .expect("spawn stats reporter");
        StatsReporter {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the reporter and joins its thread (also happens on drop).
    pub fn stop(self) {
        // Drop runs the shutdown.
    }

    fn shutdown(&mut self) {
        let (lock, condvar) = &*self.stop;
        *lock.lock() = true;
        condvar.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for StatsReporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::super::trace::SpanOutcome;
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut queue_wait = LatencyHistogram::new();
        queue_wait.record(10_000);
        queue_wait.record(20_000);
        let mut decode_int8 = LatencyHistogram::new();
        decode_int8.record(5_000);
        let mut batch_size = LatencyHistogram::new();
        batch_size.record(4 * SIZE_SCALE);
        batch_size.record(8 * SIZE_SCALE);
        MetricsSnapshot {
            level: TelemetryLevel::Full,
            uptime: Duration::from_millis(1_500),
            traced_spans: 2,
            models: vec![ModelMetrics {
                name: "quote\"back\\slash\nline".to_string(),
                issued: 12,
                requests: 9,
                shed: 2,
                expired: 1,
                snapshot_swaps: 1,
                delta_applies: 3,
                delta_cow_bytes: 4096,
                delta_pages_touched: 2,
                lru_invalidations: 5,
                cache_shards: vec![ShardCacheStats {
                    hits: 7,
                    misses: 3,
                    evictions: 1,
                    resident_bytes: 256,
                    cached_rows: 4,
                }],
            }],
            stages: vec![ShardStageMetrics {
                shard: 0,
                admission_wait: LatencyHistogram::new(),
                queue_wait,
                batch_assembly: LatencyHistogram::new(),
                batch_size: SizeStats::from_scaled(&batch_size),
                decode: vec![("f32", LatencyHistogram::new()), ("int8", decode_int8)],
                forward: LatencyHistogram::new(),
                slab_write: LatencyHistogram::new(),
                decode_rows_hit: 7,
                decode_rows_miss: 3,
            }],
            recent_traces: vec![Span {
                seq: 4,
                shard: 0,
                rows: 2,
                queue_wait_nanos: 1_000,
                service_nanos: 2_000,
                total_nanos: 3_000,
                outcome: SpanOutcome::Served,
            }],
            slowest_traces: vec![],
        }
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = sample_snapshot().to_prometheus();
        assert!(text.contains("# TYPE memcom_requests_total counter\n"));
        // Label values escape backslash, quote, and newline.
        let escaped = "quote\\\"back\\\\slash\\nline";
        assert!(text.contains(&format!("memcom_requests_total{{model=\"{escaped}\"}} 9\n")));
        assert!(text.contains(&format!(
            "memcom_cache_hits_total{{model=\"{escaped}\",shard=\"0\"}} 7\n"
        )));
        assert!(text.contains("memcom_decode_rows_total{shard=\"0\",source=\"cache\"} 7\n"));
        // Histogram: +Inf carries the total count, _count/_sum agree.
        assert!(text.contains(
            "memcom_stage_latency_nanos_bucket{stage=\"queue_wait\",shard=\"0\",le=\"+Inf\"} 2\n"
        ));
        assert!(text
            .contains("memcom_stage_latency_nanos_sum{stage=\"queue_wait\",shard=\"0\"} 30000\n"));
        // Empty dtype histograms are elided, recorded ones render.
        assert!(!text.contains("dtype=\"f32\""));
        assert!(text.contains("dtype=\"int8\""));
        // Batch-size summary is unscaled back to rows.
        assert!(text.contains("memcom_batch_size{shard=\"0\",quantile=\"1\"} 8\n"));
        assert!(text.contains("memcom_batch_size_sum{shard=\"0\"} 12\n"));
    }

    #[test]
    fn minimal_level_renders_counters_only() {
        let mut snapshot = sample_snapshot();
        snapshot.level = TelemetryLevel::Minimal;
        let text = snapshot.to_prometheus();
        assert!(text.contains("memcom_requests_total"));
        assert!(text.contains("memcom_cache_hits_total"));
        assert!(!text.contains("memcom_stage_latency_nanos"));
        assert!(!text.contains("memcom_batch_size"));
    }

    #[test]
    fn json_rendering_escapes_and_nests() {
        let json = sample_snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"name\":\"quote\\\"back\\\\slash\\nline\""));
        assert!(json.contains("\"issued\":12"));
        assert!(json.contains("\"decode_rows\":{\"cache\":7,\"store\":3}"));
        assert!(json.contains("\"outcome\":\"served\""));
        // Only recorded dtypes appear.
        assert!(json.contains("\"int8\":{\"count\":1"));
        assert!(!json.contains("\"f32\""));
    }

    #[test]
    fn size_stats_unscale() {
        let mut h = LatencyHistogram::new();
        for rows in [2u64, 4, 8, 16] {
            h.record(rows * SIZE_SCALE);
        }
        let stats = SizeStats::from_scaled(&h);
        assert_eq!(stats.count, 4);
        assert_eq!(stats.sum, 30);
        assert_eq!(stats.max, 16);
        assert!(stats.p50 >= 4 && stats.p50 <= 5, "p50={}", stats.p50);
        assert!((stats.mean - 7.5).abs() < 0.01);
        assert_eq!(
            SizeStats::from_scaled(&LatencyHistogram::new()),
            SizeStats::default()
        );
    }

    #[test]
    fn reporter_ticks_and_stops() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let ticks = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&ticks);
        let reporter = StatsReporter::spawn(Duration::from_millis(2), move || {
            seen.fetch_add(1, Ordering::Relaxed);
        });
        while ticks.load(Ordering::Relaxed) < 3 {
            std::thread::yield_now();
        }
        reporter.stop();
        let after_stop = ticks.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(
            ticks.load(Ordering::Relaxed),
            after_stop,
            "no ticks after stop"
        );
    }
}
