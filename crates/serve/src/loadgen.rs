//! Zipf-driven load generation.
//!
//! Replays the paper's traffic assumption — power-law id popularity over
//! a frequency-sorted vocabulary (§4, §5.1) — against a running server,
//! in either of the two canonical load-testing disciplines:
//!
//! * **Closed loop** — each client issues its next request as soon as
//!   the previous one completes. Measures the system's saturated
//!   throughput; latency excludes queueing you didn't create.
//! * **Open loop** — requests fire on a fixed schedule regardless of
//!   completion, and latency is measured from the *scheduled* send time,
//!   so queueing delay under overload is charged to the system
//!   (avoiding coordinated omission).
//!
//! Overload rejections interact with the discipline: under
//! [`crate::AdmissionPolicy::Shed`], [`ServeError::Overloaded`] and
//! [`ServeError::DeadlineExceeded`] outcomes don't abort a run — they
//! are tallied as `shed`/`expired` in the report, so a saturating
//! open-loop run measures goodput, shed rate, and the (bounded) latency
//! of completed requests. Under [`crate::AdmissionPolicy::Block`] the
//! same traffic blocks producers on full queues, which silently
//! serializes the "open" arrival process on backpressure — exactly the
//! coordinated-omission failure the shed policy exists to avoid; the
//! report's schedule-based latencies make that collapse visible.
//!
//! Two entry points: [`run_load`] drives one model through a
//! [`ServeHandle`], and [`run_mixed_load`] drives several models of a
//! [`Router`] at once, each request sampling its target model from a
//! per-model weight vector — the multi-model analogue of production
//! traffic where per-country or A/B table variants share one serving
//! tier. Both report per-model throughput and latency in
//! [`LoadReport::per_model`].

use std::time::{Duration, Instant};

use memcom_data::Zipf;
use memcom_ondevice::Dtype;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::batch::EmbedBatch;
use crate::histogram::LatencyHistogram;
use crate::router::{Router, RouterHandle};
use crate::server::ServeHandle;
use crate::store::ShardedStore;
use crate::{Result, ServeError};

/// Arrival discipline for the generated load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Issue-on-completion (saturation throughput).
    Closed,
    /// Fixed aggregate arrival rate in requests/second.
    Open {
        /// Target aggregate arrival rate across all clients.
        target_qps: f64,
    },
}

/// Load-generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadGenConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Ids embedded per request (`1` = point lookups; the paper's
    /// session inputs are 128-id requests that fan out across shards).
    pub ids_per_request: usize,
    /// Zipf exponent of the id popularity distribution.
    pub zipf_exponent: f64,
    /// Arrival discipline.
    pub mode: LoadMode,
    /// Base RNG seed (client `i` uses `seed + i`).
    pub seed: u64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            clients: 4,
            requests_per_client: 1_000,
            ids_per_request: 1,
            zipf_exponent: 1.1,
            mode: LoadMode::Closed,
            seed: 42,
        }
    }
}

/// One model's share of a mixed load run (see [`run_mixed_load`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelMix {
    /// Registered model name on the router.
    pub model: String,
    /// Relative traffic weight (any positive scale; normalized
    /// internally).
    pub weight: f64,
}

impl ModelMix {
    /// Convenience constructor.
    pub fn new(model: impl Into<String>, weight: f64) -> Self {
        ModelMix {
            model: model.into(),
            weight,
        }
    }
}

/// Per-model slice of a load run.
#[derive(Debug, Clone)]
pub struct ModelLoadReport {
    /// The model name.
    pub model: String,
    /// Requests routed to this model that *completed* (answered with
    /// rows).
    pub requests: u64,
    /// Requests shed at admission ([`ServeError::Overloaded`]) — queue
    /// full past the enqueue budget. Always `0` under
    /// [`crate::AdmissionPolicy::Block`].
    pub shed: u64,
    /// Requests accepted but expired in queue
    /// ([`ServeError::DeadlineExceeded`]).
    pub expired: u64,
    /// Wall-clock span of the whole run (shared across models).
    pub elapsed: Duration,
    /// This model's per-request latency distribution (p50/p95/p99 in
    /// nanoseconds via [`LatencyHistogram`]).
    pub histogram: LatencyHistogram,
    /// Storage dtype of the model's store snapshot at the end of the run.
    pub dtype: Dtype,
    /// Total bytes held by the model's shard stores (on-"disk" size).
    pub store_bytes: usize,
    /// Bytes of store pages resident after the run (the runtime memory
    /// the traffic actually touched).
    pub resident_bytes: usize,
    /// Certified worst-case absolute dequantization error of any row the
    /// model served ([`ShardedStore::error_bound`]; `0.0` for fp32).
    pub dequant_error_bound: f32,
    /// Mean backoff the server *suggested* across this model's shed
    /// requests (the [`ServeError::Overloaded`] `retry_after` hint —
    /// queue depth ÷ calibrated shard capacity at rejection time).
    /// Closed-loop clients honor it by sleeping before their next
    /// request; open-loop clients record it but keep their arrival
    /// schedule. Zero when nothing was shed.
    pub mean_backoff: Duration,
}

impl ModelLoadReport {
    /// *Completed* requests per second for this model (the goodput).
    pub fn qps(&self) -> f64 {
        per_second(self.requests, self.elapsed)
    }

    /// Synonym for [`qps`](Self::qps), named for overload tables where
    /// the completed rate must be read against
    /// [`offered_qps`](Self::offered_qps).
    pub fn goodput(&self) -> f64 {
        self.qps()
    }

    /// Requests issued to this model: completed + shed + expired.
    pub fn offered(&self) -> u64 {
        self.requests + self.shed + self.expired
    }

    /// Issued requests per second (the offered load this model saw).
    pub fn offered_qps(&self) -> f64 {
        per_second(self.offered(), self.elapsed)
    }

    /// Fraction of issued requests that were shed or expired instead of
    /// answered (`0.0` when nothing was issued).
    pub fn shed_rate(&self) -> f64 {
        shed_rate(self.requests, self.shed, self.expired)
    }

    fn snapshot_fields(store: &ShardedStore) -> (Dtype, usize, usize, f32) {
        (
            store.dtype(),
            store.stored_bytes(),
            store.run_stats().resident_model_bytes,
            store.error_bound(),
        )
    }
}

fn per_second(count: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs == 0.0 {
        0.0
    } else {
        count as f64 / secs
    }
}

fn shed_rate(completed: u64, shed: u64, expired: u64) -> f64 {
    let offered = completed + shed + expired;
    if offered == 0 {
        0.0
    } else {
        (shed + expired) as f64 / offered as f64
    }
}

/// What a load run observed.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Completed requests (answered with rows).
    pub requests: u64,
    /// Requests shed at admission across all models
    /// ([`ServeError::Overloaded`]).
    pub shed: u64,
    /// Requests that expired in queue across all models
    /// ([`ServeError::DeadlineExceeded`]).
    pub expired: u64,
    /// Ids embedded per request.
    pub ids_per_request: usize,
    /// Wall-clock span of the run.
    pub elapsed: Duration,
    /// Per-request latency distribution across all models.
    pub histogram: LatencyHistogram,
    /// Per-model breakdown (one entry per mixed model; a single entry
    /// for [`run_load`]).
    pub per_model: Vec<ModelLoadReport>,
    /// Order-independent digest of the issued traffic (which model each
    /// request targeted and which ids it asked for). Clients accumulate
    /// per-request hashes with wrapping adds, so thread scheduling cannot
    /// perturb it: the same config and seed must reproduce the same
    /// checksum, making loadgen regressions (Zipf sampling, weighted
    /// model picks, per-client seeding) detectable as a value change.
    pub traffic_checksum: u64,
}

impl LoadReport {
    /// *Completed* requests per second (the goodput).
    pub fn qps(&self) -> f64 {
        per_second(self.requests, self.elapsed)
    }

    /// Synonym for [`qps`](Self::qps), for overload tables read against
    /// [`offered_qps`](Self::offered_qps).
    pub fn goodput(&self) -> f64 {
        self.qps()
    }

    /// Requests issued: completed + shed + expired.
    pub fn offered(&self) -> u64 {
        self.requests + self.shed + self.expired
    }

    /// Issued requests per second (the offered load).
    pub fn offered_qps(&self) -> f64 {
        per_second(self.offered(), self.elapsed)
    }

    /// Fraction of issued requests shed or expired instead of answered.
    pub fn shed_rate(&self) -> f64 {
        shed_rate(self.requests, self.shed, self.expired)
    }

    /// Achieved single-id lookups per second (completed requests).
    pub fn lookups_per_sec(&self) -> f64 {
        self.qps() * self.ids_per_request as f64
    }
}

fn check_common(config: &LoadGenConfig) -> Result<()> {
    if config.clients == 0 || config.requests_per_client == 0 || config.ids_per_request == 0 {
        return Err(ServeError::BadConfig {
            context: "load generation needs >= 1 client, request, and id per request".into(),
        });
    }
    Ok(())
}

fn arrival_tick(mode: LoadMode, clients: usize) -> Result<Duration> {
    match mode {
        LoadMode::Closed => Ok(Duration::ZERO),
        LoadMode::Open { target_qps } => {
            if !target_qps.is_finite() || target_qps <= 0.0 {
                return Err(ServeError::BadConfig {
                    context: format!("open-loop target_qps must be positive, got {target_qps}"),
                });
            }
            let _ = clients; // clients interleave on the aggregate schedule
            Ok(Duration::from_secs_f64(1.0 / target_qps))
        }
    }
}

/// When request `k` of `client_idx` starts, under the configured
/// discipline. Open loop sleeps until the scheduled arrival and measures
/// from it, charging queueing delay to the server, not the sleeping
/// client.
fn request_start(
    mode: LoadMode,
    tick: Duration,
    started: Instant,
    client_idx: usize,
    clients: usize,
    k: usize,
) -> Instant {
    match mode {
        LoadMode::Closed => Instant::now(),
        LoadMode::Open { .. } => {
            // u32 Duration multiplication would wrap on long soaks;
            // scale in f64 seconds instead.
            let index = (client_idx + k * clients) as f64;
            let scheduled = started + Duration::from_secs_f64(tick.as_secs_f64() * index);
            let now = Instant::now();
            if scheduled > now {
                std::thread::sleep(scheduled - now);
            }
            scheduled
        }
    }
}

/// FNV-style digest of one request's routing and payload, combined
/// across requests with wrapping adds (order-independent, so concurrent
/// clients sum to a deterministic total).
fn request_digest(model_idx: usize, ids: &[usize]) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (model_idx as u64).wrapping_mul(FNV_PRIME);
    for &id in ids {
        h ^= id as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Runs Zipf traffic against `handle` and collects latency + throughput.
///
/// # Errors
///
/// Returns [`ServeError::BadConfig`] for a zero client/request count or a
/// non-positive Zipf exponent, and propagates the first request failure
/// from any client.
pub fn run_load(handle: &ServeHandle, config: &LoadGenConfig) -> Result<LoadReport> {
    check_common(config)?;
    let zipf =
        Zipf::new(handle.vocab(), config.zipf_exponent).map_err(|e| ServeError::BadConfig {
            context: format!("zipf construction failed: {e}"),
        })?;
    let tick = arrival_tick(config.mode, config.clients)?;

    let started = Instant::now();
    let outcomes: Vec<Result<ClientTally>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..config.clients)
            .map(|client_idx| {
                let zipf = &zipf;
                scope.spawn(move || client_loop(handle, zipf, config, tick, client_idx, started))
            })
            .collect();
        workers
            .into_iter()
            // A panic here is a bug in the load generator itself, not a
            // serving failure — propagate it rather than mislabel it.
            .map(|w| w.join().expect("load-generator client panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut histogram = LatencyHistogram::new();
    let (mut shed, mut expired, mut backoff_nanos) = (0u64, 0u64, 0u64);
    let mut traffic_checksum = 0u64;
    for outcome in outcomes {
        let tally = outcome?;
        histogram.merge(&tally.histogram);
        shed += tally.shed;
        expired += tally.expired;
        backoff_nanos += tally.backoff_nanos;
        traffic_checksum = traffic_checksum.wrapping_add(tally.checksum);
    }
    let (dtype, store_bytes, resident_bytes, dequant_error_bound) =
        ModelLoadReport::snapshot_fields(&handle.snapshot());
    Ok(LoadReport {
        requests: histogram.count(),
        shed,
        expired,
        ids_per_request: config.ids_per_request,
        elapsed,
        per_model: vec![ModelLoadReport {
            model: handle.model_name().to_string(),
            requests: histogram.count(),
            shed,
            expired,
            elapsed,
            histogram: histogram.clone(),
            dtype,
            store_bytes,
            resident_bytes,
            dequant_error_bound,
            mean_backoff: mean_backoff(backoff_nanos, shed),
        }],
        histogram,
        traffic_checksum,
    })
}

/// One client's contribution to a load run: completed-request
/// latencies plus its shed/expired counts and traffic digest.
struct ClientTally {
    histogram: LatencyHistogram,
    shed: u64,
    expired: u64,
    /// Sum of suggested `retry_after` hints over shed requests.
    backoff_nanos: u64,
    checksum: u64,
}

/// Folds one request outcome into a client's tally: completed requests
/// record their scheduled-send latency, overload rejections count as
/// shed/expired without aborting the run (they *are* the measurement
/// under a shedding policy), and anything else is a real failure.
///
/// A shed outcome carries the server's `retry_after` hint; its
/// suggestion is always recorded, and when `honor_backoff` is set (the
/// closed-loop discipline, where the client controls its own pacing) the
/// client additionally sleeps it out before issuing its next request —
/// cooperative pacing instead of hammering the admission gate. Open-loop
/// clients must keep their arrival schedule, so they only record it.
fn tally_outcome<T>(
    outcome: Result<T>,
    latency_nanos: u64,
    honor_backoff: bool,
    histogram: &mut LatencyHistogram,
    shed: &mut u64,
    expired: &mut u64,
    backoff_nanos: &mut u64,
) -> Result<()> {
    match outcome {
        Ok(_) => {
            histogram.record(latency_nanos);
            Ok(())
        }
        Err(ServeError::Overloaded { retry_after, .. }) => {
            *shed += 1;
            *backoff_nanos += retry_after.as_nanos().min(u64::MAX as u128) as u64;
            if honor_backoff {
                std::thread::sleep(retry_after);
            }
            Ok(())
        }
        Err(ServeError::DeadlineExceeded { .. }) => {
            *expired += 1;
            Ok(())
        }
        Err(e) => Err(e),
    }
}

/// Mean suggested backoff over `shed` rejections.
fn mean_backoff(backoff_nanos: u64, shed: u64) -> Duration {
    backoff_nanos
        .checked_div(shed)
        .map_or(Duration::ZERO, Duration::from_nanos)
}

fn client_loop(
    handle: &ServeHandle,
    zipf: &Zipf,
    config: &LoadGenConfig,
    tick: Duration,
    client_idx: usize,
    started: Instant,
) -> Result<ClientTally> {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(client_idx as u64));
    let mut tally = ClientTally {
        histogram: LatencyHistogram::new(),
        shed: 0,
        expired: 0,
        backoff_nanos: 0,
        checksum: 0,
    };
    let honor_backoff = config.mode == LoadMode::Closed;
    for k in 0..config.requests_per_client {
        let ids = zipf.sample_many(config.ids_per_request, &mut rng);
        tally.checksum = tally.checksum.wrapping_add(request_digest(0, &ids));
        let t0 = request_start(config.mode, tick, started, client_idx, config.clients, k);
        let outcome = if let [id] = ids.as_slice() {
            handle.get(*id).map(drop)
        } else {
            handle.get_many(&ids).map(drop)
        };
        tally_outcome(
            outcome,
            t0.elapsed().as_nanos() as u64,
            honor_backoff,
            &mut tally.histogram,
            &mut tally.shed,
            &mut tally.expired,
            &mut tally.backoff_nanos,
        )?;
    }
    Ok(tally)
}

/// Runs mixed multi-model Zipf traffic against a [`Router`]: each
/// request picks its target model from `mix`'s weight vector, samples
/// that model's Zipf id distribution, and goes through the model's
/// handle — single-id requests via `get`, larger requests via the
/// zero-copy [`RouterHandle::get_batch_into`] slab path with one
/// reusable [`EmbedBatch`] per client. The report carries a per-model
/// QPS/latency breakdown in [`LoadReport::per_model`] (ordered as
/// `mix`).
///
/// # Errors
///
/// Returns [`ServeError::BadConfig`] for degenerate configs, an empty
/// mix, or non-positive weights; [`ServeError::ModelNotFound`] for
/// unregistered mix entries; and propagates the first request failure
/// from any client.
pub fn run_mixed_load(
    router: &Router,
    mix: &[ModelMix],
    config: &LoadGenConfig,
) -> Result<LoadReport> {
    check_common(config)?;
    if mix.is_empty() {
        return Err(ServeError::BadConfig {
            context: "mixed load needs >= 1 model in the mix".into(),
        });
    }
    let mut cumulative = Vec::with_capacity(mix.len());
    let mut total_weight = 0.0f64;
    for share in mix {
        if !share.weight.is_finite() || share.weight <= 0.0 {
            return Err(ServeError::BadConfig {
                context: format!(
                    "model {:?} has non-positive weight {}",
                    share.model, share.weight
                ),
            });
        }
        total_weight += share.weight;
        cumulative.push(total_weight);
    }
    let handles: Vec<RouterHandle> = mix
        .iter()
        .map(|share| router.handle(&share.model))
        .collect::<Result<_>>()?;
    let zipfs: Vec<Zipf> = handles
        .iter()
        .map(|h| {
            Zipf::new(h.vocab(), config.zipf_exponent).map_err(|e| ServeError::BadConfig {
                context: format!("zipf construction failed: {e}"),
            })
        })
        .collect::<Result<_>>()?;
    let tick = arrival_tick(config.mode, config.clients)?;

    let started = Instant::now();
    let outcomes: Vec<Result<MixedTally>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..config.clients)
            .map(|client_idx| {
                let (handles, zipfs, cumulative) = (&handles, &zipfs, &cumulative);
                scope.spawn(move || {
                    mixed_client_loop(
                        handles,
                        zipfs,
                        cumulative,
                        total_weight,
                        config,
                        tick,
                        client_idx,
                        started,
                    )
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("load-generator client panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut per_model_hists: Vec<LatencyHistogram> =
        (0..mix.len()).map(|_| LatencyHistogram::new()).collect();
    let mut per_model_shed = vec![0u64; mix.len()];
    let mut per_model_expired = vec![0u64; mix.len()];
    let mut per_model_backoff = vec![0u64; mix.len()];
    let mut traffic_checksum = 0u64;
    for outcome in outcomes {
        let tally = outcome?;
        traffic_checksum = traffic_checksum.wrapping_add(tally.checksum);
        for (merged, client_hist) in per_model_hists.iter_mut().zip(&tally.histograms) {
            merged.merge(client_hist);
        }
        for (total, n) in per_model_shed.iter_mut().zip(&tally.shed) {
            *total += n;
        }
        for (total, n) in per_model_expired.iter_mut().zip(&tally.expired) {
            *total += n;
        }
        for (total, n) in per_model_backoff.iter_mut().zip(&tally.backoff_nanos) {
            *total += n;
        }
    }
    let mut histogram = LatencyHistogram::new();
    for h in &per_model_hists {
        histogram.merge(h);
    }
    let per_model: Vec<ModelLoadReport> = mix
        .iter()
        .zip(per_model_hists)
        .zip(&handles)
        .enumerate()
        .map(|(idx, ((share, h), handle))| {
            let (dtype, store_bytes, resident_bytes, dequant_error_bound) =
                ModelLoadReport::snapshot_fields(&handle.snapshot());
            ModelLoadReport {
                model: share.model.clone(),
                requests: h.count(),
                shed: per_model_shed[idx],
                expired: per_model_expired[idx],
                elapsed,
                histogram: h,
                dtype,
                store_bytes,
                resident_bytes,
                dequant_error_bound,
                mean_backoff: mean_backoff(per_model_backoff[idx], per_model_shed[idx]),
            }
        })
        .collect();
    Ok(LoadReport {
        requests: histogram.count(),
        shed: per_model.iter().map(|m| m.shed).sum(),
        expired: per_model.iter().map(|m| m.expired).sum(),
        ids_per_request: config.ids_per_request,
        elapsed,
        histogram,
        per_model,
        traffic_checksum,
    })
}

/// A mixed-load client's contribution, broken down per model.
struct MixedTally {
    histograms: Vec<LatencyHistogram>,
    shed: Vec<u64>,
    expired: Vec<u64>,
    backoff_nanos: Vec<u64>,
    checksum: u64,
}

#[allow(clippy::too_many_arguments)] // internal fan-out helper
fn mixed_client_loop(
    handles: &[RouterHandle],
    zipfs: &[Zipf],
    cumulative: &[f64],
    total_weight: f64,
    config: &LoadGenConfig,
    tick: Duration,
    client_idx: usize,
    started: Instant,
) -> Result<MixedTally> {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(client_idx as u64));
    let mut tally = MixedTally {
        histograms: (0..handles.len())
            .map(|_| LatencyHistogram::new())
            .collect(),
        shed: vec![0; handles.len()],
        expired: vec![0; handles.len()],
        backoff_nanos: vec![0; handles.len()],
        checksum: 0,
    };
    let honor_backoff = config.mode == LoadMode::Closed;
    let mut batch = EmbedBatch::new();
    for k in 0..config.requests_per_client {
        let draw = rng.gen::<f64>() * total_weight;
        let model_idx = cumulative
            .iter()
            .position(|&c| draw < c)
            .unwrap_or(handles.len() - 1);
        let ids = zipfs[model_idx].sample_many(config.ids_per_request, &mut rng);
        tally.checksum = tally.checksum.wrapping_add(request_digest(model_idx, &ids));
        let t0 = request_start(config.mode, tick, started, client_idx, config.clients, k);
        let outcome = if let [id] = ids.as_slice() {
            handles[model_idx].get(*id).map(drop)
        } else {
            handles[model_idx].get_batch_into(&ids, &mut batch)
        };
        tally_outcome(
            outcome,
            t0.elapsed().as_nanos() as u64,
            honor_backoff,
            &mut tally.histograms[model_idx],
            &mut tally.shed[model_idx],
            &mut tally.expired[model_idx],
            &mut tally.backoff_nanos[model_idx],
        )?;
    }
    Ok(tally)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EmbedServer, Router, ServeConfig};
    use memcom_core::{MemCom, MemComConfig};

    fn test_server() -> EmbedServer {
        let mut rng = StdRng::seed_from_u64(9);
        let emb = MemCom::new(MemComConfig::new(1_000, 8, 100), &mut rng).unwrap();
        let config = ServeConfig {
            n_shards: 4,
            max_batch: 16,
            max_wait: Duration::from_micros(100),
            ..ServeConfig::default()
        };
        EmbedServer::start(&emb, config).unwrap()
    }

    #[test]
    fn closed_loop_completes_all_requests() {
        let server = test_server();
        let config = LoadGenConfig {
            clients: 4,
            requests_per_client: 200,
            ..LoadGenConfig::default()
        };
        let report = run_load(&server.handle(), &config).unwrap();
        assert_eq!(report.requests, 800);
        // Blocking admission: nothing shed or expired, offered ==
        // completed, goodput == qps.
        assert_eq!(report.shed, 0);
        assert_eq!(report.expired, 0);
        assert_eq!(report.offered(), 800);
        assert_eq!(report.shed_rate(), 0.0);
        assert_eq!(report.goodput(), report.qps());
        assert_eq!(report.offered_qps(), report.qps());
        assert_eq!(report.per_model[0].offered(), 800);
        assert_eq!(report.per_model[0].shed_rate(), 0.0);
        assert!(report.qps() > 0.0);
        assert!(report.histogram.p50() > 0);
        assert!(report.histogram.p99() >= report.histogram.p50());
        assert_eq!(report.per_model.len(), 1);
        assert_eq!(report.per_model[0].requests, 800);
        let stats = server.shutdown();
        assert_eq!(stats.requests, 800);
    }

    #[test]
    fn open_loop_paces_arrivals() {
        let server = test_server();
        let config = LoadGenConfig {
            clients: 2,
            requests_per_client: 50,
            mode: LoadMode::Open {
                target_qps: 2_000.0,
            },
            ..LoadGenConfig::default()
        };
        let report = run_load(&server.handle(), &config).unwrap();
        assert_eq!(report.requests, 100);
        // 100 requests at 2 kQPS should take ≈ 50 ms of schedule.
        assert!(
            report.elapsed >= Duration::from_millis(40),
            "{:?}",
            report.elapsed
        );
        // Achieved rate must not exceed the offered rate (plus slack).
        assert!(report.qps() <= 2_600.0, "qps {}", report.qps());
    }

    #[test]
    fn degenerate_configs_rejected() {
        let server = test_server();
        let handle = server.handle();
        for config in [
            LoadGenConfig {
                clients: 0,
                ..LoadGenConfig::default()
            },
            LoadGenConfig {
                requests_per_client: 0,
                ..LoadGenConfig::default()
            },
            LoadGenConfig {
                ids_per_request: 0,
                ..LoadGenConfig::default()
            },
            LoadGenConfig {
                zipf_exponent: 0.0,
                ..LoadGenConfig::default()
            },
            LoadGenConfig {
                mode: LoadMode::Open { target_qps: 0.0 },
                ..LoadGenConfig::default()
            },
        ] {
            assert!(run_load(&handle, &config).is_err(), "{config:?}");
        }
    }

    #[test]
    fn zipf_traffic_skews_toward_popular_heads() {
        let server = test_server();
        let config = LoadGenConfig {
            clients: 2,
            requests_per_client: 500,
            zipf_exponent: 1.5,
            ..LoadGenConfig::default()
        };
        run_load(&server.handle(), &config).unwrap();
        let stats = server.stats();
        // Skewed traffic over a 1024-row/shard cache: most lookups hit.
        assert!(
            stats.cache.hit_rate() > 0.5,
            "zipf(1.5) should cache well, got {}",
            stats.cache.hit_rate()
        );
    }

    fn two_model_router() -> Router {
        let mut rng = StdRng::seed_from_u64(31);
        let a = MemCom::new(MemComConfig::new(1_000, 8, 100), &mut rng).unwrap();
        let b = MemCom::new(MemComConfig::new(500, 8, 50), &mut rng).unwrap();
        let router = Router::start(ServeConfig {
            n_shards: 2,
            max_batch: 16,
            max_wait: Duration::from_micros(100),
            ..ServeConfig::default()
        })
        .unwrap();
        router.register("a", &a).unwrap();
        router.register("b", &b).unwrap();
        router
    }

    #[test]
    fn mixed_load_reports_per_model() {
        let router = two_model_router();
        let mix = [ModelMix::new("a", 3.0), ModelMix::new("b", 1.0)];
        let config = LoadGenConfig {
            clients: 2,
            requests_per_client: 400,
            ids_per_request: 4,
            ..LoadGenConfig::default()
        };
        let report = run_mixed_load(&router, &mix, &config).unwrap();
        assert_eq!(report.requests, 800);
        assert_eq!(report.per_model.len(), 2);
        let (a, b) = (&report.per_model[0], &report.per_model[1]);
        assert_eq!(a.model, "a");
        assert_eq!(b.model, "b");
        assert_eq!(a.requests + b.requests, 800);
        // 3:1 weights: a should clearly dominate (allowing sampling noise).
        assert!(
            a.requests > 2 * b.requests,
            "expected ~3:1 split, got {}:{}",
            a.requests,
            b.requests
        );
        assert!(a.qps() > 0.0 && b.qps() > 0.0);
        assert!(a.histogram.p99() >= a.histogram.p50());
        // Server-side per-model accounting saw the same totals (in rows).
        let stats_a = router.stats("a").unwrap();
        let stats_b = router.stats("b").unwrap();
        assert_eq!(
            stats_a.requests + stats_b.requests,
            800 * config.ids_per_request as u64
        );
    }

    #[test]
    fn mixed_load_is_deterministic_for_a_seed() {
        // Same seed ⇒ identical traffic: total and per-model request
        // counts and the order-independent id/model checksum all match
        // across two runs (latency histograms are timing-dependent and
        // deliberately excluded). Guards the Zipf sampling, the weighted
        // model pick, and the per-client seeding against silent drift.
        let router = two_model_router();
        let mix = [ModelMix::new("a", 2.0), ModelMix::new("b", 1.0)];
        let config = LoadGenConfig {
            clients: 3,
            requests_per_client: 150,
            ids_per_request: 3,
            ..LoadGenConfig::default()
        };
        let first = run_mixed_load(&router, &mix, &config).unwrap();
        let second = run_mixed_load(&router, &mix, &config).unwrap();
        assert_eq!(first.traffic_checksum, second.traffic_checksum);
        assert_ne!(first.traffic_checksum, 0);
        assert_eq!(first.requests, second.requests);
        assert_eq!(first.ids_per_request, second.ids_per_request);
        for (a, b) in first.per_model.iter().zip(&second.per_model) {
            assert_eq!(a.model, b.model);
            assert_eq!(a.requests, b.requests, "model {}", a.model);
            assert_eq!(a.store_bytes, b.store_bytes);
            assert_eq!(a.dtype, b.dtype);
            assert_eq!(a.dequant_error_bound, b.dequant_error_bound);
        }

        // A different seed must actually change the traffic.
        let reseeded = run_mixed_load(
            &router,
            &mix,
            &LoadGenConfig {
                seed: config.seed + 1,
                ..config
            },
        )
        .unwrap();
        assert_ne!(first.traffic_checksum, reseeded.traffic_checksum);
    }

    #[test]
    fn single_model_report_carries_store_snapshot() {
        let server = test_server();
        let config = LoadGenConfig {
            clients: 2,
            requests_per_client: 100,
            ..LoadGenConfig::default()
        };
        let report = run_load(&server.handle(), &config).unwrap();
        let model = &report.per_model[0];
        assert_eq!(model.dtype, crate::Dtype::F32);
        assert_eq!(model.dequant_error_bound, 0.0);
        assert_eq!(model.store_bytes, server.store().stored_bytes());
        assert!(model.resident_bytes > 0, "traffic must touch pages");
        assert_ne!(report.traffic_checksum, 0);
    }

    #[test]
    fn mixed_load_accounts_shed_per_model() {
        use crate::AdmissionPolicy;
        // A wedged 1-shard router: depth-1 queue behind a 50ms
        // simulated store read, rejecting overflow immediately. Four
        // closed-loop clients (more than queue + in-flight batch) must
        // shed most of their traffic, and every rejection must be
        // attributed to the right model.
        let mut rng = StdRng::seed_from_u64(77);
        let a = MemCom::new(MemComConfig::new(500, 8, 50), &mut rng).unwrap();
        let b = MemCom::new(MemComConfig::new(500, 8, 50), &mut rng).unwrap();
        let router = Router::start(ServeConfig {
            n_shards: 1,
            max_batch: 1,
            max_wait: Duration::from_micros(10),
            queue_depth: 1,
            store_latency: Duration::from_millis(50),
            admission: AdmissionPolicy::Shed {
                enqueue_timeout: Duration::ZERO,
                request_deadline: None,
            },
            ..ServeConfig::default()
        })
        .unwrap();
        router.register("a", &a).unwrap();
        router.register("b", &b).unwrap();
        let mix = [ModelMix::new("a", 1.0), ModelMix::new("b", 1.0)];
        let config = LoadGenConfig {
            clients: 4,
            requests_per_client: 25,
            ..LoadGenConfig::default()
        };
        let report = run_mixed_load(&router, &mix, &config).unwrap();
        assert_eq!(report.offered(), 100, "every issued request accounted");
        assert!(report.shed > 0, "the wedged router must shed");
        assert!(report.shed_rate() > 0.0);
        // Per-model splits sum to the totals and reconcile with the
        // router's own counters (single-id requests: rows == requests).
        let (ma, mb) = (&report.per_model[0], &report.per_model[1]);
        assert_eq!(ma.shed + mb.shed, report.shed);
        assert_eq!(ma.expired + mb.expired, report.expired);
        assert_eq!(ma.offered() + mb.offered(), 100);
        let stats_a = router.stats("a").unwrap();
        let stats_b = router.stats("b").unwrap();
        assert_eq!(stats_a.shed, ma.shed);
        assert_eq!(stats_b.shed, mb.shed);
        assert_eq!(stats_a.requests, ma.requests);
        assert_eq!(stats_b.requests, mb.requests);
    }

    #[test]
    fn mixed_load_rejects_bad_mixes() {
        let router = two_model_router();
        let config = LoadGenConfig {
            clients: 1,
            requests_per_client: 10,
            ..LoadGenConfig::default()
        };
        assert!(matches!(
            run_mixed_load(&router, &[], &config),
            Err(ServeError::BadConfig { .. })
        ));
        assert!(matches!(
            run_mixed_load(&router, &[ModelMix::new("a", 0.0)], &config),
            Err(ServeError::BadConfig { .. })
        ));
        assert!(matches!(
            run_mixed_load(&router, &[ModelMix::new("nope", 1.0)], &config),
            Err(ServeError::ModelNotFound { .. })
        ));
    }
}
