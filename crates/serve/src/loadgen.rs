//! Zipf-driven load generation.
//!
//! Replays the paper's traffic assumption — power-law id popularity over
//! a frequency-sorted vocabulary (§4, §5.1) — against a running server,
//! in either of the two canonical load-testing disciplines:
//!
//! * **Closed loop** — each client issues its next request as soon as
//!   the previous one completes. Measures the system's saturated
//!   throughput; latency excludes queueing you didn't create.
//! * **Open loop** — requests fire on a fixed schedule regardless of
//!   completion, and latency is measured from the *scheduled* send time,
//!   so queueing delay under overload is charged to the system
//!   (avoiding coordinated omission).

use std::time::{Duration, Instant};

use memcom_data::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::histogram::LatencyHistogram;
use crate::server::ServeHandle;
use crate::{Result, ServeError};

/// Arrival discipline for the generated load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Issue-on-completion (saturation throughput).
    Closed,
    /// Fixed aggregate arrival rate in requests/second.
    Open {
        /// Target aggregate arrival rate across all clients.
        target_qps: f64,
    },
}

/// Load-generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadGenConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Ids embedded per request (`1` = point lookups; the paper's
    /// session inputs are 128-id requests that fan out across shards).
    pub ids_per_request: usize,
    /// Zipf exponent of the id popularity distribution.
    pub zipf_exponent: f64,
    /// Arrival discipline.
    pub mode: LoadMode,
    /// Base RNG seed (client `i` uses `seed + i`).
    pub seed: u64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            clients: 4,
            requests_per_client: 1_000,
            ids_per_request: 1,
            zipf_exponent: 1.1,
            mode: LoadMode::Closed,
            seed: 42,
        }
    }
}

/// What a load run observed.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Completed requests.
    pub requests: u64,
    /// Ids embedded per request.
    pub ids_per_request: usize,
    /// Wall-clock span of the run.
    pub elapsed: Duration,
    /// Per-request latency distribution.
    pub histogram: LatencyHistogram,
}

impl LoadReport {
    /// Achieved requests per second.
    pub fn qps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.requests as f64 / secs
        }
    }

    /// Achieved single-id lookups per second.
    pub fn lookups_per_sec(&self) -> f64 {
        self.qps() * self.ids_per_request as f64
    }
}

/// Runs Zipf traffic against `handle` and collects latency + throughput.
///
/// # Errors
///
/// Returns [`ServeError::BadConfig`] for a zero client/request count or a
/// non-positive Zipf exponent, and propagates the first request failure
/// from any client.
pub fn run_load(handle: &ServeHandle, config: &LoadGenConfig) -> Result<LoadReport> {
    if config.clients == 0 || config.requests_per_client == 0 || config.ids_per_request == 0 {
        return Err(ServeError::BadConfig {
            context: "load generation needs >= 1 client, request, and id per request".into(),
        });
    }
    let zipf =
        Zipf::new(handle.vocab(), config.zipf_exponent).map_err(|e| ServeError::BadConfig {
            context: format!("zipf construction failed: {e}"),
        })?;

    let started = Instant::now();
    let outcomes: Vec<Result<LatencyHistogram>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..config.clients)
            .map(|client_idx| {
                let zipf = &zipf;
                scope.spawn(move || client_loop(handle, zipf, config, client_idx, started))
            })
            .collect();
        workers
            .into_iter()
            // A panic here is a bug in the load generator itself, not a
            // serving failure — propagate it rather than mislabel it.
            .map(|w| w.join().expect("load-generator client panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut histogram = LatencyHistogram::new();
    for outcome in outcomes {
        histogram.merge(&outcome?);
    }
    Ok(LoadReport {
        requests: histogram.count(),
        ids_per_request: config.ids_per_request,
        elapsed,
        histogram,
    })
}

fn client_loop(
    handle: &ServeHandle,
    zipf: &Zipf,
    config: &LoadGenConfig,
    client_idx: usize,
    started: Instant,
) -> Result<LatencyHistogram> {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(client_idx as u64));
    let mut histogram = LatencyHistogram::new();
    // Open loop: clients interleave on a shared schedule of
    // `1/target_qps` ticks, client `i` owning ticks `i, i+C, i+2C, …`.
    let tick = match config.mode {
        LoadMode::Closed => Duration::ZERO,
        LoadMode::Open { target_qps } => {
            if !target_qps.is_finite() || target_qps <= 0.0 {
                return Err(ServeError::BadConfig {
                    context: format!("open-loop target_qps must be positive, got {target_qps}"),
                });
            }
            Duration::from_secs_f64(1.0 / target_qps)
        }
    };

    for k in 0..config.requests_per_client {
        let ids = zipf.sample_many(config.ids_per_request, &mut rng);
        let t0 = match config.mode {
            LoadMode::Closed => Instant::now(),
            LoadMode::Open { .. } => {
                // u32 Duration multiplication would wrap on long soaks;
                // scale in f64 seconds instead.
                let index = (client_idx + k * config.clients) as f64;
                let scheduled = started + Duration::from_secs_f64(tick.as_secs_f64() * index);
                let now = Instant::now();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
                // Latency counts from the scheduled arrival, charging
                // queueing delay to the server, not the sleeping client.
                scheduled
            }
        };
        if let [id] = ids.as_slice() {
            handle.get(*id)?;
        } else {
            handle.get_many(&ids)?;
        }
        histogram.record(t0.elapsed().as_nanos() as u64);
    }
    Ok(histogram)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EmbedServer, ServeConfig};
    use memcom_core::{MemCom, MemComConfig};

    fn test_server() -> EmbedServer {
        let mut rng = StdRng::seed_from_u64(9);
        let emb = MemCom::new(MemComConfig::new(1_000, 8, 100), &mut rng).unwrap();
        let config = ServeConfig {
            n_shards: 4,
            max_batch: 16,
            max_wait: Duration::from_micros(100),
            ..ServeConfig::default()
        };
        EmbedServer::start(&emb, config).unwrap()
    }

    #[test]
    fn closed_loop_completes_all_requests() {
        let server = test_server();
        let config = LoadGenConfig {
            clients: 4,
            requests_per_client: 200,
            ..LoadGenConfig::default()
        };
        let report = run_load(&server.handle(), &config).unwrap();
        assert_eq!(report.requests, 800);
        assert!(report.qps() > 0.0);
        assert!(report.histogram.p50() > 0);
        assert!(report.histogram.p99() >= report.histogram.p50());
        let stats = server.shutdown();
        assert_eq!(stats.requests, 800);
    }

    #[test]
    fn open_loop_paces_arrivals() {
        let server = test_server();
        let config = LoadGenConfig {
            clients: 2,
            requests_per_client: 50,
            mode: LoadMode::Open {
                target_qps: 2_000.0,
            },
            ..LoadGenConfig::default()
        };
        let report = run_load(&server.handle(), &config).unwrap();
        assert_eq!(report.requests, 100);
        // 100 requests at 2 kQPS should take ≈ 50 ms of schedule.
        assert!(
            report.elapsed >= Duration::from_millis(40),
            "{:?}",
            report.elapsed
        );
        // Achieved rate must not exceed the offered rate (plus slack).
        assert!(report.qps() <= 2_600.0, "qps {}", report.qps());
    }

    #[test]
    fn degenerate_configs_rejected() {
        let server = test_server();
        let handle = server.handle();
        for config in [
            LoadGenConfig {
                clients: 0,
                ..LoadGenConfig::default()
            },
            LoadGenConfig {
                requests_per_client: 0,
                ..LoadGenConfig::default()
            },
            LoadGenConfig {
                ids_per_request: 0,
                ..LoadGenConfig::default()
            },
            LoadGenConfig {
                zipf_exponent: 0.0,
                ..LoadGenConfig::default()
            },
            LoadGenConfig {
                mode: LoadMode::Open { target_qps: 0.0 },
                ..LoadGenConfig::default()
            },
        ] {
            assert!(run_load(&handle, &config).is_err(), "{config:?}");
        }
    }

    #[test]
    fn zipf_traffic_skews_toward_popular_heads() {
        let server = test_server();
        let config = LoadGenConfig {
            clients: 2,
            requests_per_client: 500,
            zipf_exponent: 1.5,
            ..LoadGenConfig::default()
        };
        run_load(&server.handle(), &config).unwrap();
        let stats = server.stats();
        // Skewed traffic over a 1024-row/shard cache: most lookups hit.
        assert!(
            stats.cache.hit_rate() > 0.5,
            "zipf(1.5) should cache well, got {}",
            stats.cache.hit_rate()
        );
    }
}
