//! # memcom-serve — a sharded, micro-batching, multi-model embedding-serving engine
//!
//! The paper compresses embedding tables so recommendation models fit
//! on-device; this crate takes the next step toward the repository's
//! north star and *serves* those tables under concurrent lookup traffic,
//! for any number of named models behind one router.
//!
//! ## The layers
//!
//! Bottom-up, each module is one layer of the engine:
//!
//! * [`store`] — **storage**: [`ShardedStore`] partitions a trained
//!   model's per-entity state across N shards, each holding its rows in
//!   structurally-shared pages ([`memcom_ondevice::PagedTable`]) behind
//!   a hot-row LRU ([`cache`]). Its slab API
//!   ([`ShardedStore::lookup_batch`]) writes rows straight into a
//!   caller-owned flat buffer — no per-row allocation.
//! * [`delta`] — **incremental refresh**: [`StoreDelta`] batches
//!   row-level upserts/removals; [`ShardedStore::apply_delta`] turns
//!   one into a new snapshot that copy-on-writes only the touched pages
//!   and carries the hot-row caches over minus the changed ids, and
//!   [`Router::apply_delta`] flips it in atomically under traffic.
//! * [`batcher`] — **queueing**: bounded per-shard [`batcher::ShardQueue`]s
//!   coalesce concurrent requests into micro-batches (flushing on
//!   `max_batch`/`max_wait`), answered through [`batcher::ResponseSlot`]
//!   (one owned row) or [`batcher::SlabSlot`] (round-tripped batch
//!   buffers). Overload behavior is an [`AdmissionPolicy`]: block
//!   producers on full queues (backpressure), or shed with bounded
//!   enqueue waits and per-request deadlines enforced at dequeue.
//! * [`router`] — **routing**: the [`Router`] owns the shard workers and
//!   a registry of named models. Requests capture their model's current
//!   store `Arc` at enqueue time, so [`Router::swap`] (whole-table) and
//!   [`Router::apply_delta`] (row-level) refresh tables atomically
//!   while in-flight lookups finish on the old snapshot, and one worker
//!   set serves every model. Per-model stats via [`Router::stats`].
//! * [`infer`] — **full-model scoring**: an [`InferBackend`] turns a
//!   registered model from a row store into a scoring pipeline (embed →
//!   pool → dense forward; N item ids in, K scores out). Backends live
//!   in a per-router [`BackendRegistry`]; [`LookupBackend`] (the
//!   default) keeps plain row serving, [`RankNetBackend`] runs the
//!   trained head via `memcom-ondevice`'s executor over served rows.
//!   Score requests ride the same shard queues, admission policy, and
//!   counters as lookups ([`RouterHandle::score`]).
//! * [`batch`] — **client buffers**: [`EmbedBatch`], the reusable
//!   response slab for the zero-copy batch API
//!   ([`RouterHandle::get_batch_into`]), and [`ScoreBatch`], its
//!   score-path counterpart ([`RouterHandle::score_batch_into`]).
//! * [`server`] — **single-model facade**: [`EmbedServer`]/[`ServeHandle`],
//!   the PR-1 API kept source-compatible as a thin wrapper over one
//!   router model ([`DEFAULT_MODEL`]).
//! * [`loadgen`] — **measurement**: open/closed-loop Zipf traffic
//!   ([`run_load`]) and mixed multi-model traffic ([`run_mixed_load`])
//!   with per-model QPS/latency reporting; [`histogram`] holds the
//!   mergeable latency histogram.
//! * [`telemetry`] — **observability**: a dependency-free metrics
//!   registry behind [`TelemetryConfig`] (off / minimal / full), with
//!   per-stage latency histograms, sampled request tracing, and
//!   Prometheus/JSON exporters over [`Router::metrics`]'s
//!   [`MetricsSnapshot`]; [`StatsReporter`] dumps them periodically.
//!
//! Sharding exploits the structure of MEmCom itself: the *small shared
//! table* is replicated per shard while the *large per-entity tables*
//! (multipliers, biases) are partitioned, so shards stay compressed and
//! never contend on a common lock. Costs plug into the on-device
//! compute-unit model: [`ShardedStore::run_stats`] returns the same
//! [`memcom_ondevice::RunStats`] the single-inference engines report.
//!
//! ```
//! use memcom_core::{MemCom, MemComConfig};
//! use memcom_serve::{EmbedBatch, EmbedServer, LoadGenConfig, ServeConfig, run_load};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let emb = MemCom::new(MemComConfig::new(10_000, 32, 1_000), &mut rng)?;
//! let server = EmbedServer::start(&emb, ServeConfig::with_shards(4))?;
//!
//! // Direct lookups from any number of threads…
//! let handle = server.handle();
//! let row = handle.get(123)?;
//! assert_eq!(row.len(), 32);
//!
//! // …zero-copy batches into a reusable slab…
//! let mut batch = EmbedBatch::new();
//! handle.get_batch_into(&[1, 2, 3], &mut batch)?;
//! assert_eq!(batch.row(0).len(), 32);
//!
//! // …or a measured Zipf load run.
//! let config = LoadGenConfig { clients: 2, requests_per_client: 200, ..Default::default() };
//! let report = run_load(&handle, &config)?;
//! assert_eq!(report.requests, 400);
//! println!("{:.0} QPS, p99 {} ns", report.qps(), report.histogram.p99());
//! # Ok(())
//! # }
//! ```

pub mod batch;
pub mod batcher;
pub mod cache;
pub mod config;
pub mod delta;
pub mod error;
pub mod histogram;
pub mod infer;
pub mod loadgen;
pub mod router;
pub mod server;
pub mod store;
pub mod telemetry;

pub use batch::EmbedBatch;
pub use batcher::PushError;
pub use config::{AdmissionPolicy, ServeConfig, TelemetryConfig, TelemetryLevel};
pub use delta::StoreDelta;
pub use error::ServeError;
pub use histogram::{fmt_nanos, LatencyHistogram};
pub use infer::{
    BackendRegistry, InferBackend, InferScratch, LookupBackend, RankNetBackend, ScoreBatch,
    LOOKUP_BACKEND,
};
pub use loadgen::{
    run_load, run_mixed_load, LoadGenConfig, LoadMode, LoadReport, ModelLoadReport, ModelMix,
};
pub use router::{Router, RouterHandle, ServeStats, DEFAULT_MODEL};
pub use server::{EmbedServer, ServeHandle};
pub use store::{CacheStats, ShardCacheStats, ShardedStore};
pub use telemetry::{
    MetricsSnapshot, ModelMetrics, ShardStageMetrics, SizeStats, Span, SpanOutcome, StatsReporter,
};

/// Storage dtype for shard row bytes (re-exported from
/// [`memcom_ondevice`]): [`ShardedStore::build_quantized`] and
/// [`Router::register_with_dtype`] accept sub-fp32 dtypes, trading a
/// certified per-row error bound ([`ShardedStore::error_bound`]) for a
/// proportionally smaller resident store.
pub use memcom_ondevice::Dtype;

/// Convenience alias for results returned throughout this crate.
pub type Result<T> = std::result::Result<T, ServeError>;
