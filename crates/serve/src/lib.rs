//! # memcom-serve — a sharded, micro-batching embedding-serving engine
//!
//! The paper compresses embedding tables so recommendation models fit
//! on-device; this crate takes the next step toward the repository's
//! north star and *serves* those tables under concurrent lookup traffic.
//!
//! Pipeline, per request: a [`ServeHandle`] routes the id to its shard's
//! bounded queue (`shard = id % N`); the shard's worker coalesces
//! concurrent requests into a micro-batch (flushing on `max_batch` or
//! `max_wait`, see [`batcher`]); the batch hits the [`ShardedStore`] —
//! hot rows answer from a per-shard LRU ([`cache`]), cold rows fault
//! through the shard's private [`memcom_ondevice::MmapSim`] — and each
//! requester is woken with its row.
//!
//! Sharding exploits the structure of MEmCom itself: the *small shared
//! table* is replicated per shard while the *large per-entity tables*
//! (multipliers, biases) are partitioned, so shards stay compressed and
//! never contend on a common lock. Costs plug into the on-device
//! compute-unit model: [`ShardedStore::run_stats`] returns the same
//! [`memcom_ondevice::RunStats`] the single-inference engines report.
//!
//! ```
//! use memcom_core::{MemCom, MemComConfig};
//! use memcom_serve::{EmbedServer, LoadGenConfig, ServeConfig, run_load};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let emb = MemCom::new(MemComConfig::new(10_000, 32, 1_000), &mut rng)?;
//! let server = EmbedServer::start(&emb, ServeConfig::with_shards(4))?;
//!
//! // Direct lookups from any number of threads…
//! let handle = server.handle();
//! let row = handle.get(123)?;
//! assert_eq!(row.len(), 32);
//!
//! // …or a measured Zipf load run.
//! let config = LoadGenConfig { clients: 2, requests_per_client: 200, ..Default::default() };
//! let report = run_load(&handle, &config)?;
//! assert_eq!(report.requests, 400);
//! println!("{:.0} QPS, p99 {} ns", report.qps(), report.histogram.p99());
//! # Ok(())
//! # }
//! ```

pub mod batcher;
pub mod cache;
pub mod config;
pub mod error;
pub mod histogram;
pub mod loadgen;
pub mod server;
pub mod store;

pub use config::ServeConfig;
pub use error::ServeError;
pub use histogram::{fmt_nanos, LatencyHistogram};
pub use loadgen::{run_load, LoadGenConfig, LoadMode, LoadReport};
pub use server::{EmbedServer, ServeHandle, ServeStats};
pub use store::{CacheStats, ShardedStore};

/// Convenience alias for results returned throughout this crate.
pub type Result<T> = std::result::Result<T, ServeError>;
