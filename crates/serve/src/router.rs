//! Multi-model routing: one set of shard workers, many named models.
//!
//! The [`Router`] owns the serving machinery — per-shard bounded queues
//! and worker threads — while a registry maps model names to
//! [`ShardedStore`] snapshots. Registering a model costs nothing at the
//! worker level: every request captures an `Arc` of its model's current
//! store at enqueue time, so workers are stateless dispatchers and a
//! [`swap`](Router::swap) is a single atomic `Arc` flip. In-flight
//! requests finish against the snapshot they were routed to; the next
//! request sees the new table — online refresh without stopping traffic.
//!
//! Two request shapes flow through the queues:
//!
//! * **One** — a single id answered with an owned row through a
//!   [`ResponseSlot`] (the legacy [`crate::ServeHandle::get`] path).
//! * **Slab** — a per-shard id list answered by writing rows into a
//!   caller-provided flat buffer that round-trips through a
//!   [`SlabSlot`], so the batch path ([`RouterHandle::get_batch_into`])
//!   performs no per-row heap allocation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use memcom_ondevice::engine::RunStats;
use parking_lot::RwLock;

use crate::batcher::{FlushReason, PushError, ResponseSlot, ShardQueue, SlabOutcome, SlabSlot};
use crate::config::AdmissionPolicy;
use crate::infer::{BackendRegistry, InferBackend, InferScratch, ScoreBatch, LOOKUP_BACKEND};
use crate::store::{CacheStats, ShardCacheStats, ShardedStore};
use crate::telemetry::{
    dtype_idx, MetricsRegistry, MetricsSnapshot, ModelMetrics, PendingSpan, Span, SpanOutcome,
    SpanSeed, SIZE_SCALE,
};
use crate::{EmbedBatch, Result, ServeConfig, ServeError, StoreDelta};

/// The model name [`crate::EmbedServer`] registers its single model
/// under.
pub const DEFAULT_MODEL: &str = "default";

/// Per-model row counters (issued at handle entry; served, shed at
/// admission, expired at dequeue — all in rows, like `requests`).
///
/// # Consistency contract
///
/// The counters are updated from many threads with atomic adds and read
/// individually at snapshot time, so a snapshot is *eventually exact*
/// but not linearizable: it can lag in-flight increments, and the three
/// outcome counters need not yet account for every issued row. One
/// inequality is guaranteed in **every** snapshot:
///
/// ```text
/// issued >= requests + shed + expired
/// ```
///
/// because `issued` is incremented before any outcome can be recorded,
/// outcome increments use `Release`, and snapshots read the outcomes
/// with `Acquire` *before* reading `issued` — so an observed outcome
/// implies its issue is observed too. The inequality is strict while
/// rows are in flight, and stays strict for rows that terminate without
/// an outcome counter: rows rejected at shutdown
/// ([`ServeError::ShuttingDown`]) and rows whose store read failed.
#[derive(Debug, Default)]
pub(crate) struct ModelCounters {
    pub(crate) issued: AtomicU64,
    pub(crate) requests: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) expired: AtomicU64,
}

/// Admission metadata every request carries: under
/// [`AdmissionPolicy::Shed`] with a `request_deadline`, when the
/// request was issued (stamped once per logical request, *before* any
/// admission wait — the deadline is end to end, so admission waits and
/// earlier shards of a fan-out consume it) and when it stops being
/// worth serving. Workers evaluate `expires_at` at dequeue, *before*
/// touching the store, so an expired request costs a timestamp
/// comparison instead of a store read. Policies without a deadline
/// ([`AdmissionPolicy::Block`], or `Shed` with `request_deadline:
/// None`) carry `None` — the stamp is lazy, so the default hot path
/// pays no clock read.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Admission {
    /// The issue stamp — present when a deadline is in force *or* when
    /// full telemetry asked for queue-wait timing.
    issued_at: Option<Instant>,
    /// When the request stops being worth serving; `None` when no
    /// deadline is in force (or the deadline overflows `Instant`).
    expires_at: Option<Instant>,
}

impl Admission {
    /// Stamps the issue clock when a deadline is in force or when the
    /// caller asked to track the issue instant (full telemetry's
    /// queue-wait timing); otherwise both fields stay `None` and the
    /// default hot path pays no clock read.
    ///
    /// `override_deadline` is the per-request deadline: under
    /// [`AdmissionPolicy::Shed`] the tightest of the policy deadline
    /// and the override wins; under [`AdmissionPolicy::Block`] the
    /// override is ignored — a blocking router never expires requests,
    /// so `expired` stays 0 regardless of per-request hints.
    // memcom-lint: hot-path
    fn stamp_with(
        policy: AdmissionPolicy,
        track_issue: bool,
        override_deadline: Option<std::time::Duration>,
    ) -> Self {
        let deadline = match policy {
            AdmissionPolicy::Shed {
                request_deadline, ..
            } => match (request_deadline, override_deadline) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
            AdmissionPolicy::Block => None,
        };
        if deadline.is_none() && !track_issue {
            return Admission {
                issued_at: None,
                expires_at: None,
            };
        }
        // memcom-lint: allow(L002) -- reached only past the early return above, i.e. when a deadline or full-telemetry queue-wait timing requires a stamp
        let issued_at = Instant::now();
        Admission {
            issued_at: Some(issued_at),
            // A deadline too far out to represent as a point in time
            // (e.g. `Duration::MAX`) never expires.
            expires_at: deadline.and_then(|d| issued_at.checked_add(d)),
        }
    }
    // memcom-lint: end-hot-path

    /// When the request was issued, if the stamp was taken.
    fn issued_at(&self) -> Option<Instant> {
        self.issued_at
    }

    /// The expiry instant, when a deadline is in force.
    fn expires_at(&self) -> Option<Instant> {
        self.expires_at
    }

    /// The deadline error for a request found expired at `now`.
    ///
    /// # Panics
    ///
    /// Panics when no deadline is in force — unreachable, since only
    /// requests with an expiry can be found expired.
    fn deadline_error(&self, now: Instant) -> ServeError {
        let issued_at = self.issued_at.expect("expired without a deadline");
        let expires_at = self.expires_at.expect("expired without a deadline");
        ServeError::DeadlineExceeded {
            queued: now - issued_at,
            deadline: expires_at - issued_at,
        }
    }
}

/// Router-global batching counters.
#[derive(Debug, Default)]
struct BatchCounters {
    requests: AtomicU64,
    batches: AtomicU64,
    flushes_full: AtomicU64,
    flushes_timeout: AtomicU64,
    flushes_drain: AtomicU64,
    max_batch_observed: AtomicU64,
}

/// Aggregated serving statistics for one model (see [`Router::stats`]).
///
/// `issued`, `requests`, `shed`, and `expired` count rows for *this*
/// model; the batching counters (`batches`, `flushes_*`,
/// `max_batch_observed`) are router-wide since shard workers batch
/// across models; `cache`/`cache_shards`/`run_stats` describe the
/// model's *current* store snapshot (they restart from zero after a
/// [`Router::swap`]).
///
/// # Consistency
///
/// The row counters are maintained with relaxed-order atomic adds from
/// many threads and read individually per snapshot, so a snapshot taken
/// mid-traffic is *eventually exact*, not linearizable: it may lag
/// in-flight increments. Every snapshot does guarantee
/// `issued >= requests + shed + expired` — an outcome is never visible
/// before the issue that produced it (outcome increments are
/// `Release`, snapshots read outcomes with `Acquire` before `issued`).
/// The inequality is strict while rows are in flight, and permanently
/// strict for rows that end without an outcome: rows rejected at
/// shutdown and rows whose store read failed.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Rows that entered this model's serving path, counted at handle
    /// entry after id validation, before admission.
    pub issued: u64,
    /// Rows served for this model through batches.
    pub requests: u64,
    /// Rows shed at admission for this model: the shard queue stayed
    /// full past the enqueue budget of [`AdmissionPolicy::Shed`], so the
    /// producer got [`ServeError::Overloaded`] instead of blocking.
    /// Always `0` under [`AdmissionPolicy::Block`].
    ///
    /// For a multi-shard fan-out (`get_many`/`get_batch_into`) that
    /// sheds partway through admission, rows on the shed shard *and*
    /// on shards never attempted count as shed, while sub-requests
    /// already admitted still run and count as served — so
    /// `requests + shed + expired` always equals the rows issued.
    pub shed: u64,
    /// Rows dropped at dequeue for this model: accepted, but older than
    /// their end-to-end `request_deadline` by the time a worker picked
    /// them up, so it answered [`ServeError::DeadlineExceeded`] without
    /// reading the store.
    pub expired: u64,
    /// Batches executed across the router.
    pub batches: u64,
    /// Batches flushed because they reached `max_batch`.
    pub flushes_full: u64,
    /// Batches flushed because `max_wait` elapsed.
    pub flushes_timeout: u64,
    /// Batches flushed while draining at shutdown.
    pub flushes_drain: u64,
    /// Largest batch observed, in rows.
    pub max_batch_observed: usize,
    /// Hot-row cache effectiveness of the current store snapshot.
    pub cache: CacheStats,
    /// Per-shard hot-row cache state of the current store snapshot,
    /// indexed by shard. Each entry is read in one consistent pass over
    /// that shard's cache (a single lock acquisition), so its
    /// `evictions`/`resident_bytes`/`cached_rows` agree with each other.
    pub cache_shards: Vec<ShardCacheStats>,
    /// Counted work + resident footprint of the current store snapshot,
    /// in the on-device cost model's terms.
    pub run_stats: RunStats,
}

impl ServeStats {
    /// Mean rows per batch (`0` before any traffic).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// Always-on control-plane counters for one model: snapshot updates are
/// operator-rare, so these cost nothing on the serving path and survive
/// snapshot swaps (unlike the per-snapshot cache/run stats).
#[derive(Debug, Default)]
struct ControlStats {
    /// Full store swaps ([`Router::swap`]).
    snapshot_swaps: AtomicU64,
    /// Incremental refreshes ([`Router::apply_delta`]).
    delta_applies: AtomicU64,
    /// Bytes physically copied by CoW page updates across delta applies.
    delta_cow_bytes: AtomicU64,
    /// Pages copied before first write across delta applies.
    delta_pages_touched: AtomicU64,
    /// Hot-row cache entries dropped by delta applies (changed ids
    /// invalidated out of the carried-over LRUs).
    lru_invalidations: AtomicU64,
}

/// One registered model: a swappable store snapshot plus counters that
/// survive snapshot swaps.
#[derive(Debug)]
struct ModelEntry {
    name: String,
    store: RwLock<Arc<ShardedStore>>,
    /// The inference backend score requests for this model execute
    /// (resolved from the [`BackendRegistry`] once, at registration).
    backend: Arc<dyn InferBackend>,
    counters: Arc<ModelCounters>,
    control: ControlStats,
    /// Serializes snapshot updaters ([`Router::swap`] /
    /// [`Router::apply_delta`]) so a delta is always built against the
    /// snapshot it replaces, while readers only ever block on the `store`
    /// write lock for the duration of the `Arc` flip itself.
    update_lock: parking_lot::Mutex<()>,
    /// Set by [`Router::deregister`]; handles then fail fast instead of
    /// serving a model the operator retired.
    retired: AtomicBool,
}

impl ModelEntry {
    fn snapshot(&self) -> Arc<ShardedStore> {
        Arc::clone(&self.store.read())
    }
}

/// A single-id request: one row back through a [`ResponseSlot`].
#[derive(Debug)]
pub(crate) struct OneRequest {
    pub(crate) id: usize,
    pub(crate) store: Arc<ShardedStore>,
    pub(crate) counters: Arc<ModelCounters>,
    pub(crate) slot: Arc<ResponseSlot>,
    pub(crate) admission: Admission,
    /// Sampled-tracing stamp (full telemetry only).
    pub(crate) span: Option<PendingSpan>,
}

/// A slab request: `ids` all route to one shard, rows land in `out`
/// (`ids.len() * dim` values), and both buffers round-trip through the
/// [`SlabSlot`] for reuse.
#[derive(Debug)]
pub(crate) struct SlabRequest {
    pub(crate) ids: Vec<usize>,
    pub(crate) out: Vec<f32>,
    pub(crate) store: Arc<ShardedStore>,
    pub(crate) counters: Arc<ModelCounters>,
    pub(crate) slot: Arc<SlabSlot>,
    pub(crate) admission: Admission,
    /// Sampled-tracing stamp (full telemetry only).
    pub(crate) span: Option<PendingSpan>,
}

/// A score request: the whole id list rides one shard queue (routed by
/// its first id), the captured [`InferBackend`] turns N ids into
/// `out.len()` scores, and the buffers round-trip through the
/// [`SlabSlot`] for reuse — same micro-batching, admission, and counter
/// contract as lookups.
#[derive(Debug)]
pub(crate) struct ScoreRequest {
    pub(crate) ids: Vec<usize>,
    pub(crate) out: Vec<f32>,
    pub(crate) store: Arc<ShardedStore>,
    pub(crate) backend: Arc<dyn InferBackend>,
    pub(crate) counters: Arc<ModelCounters>,
    pub(crate) slot: Arc<SlabSlot>,
    pub(crate) admission: Admission,
    /// Sampled-tracing stamp (full telemetry only).
    pub(crate) span: Option<PendingSpan>,
}

/// What shard queues carry.
#[derive(Debug)]
pub(crate) enum Request {
    One(OneRequest),
    Slab(SlabRequest),
    Score(ScoreRequest),
}

impl Request {
    fn rows(&self) -> usize {
        match self {
            Request::One(_) => 1,
            Request::Slab(s) => s.ids.len(),
            Request::Score(s) => s.ids.len(),
        }
    }

    fn counters(&self) -> &ModelCounters {
        match self {
            Request::One(r) => &r.counters,
            Request::Slab(s) => &s.counters,
            Request::Score(s) => &s.counters,
        }
    }

    fn admission(&self) -> &Admission {
        match self {
            Request::One(r) => &r.admission,
            Request::Slab(s) => &s.admission,
            Request::Score(s) => &s.admission,
        }
    }

    fn span(&self) -> Option<PendingSpan> {
        match self {
            Request::One(r) => r.span,
            Request::Slab(s) => s.span,
            Request::Score(s) => s.span,
        }
    }

    fn slot_ref(&self) -> SlotRef {
        match self {
            Request::One(r) => SlotRef::One(Arc::clone(&r.slot)),
            Request::Slab(s) => SlotRef::Slab(Arc::clone(&s.slot)),
            Request::Score(s) => SlotRef::Slab(Arc::clone(&s.slot)),
        }
    }

    /// Fails the request at dequeue because its deadline passed while it
    /// was queued, counting the drop and — for slab/score requests —
    /// handing the caller's buffers back (the worker still owns them
    /// here).
    fn expire(self, now: Instant) {
        self.counters()
            .expired
            .fetch_add(self.rows() as u64, Ordering::Release);
        match self {
            Request::One(r) => {
                let error = r.admission.deadline_error(now);
                r.slot.fill(Err(error));
            }
            Request::Slab(s) => {
                let error = s.admission.deadline_error(now);
                s.slot.fail_with_buffers(s.ids, s.out, error);
            }
            Request::Score(s) => {
                let error = s.admission.deadline_error(now);
                s.slot.fail_with_buffers(s.ids, s.out, error);
            }
        }
    }
}

/// A cheap handle to either slot kind, kept aside so a panicking batch
/// can be blanketed with errors without keeping the requests alive.
enum SlotRef {
    One(Arc<ResponseSlot>),
    Slab(Arc<SlabSlot>),
}

impl SlotRef {
    fn fail(&self, error: ServeError) {
        match self {
            SlotRef::One(slot) => slot.fill(Err(error)),
            SlotRef::Slab(slot) => slot.fail(error),
        }
    }
}

#[derive(Debug)]
struct RouterInner {
    queues: Vec<ShardQueue<Request>>,
    batch: BatchCounters,
    models: RwLock<HashMap<String, Arc<ModelEntry>>>,
    backends: BackendRegistry,
    config: ServeConfig,
    telemetry: MetricsRegistry,
}

impl RouterInner {
    fn entry(&self, model: &str) -> Result<Arc<ModelEntry>> {
        self.models
            .read()
            .get(model)
            .map(Arc::clone)
            .ok_or_else(|| ServeError::ModelNotFound {
                name: model.to_string(),
            })
    }

    fn stats_for(&self, entry: &ModelEntry) -> ServeStats {
        let b = &self.batch;
        let store = entry.snapshot();
        // Outcomes first with `Acquire`, then `issued`: an observed
        // outcome increment implies its issue increment is observed,
        // so `issued >= requests + shed + expired` holds in every
        // snapshot (see [`ModelCounters`]).
        let requests = entry.counters.requests.load(Ordering::Acquire);
        let shed = entry.counters.shed.load(Ordering::Acquire);
        let expired = entry.counters.expired.load(Ordering::Acquire);
        // ORDERING: Relaxed is sufficient for `issued` *after* the
        // Acquire loads above — every outcome increment was published
        // with Release after its issue increment, so this load already
        // observes at least the issues behind the outcomes read above.
        let issued = entry.counters.issued.load(Ordering::Relaxed);
        debug_assert!(
            issued >= requests + shed + expired,
            "counter contract violated: issued={issued} < requests={requests} + shed={shed} + expired={expired}"
        );
        ServeStats {
            issued,
            requests,
            shed,
            expired,
            batches: b.batches.load(Ordering::Relaxed),
            flushes_full: b.flushes_full.load(Ordering::Relaxed),
            flushes_timeout: b.flushes_timeout.load(Ordering::Relaxed),
            flushes_drain: b.flushes_drain.load(Ordering::Relaxed),
            max_batch_observed: b.max_batch_observed.load(Ordering::Relaxed) as usize,
            cache: store.cache_stats(),
            cache_shards: store.per_shard_cache_stats(),
            run_stats: store.run_stats(),
        }
    }

    /// Enqueues `request` on `shard` under the configured admission
    /// policy: [`AdmissionPolicy::Block`] waits for queue space,
    /// [`AdmissionPolicy::Shed`] waits at most `enqueue_timeout` and
    /// then sheds. A rejected request is handed back alongside the
    /// error so the caller can salvage the buffers it owns — that
    /// hand-back (not an oversight) is what makes the Err variant
    /// large, and it only travels one internal frame.
    #[allow(clippy::result_large_err)]
    fn admit(
        &self,
        shard: usize,
        request: Request,
    ) -> std::result::Result<(), (ServeError, Request)> {
        // memcom-lint: hot-path
        // Admission wait is timed from a fresh stamp here — not from
        // `issued_at`, which for a multi-shard fan-out would charge
        // earlier shards' admission time to later shards.
        let admit_t0 = self.telemetry.stages_on().then(Instant::now);
        let outcome = match self.config.admission {
            AdmissionPolicy::Block => self.queues[shard].push(request),
            AdmissionPolicy::Shed {
                enqueue_timeout, ..
            } => {
                if enqueue_timeout.is_zero() {
                    self.queues[shard].try_push(request)
                } else {
                    self.queues[shard].push_until(request, enqueue_timeout)
                }
            }
        };
        if let Some(t0) = admit_t0 {
            self.telemetry
                .shard(shard)
                .record_admission_wait(t0.elapsed().as_nanos() as u64);
        }
        match outcome {
            Ok(()) => Ok(()),
            Err(PushError::Closed(request)) => Err((ServeError::ShuttingDown, request)),
            Err(PushError::Full(request)) => {
                request
                    .counters()
                    .shed
                    .fetch_add(request.rows() as u64, Ordering::Release);
                // A sampled shed completes its span client-side: it
                // never reaches a worker. `queue_wait` is the time
                // spent failing admission; there is no service time.
                if let (Some(t0), Some(pending)) = (admit_t0, request.span()) {
                    let total = request
                        .admission()
                        .issued_at()
                        .map(|issued_at| issued_at.elapsed())
                        .unwrap_or_else(|| t0.elapsed());
                    self.telemetry.complete(Span {
                        seq: pending.seq,
                        shard,
                        rows: request.rows(),
                        queue_wait_nanos: t0.elapsed().as_nanos() as u64,
                        service_nanos: 0,
                        total_nanos: total.as_nanos() as u64,
                        outcome: SpanOutcome::Shed,
                    });
                }
                let waited = match self.config.admission {
                    AdmissionPolicy::Shed {
                        enqueue_timeout, ..
                    } => enqueue_timeout,
                    // `push` never reports Full.
                    AdmissionPolicy::Block => Duration::ZERO,
                };
                // Queue depth ÷ calibrated shard capacity: how long the
                // backlog ahead of a retry needs to drain.
                let retry_after = self.config.suggested_backoff(self.queues[shard].depth());
                Err((
                    ServeError::Overloaded {
                        waited,
                        retry_after,
                    },
                    request,
                ))
            }
        }
    }
    // memcom-lint: end-hot-path

    fn check_store(&self, store: &ShardedStore) -> Result<()> {
        if store.n_shards() != self.config.n_shards {
            return Err(ServeError::BadConfig {
                context: format!(
                    "store has {} shards but router runs {}",
                    store.n_shards(),
                    self.config.n_shards
                ),
            });
        }
        Ok(())
    }
}

/// A multi-model embedding router: shared shard workers serving any
/// number of named, atomically swappable model snapshots.
///
/// ```
/// use memcom_core::{MemCom, MemComConfig};
/// use memcom_serve::{Router, ServeConfig, ShardedStore};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let us = MemCom::new(MemComConfig::new(10_000, 32, 1_000), &mut rng)?;
/// let de = MemCom::new(MemComConfig::new(5_000, 32, 500), &mut rng)?;
///
/// let router = Router::start(ServeConfig::with_shards(2))?;
/// router.register("country/us", &us)?;
/// router.register("country/de", &de)?;
///
/// let row = router.handle("country/us")?.get(123)?;
/// assert_eq!(row.len(), 32);
///
/// // Online table refresh: an atomic snapshot swap, no restart.
/// let retrained = MemCom::new(MemComConfig::new(5_000, 32, 500), &mut rng)?;
/// let store = ShardedStore::build(&retrained, 2, 1024, 16 * 1024)?;
/// let _old = router.swap("country/de", store)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Router {
    inner: Arc<RouterInner>,
    workers: Vec<JoinHandle<()>>,
}

impl Router {
    /// Validates `config` and starts the shard workers (no models yet).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for invalid configs — this is
    /// unconditional, callers cannot skip validation.
    pub fn start(config: ServeConfig) -> Result<Self> {
        config.validate()?;
        let queues = (0..config.n_shards)
            .map(|_| ShardQueue::new(config.queue_depth))
            .collect();
        let telemetry = MetricsRegistry::new(&config.telemetry, config.n_shards);
        let inner = Arc::new(RouterInner {
            queues,
            batch: BatchCounters::default(),
            models: RwLock::new(HashMap::new()),
            backends: BackendRegistry::new(),
            config,
            telemetry,
        });
        let workers = (0..inner.config.n_shards)
            .map(|shard_idx| {
                let inner = Arc::clone(&inner);
                let (max_batch, max_wait) = (inner.config.max_batch, inner.config.max_wait);
                std::thread::Builder::new()
                    .name(format!("memcom-serve-{shard_idx}"))
                    .spawn(move || worker_loop(&inner, shard_idx, max_batch, max_wait))
                    .expect("spawn serving worker")
            })
            .collect();
        Ok(Router { inner, workers })
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.inner.config
    }

    /// Builds a store from `emb` (using the router's config for shard
    /// count, cache capacity, page size, and storage dtype) and registers
    /// it as `name`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ModelExists`] for duplicate names and
    /// propagates store-construction failures.
    pub fn register(&self, name: &str, emb: &dyn memcom_core::EmbeddingCompressor) -> Result<()> {
        self.register_with_dtype(name, emb, self.inner.config.dtype)
    }

    /// Like [`register`](Self::register), but stores `name`'s rows as
    /// `dtype` regardless of the config default — so fp32 and int8
    /// variants of the *same* model can coexist under one worker set for
    /// an A/B:
    ///
    /// ```
    /// # use memcom_core::{MemCom, MemComConfig};
    /// # use memcom_serve::{Dtype, Router, ServeConfig};
    /// # use rand::{rngs::StdRng, SeedableRng};
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// # let mut rng = StdRng::seed_from_u64(0);
    /// # let emb = MemCom::new(MemComConfig::new(1_000, 16, 100), &mut rng)?;
    /// # let router = Router::start(ServeConfig::with_shards(2))?;
    /// router.register("emb/fp32", &emb)?;
    /// router.register_with_dtype("emb/int8", &emb, Dtype::Int8)?;
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Same conditions as [`register`](Self::register).
    pub fn register_with_dtype(
        &self,
        name: &str,
        emb: &dyn memcom_core::EmbeddingCompressor,
        dtype: memcom_ondevice::Dtype,
    ) -> Result<()> {
        let config = &self.inner.config;
        let store = ShardedStore::build_quantized(
            emb,
            config.n_shards,
            config.cache_capacity,
            config.page_size,
            dtype,
        )?;
        self.register_store(name, store)
    }

    /// Registers an already-built store as `name`, serving through the
    /// default [`crate::infer::LookupBackend`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ModelExists`] for duplicate names and
    /// [`ServeError::BadConfig`] when the store's shard count disagrees
    /// with the router's.
    pub fn register_store(&self, name: &str, store: ShardedStore) -> Result<()> {
        self.register_store_with_backend(name, store, LOOKUP_BACKEND)
    }

    /// The router's [`BackendRegistry`]: register named
    /// [`InferBackend`]s here, then bind models to them with
    /// [`register_with_backend`](Self::register_with_backend) /
    /// [`register_store_with_backend`](Self::register_store_with_backend).
    pub fn backends(&self) -> &BackendRegistry {
        &self.inner.backends
    }

    /// Builds a `dtype`-quantized store from `emb` and registers it as
    /// `name`, serving score requests through the backend registered
    /// under `backend` — the full-model counterpart of
    /// [`register_with_dtype`](Self::register_with_dtype).
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`register_store_with_backend`](Self::register_store_with_backend),
    /// plus propagated store-construction failures.
    pub fn register_with_backend(
        &self,
        name: &str,
        emb: &dyn memcom_core::EmbeddingCompressor,
        dtype: memcom_ondevice::Dtype,
        backend: &str,
    ) -> Result<()> {
        let config = &self.inner.config;
        let store = ShardedStore::build_quantized(
            emb,
            config.n_shards,
            config.cache_capacity,
            config.page_size,
            dtype,
        )?;
        self.register_store_with_backend(name, store, backend)
    }

    /// Registers an already-built store as `name`, bound to the
    /// [`InferBackend`] registered under `backend`. The name is
    /// resolved (and the backend's
    /// [`check_store`](InferBackend::check_store) validated) once,
    /// here — serving never touches the registry again.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ModelExists`] for duplicate model names
    /// and [`ServeError::BadConfig`] for unknown backend names, a
    /// store/backend incompatibility, or a shard-count mismatch.
    pub fn register_store_with_backend(
        &self,
        name: &str,
        store: ShardedStore,
        backend: &str,
    ) -> Result<()> {
        self.inner.check_store(&store)?;
        let backend = self.inner.backends.get(backend)?;
        backend.check_store(&store)?;
        let mut models = self.inner.models.write();
        if models.contains_key(name) {
            return Err(ServeError::ModelExists {
                name: name.to_string(),
            });
        }
        models.insert(
            name.to_string(),
            Arc::new(ModelEntry {
                name: name.to_string(),
                store: RwLock::new(Arc::new(store)),
                backend,
                counters: Arc::new(ModelCounters::default()),
                control: ControlStats::default(),
                update_lock: parking_lot::Mutex::new(()),
                retired: AtomicBool::new(false),
            }),
        );
        Ok(())
    }

    /// Atomically swaps `name`'s store snapshot (`Arc` flip), returning
    /// the previous snapshot. Requests already enqueued finish against
    /// the old snapshot — which stays fully readable through the returned
    /// `Arc` — while every subsequent request reads the new one; traffic
    /// never stops.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ModelNotFound`] for unknown names and
    /// [`ServeError::BadConfig`] on a shard-count mismatch.
    pub fn swap(&self, name: &str, new_store: ShardedStore) -> Result<Arc<ShardedStore>> {
        self.inner.check_store(&new_store)?;
        let entry = self.inner.entry(name)?;
        let _updating = entry.update_lock.lock();
        entry.control.snapshot_swaps.fetch_add(1, Ordering::Relaxed);
        let mut slot = entry.store.write();
        Ok(std::mem::replace(&mut *slot, Arc::new(new_store)))
    }

    /// Applies a row-level [`StoreDelta`] to `name`'s current snapshot
    /// and atomically flips the result in, returning the superseded
    /// snapshot — the incremental counterpart of [`swap`](Self::swap).
    ///
    /// The new snapshot is built by [`ShardedStore::apply_delta`]:
    /// untouched pages stay physically shared with the old snapshot
    /// (`Arc`s, not copies), each shard's hot-row LRU carries over with
    /// only the changed ids invalidated, and the certified error bound
    /// is re-certified over the re-encoded rows — so refreshing 0.1% of
    /// a table costs ~0.1% of a rebuild in bytes and time instead of
    /// O(table) work and 2× peak memory.
    ///
    /// The flip preserves the same guarantee as `swap`: requests already
    /// enqueued finish against the old snapshot (fully readable through
    /// the returned `Arc` until the last in-flight request drops it),
    /// every subsequent request reads the new one, and traffic never
    /// stops. Concurrent updaters for the same model are serialized, so
    /// a delta is always applied to the snapshot it was built against.
    ///
    /// ```
    /// # use memcom_core::{FullEmbedding, EmbeddingCompressor};
    /// # use memcom_serve::{Router, ServeConfig, StoreDelta, DEFAULT_MODEL};
    /// # use rand::{rngs::StdRng, SeedableRng};
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// # let mut rng = StdRng::seed_from_u64(0);
    /// # let emb = FullEmbedding::new(1_000, 16, &mut rng)?;
    /// # let router = Router::start(ServeConfig::with_shards(2))?;
    /// # router.register(DEFAULT_MODEL, &emb)?;
    /// let mut delta = StoreDelta::new(16);
    /// delta.upsert_row(42, &[0.5; 16])?;            // refreshed entity
    /// delta.upsert_row(1_000, &[0.25; 16])?;        // brand-new entity
    /// let old = router.apply_delta(DEFAULT_MODEL, &delta)?;
    /// assert_eq!(router.snapshot(DEFAULT_MODEL)?.vocab(), 1_001);
    /// assert_eq!(old.vocab(), 1_000); // superseded snapshot intact
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ModelNotFound`] for unknown names and
    /// propagates [`ShardedStore::apply_delta`] failures (row-width
    /// mismatch, removal past the vocabulary).
    pub fn apply_delta(&self, name: &str, delta: &StoreDelta) -> Result<Arc<ShardedStore>> {
        let entry = self.inner.entry(name)?;
        let _updating = entry.update_lock.lock();
        let old_store = entry.snapshot();
        let new_store = old_store.apply_delta(delta)?;
        // The fresh snapshot's CoW counters start at zero on the shared
        // clone, so after the apply they describe exactly this delta.
        let control = &entry.control;
        control.delta_applies.fetch_add(1, Ordering::Relaxed);
        control
            .delta_cow_bytes
            .fetch_add(new_store.cow_copied_bytes(), Ordering::Relaxed);
        control
            .delta_pages_touched
            .fetch_add(new_store.cow_touched_pages(), Ordering::Relaxed);
        // Rows the carried-over LRUs dropped: changed ids that were hot.
        let cached = |store: &ShardedStore| -> u64 {
            store
                .per_shard_cache_stats()
                .iter()
                .map(|s| s.cached_rows as u64)
                .sum()
        };
        control.lru_invalidations.fetch_add(
            cached(&old_store).saturating_sub(cached(&new_store)),
            Ordering::Relaxed,
        );
        let mut slot = entry.store.write();
        Ok(std::mem::replace(&mut *slot, Arc::new(new_store)))
    }

    /// Removes `name` from the registry. Existing handles fail fast with
    /// [`ServeError::ModelNotFound`]; requests already in flight still
    /// complete against their captured snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ModelNotFound`] for unknown names.
    pub fn deregister(&self, name: &str) -> Result<()> {
        let entry =
            self.inner
                .models
                .write()
                .remove(name)
                .ok_or_else(|| ServeError::ModelNotFound {
                    name: name.to_string(),
                })?;
        entry.retired.store(true, Ordering::Release);
        Ok(())
    }

    /// Registered model names, sorted.
    pub fn model_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.models.read().keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// A cloneable client handle bound to `name`. Handles stay valid
    /// across shutdown and swaps; after [`deregister`](Self::deregister)
    /// lookups fail with [`ServeError::ModelNotFound`], while the
    /// metadata accessors ([`RouterHandle::vocab`]/[`RouterHandle::dim`]/
    /// [`RouterHandle::snapshot`]/[`RouterHandle::stats`]) keep
    /// reporting the final snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ModelNotFound`] for unknown names.
    pub fn handle(&self, name: &str) -> Result<RouterHandle> {
        let model = self.inner.entry(name)?;
        Ok(RouterHandle {
            inner: Arc::clone(&self.inner),
            model,
        })
    }

    /// The current store snapshot of `name` (footprint/cost inspection).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ModelNotFound`] for unknown names.
    pub fn snapshot(&self, name: &str) -> Result<Arc<ShardedStore>> {
        Ok(self.inner.entry(name)?.snapshot())
    }

    /// Current statistics for `name` (see [`ServeStats`] for which
    /// fields are per-model vs router-wide).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ModelNotFound`] for unknown names.
    pub fn stats(&self, name: &str) -> Result<ServeStats> {
        let entry = self.inner.entry(name)?;
        Ok(self.inner.stats_for(&entry))
    }

    /// A point-in-time [`MetricsSnapshot`] across every registered
    /// model: always-on row and control-plane counters at any
    /// [`crate::TelemetryLevel`], plus per-stage histograms and sampled
    /// traces at [`crate::TelemetryLevel::Full`]. Render it with
    /// [`MetricsSnapshot::to_prometheus`] or
    /// [`MetricsSnapshot::to_json`].
    pub fn metrics(&self) -> MetricsSnapshot {
        let entries: Vec<Arc<ModelEntry>> = self.inner.models.read().values().cloned().collect();
        let mut models: Vec<ModelMetrics> = entries
            .iter()
            .map(|entry| {
                let c = &entry.counters;
                // Same read discipline as `stats_for`: outcomes first
                // with `Acquire`, then `issued`.
                let requests = c.requests.load(Ordering::Acquire);
                let shed = c.shed.load(Ordering::Acquire);
                let expired = c.expired.load(Ordering::Acquire);
                // ORDERING: Relaxed after the Acquire outcome loads —
                // every outcome was Release-published after its issue,
                // so this load covers the outcomes above (contract
                // `issued >= requests + shed + expired`).
                let issued = c.issued.load(Ordering::Relaxed);
                debug_assert!(
                    issued >= requests + shed + expired,
                    "counter contract violated for {}: issued={issued} < requests={requests} + shed={shed} + expired={expired}",
                    entry.name
                );
                let control = &entry.control;
                ModelMetrics {
                    name: entry.name.clone(),
                    issued,
                    requests,
                    shed,
                    expired,
                    snapshot_swaps: control.snapshot_swaps.load(Ordering::Relaxed),
                    delta_applies: control.delta_applies.load(Ordering::Relaxed),
                    delta_cow_bytes: control.delta_cow_bytes.load(Ordering::Relaxed),
                    delta_pages_touched: control.delta_pages_touched.load(Ordering::Relaxed),
                    lru_invalidations: control.lru_invalidations.load(Ordering::Relaxed),
                    cache_shards: entry.snapshot().per_shard_cache_stats(),
                }
            })
            .collect();
        models.sort_by(|a, b| a.name.cmp(&b.name));
        let telemetry = &self.inner.telemetry;
        let (traced_spans, recent_traces, slowest_traces) = telemetry.traces_snapshot();
        MetricsSnapshot {
            level: telemetry.level(),
            uptime: telemetry.uptime(),
            traced_spans,
            models,
            stages: telemetry.stage_metrics(),
            recent_traces,
            slowest_traces,
        }
    }

    /// Stops accepting requests, drains every queue (in-flight requests
    /// of **all** models are answered, none dropped or misrouted), joins
    /// the workers, and returns final per-model statistics sorted by
    /// name.
    pub fn shutdown(mut self) -> Vec<(String, ServeStats)> {
        self.shutdown_in_place();
        let entries: Vec<Arc<ModelEntry>> = self.inner.models.read().values().cloned().collect();
        let mut stats: Vec<(String, ServeStats)> = entries
            .iter()
            .map(|e| (e.name.clone(), self.inner.stats_for(e)))
            .collect();
        stats.sort_by(|a, b| a.0.cmp(&b.0));
        stats
    }

    fn shutdown_in_place(&mut self) {
        for queue in &self.inner.queues {
            queue.close();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// A cheap, cloneable, thread-safe client bound to one model of a
/// [`Router`].
#[derive(Debug, Clone)]
pub struct RouterHandle {
    inner: Arc<RouterInner>,
    model: Arc<ModelEntry>,
}

impl RouterHandle {
    /// The model this handle routes to.
    pub fn model_name(&self) -> &str {
        &self.model.name
    }

    /// The model's current store snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ModelNotFound`] once the model is
    /// deregistered.
    pub fn store(&self) -> Result<Arc<ShardedStore>> {
        if self.model.retired.load(Ordering::Acquire) {
            return Err(ServeError::ModelNotFound {
                name: self.model.name.clone(),
            });
        }
        Ok(self.model.snapshot())
    }

    /// The model's current store snapshot regardless of registration
    /// state — deregistration fails *lookups*, but footprint and cost
    /// inspection stay available on the final snapshot.
    pub fn snapshot(&self) -> Arc<ShardedStore> {
        self.model.snapshot()
    }

    /// Current statistics for this handle's model (available even after
    /// deregistration; see [`ServeStats`] for per-model vs router-wide
    /// fields).
    pub fn stats(&self) -> ServeStats {
        self.inner.stats_for(&self.model)
    }

    /// Served vocabulary size of the current snapshot (still answers
    /// after deregistration, from the final snapshot).
    pub fn vocab(&self) -> usize {
        self.model.snapshot().vocab()
    }

    /// Embedding dimensionality of the current snapshot (still answers
    /// after deregistration, from the final snapshot).
    pub fn dim(&self) -> usize {
        self.model.snapshot().dim()
    }

    /// Looks up one embedding row, blocking until the answer arrives.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::IdOutOfVocab`] for bad ids,
    /// [`ServeError::ModelNotFound`] after deregistration, and
    /// [`ServeError::ShuttingDown`] after shutdown. Under
    /// [`AdmissionPolicy::Shed`] a full queue sheds the request with
    /// [`ServeError::Overloaded`] after at most `enqueue_timeout`, and a
    /// request whose `request_deadline` passes while queued is answered
    /// with [`ServeError::DeadlineExceeded`] instead of a row.
    pub fn get(&self, id: usize) -> Result<Vec<f32>> {
        self.get_with_deadline(id, None)
    }

    /// [`get`](Self::get) with a per-request deadline override.
    ///
    /// Under [`AdmissionPolicy::Shed`] the effective deadline is the
    /// tightest of the policy's `request_deadline` and `deadline`;
    /// under [`AdmissionPolicy::Block`] the override is ignored, so a
    /// blocking router still never expires requests. Remote callers
    /// (the `memcom-net` tier) use this to map wire-level deadlines
    /// onto admission control without reconfiguring the router.
    pub fn get_with_deadline(
        &self,
        id: usize,
        deadline: Option<std::time::Duration>,
    ) -> Result<Vec<f32>> {
        let store = self.store()?;
        store.check_id(id)?;
        // ORDERING: issue increments stay Relaxed; the matching outcome
        // (request/shed/expired) is Release-published after this, and
        // snapshot readers load outcomes with Acquire before `issued`,
        // which keeps `issued >= requests + shed + expired` observable.
        self.model.counters.issued.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(ResponseSlot::new());
        let shard = store.shard_of(id);
        let request = Request::One(OneRequest {
            id,
            store,
            counters: Arc::clone(&self.model.counters),
            slot: Arc::clone(&slot),
            admission: Admission::stamp_with(
                self.inner.config.admission,
                self.inner.telemetry.stages_on(),
                deadline,
            ),
            span: self.inner.telemetry.sample(),
        });
        self.inner.admit(shard, request).map_err(|(e, _)| e)?;
        slot.wait()
    }

    /// Counts rows on shards never attempted because an earlier shard
    /// shed the fanned-out request: they were refused admission along
    /// with it, so `requests + shed + expired` stays equal to the rows
    /// issued even for partially-admitted multi-shard requests
    /// (already-admitted sub-requests still run and count as served).
    fn count_skipped_as_shed(&self, rows: usize) {
        if rows > 0 {
            self.model
                .counters
                .shed
                .fetch_add(rows as u64, Ordering::Release);
        }
    }

    /// Looks up many ids, pipelining one slab request per shard before
    /// blocking, and returns owned per-row vectors.
    ///
    /// For the allocation-free variant feed a reusable [`EmbedBatch`] to
    /// [`get_batch_into`](Self::get_batch_into).
    ///
    /// # Errors
    ///
    /// Same conditions as [`get`](Self::get); the first failure wins.
    pub fn get_many(&self, ids: &[usize]) -> Result<Vec<Vec<f32>>> {
        self.get_many_with_deadline(ids, None)
    }

    /// [`get_many`](Self::get_many) with a per-request deadline
    /// override; see [`get_with_deadline`](Self::get_with_deadline)
    /// for the override semantics.
    pub fn get_many_with_deadline(
        &self,
        ids: &[usize],
        deadline: Option<std::time::Duration>,
    ) -> Result<Vec<Vec<f32>>> {
        let store = self.store()?;
        for &id in ids {
            store.check_id(id)?;
        }
        // ORDERING: issue increments stay Relaxed; outcomes are
        // Release-published after them and snapshots read outcomes
        // Acquire-first (see `stats_for`).
        self.model
            .counters
            .issued
            .fetch_add(ids.len() as u64, Ordering::Relaxed);
        let dim = store.dim();
        let n_shards = store.n_shards();
        let mut shard_ids: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
        let mut shard_pos: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
        for (pos, &id) in ids.iter().enumerate() {
            let s = store.shard_of(id);
            shard_ids[s].push(id);
            shard_pos[s].push(pos);
        }
        let admission = Admission::stamp_with(
            self.inner.config.admission,
            self.inner.telemetry.stages_on(),
            deadline,
        );
        let mut pending: Vec<(usize, Arc<SlabSlot>)> = Vec::new();
        let mut first_err = None;
        let mut failed_at = None;
        for (s, slab_ids) in shard_ids.iter_mut().enumerate() {
            if slab_ids.is_empty() {
                continue;
            }
            let out = vec![0f32; slab_ids.len() * dim];
            let slot = Arc::new(SlabSlot::new());
            let request = Request::Slab(SlabRequest {
                ids: std::mem::take(slab_ids),
                out,
                store: Arc::clone(&store),
                counters: Arc::clone(&self.model.counters),
                slot: Arc::clone(&slot),
                admission,
                span: self.inner.telemetry.sample(),
            });
            if let Err((e, _)) = self.inner.admit(s, request) {
                first_err = Some(e);
                failed_at = Some(s);
                break;
            }
            pending.push((s, slot));
        }
        if let (Some(ServeError::Overloaded { .. }), Some(s)) = (&first_err, failed_at) {
            self.count_skipped_as_shed(shard_ids[s + 1..].iter().map(Vec::len).sum());
        }
        let mut rows: Vec<Vec<f32>> = vec![Vec::new(); ids.len()];
        for (s, slot) in pending {
            let outcome = slot.wait();
            match outcome.result {
                Ok(()) => {
                    for (j, &pos) in shard_pos[s].iter().enumerate() {
                        rows[pos] = outcome.out[j * dim..(j + 1) * dim].to_vec();
                    }
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(rows),
        }
    }

    /// Looks up many ids into the caller-owned, reusable `batch` slab —
    /// the zero-copy batch path. On success `batch` holds the rows in
    /// request order; at a steady batch shape the call performs **no
    /// per-row heap allocation** end to end (one response-slot `Arc` per
    /// shard touched is the only steady-state allocation).
    ///
    /// # Errors
    ///
    /// Same conditions as [`get`](Self::get); on error the batch's
    /// contents are unspecified but the buffer stays reusable.
    pub fn get_batch_into(&self, ids: &[usize], batch: &mut EmbedBatch) -> Result<()> {
        self.get_batch_into_with_deadline(ids, batch, None)
    }

    /// [`get_batch_into`](Self::get_batch_into) with a per-request
    /// deadline override; see
    /// [`get_with_deadline`](Self::get_with_deadline) for the override
    /// semantics.
    pub fn get_batch_into_with_deadline(
        &self,
        ids: &[usize],
        batch: &mut EmbedBatch,
        deadline: Option<std::time::Duration>,
    ) -> Result<()> {
        let store = self.store()?;
        for &id in ids {
            store.check_id(id)?;
        }
        // ORDERING: issue increments stay Relaxed; outcomes are
        // Release-published after them and snapshots read outcomes
        // Acquire-first (see `stats_for`).
        self.model
            .counters
            .issued
            .fetch_add(ids.len() as u64, Ordering::Relaxed);
        let dim = store.dim();
        let n_shards = store.n_shards();
        batch.begin(ids, dim, n_shards);
        for (pos, &id) in ids.iter().enumerate() {
            batch.shard_pos[store.shard_of(id)].push(pos);
        }
        let admission = Admission::stamp_with(
            self.inner.config.admission,
            self.inner.telemetry.stages_on(),
            deadline,
        );
        let mut first_err = None;
        let mut failed_at = None;
        for s in 0..n_shards {
            if batch.shard_pos[s].is_empty() {
                continue;
            }
            let (mut slab_ids, mut out) = batch.take_buffers();
            slab_ids.clear();
            slab_ids.extend(batch.shard_pos[s].iter().map(|&pos| ids[pos]));
            out.clear();
            out.resize(slab_ids.len() * dim, 0.0);
            let slot = Arc::new(SlabSlot::new());
            let request = Request::Slab(SlabRequest {
                ids: slab_ids,
                out,
                store: Arc::clone(&store),
                counters: Arc::clone(&self.model.counters),
                slot: Arc::clone(&slot),
                admission,
                span: self.inner.telemetry.sample(),
            });
            match self.inner.admit(s, request) {
                Ok(()) => batch.pending.push((s, slot)),
                Err((e, rejected)) => {
                    // A shed (or shutdown-rejected) slab comes back whole
                    // — recycle its buffers so the shedding hot path
                    // allocates nothing.
                    if let Request::Slab(s) = rejected {
                        batch.recycle_buffers(s.ids, s.out);
                    }
                    first_err = Some(e);
                    failed_at = Some(s);
                    break;
                }
            }
        }
        if let (Some(ServeError::Overloaded { .. }), Some(s)) = (&first_err, failed_at) {
            self.count_skipped_as_shed(batch.shard_pos[s + 1..].iter().map(Vec::len).sum());
        }
        while let Some((s, slot)) = batch.pending.pop() {
            let outcome = slot.wait();
            match outcome.result {
                Ok(()) => {
                    for (j, &pos) in batch.shard_pos[s].iter().enumerate() {
                        batch.data[pos * dim..(pos + 1) * dim]
                            .copy_from_slice(&outcome.out[j * dim..(j + 1) * dim]);
                    }
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
            // A worker-lost blanket returns capacity-less placeholders
            // (the real buffers died with the panicking batch) — keep
            // those out of the pool so it only ever holds warm buffers.
            if outcome.out.capacity() > 0 || outcome.ids.capacity() > 0 {
                batch.recycle_buffers(outcome.ids, outcome.out);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Scores `ids` through the model's [`InferBackend`] — N item ids
    /// in, K values out (K = the backend's
    /// [`out_len`](InferBackend::out_len); for the default lookup
    /// backend this is the flattened rows, for a ranking backend the
    /// head's scores). The request rides the same shard queues,
    /// admission policy, and counters as lookups.
    ///
    /// # Errors
    ///
    /// Same conditions as [`get`](Self::get), plus
    /// [`ServeError::BadConfig`] for an empty id list.
    pub fn score(&self, ids: &[usize]) -> Result<Vec<f32>> {
        self.score_with_deadline(ids, None)
    }

    /// [`score`](Self::score) with a per-request deadline override; see
    /// [`get_with_deadline`](Self::get_with_deadline) for the override
    /// semantics.
    pub fn score_with_deadline(
        &self,
        ids: &[usize],
        deadline: Option<std::time::Duration>,
    ) -> Result<Vec<f32>> {
        let mut batch = ScoreBatch::new();
        self.score_batch_into_with_deadline(ids, &mut batch, deadline)?;
        Ok(batch.take_scores())
    }

    /// Scores `ids` into the caller-owned, reusable `batch` — the
    /// allocation-free score path. On success [`ScoreBatch::scores`]
    /// holds the backend's output; at a steady request shape the call
    /// performs **no per-id heap allocation** end to end (the response
    /// slot `Arc` is the only steady-state allocation, as on the lookup
    /// batch path).
    ///
    /// # Errors
    ///
    /// Same conditions as [`score`](Self::score); on error the batch's
    /// contents are unspecified but its buffers stay reusable.
    pub fn score_batch_into(&self, ids: &[usize], batch: &mut ScoreBatch) -> Result<()> {
        self.score_batch_into_with_deadline(ids, batch, None)
    }

    /// [`score_batch_into`](Self::score_batch_into) with a per-request
    /// deadline override; see
    /// [`get_with_deadline`](Self::get_with_deadline) for the override
    /// semantics.
    pub fn score_batch_into_with_deadline(
        &self,
        ids: &[usize],
        batch: &mut ScoreBatch,
        deadline: Option<std::time::Duration>,
    ) -> Result<()> {
        let store = self.store()?;
        if ids.is_empty() {
            return Err(ServeError::BadConfig {
                context: "a score request needs at least one id".to_string(),
            });
        }
        for &id in ids {
            store.check_id(id)?;
        }
        // ORDERING: issue increments stay Relaxed; outcomes are
        // Release-published after them and snapshots read outcomes
        // Acquire-first (see `stats_for`).
        self.model
            .counters
            .issued
            .fetch_add(ids.len() as u64, Ordering::Relaxed);
        let backend = Arc::clone(&self.model.backend);
        let out_len = backend.out_len(ids.len(), &store);
        // The whole request rides one shard queue — its first id's —
        // for admission/batching; the executing worker gathers rows
        // across shards (the store is thread-safe).
        let shard = store.shard_of(ids[0]);
        let (mut req_ids, mut out) = batch.take_buffers();
        req_ids.clear();
        req_ids.extend_from_slice(ids);
        out.clear();
        out.resize(out_len, 0.0);
        let slot = Arc::new(SlabSlot::new());
        let request = Request::Score(ScoreRequest {
            ids: req_ids,
            out,
            store,
            backend,
            counters: Arc::clone(&self.model.counters),
            slot: Arc::clone(&slot),
            admission: Admission::stamp_with(
                self.inner.config.admission,
                self.inner.telemetry.stages_on(),
                deadline,
            ),
            span: self.inner.telemetry.sample(),
        });
        match self.inner.admit(shard, request) {
            Ok(()) => {}
            Err((e, rejected)) => {
                // A shed (or shutdown-rejected) request comes back whole
                // — recycle its buffers so the shedding path allocates
                // nothing.
                if let Request::Score(s) = rejected {
                    batch.recycle_buffers(s.ids, s.out);
                }
                return Err(e);
            }
        }
        let outcome = slot.wait();
        // A worker-lost blanket returns capacity-less placeholders —
        // keep those out of the batch so it only holds warm buffers.
        if outcome.out.capacity() > 0 || outcome.ids.capacity() > 0 {
            batch.accept_outcome(outcome.ids, outcome.out);
        }
        outcome.result
    }
}

fn worker_loop(
    inner: &RouterInner,
    shard_idx: usize,
    max_batch: usize,
    max_wait: std::time::Duration,
) {
    let queue = &inner.queues[shard_idx];
    // Reusable scratch: the popped batch and its panic-blanket slot list
    // (refilled per flush), the single-id run coalescing buffers, and
    // the inference-backend scratch — the worker allocates nothing per
    // batch at a steady shape.
    let mut batch: Vec<Request> = Vec::new();
    let mut slots: Vec<SlotRef> = Vec::new();
    let mut one_ids: Vec<usize> = Vec::new();
    let mut one_slots: Vec<Arc<ResponseSlot>> = Vec::new();
    let mut one_spans: Vec<SpanSeed> = Vec::new();
    let mut infer_scratch = InferScratch::new();
    while let Some((reason, assembly)) = queue.pop_batch_into_timed(&mut batch, max_batch, max_wait)
    {
        // A panic while serving must not strand blocked requesters: keep
        // the slots, answer `WorkerLost` to any left unfilled (fill is
        // first-write-wins), and keep the worker alive for later batches.
        slots.clear();
        slots.extend(batch.iter().map(Request::slot_ref));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve_batch(
                inner,
                shard_idx,
                &mut batch,
                reason,
                assembly,
                &mut one_ids,
                &mut one_slots,
                &mut one_spans,
                &mut infer_scratch,
            );
        }));
        if outcome.is_err() {
            for slot in &slots {
                slot.fail(ServeError::WorkerLost);
            }
            batch.clear();
            one_ids.clear();
            one_slots.clear();
            one_spans.clear();
        }
    }
}

#[allow(clippy::too_many_arguments)]
// memcom-lint: hot-path
fn serve_batch(
    inner: &RouterInner,
    shard_idx: usize,
    batch: &mut Vec<Request>,
    reason: FlushReason,
    assembly: Duration,
    one_ids: &mut Vec<usize>,
    one_slots: &mut Vec<Arc<ResponseSlot>>,
    one_spans: &mut Vec<SpanSeed>,
    infer_scratch: &mut InferScratch,
) {
    let c = &inner.batch;
    let rows: usize = batch.iter().map(Request::rows).sum();
    // ORDERING: this is the batcher-wide rows tally (BatchCounters),
    // not the per-model contract counter of the same name; worker
    // threads only race on the total, which needs no ordering.
    c.requests.fetch_add(rows as u64, Ordering::Relaxed);
    c.batches.fetch_add(1, Ordering::Relaxed);
    match reason {
        FlushReason::Full => c.flushes_full.fetch_add(1, Ordering::Relaxed),
        FlushReason::Timeout => c.flushes_timeout.fetch_add(1, Ordering::Relaxed),
        FlushReason::Drain => c.flushes_drain.fetch_add(1, Ordering::Relaxed),
    };
    c.max_batch_observed
        .fetch_max(rows as u64, Ordering::Relaxed);

    // Deadlines are evaluated once, at dequeue time — a request that
    // expired while queued is answered `DeadlineExceeded` below without
    // costing a store read (or the simulated store latency).
    // memcom-lint: allow(L002) -- one read per flushed batch, amortized over every request in it; deadline evaluation needs a wall-clock anchor
    let now = Instant::now();
    let live = |request: &Request| match request.admission().expires_at() {
        Some(expires_at) => now < expires_at,
        None => true,
    };

    let telemetry = &inner.telemetry;
    let stages_on = telemetry.stages_on();
    if stages_on {
        // One stage lock per flushed batch: the shard's whole dequeue
        // story (assembly hold, batch size, every request's queue wait)
        // folds in at once.
        let mut stages = telemetry.shard(shard_idx).stages();
        stages.batch_assembly.record(assembly.as_nanos() as u64);
        stages.batch_size.record(rows as u64 * SIZE_SCALE);
        for request in batch.iter() {
            if let Some(issued_at) = request.admission().issued_at() {
                let waited = now.saturating_duration_since(issued_at);
                stages.queue_wait.record(waited.as_nanos() as u64);
            }
        }
    }

    // Simulated backing-store service time, charged once per flushed
    // batch that actually reaches the store (see
    // [`ServeConfig::store_latency`]).
    let store_latency = inner.config.store_latency;
    if !store_latency.is_zero() && batch.iter().any(live) {
        std::thread::sleep(store_latency);
    }

    // Serve in arrival order, coalescing runs of single-id requests that
    // target the same store snapshot (the common single-model case) into
    // one store batch, so the legacy path keeps its lock amortization.
    let mut run: Option<(Arc<ShardedStore>, Arc<ModelCounters>)> = None;
    for request in batch.drain(..) {
        if !live(&request) {
            // A sampled expired request's span ends here: queued its
            // whole life, no service.
            if let Some(pending) = request.span() {
                if let Some(issued_at) = request.admission().issued_at() {
                    let waited = now.saturating_duration_since(issued_at).as_nanos() as u64;
                    telemetry.complete(Span {
                        seq: pending.seq,
                        shard: shard_idx,
                        rows: request.rows(),
                        queue_wait_nanos: waited,
                        service_nanos: 0,
                        total_nanos: waited,
                        outcome: SpanOutcome::Expired,
                    });
                }
            }
            request.expire(now);
            continue;
        }
        match request {
            Request::One(r) => {
                let same_run = matches!(&run, Some((s, _)) if Arc::ptr_eq(s, &r.store));
                if !same_run {
                    flush_one_run(inner, shard_idx, run.take(), one_ids, one_slots, one_spans);
                    run = Some((r.store, r.counters));
                }
                if let (Some(pending), Some(issued_at)) = (r.span, r.admission.issued_at()) {
                    one_spans.push(SpanSeed {
                        seq: pending.seq,
                        issued_at,
                        queue_wait_nanos: now.saturating_duration_since(issued_at).as_nanos()
                            as u64,
                        rows: 1,
                    });
                }
                one_ids.push(r.id);
                one_slots.push(r.slot);
            }
            Request::Slab(mut s) => {
                flush_one_run(inner, shard_idx, run.take(), one_ids, one_slots, one_spans);
                let decode_before = stages_on.then(|| s.store.shard_hit_miss(shard_idx));
                let started = stages_on.then(Instant::now);
                let result = s.store.lookup_batch(shard_idx, &s.ids, &mut s.out);
                if result.is_ok() {
                    s.counters
                        .requests
                        .fetch_add(s.ids.len() as u64, Ordering::Release);
                }
                // Capture telemetry inputs before the fill consumes the
                // request's buffers.
                let slab_rows = s.ids.len();
                let dtype = s.store.dtype();
                let span = s.span;
                let issued_at = s.admission.issued_at();
                let decode_after = decode_before.map(|_| s.store.shard_hit_miss(shard_idx));
                let decoded = started.map(|_| Instant::now());
                s.slot.fill(SlabOutcome {
                    ids: s.ids,
                    out: s.out,
                    result,
                });
                if let (Some(started), Some(decoded)) = (started, decoded) {
                    // memcom-lint: allow(L002) -- reached only when stages are on: `started` is `stages_on.then(Instant::now)`
                    let finished = Instant::now();
                    let shard_t = telemetry.shard(shard_idx);
                    {
                        let mut stages = shard_t.stages();
                        stages.decode[dtype_idx(dtype)]
                            .record(decoded.saturating_duration_since(started).as_nanos() as u64);
                        stages
                            .slab_write
                            .record(finished.saturating_duration_since(decoded).as_nanos() as u64);
                    }
                    if let (Some((hit0, miss0)), Some((hit1, miss1))) =
                        (decode_before, decode_after)
                    {
                        // The worker owns this shard, so the before/after
                        // counter delta is exactly this lookup's rows.
                        shard_t.add_decode_rows(hit1 - hit0, miss1 - miss0);
                    }
                    if let (Some(pending), Some(issued_at)) = (span, issued_at) {
                        telemetry.complete(Span {
                            seq: pending.seq,
                            shard: shard_idx,
                            rows: slab_rows,
                            queue_wait_nanos: started
                                .saturating_duration_since(issued_at)
                                .as_nanos() as u64,
                            service_nanos: finished.saturating_duration_since(started).as_nanos()
                                as u64,
                            total_nanos: finished.saturating_duration_since(issued_at).as_nanos()
                                as u64,
                            outcome: SpanOutcome::Served,
                        });
                    }
                }
            }
            Request::Score(mut s) => {
                flush_one_run(inner, shard_idx, run.take(), one_ids, one_slots, one_spans);
                let started = stages_on.then(Instant::now);
                let result = s
                    .backend
                    .score_into(&s.store, &s.ids, infer_scratch, &mut s.out);
                if result.is_ok() {
                    s.counters
                        .requests
                        .fetch_add(s.ids.len() as u64, Ordering::Release);
                }
                // Capture telemetry inputs before the fill consumes the
                // request's buffers.
                let score_rows = s.ids.len();
                let span = s.span;
                let issued_at = s.admission.issued_at();
                let scored = started.map(|_| Instant::now());
                s.slot.fill(SlabOutcome {
                    ids: s.ids,
                    out: s.out,
                    result,
                });
                if let (Some(started), Some(scored)) = (started, scored) {
                    // memcom-lint: allow(L002) -- reached only when stages are on: `started` is `stages_on.then(Instant::now)`
                    let finished = Instant::now();
                    let shard_t = telemetry.shard(shard_idx);
                    {
                        // The whole backend execution — gather + NN
                        // forward — lands in the `forward` stage; the
                        // reply hand-back stays in `slab_write` like
                        // every other response.
                        let mut stages = shard_t.stages();
                        stages
                            .forward
                            .record(scored.saturating_duration_since(started).as_nanos() as u64);
                        stages
                            .slab_write
                            .record(finished.saturating_duration_since(scored).as_nanos() as u64);
                    }
                    if let (Some(pending), Some(issued_at)) = (span, issued_at) {
                        telemetry.complete(Span {
                            seq: pending.seq,
                            shard: shard_idx,
                            rows: score_rows,
                            queue_wait_nanos: started
                                .saturating_duration_since(issued_at)
                                .as_nanos() as u64,
                            service_nanos: finished.saturating_duration_since(started).as_nanos()
                                as u64,
                            total_nanos: finished.saturating_duration_since(issued_at).as_nanos()
                                as u64,
                            outcome: SpanOutcome::Served,
                        });
                    }
                }
            }
        }
    }
    flush_one_run(inner, shard_idx, run.take(), one_ids, one_slots, one_spans);
}

fn flush_one_run(
    inner: &RouterInner,
    shard_idx: usize,
    run: Option<(Arc<ShardedStore>, Arc<ModelCounters>)>,
    ids: &mut Vec<usize>,
    slots: &mut Vec<Arc<ResponseSlot>>,
    spans: &mut Vec<SpanSeed>,
) {
    let Some((store, counters)) = run else {
        debug_assert!(ids.is_empty());
        return;
    };
    let telemetry = &inner.telemetry;
    let stages_on = telemetry.stages_on();
    let decode_before = stages_on.then(|| store.shard_hit_miss(shard_idx));
    let started = stages_on.then(Instant::now);
    match store.get_shard_batch(shard_idx, ids) {
        Ok(rows) => {
            counters
                .requests
                .fetch_add(ids.len() as u64, Ordering::Release);
            let decoded = started.map(|_| Instant::now());
            for (slot, row) in slots.drain(..).zip(rows) {
                slot.fill(Ok(row));
            }
            if let (Some(started), Some(decoded)) = (started, decoded) {
                // memcom-lint: allow(L002) -- reached only when stages are on: `started` is `stages_on.then(Instant::now)`
                let finished = Instant::now();
                let shard_t = telemetry.shard(shard_idx);
                {
                    let mut stages = shard_t.stages();
                    stages.decode[dtype_idx(store.dtype())]
                        .record(decoded.saturating_duration_since(started).as_nanos() as u64);
                    stages
                        .slab_write
                        .record(finished.saturating_duration_since(decoded).as_nanos() as u64);
                }
                if let Some((hit0, miss0)) = decode_before {
                    let (hit1, miss1) = store.shard_hit_miss(shard_idx);
                    // The worker owns this shard, so the before/after
                    // delta is exactly this run's rows.
                    shard_t.add_decode_rows(hit1 - hit0, miss1 - miss0);
                }
                // Service time is the whole coalesced run — the latency
                // each sampled request actually experienced, not its
                // pro-rata share.
                let service = finished.saturating_duration_since(started).as_nanos() as u64;
                for seed in spans.drain(..) {
                    telemetry.complete(Span {
                        seq: seed.seq,
                        shard: shard_idx,
                        rows: seed.rows,
                        queue_wait_nanos: seed.queue_wait_nanos,
                        service_nanos: service,
                        total_nanos: finished
                            .saturating_duration_since(seed.issued_at)
                            .as_nanos() as u64,
                        outcome: SpanOutcome::Served,
                    });
                }
            }
        }
        Err(_) => {
            // A bad id poisons only its own batch; answer every
            // requester individually so none hangs — and only the rows
            // actually served count as served. Sampled spans are dropped
            // on this rare path: tracing is best-effort.
            for (slot, &id) in slots.drain(..).zip(ids.iter()) {
                let outcome = store.get(id);
                if outcome.is_ok() {
                    counters.requests.fetch_add(1, Ordering::Release);
                }
                slot.fill(outcome);
            }
        }
    }
    ids.clear();
    spans.clear();
}
// memcom-lint: end-hot-path

#[cfg(test)]
mod tests {
    use super::*;
    use memcom_core::{EmbeddingCompressor, MemCom, MemComConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Duration;

    fn memcom(seed: u64) -> MemCom {
        let mut rng = StdRng::seed_from_u64(seed);
        MemCom::new(MemComConfig::new(100, 4, 10), &mut rng).unwrap()
    }

    /// A slab whose `out` buffer violates the sizing contract panics the
    /// worker mid-batch; the panic blanket must answer every slot in the
    /// batch with `WorkerLost` and keep the worker serving afterwards.
    #[test]
    fn poisoned_slab_slot_fails_batch_but_not_worker() {
        let emb = memcom(3);
        let router = Router::start(ServeConfig {
            n_shards: 1,
            max_batch: 4,
            max_wait: Duration::from_millis(10),
            ..ServeConfig::default()
        })
        .unwrap();
        router.register(DEFAULT_MODEL, &emb).unwrap();
        let handle = router.handle(DEFAULT_MODEL).unwrap();
        let store = handle.store().unwrap();

        // Hand-craft a poisoned request: 2 ids but a 1-value slab.
        let slot = Arc::new(SlabSlot::new());
        router.inner.queues[0]
            .push(Request::Slab(SlabRequest {
                ids: vec![0, 1],
                out: vec![0f32; 1],
                store: Arc::clone(&store),
                counters: Arc::new(ModelCounters::default()),
                slot: Arc::clone(&slot),
                admission: Admission::stamp_with(AdmissionPolicy::Block, false, None),
                span: None,
            }))
            .unwrap();
        let outcome = slot.wait();
        assert!(matches!(outcome.result, Err(ServeError::WorkerLost)));

        // The worker survived the panic and keeps serving.
        let row = handle.get(7).unwrap();
        assert_eq!(row.as_slice(), emb.lookup(&[7]).unwrap().as_slice());
    }

    #[test]
    fn model_lifecycle_and_errors() {
        let emb = memcom(1);
        let router = Router::start(ServeConfig::with_shards(2)).unwrap();
        assert!(matches!(
            router.handle("missing"),
            Err(ServeError::ModelNotFound { .. })
        ));
        router.register("a", &emb).unwrap();
        assert!(matches!(
            router.register("a", &emb),
            Err(ServeError::ModelExists { .. })
        ));
        assert_eq!(router.model_names(), vec!["a".to_string()]);

        let handle = router.handle("a").unwrap();
        assert_eq!(handle.model_name(), "a");
        handle.get(5).unwrap();
        router.deregister("a").unwrap();
        assert!(matches!(
            handle.get(5),
            Err(ServeError::ModelNotFound { .. })
        ));
        assert!(matches!(
            router.deregister("a"),
            Err(ServeError::ModelNotFound { .. })
        ));
        assert!(router.model_names().is_empty());
    }

    #[test]
    fn register_store_checks_shard_count() {
        let emb = memcom(2);
        let router = Router::start(ServeConfig::with_shards(4)).unwrap();
        let store = ShardedStore::build(&emb, 2, 8, 4096).unwrap();
        assert!(matches!(
            router.register_store("a", store),
            Err(ServeError::BadConfig { .. })
        ));
        let store = ShardedStore::build(&emb, 2, 8, 4096).unwrap();
        router.register("ok", &emb).unwrap();
        assert!(matches!(
            router.swap("ok", store),
            Err(ServeError::BadConfig { .. })
        ));
    }
}
