//! Serving configuration.

use std::time::Duration;

use memcom_ondevice::Dtype;

use crate::{Result, ServeError};

/// What happens when a shard queue is full at enqueue time — the
/// overload policy of the serving tier.
///
/// The default, [`Block`](AdmissionPolicy::Block), gives natural
/// backpressure: producers wait for queue space, which is the right
/// behavior for cooperating in-process callers but silently converts an
/// *open-loop* arrival process into a closed loop under sustained
/// overload (every producer serializes on the queue — the classic
/// coordinated-omission trap). [`Shed`](AdmissionPolicy::Shed) bounds
/// both sides instead: a producer waits at most `enqueue_timeout` for
/// space (then fails fast with [`ServeError::Overloaded`]), and a
/// request that sat in its queue past `request_deadline` is dropped at
/// dequeue with [`ServeError::DeadlineExceeded`] rather than burning a
/// store read on an answer nobody is still waiting for.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Producers block while the queue is full (backpressure). No
    /// request is ever shed or expired.
    #[default]
    Block,
    /// Deadline-aware load shedding.
    Shed {
        /// Longest a producer waits for queue space before the request
        /// is shed with [`ServeError::Overloaded`]. `Duration::ZERO`
        /// means reject immediately when full.
        enqueue_timeout: Duration,
        /// End-to-end time budget, measured from the moment a request
        /// is issued (before any admission wait): a worker that
        /// dequeues a request older than this drops it with
        /// [`ServeError::DeadlineExceeded`] instead of serving it. The
        /// budget covers admission waits too — for a multi-shard
        /// fan-out, sub-requests share the issue stamp, so time spent
        /// admitting earlier shards counts against later ones (the
        /// caller has been waiting that whole time). `None` disables
        /// the dequeue-side check (admission-only shedding).
        request_deadline: Option<Duration>,
    },
}

impl AdmissionPolicy {
    /// Whether this policy can shed requests at admission.
    pub fn sheds(&self) -> bool {
        matches!(self, AdmissionPolicy::Shed { .. })
    }
}

/// How much the serving tier measures about itself.
///
/// Levels are strictly ordered by cost: each one includes everything the
/// previous level records.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TelemetryLevel {
    /// No telemetry (the default). The hot path pays nothing beyond the
    /// always-on per-model row counters — no extra clock reads, no
    /// histogram records, no tracing.
    #[default]
    Off,
    /// Cheap counters only: per-shard decode hit/miss row counts, read
    /// alongside the always-on model and cache counters at snapshot
    /// time. No per-stage latency histograms, no tracing, and no clock
    /// reads beyond what serving already performs.
    Minimal,
    /// Everything: per-stage latency histograms (admission wait, queue
    /// wait, batch assembly, store decode per dtype, slab write) and
    /// sampled request tracing. Costs a few clock reads per batch and
    /// one short uncontended lock per batch per shard.
    Full,
}

/// Telemetry knobs for [`ServeConfig`] (see [`crate::telemetry`]).
///
/// The default is [`TelemetryLevel::Off`]: serving pays nothing for the
/// instrumentation it is not using. Turning on [`TelemetryLevel::Full`]
/// additionally samples request traces at `sample_rate` (every k-th
/// request with `k = round(1 / sample_rate)`, so sampling needs no
/// random-number source on the hot path).
///
/// ```
/// use memcom_serve::{ServeConfig, TelemetryConfig, TelemetryLevel};
///
/// let config = ServeConfig {
///     telemetry: TelemetryConfig::full(0.05), // trace ~1 in 20 requests
///     ..ServeConfig::default()
/// };
/// assert_eq!(config.telemetry.level, TelemetryLevel::Full);
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// What to record (default [`TelemetryLevel::Off`]).
    pub level: TelemetryLevel,
    /// Fraction of requests stamped with a trace span in `[0, 1]`, used
    /// only at [`TelemetryLevel::Full`]. `0` disables tracing while
    /// keeping the stage histograms.
    pub sample_rate: f64,
    /// Completed trace spans kept in the most-recent ring buffer.
    pub trace_ring_capacity: usize,
    /// Completed trace spans retained under the slowest-N policy, so
    /// tail outliers survive long after the recent ring cycled past
    /// them.
    pub slowest_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            level: TelemetryLevel::Off,
            sample_rate: 0.01,
            trace_ring_capacity: 256,
            slowest_capacity: 32,
        }
    }
}

impl TelemetryConfig {
    /// Telemetry fully off (the default).
    pub fn off() -> Self {
        TelemetryConfig::default()
    }

    /// Counters only ([`TelemetryLevel::Minimal`]), defaults elsewhere.
    pub fn minimal() -> Self {
        TelemetryConfig {
            level: TelemetryLevel::Minimal,
            ..TelemetryConfig::default()
        }
    }

    /// Everything on ([`TelemetryLevel::Full`]) with the given trace
    /// sample rate, defaults elsewhere.
    pub fn full(sample_rate: f64) -> Self {
        TelemetryConfig {
            level: TelemetryLevel::Full,
            sample_rate,
            ..TelemetryConfig::default()
        }
    }

    /// Validates the telemetry knobs (see [`ServeConfig::validate`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] when `sample_rate` is not a
    /// finite value in `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if !self.sample_rate.is_finite() || !(0.0..=1.0).contains(&self.sample_rate) {
            return Err(ServeError::BadConfig {
                context: format!(
                    "telemetry sample_rate must be in [0, 1], got {}",
                    self.sample_rate
                ),
            });
        }
        Ok(())
    }
}

/// Tuning knobs for [`crate::EmbedServer`].
///
/// Defaults are sized for the workloads in this repository's examples and
/// benches: 4 shards, micro-batches of up to 32 coalesced over at most
/// 200 µs, a 4 096-deep bounded queue per shard, a 1 024-row hot cache
/// per shard, fp32 row storage, blocking admission, and no simulated
/// store latency.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Number of shards (one worker thread and one queue per shard).
    pub n_shards: usize,
    /// Largest batch a worker coalesces before hitting the store.
    pub max_batch: usize,
    /// Longest a worker waits for a batch to fill before flushing early.
    pub max_wait: Duration,
    /// Bounded depth of each shard's request queue (producers block when
    /// full — natural backpressure under overload).
    pub queue_depth: usize,
    /// Hot-row LRU capacity per shard, in rows. `0` disables caching.
    pub cache_capacity: usize,
    /// Page size for each shard's simulated mmap.
    pub page_size: usize,
    /// Storage dtype for shard row bytes — models registered through
    /// [`crate::Router::register`] (and [`crate::EmbedServer::start`])
    /// quantize their stores to this dtype on build. Per-model overrides
    /// go through [`crate::Router::register_with_dtype`].
    pub dtype: Dtype,
    /// Overload policy: what happens when a shard queue is full at
    /// enqueue time, and whether queued requests carry a deadline.
    pub admission: AdmissionPolicy,
    /// Simulated backing-store service time, charged once per flushed
    /// batch before the shard worker touches its store. The in-memory
    /// [`memcom_ondevice::MmapSim`] costs nanoseconds per row, so a real
    /// on-device backing store (flash/NVMe page reads) is modeled here;
    /// a non-zero value gives each shard a calibrated service capacity
    /// of `max_batch / store_latency` rows per second, which is what
    /// makes overload experiments (offered load vs goodput) meaningful.
    /// `Duration::ZERO` (the default) disables the simulation.
    pub store_latency: Duration,
    /// What the serving tier measures about itself (default: nothing).
    /// See [`TelemetryConfig`] and [`crate::telemetry`].
    pub telemetry: TelemetryConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            n_shards: 4,
            max_batch: 32,
            max_wait: Duration::from_micros(200),
            queue_depth: 4096,
            cache_capacity: 1024,
            page_size: memcom_ondevice::mmap_sim::DEFAULT_PAGE_SIZE,
            dtype: Dtype::F32,
            admission: AdmissionPolicy::Block,
            store_latency: Duration::ZERO,
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl ServeConfig {
    /// A config with `n_shards` shards and defaults elsewhere.
    pub fn with_shards(n_shards: usize) -> Self {
        ServeConfig {
            n_shards,
            ..ServeConfig::default()
        }
    }

    /// A config storing rows as `dtype`, defaults elsewhere.
    pub fn with_dtype(dtype: Dtype) -> Self {
        ServeConfig {
            dtype,
            ..ServeConfig::default()
        }
    }

    /// A config with deadline-aware shedding
    /// ([`AdmissionPolicy::Shed`]) and defaults elsewhere.
    pub fn with_shedding(enqueue_timeout: Duration, request_deadline: Option<Duration>) -> Self {
        ServeConfig {
            admission: AdmissionPolicy::Shed {
                enqueue_timeout,
                request_deadline,
            },
            ..ServeConfig::default()
        }
    }

    /// The calibrated service capacity of one shard in rows per second
    /// (`max_batch / store_latency`), or `None` when no store latency is
    /// simulated (the in-memory page store alone has no meaningful
    /// capacity to calibrate against).
    ///
    /// Unit caveat: `max_batch` counts *queued requests*, so this is
    /// exact in rows for single-id requests — the shape every overload
    /// calibration in this repository uses — and an underestimate when
    /// requests carry many ids each.
    pub fn shard_capacity_rows_per_sec(&self) -> Option<f64> {
        if self.store_latency.is_zero() {
            None
        } else {
            Some(self.max_batch as f64 / self.store_latency.as_secs_f64())
        }
    }

    /// Suggested client backoff after an admission rejection observing
    /// `queued_requests` in the shard's queue: the backlog ahead of a
    /// retry divided by the shard's calibrated capacity — i.e. the queue
    /// (plus the batch in flight) expressed in batch service times.
    /// Queue depth and `max_batch` are both in request units, so the
    /// ratio is well-defined regardless of how many ids each request
    /// carries. Without a simulated store latency the only known
    /// service timescale is the batching window, so `max_wait` is the
    /// floor.
    pub fn suggested_backoff(&self, queued_requests: usize) -> Duration {
        if self.store_latency.is_zero() {
            return self.max_wait;
        }
        let batches_ahead = queued_requests.div_ceil(self.max_batch) + 1;
        self.store_latency
            .saturating_mul(u32::try_from(batches_ahead).unwrap_or(u32::MAX))
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for zero shard count, batch
    /// size, queue depth, or page size, when `max_batch` exceeds
    /// `queue_depth` (a batch could then never fill), or for a shedding
    /// policy with a zero `request_deadline` (every request would expire
    /// before any worker could dequeue it).
    pub fn validate(&self) -> Result<()> {
        let reject = |context: &str| {
            Err(ServeError::BadConfig {
                context: context.to_string(),
            })
        };
        if self.n_shards == 0 {
            return reject("n_shards must be >= 1");
        }
        if self.max_batch == 0 {
            return reject("max_batch must be >= 1");
        }
        if self.queue_depth == 0 {
            return reject("queue_depth must be >= 1");
        }
        if self.max_batch > self.queue_depth {
            return reject("max_batch must not exceed queue_depth");
        }
        if self.page_size == 0 {
            return reject("page_size must be >= 1");
        }
        if let AdmissionPolicy::Shed {
            request_deadline: Some(deadline),
            ..
        } = self.admission
        {
            if deadline.is_zero() {
                return reject("request_deadline must be positive when set");
            }
        }
        self.telemetry.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ServeConfig::default().validate().is_ok());
        assert_eq!(ServeConfig::with_shards(8).n_shards, 8);
        assert_eq!(ServeConfig::default().dtype, Dtype::F32);
        assert_eq!(ServeConfig::default().admission, AdmissionPolicy::Block);
        assert_eq!(ServeConfig::default().store_latency, Duration::ZERO);
        let q = ServeConfig::with_dtype(Dtype::Int8);
        assert_eq!(q.dtype, Dtype::Int8);
        assert!(q.validate().is_ok());
    }

    #[test]
    fn shedding_constructor_and_validation() {
        let shed =
            ServeConfig::with_shedding(Duration::from_micros(100), Some(Duration::from_millis(5)));
        assert!(shed.admission.sheds());
        assert!(!AdmissionPolicy::Block.sheds());
        assert!(shed.validate().is_ok());
        // A zero enqueue budget (reject-when-full) is legal…
        assert!(ServeConfig::with_shedding(Duration::ZERO, None)
            .validate()
            .is_ok());
        // …but a zero request deadline would expire everything unserved.
        assert!(matches!(
            ServeConfig::with_shedding(Duration::ZERO, Some(Duration::ZERO)).validate(),
            Err(ServeError::BadConfig { .. })
        ));
    }

    #[test]
    fn capacity_and_backoff_derivation() {
        let config = ServeConfig {
            max_batch: 8,
            store_latency: Duration::from_millis(2),
            ..ServeConfig::default()
        };
        assert_eq!(config.shard_capacity_rows_per_sec(), Some(4_000.0));
        // Queue depth ÷ capacity, plus the in-flight batch.
        assert_eq!(
            config.suggested_backoff(0),
            Duration::from_millis(2),
            "empty queue: one batch service time"
        );
        assert_eq!(config.suggested_backoff(8), Duration::from_millis(4));
        assert_eq!(config.suggested_backoff(17), Duration::from_millis(8));
        // Without a simulated store read there is no calibrated
        // capacity; the batching window is the only known timescale.
        let uncalibrated = ServeConfig::default();
        assert_eq!(uncalibrated.shard_capacity_rows_per_sec(), None);
        assert_eq!(uncalibrated.suggested_backoff(4_096), uncalibrated.max_wait);
    }

    #[test]
    fn rejects_degenerate_knobs() {
        for broken in [
            ServeConfig {
                n_shards: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                queue_depth: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                max_batch: 64,
                queue_depth: 32,
                ..ServeConfig::default()
            },
            ServeConfig {
                page_size: 0,
                ..ServeConfig::default()
            },
        ] {
            assert!(broken.validate().is_err(), "{broken:?} should be rejected");
        }
    }

    #[test]
    fn telemetry_defaults_and_validation() {
        let t = TelemetryConfig::default();
        assert_eq!(t.level, TelemetryLevel::Off);
        assert_eq!(ServeConfig::default().telemetry, TelemetryConfig::off());
        assert_eq!(TelemetryConfig::minimal().level, TelemetryLevel::Minimal);
        let full = TelemetryConfig::full(0.25);
        assert_eq!(full.level, TelemetryLevel::Full);
        assert_eq!(full.sample_rate, 0.25);
        assert!(TelemetryLevel::Off < TelemetryLevel::Minimal);
        assert!(TelemetryLevel::Minimal < TelemetryLevel::Full);
        // Edge rates are legal; out-of-range and non-finite are not.
        assert!(TelemetryConfig::full(0.0).validate().is_ok());
        assert!(TelemetryConfig::full(1.0).validate().is_ok());
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let config = ServeConfig {
                telemetry: TelemetryConfig::full(bad),
                ..ServeConfig::default()
            };
            assert!(matches!(
                config.validate(),
                Err(ServeError::BadConfig { .. })
            ));
        }
    }
}
