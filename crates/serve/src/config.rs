//! Serving configuration.

use std::time::Duration;

use memcom_ondevice::Dtype;

use crate::{Result, ServeError};

/// Tuning knobs for [`crate::EmbedServer`].
///
/// Defaults are sized for the workloads in this repository's examples and
/// benches: 4 shards, micro-batches of up to 32 coalesced over at most
/// 200 µs, a 4 096-deep bounded queue per shard, a 1 024-row hot cache
/// per shard, and fp32 row storage.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Number of shards (one worker thread and one queue per shard).
    pub n_shards: usize,
    /// Largest batch a worker coalesces before hitting the store.
    pub max_batch: usize,
    /// Longest a worker waits for a batch to fill before flushing early.
    pub max_wait: Duration,
    /// Bounded depth of each shard's request queue (producers block when
    /// full — natural backpressure under overload).
    pub queue_depth: usize,
    /// Hot-row LRU capacity per shard, in rows. `0` disables caching.
    pub cache_capacity: usize,
    /// Page size for each shard's simulated mmap.
    pub page_size: usize,
    /// Storage dtype for shard row bytes — models registered through
    /// [`crate::Router::register`] (and [`crate::EmbedServer::start`])
    /// quantize their stores to this dtype on build. Per-model overrides
    /// go through [`crate::Router::register_with_dtype`].
    pub dtype: Dtype,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            n_shards: 4,
            max_batch: 32,
            max_wait: Duration::from_micros(200),
            queue_depth: 4096,
            cache_capacity: 1024,
            page_size: memcom_ondevice::mmap_sim::DEFAULT_PAGE_SIZE,
            dtype: Dtype::F32,
        }
    }
}

impl ServeConfig {
    /// A config with `n_shards` shards and defaults elsewhere.
    pub fn with_shards(n_shards: usize) -> Self {
        ServeConfig {
            n_shards,
            ..ServeConfig::default()
        }
    }

    /// A config storing rows as `dtype`, defaults elsewhere.
    pub fn with_dtype(dtype: Dtype) -> Self {
        ServeConfig {
            dtype,
            ..ServeConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for zero shard count, batch
    /// size, queue depth, or page size, or when `max_batch` exceeds
    /// `queue_depth` (a batch could then never fill).
    pub fn validate(&self) -> Result<()> {
        let reject = |context: &str| {
            Err(ServeError::BadConfig {
                context: context.to_string(),
            })
        };
        if self.n_shards == 0 {
            return reject("n_shards must be >= 1");
        }
        if self.max_batch == 0 {
            return reject("max_batch must be >= 1");
        }
        if self.queue_depth == 0 {
            return reject("queue_depth must be >= 1");
        }
        if self.max_batch > self.queue_depth {
            return reject("max_batch must not exceed queue_depth");
        }
        if self.page_size == 0 {
            return reject("page_size must be >= 1");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ServeConfig::default().validate().is_ok());
        assert_eq!(ServeConfig::with_shards(8).n_shards, 8);
        assert_eq!(ServeConfig::default().dtype, Dtype::F32);
        let q = ServeConfig::with_dtype(Dtype::Int8);
        assert_eq!(q.dtype, Dtype::Int8);
        assert!(q.validate().is_ok());
    }

    #[test]
    fn rejects_degenerate_knobs() {
        for broken in [
            ServeConfig {
                n_shards: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                queue_depth: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                max_batch: 64,
                queue_depth: 32,
                ..ServeConfig::default()
            },
            ServeConfig {
                page_size: 0,
                ..ServeConfig::default()
            },
        ] {
            assert!(broken.validate().is_err(), "{broken:?} should be rejected");
        }
    }
}
