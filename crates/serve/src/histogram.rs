//! Geometric latency histogram.
//!
//! Fixed memory, O(1) record, mergeable across load-generator threads,
//! and quantile queries with bucket-interpolation — the usual
//! serving-benchmark shape (cf. HdrHistogram), kept dependency-free.

use std::sync::LazyLock;

/// Smallest resolvable latency (one bucket below this floor).
const FLOOR_NANOS: f64 = 50.0;
/// Geometric bucket growth factor (~26 buckets per decade).
const GROWTH: f64 = 1.09;
/// Bucket count: covers `50ns × 1.09^280 ≈ 25 min`. Observations beyond
/// that collapse into the top bucket, so quantiles saturate there — an
/// open-loop run backlogged past ~25 min of queueing delay reports a
/// clamped tail rather than the true one.
const BUCKETS: usize = 280;

/// Precomputed integer bucket edges: bucket `i` holds observations in
/// `(EDGES[i-1], EDGES[i]]` (bucket 0 is `[0, EDGES[0]]`). Deriving the
/// index from these u64 edges instead of `ln()`-arithmetic makes bucket
/// assignment **exact**: `bucket_of(edge) == i` and
/// `bucket_of(edge + 1) == i + 1` at every boundary, where the previous
/// float path drifted near edges whose log landed within rounding error
/// of an integer. The nominal geometric edge is rounded, then bumped by
/// at least 1 over its predecessor so the table is strictly increasing
/// even where consecutive geometric steps round to the same integer.
static BUCKET_EDGES: LazyLock<[u64; BUCKETS]> = LazyLock::new(|| {
    let mut edges = [0u64; BUCKETS];
    let mut prev = 0u64;
    for (idx, edge) in edges.iter_mut().enumerate() {
        let nominal = (FLOOR_NANOS * GROWTH.powi(idx as i32)).round() as u64;
        prev = nominal.max(prev + 1);
        *edge = prev;
    }
    edges
});

/// A mergeable histogram of nanosecond latencies.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_nanos: u128,
    min_nanos: u64,
    max_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_nanos: 0,
            min_nanos: u64::MAX,
            max_nanos: 0,
        }
    }

    fn bucket_of(nanos: u64) -> usize {
        // First bucket whose edge covers `nanos` — a pure u64 compare
        // against the precomputed monotone edge table, so boundary
        // observations land deterministically (no float log drift).
        BUCKET_EDGES
            .partition_point(|&edge| edge < nanos)
            .min(BUCKETS - 1)
    }

    /// Upper latency bound of a bucket.
    fn bucket_upper(idx: usize) -> u64 {
        BUCKET_EDGES[idx]
    }

    /// Records one latency observation.
    pub fn record(&mut self, nanos: u64) {
        self.counts[Self::bucket_of(nanos)] += 1;
        self.total += 1;
        self.sum_nanos += nanos as u128;
        self.min_nanos = self.min_nanos.min(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_nanos += other.sum_nanos;
        self.min_nanos = self.min_nanos.min(other.min_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency in nanoseconds (`0` when empty).
    pub fn mean_nanos(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / self.total as f64
        }
    }

    /// The `q`-quantile (e.g. `0.99`) in nanoseconds, clamped to the
    /// observed min/max so bucket granularity never reports a latency
    /// outside the actual range. Returns `0` when empty.
    ///
    /// A rank that lands in the **saturated top bucket** reports
    /// `max_nanos()` exactly: that bucket is open-above (observations
    /// past ~25 min all collapse into it), so its nominal upper bound
    /// can sit *below* an observed maximum and interpolating against it
    /// would under-report the tail.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return 0;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                if idx == BUCKETS - 1 {
                    // Open-ended top bucket: the only honest answer is
                    // the observed maximum.
                    return self.max_nanos;
                }
                return Self::bucket_upper(idx).clamp(self.min_nanos, self.max_nanos);
            }
        }
        self.max_nanos
    }

    /// Iterates the geometric buckets as `(upper_nanos, count)` pairs in
    /// ascending order, zero-count buckets included — the exporter's view
    /// of the raw distribution (a Prometheus-histogram rendering takes
    /// the cumulative sum of `count` per `le = upper_nanos` boundary).
    ///
    /// The **last** bucket is open-above: its `upper_nanos` is a nominal
    /// boundary (~25 min) and observations beyond it still land there,
    /// so renderers should treat it as `+Inf`.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(idx, &count)| (Self::bucket_upper(idx), count))
    }

    /// Sum of all observations in nanoseconds (the Prometheus `_sum`).
    pub fn sum_nanos(&self) -> u128 {
        self.sum_nanos
    }

    /// Median latency in nanoseconds.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile latency in nanoseconds.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile latency in nanoseconds.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Largest observation (`0` when empty).
    pub fn max_nanos(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max_nanos
        }
    }
}

/// Formats nanoseconds as a human latency (`1.25 ms`, `840 µs`, …).
///
/// The unit is chosen *after* rounding at each unit's display
/// precision, so values just under a boundary never print as a
/// four-digit mantissa in the smaller unit: `999_999` ns rounds to
/// `1000.0 µs` at µs precision and therefore prints as `1.00 ms`,
/// while `999_949` ns still prints as `999.9 µs`.
pub fn fmt_nanos(nanos: u64) -> String {
    let ns = nanos as f64;
    // Each threshold is the smallest value whose rounded mantissa would
    // print as 1000 in that unit ({:.0} ns, {:.1} µs, {:.2} ms).
    if ns < 999.5 {
        format!("{ns:.0} ns")
    } else if ns < 999.95e3 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 999.995e6 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean_nanos(), 0.0);
        assert_eq!(h.max_nanos(), 0);
    }

    #[test]
    fn quantiles_bracket_known_distribution() {
        let mut h = LatencyHistogram::new();
        // 90 fast observations at ~1µs, 10 slow at ~1ms.
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.p50();
        assert!((500..=2_000).contains(&p50), "p50 {p50} should be near 1µs");
        let p99 = h.p99();
        assert!(
            (500_000..=1_100_000).contains(&p99),
            "p99 {p99} should be near 1ms"
        );
        assert!(h.quantile(1.0) >= h.quantile(0.5));
    }

    #[test]
    fn quantile_error_is_bounded_by_growth_factor() {
        let mut h = LatencyHistogram::new();
        for nanos in [777u64, 77_777, 7_777_777] {
            h.record(nanos);
        }
        for (q, exact) in [(0.33, 777u64), (0.66, 77_777), (1.0, 7_777_777)] {
            let got = h.quantile(q) as f64;
            assert!(
                got >= exact as f64 * 0.9 && got <= exact as f64 * 1.1,
                "quantile {q}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn covers_minute_scale_tails() {
        let mut h = LatencyHistogram::new();
        h.record(1_000);
        let twenty_minutes = 20 * 60 * 1_000_000_000u64;
        h.record(twenty_minutes);
        assert_eq!(h.max_nanos(), twenty_minutes);
        // The tail bucket resolves 20 min to within the growth factor
        // (clamped to the observed max) rather than saturating early.
        assert!(
            h.quantile(1.0) >= twenty_minutes / 2,
            "got {}",
            h.quantile(1.0)
        );
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for i in 0..500u64 {
            let nanos = 100 + i * 97;
            if i % 2 == 0 {
                a.record(nanos);
            } else {
                b.record(nanos);
            }
            combined.record(nanos);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.p50(), combined.p50());
        assert_eq!(a.p99(), combined.p99());
        assert_eq!(a.max_nanos(), combined.max_nanos());
        assert!((a.mean_nanos() - combined.mean_nanos()).abs() < 1e-6);
    }

    #[test]
    fn saturated_top_bucket_reports_observed_max() {
        // An observation past the last bucket boundary (~25 min)
        // collapses into the open-ended top bucket; every quantile that
        // lands there must report the observed max, never the bucket's
        // nominal upper bound (which sits *below* the observation).
        let hour = 60 * 60 * 1_000_000_000u64;
        let mut h = LatencyHistogram::new();
        h.record(hour);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), hour, "q={q}");
        }
        // Mixed stream: the tail quantile still reports the true max.
        h.record(1_000);
        assert_eq!(h.quantile(1.0), hour);
        assert_eq!(h.max_nanos(), hour);
    }

    #[test]
    fn iter_buckets_matches_recorded_counts() {
        let mut h = LatencyHistogram::new();
        for nanos in [100u64, 100, 5_000, 1_000_000] {
            h.record(nanos);
        }
        let buckets: Vec<(u64, u64)> = h.iter_buckets().collect();
        assert_eq!(buckets.len(), 280, "fixed bucket count");
        let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, h.count());
        // Boundaries ascend and every observation sits at or below the
        // boundary of the bucket holding it.
        for pair in buckets.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
        let covering = buckets.iter().find(|&&(upper, c)| c == 2 && upper >= 100);
        assert!(covering.is_some(), "both 100ns observations share a bucket");
        assert_eq!(h.sum_nanos(), 1_005_200);
    }

    #[test]
    fn bucket_edges_are_strictly_increasing() {
        for pair in BUCKET_EDGES.windows(2) {
            assert!(pair[0] < pair[1], "{} !< {}", pair[0], pair[1]);
        }
        assert_eq!(BUCKET_EDGES[0], 50);
        // The table still spans ~25 minutes.
        assert!(BUCKET_EDGES[BUCKETS - 1] > 20 * 60 * 1_000_000_000);
    }

    #[test]
    fn bucket_assignment_is_exact_at_every_edge() {
        // An observation exactly on an edge belongs to that bucket; one
        // nanosecond past it belongs to the next. The old ln()-based
        // index drifted at edges whose log landed within float rounding
        // of an integer, shifting boundary observations one bucket off.
        for (idx, &edge) in BUCKET_EDGES.iter().enumerate() {
            assert_eq!(LatencyHistogram::bucket_of(edge), idx, "at edge {edge}");
            if idx + 1 < BUCKETS {
                assert_eq!(
                    LatencyHistogram::bucket_of(edge + 1),
                    idx + 1,
                    "past edge {edge}"
                );
            }
        }
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn recorded_observation_never_exceeds_its_bucket_upper() {
        // bucket_of and bucket_upper agree: every observation is <= the
        // upper bound iter_buckets reports for its bucket (the invariant
        // a Prometheus `le` rendering relies on).
        for nanos in (0..5_000_000u64).step_by(997) {
            let idx = LatencyHistogram::bucket_of(nanos);
            assert!(
                nanos <= LatencyHistogram::bucket_upper(idx) || idx == BUCKETS - 1,
                "{nanos} lands in bucket {idx} with upper {}",
                LatencyHistogram::bucket_upper(idx)
            );
            if idx > 0 {
                assert!(
                    nanos > LatencyHistogram::bucket_upper(idx - 1),
                    "{nanos} also fits bucket {}",
                    idx - 1
                );
            }
        }
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_nanos(850), "850 ns");
        assert_eq!(fmt_nanos(1_500), "1.5 µs");
        assert_eq!(fmt_nanos(2_250_000), "2.25 ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.00 s");
    }

    #[test]
    fn formatting_rounds_before_choosing_the_unit() {
        // Just under each boundary: the rounded mantissa would read
        // "1000", so the next unit up must be chosen.
        assert_eq!(fmt_nanos(999_999), "1.00 ms");
        assert_eq!(fmt_nanos(999_999_999), "1.00 s");
        // Just under the rounding threshold: still the smaller unit
        // (integer nanoseconds can never round past the ns boundary).
        assert_eq!(fmt_nanos(999), "999 ns");
        assert_eq!(fmt_nanos(999_949), "999.9 µs");
        assert_eq!(fmt_nanos(999_994_999), "999.99 ms");
        // Exactly at each boundary.
        assert_eq!(fmt_nanos(1_000), "1.0 µs");
        assert_eq!(fmt_nanos(1_000_000), "1.00 ms");
        assert_eq!(fmt_nanos(1_000_000_000), "1.00 s");
    }
}
