//! Caller-owned, reusable batch-lookup buffers.
//!
//! [`EmbedBatch`] is the response slab for the zero-copy batch API
//! ([`crate::RouterHandle::get_batch_into`]): one flat `Vec<f32>` holds
//! all rows, and every auxiliary buffer the call needs — per-shard id
//! lists, per-shard output slabs, position maps — lives here too and is
//! recycled call over call. After a warm-up call at a given batch shape,
//! lookups perform **no per-row heap allocation**: the only steady-state
//! allocation on the whole path is one response-slot `Arc` per shard
//! touched.

use std::sync::Arc;

use crate::batcher::SlabSlot;

/// A reusable batch of embedding rows, filled by
/// [`crate::RouterHandle::get_batch_into`].
///
/// ```
/// use memcom_core::{MemCom, MemComConfig};
/// use memcom_serve::{EmbedBatch, EmbedServer, ServeConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let emb = MemCom::new(MemComConfig::new(1_000, 16, 100), &mut rng)?;
/// let server = EmbedServer::start(&emb, ServeConfig::with_shards(2))?;
/// let handle = server.handle();
///
/// let mut batch = EmbedBatch::new();
/// for _ in 0..3 {
///     // The same buffer is reused across calls — no per-row allocation.
///     handle.get_batch_into(&[1, 2, 3, 500], &mut batch)?;
///     assert_eq!(batch.len(), 4);
///     assert_eq!(batch.row(3).len(), 16);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct EmbedBatch {
    /// The ids of the current batch, in request order.
    pub(crate) ids: Vec<usize>,
    /// Row-major rows: row `k` at `data[k*dim .. (k+1)*dim]`.
    pub(crate) data: Vec<f32>,
    /// Row width of the current batch.
    pub(crate) dim: usize,
    /// Per-shard positions into the caller's id order (scratch).
    pub(crate) shard_pos: Vec<Vec<usize>>,
    /// Pool of `(ids, out)` buffers round-tripped through shard workers.
    pub(crate) pool: Vec<(Vec<usize>, Vec<f32>)>,
    /// In-flight shard slots (scratch, empty between calls).
    pub(crate) pending: Vec<(usize, Arc<SlabSlot>)>,
}

impl EmbedBatch {
    /// Creates an empty batch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows in the last filled batch.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Row width of the last filled batch (`0` before any fill).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The ids of the last filled batch, in request order.
    pub fn ids(&self) -> &[usize] {
        &self.ids
    }

    /// All rows as one flat row-major slice (`len() * dim()` values).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// The `k`-th row (same order as [`ids`](Self::ids)).
    ///
    /// # Panics
    ///
    /// Panics when `k >= len()`.
    pub fn row(&self, k: usize) -> &[f32] {
        &self.data[k * self.dim..(k + 1) * self.dim]
    }

    /// Iterates the rows in request order.
    pub fn rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.dim.max(1))
    }

    /// Resets for a new fill: records the ids, sizes the data slab, and
    /// prepares `n_shards` position lists — all reusing prior capacity.
    pub(crate) fn begin(&mut self, ids: &[usize], dim: usize, n_shards: usize) {
        self.ids.clear();
        self.ids.extend_from_slice(ids);
        self.dim = dim;
        self.data.clear();
        self.data.resize(ids.len() * dim, 0.0);
        if self.shard_pos.len() < n_shards {
            self.shard_pos.resize_with(n_shards, Vec::new);
        }
        for pos in &mut self.shard_pos {
            pos.clear();
        }
        debug_assert!(self.pending.is_empty(), "pending cleared between calls");
    }

    /// Takes a pooled `(ids, out)` buffer pair (or a fresh one).
    pub(crate) fn take_buffers(&mut self) -> (Vec<usize>, Vec<f32>) {
        self.pool.pop().unwrap_or_default()
    }

    /// Returns a buffer pair to the pool for the next call.
    pub(crate) fn recycle_buffers(&mut self, ids: Vec<usize>, out: Vec<f32>) {
        self.pool.push((ids, out));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_on_fresh_batch() {
        let batch = EmbedBatch::new();
        assert_eq!(batch.len(), 0);
        assert!(batch.is_empty());
        assert_eq!(batch.dim(), 0);
        assert!(batch.ids().is_empty());
        assert!(batch.data().is_empty());
        assert_eq!(batch.rows().count(), 0);
    }

    #[test]
    fn begin_sizes_and_resets() {
        let mut batch = EmbedBatch::new();
        batch.begin(&[5, 9, 1], 4, 2);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.data().len(), 12);
        assert_eq!(batch.shard_pos.len(), 2);
        // Shrinking reuses capacity and clears stale rows.
        batch.data[0] = 7.0;
        batch.begin(&[2], 4, 2);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.data(), &[0.0; 4]);
    }

    #[test]
    fn buffer_pool_round_trip() {
        let mut batch = EmbedBatch::new();
        let (ids, out) = batch.take_buffers();
        assert!(ids.is_empty() && out.is_empty());
        batch.recycle_buffers(vec![1, 2], vec![0.5; 8]);
        let (ids, out) = batch.take_buffers();
        assert!(ids.capacity() >= 2);
        assert_eq!(out.len(), 8);
    }
}
