//! Hot-row LRU cache.
//!
//! Power-law traffic (§4 of the paper) concentrates most lookups on a few
//! popular ids; a small per-shard LRU in front of the paged store turns
//! those into pure in-memory hits that touch neither the mmap nor its
//! locks. Implemented as a slab-backed doubly-linked list + index map —
//! O(1) `get`/`insert`, no external dependencies.

use std::collections::HashMap;

const NIL: usize = usize::MAX;

struct Entry {
    key: usize,
    value: Vec<f32>,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used cache from row id to row values.
pub struct LruCache {
    capacity: usize,
    map: HashMap<usize, usize>,
    slab: Vec<Entry>,
    head: usize,
    tail: usize,
    /// Entries pushed out by capacity pressure (refreshes of an existing
    /// key are not evictions).
    evictions: u64,
    /// Total `f32` values held across all entries — kept incrementally
    /// so [`resident_bytes`](Self::resident_bytes) is O(1) under the
    /// cache lock.
    resident_values: usize,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` rows (`0` disables it).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            evictions: 0,
            resident_values: 0,
        }
    }

    /// Entries evicted by capacity pressure since construction (a
    /// [`clone_retaining`](Self::clone_retaining) copy restarts at 0,
    /// like the shard hit/miss counters across a snapshot refresh).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Bytes of row data currently held (entry values only; the index
    /// map and list links are bookkeeping, not cached rows).
    pub fn resident_bytes(&self) -> usize {
        self.resident_values * std::mem::size_of::<f32>()
    }

    /// Maximum number of rows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of rows.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most-recently used on a hit.
    pub fn get(&mut self, key: usize) -> Option<&[f32]> {
        let &slot = self.map.get(&key)?;
        self.detach(slot);
        self.attach_front(slot);
        Some(&self.slab[slot].value)
    }

    /// Inserts (or refreshes) `key`, taking ownership of `value` without
    /// copying. Returns the evicted `(key, value)` when the insert pushed
    /// out the least-recently-used row; a refresh hands back the
    /// *previous* value for `key` so the caller can recycle its storage.
    pub fn insert(&mut self, key: usize, value: Vec<f32>) -> Option<(usize, Vec<f32>)> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.resident_values += value.len();
            let old = std::mem::replace(&mut self.slab[slot].value, value);
            self.resident_values -= old.len();
            self.detach(slot);
            self.attach_front(slot);
            return Some((key, old));
        }
        if self.map.len() < self.capacity {
            let slot = self.slab.len();
            self.resident_values += value.len();
            self.slab.push(Entry {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, slot);
            self.attach_front(slot);
            return None;
        }
        // Full: recycle the tail slot in place.
        let victim = self.tail;
        self.detach(victim);
        let old_key = self.slab[victim].key;
        self.map.remove(&old_key);
        self.resident_values += value.len();
        let old_value = std::mem::replace(&mut self.slab[victim].value, value);
        self.resident_values -= old_value.len();
        self.evictions += 1;
        self.slab[victim].key = key;
        self.map.insert(key, victim);
        self.attach_front(victim);
        Some((old_key, old_value))
    }

    /// Inserts (or refreshes) `key` by copying `row` into recycled
    /// storage: a refresh rewrites the existing entry's buffer and a
    /// full-cache insert rewrites the evicted victim's buffer, so at
    /// steady state (cache at capacity, stable row width) this performs
    /// **no heap allocation** — the serving hot path's fill.
    pub fn insert_from(&mut self, key: usize, row: &[f32]) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.resident_values += row.len();
            self.resident_values -= self.slab[slot].value.len();
            let value = &mut self.slab[slot].value;
            value.clear();
            value.extend_from_slice(row);
            self.detach(slot);
            self.attach_front(slot);
            return;
        }
        if self.map.len() < self.capacity {
            let slot = self.slab.len();
            self.resident_values += row.len();
            self.slab.push(Entry {
                key,
                value: row.to_vec(),
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, slot);
            self.attach_front(slot);
            return;
        }
        let victim = self.tail;
        self.detach(victim);
        let old_key = self.slab[victim].key;
        self.map.remove(&old_key);
        self.resident_values += row.len();
        self.resident_values -= self.slab[victim].value.len();
        self.evictions += 1;
        let value = &mut self.slab[victim].value;
        value.clear();
        value.extend_from_slice(row);
        self.slab[victim].key = key;
        self.map.insert(key, victim);
        self.attach_front(victim);
    }

    /// A copy of this cache holding every entry whose key `keep`
    /// accepts, preserving recency order — the delta-refresh carry-over:
    /// a new store snapshot keeps the old snapshot's hot rows warm and
    /// invalidates **only** the changed ids, instead of restarting every
    /// shard cache cold the way a full-store swap does.
    pub fn clone_retaining(&self, keep: impl Fn(usize) -> bool) -> Self {
        let mut out = LruCache::new(self.capacity);
        // Collect MRU -> LRU, then insert in reverse so the copy ends up
        // with identical recency ordering.
        let mut slots = Vec::with_capacity(self.map.len());
        let mut cursor = self.head;
        while cursor != NIL {
            slots.push(cursor);
            cursor = self.slab[cursor].next;
        }
        for &slot in slots.iter().rev() {
            let entry = &self.slab[slot];
            if keep(entry.key) {
                out.insert_from(entry.key, &entry.value);
            }
        }
        out
    }

    /// Keys from most- to least-recently used (test/debug helper).
    pub fn keys_mru_order(&self) -> Vec<usize> {
        let mut keys = Vec::with_capacity(self.map.len());
        let mut cursor = self.head;
        while cursor != NIL {
            keys.push(self.slab[cursor].key);
            cursor = self.slab[cursor].next;
        }
        keys
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        match prev {
            NIL => {
                if self.head == slot {
                    self.head = next;
                }
            }
            p => self.slab[p].next = next,
        }
        match next {
            NIL => {
                if self.tail == slot {
                    self.tail = prev;
                }
            }
            n => self.slab[n].prev = prev,
        }
        self.slab[slot].prev = NIL;
        self.slab[slot].next = NIL;
    }

    fn attach_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

impl std::fmt::Debug for LruCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(x: f32) -> Vec<f32> {
        vec![x, x + 0.5]
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(3);
        assert!(c.insert(1, row(1.0)).is_none());
        assert!(c.insert(2, row(2.0)).is_none());
        assert!(c.insert(3, row(3.0)).is_none());
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(c.get(1), Some(row(1.0).as_slice()));
        let evicted = c.insert(4, row(4.0));
        assert_eq!(evicted, Some((2, row(2.0))));
        assert_eq!(c.keys_mru_order(), vec![4, 1, 3]);
        assert!(c.get(2).is_none());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn get_refreshes_recency() {
        let mut c = LruCache::new(2);
        c.insert(10, row(1.0));
        c.insert(20, row(2.0));
        assert_eq!(c.keys_mru_order(), vec![20, 10]);
        c.get(10);
        assert_eq!(c.keys_mru_order(), vec![10, 20]);
        assert_eq!(c.insert(30, row(3.0)).map(|(k, _)| k), Some(20));
    }

    #[test]
    fn reinsert_updates_value_and_returns_old_storage() {
        let mut c = LruCache::new(2);
        c.insert(1, row(1.0));
        c.insert(2, row(2.0));
        // A refresh hands the displaced value back for recycling.
        assert_eq!(c.insert(1, row(9.0)), Some((1, row(1.0))));
        assert_eq!(c.get(1), Some(row(9.0).as_slice()));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn insert_from_recycles_storage_in_place() {
        let mut c = LruCache::new(2);
        c.insert_from(1, &row(1.0));
        c.insert_from(2, &row(2.0));
        // Refresh: same entry, new contents, no length change.
        c.insert_from(1, &row(9.0));
        assert_eq!(c.get(1), Some(row(9.0).as_slice()));
        assert_eq!(c.len(), 2);
        // At capacity: the LRU victim's buffer is rewritten for the new key.
        c.insert_from(3, &row(3.0));
        assert_eq!(c.len(), 2);
        assert!(c.get(2).is_none(), "2 was the LRU victim");
        assert_eq!(c.get(3), Some(row(3.0).as_slice()));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        assert!(c.insert(1, row(1.0)).is_none());
        c.insert_from(2, &row(2.0));
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn single_slot_cache() {
        let mut c = LruCache::new(1);
        c.insert(1, row(1.0));
        assert_eq!(c.insert(2, row(2.0)), Some((1, row(1.0))));
        assert_eq!(c.keys_mru_order(), vec![2]);
        assert_eq!(c.get(2), Some(row(2.0).as_slice()));
    }

    #[test]
    fn clone_retaining_drops_only_excluded_keys_and_keeps_order() {
        let mut c = LruCache::new(4);
        for (k, x) in [(1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0)] {
            c.insert_from(k, &row(x));
        }
        c.get(2); // MRU order now: 2, 4, 3, 1
        let copy = c.clone_retaining(|k| k != 3);
        assert_eq!(copy.keys_mru_order(), vec![2, 4, 1]);
        assert_eq!(copy.capacity(), 4);
        let mut copy = copy;
        assert_eq!(copy.get(2), Some(row(2.0).as_slice()));
        assert!(copy.get(3).is_none(), "changed id invalidated");
        // The original is untouched.
        assert_eq!(c.len(), 4);
        // Keeping everything is a faithful copy; keeping nothing empties.
        assert_eq!(
            c.clone_retaining(|_| true).keys_mru_order(),
            vec![2, 4, 3, 1]
        );
        assert!(c.clone_retaining(|_| false).is_empty());
    }

    #[test]
    fn tracks_evictions_and_resident_bytes() {
        let mut c = LruCache::new(2);
        assert_eq!((c.evictions(), c.resident_bytes()), (0, 0));
        c.insert_from(1, &row(1.0)); // 2 values
        c.insert(2, row(2.0)); // 2 values
        assert_eq!(c.resident_bytes(), 4 * std::mem::size_of::<f32>());
        // Refreshes are not evictions; resident bytes track the new row.
        c.insert_from(1, &[9.0]);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.resident_bytes(), 3 * std::mem::size_of::<f32>());
        // Capacity pressure evicts, once per displaced entry.
        c.insert_from(3, &row(3.0));
        c.insert(4, row(4.0));
        assert_eq!(c.evictions(), 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.resident_bytes(), 4 * std::mem::size_of::<f32>());
        // A retained copy restarts the eviction counter but keeps the
        // resident accounting of what it actually holds.
        let copy = c.clone_retaining(|_| true);
        assert_eq!(copy.evictions(), 0);
        assert_eq!(copy.resident_bytes(), c.resident_bytes());
        // Zero capacity never holds bytes or evicts.
        let mut off = LruCache::new(0);
        off.insert_from(1, &row(1.0));
        assert_eq!((off.evictions(), off.resident_bytes()), (0, 0));
    }

    #[test]
    fn stays_within_capacity_under_churn() {
        let mut c = LruCache::new(16);
        for i in 0..1000 {
            if i % 2 == 0 {
                c.insert(i % 37, row(i as f32));
            } else {
                c.insert_from(i % 37, &row(i as f32));
            }
            assert!(c.len() <= 16);
            let keys = c.keys_mru_order();
            assert_eq!(keys.len(), c.len(), "list and map stay in sync");
        }
    }
}
