//! Micro-batching request queues and response cells.
//!
//! Each shard owns one bounded queue and one worker. The worker blocks
//! for the first request, then holds the batch open until either
//! `max_batch` requests have coalesced or `max_wait` has elapsed since
//! the batch opened — the classic throughput/latency micro-batching
//! trade-off, made observable through [`FlushReason`] counters.
//!
//! Two response cells cover the two request shapes the router enqueues
//! (see [`crate::router`]): a [`ResponseSlot`] carries one owned row
//! back to a single-id requester, and a [`SlabSlot`] round-trips the
//! caller's id/output buffers for the zero-copy batch path, so the
//! buffers can be pooled and reused across calls.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::{Result, ServeError};

/// Why a worker closed a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The batch reached `max_batch` requests.
    Full,
    /// `max_wait` elapsed before the batch filled.
    Timeout,
    /// The server is shutting down; remaining requests are drained.
    Drain,
}

/// A single-consumer response cell the requester blocks on.
#[derive(Debug)]
pub struct ResponseSlot {
    state: Mutex<Option<Result<Vec<f32>>>>,
    ready: Condvar,
}

impl ResponseSlot {
    /// Creates an unfilled slot.
    pub fn new() -> Self {
        ResponseSlot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Publishes the outcome, waking the waiting requester. The first
    /// write wins: a later fill (e.g. the worker's panic-recovery path
    /// blanketing a batch with errors) cannot clobber a real answer.
    pub fn fill(&self, outcome: Result<Vec<f32>>) {
        let mut state = self.state.lock();
        if state.is_none() {
            *state = Some(outcome);
            self.ready.notify_all();
        }
    }

    /// Blocks until the outcome arrives and takes it.
    pub fn wait(&self) -> Result<Vec<f32>> {
        let mut state = self.state.lock();
        loop {
            if let Some(outcome) = state.take() {
                return outcome;
            }
            self.ready.wait(&mut state);
        }
    }
}

impl Default for ResponseSlot {
    fn default() -> Self {
        Self::new()
    }
}

/// What a [`SlabSlot`] carries back: the request's id list and output
/// slab (returned so the caller can recycle both buffers) plus the
/// serving outcome. On a worker-lost blanket the buffers come back
/// empty — they were consumed by the panicking batch.
#[derive(Debug)]
pub struct SlabOutcome {
    /// The ids the request asked for, handed back for reuse.
    pub ids: Vec<usize>,
    /// The output slab, `ids.len() * dim` values row-major on success.
    pub out: Vec<f32>,
    /// Whether the slab was filled.
    pub result: Result<()>,
}

/// Response cell for the slab (batch) path: round-trips the caller's
/// buffers so the steady state allocates nothing per row.
#[derive(Debug)]
pub struct SlabSlot {
    state: Mutex<Option<SlabOutcome>>,
    ready: Condvar,
}

impl SlabSlot {
    /// Creates an unfilled slot.
    pub fn new() -> Self {
        SlabSlot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Publishes the outcome (first write wins, as for [`ResponseSlot`]).
    pub fn fill(&self, outcome: SlabOutcome) {
        let mut state = self.state.lock();
        if state.is_none() {
            *state = Some(outcome);
            self.ready.notify_all();
        }
    }

    /// Fails the request without buffers (panic-recovery blanket).
    pub fn fail(&self, error: ServeError) {
        self.fill(SlabOutcome {
            ids: Vec::new(),
            out: Vec::new(),
            result: Err(error),
        });
    }

    /// Blocks until the outcome arrives and takes it.
    pub fn wait(&self) -> SlabOutcome {
        let mut state = self.state.lock();
        loop {
            if let Some(outcome) = state.take() {
                return outcome;
            }
            self.ready.wait(&mut state);
        }
    }
}

impl Default for SlabSlot {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug)]
struct QueueState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

impl<T> Default for QueueState<T> {
    fn default() -> Self {
        QueueState {
            queue: VecDeque::new(),
            closed: false,
        }
    }
}

/// A bounded MPSC queue with batch-oriented consumption, generic over
/// the queued request type (the router enqueues [`crate::router`]'s
/// `Request`; tests use plain values).
#[derive(Debug)]
pub struct ShardQueue<T> {
    state: Mutex<QueueState<T>>,
    /// Wakes the worker when requests arrive or the queue closes.
    ready: Condvar,
    /// Wakes blocked producers when capacity frees up.
    space: Condvar,
    capacity: usize,
}

impl<T> ShardQueue<T> {
    /// Creates a queue holding at most `capacity` pending requests.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0` — rejected earlier by config
    /// validation.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        ShardQueue {
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues a request, blocking while the queue is full
    /// (backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ShuttingDown`] once the queue is closed.
    pub fn push(&self, request: T) -> Result<()> {
        let mut state = self.state.lock();
        loop {
            if state.closed {
                return Err(ServeError::ShuttingDown);
            }
            if state.queue.len() < self.capacity {
                break;
            }
            self.space.wait(&mut state);
        }
        state.queue.push_back(request);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Pops the next micro-batch: blocks for the first request, then
    /// coalesces up to `max_batch` requests over at most `max_wait`.
    /// Returns `None` when the queue is closed *and* fully drained —
    /// the worker's exit signal.
    pub fn pop_batch(&self, max_batch: usize, max_wait: Duration) -> Option<(Vec<T>, FlushReason)> {
        let mut state = self.state.lock();
        // Phase 1: wait for the batch-opening request.
        loop {
            if !state.queue.is_empty() {
                break;
            }
            if state.closed {
                return None;
            }
            self.ready.wait(&mut state);
        }
        // Phase 2: hold the batch open until full, timed out, or closed.
        let deadline = Instant::now() + max_wait;
        while state.queue.len() < max_batch && !state.closed {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            self.ready.wait_for(&mut state, deadline - now);
        }
        let take = state.queue.len().min(max_batch);
        let batch: Vec<T> = state.queue.drain(..take).collect();
        let reason = if batch.len() == max_batch {
            FlushReason::Full
        } else if state.closed {
            FlushReason::Drain
        } else {
            FlushReason::Timeout
        };
        drop(state);
        self.space.notify_all();
        Some((batch, reason))
    }

    /// Closes the queue: producers start failing, the worker drains what
    /// remains and exits.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// Pending request count (diagnostics).
    pub fn depth(&self) -> usize {
        self.state.lock().queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn batch_flushes_when_full() {
        let q = ShardQueue::new(16);
        for id in 0..5usize {
            q.push(id).unwrap();
        }
        let (batch, reason) = q.pop_batch(4, Duration::from_secs(10)).unwrap();
        assert_eq!(batch.len(), 4, "full batch without waiting out the clock");
        assert_eq!(reason, FlushReason::Full);
        assert_eq!(q.depth(), 1);
        let (rest, reason) = q.pop_batch(4, Duration::from_millis(1)).unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(reason, FlushReason::Timeout);
    }

    #[test]
    fn batch_flushes_on_timeout() {
        let q = ShardQueue::new(16);
        q.push(7usize).unwrap();
        let t0 = Instant::now();
        let (batch, reason) = q.pop_batch(64, Duration::from_millis(30)).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(reason, FlushReason::Timeout);
        assert!(
            t0.elapsed() >= Duration::from_millis(25),
            "waited out max_wait"
        );
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = ShardQueue::new(16);
        q.push(1usize).unwrap();
        q.push(2).unwrap();
        q.close();
        assert!(matches!(q.push(3), Err(ServeError::ShuttingDown)));
        let (batch, reason) = q.pop_batch(64, Duration::from_secs(10)).unwrap();
        assert_eq!(batch.len(), 2, "queued work survives close");
        assert_eq!(reason, FlushReason::Drain);
        assert!(
            q.pop_batch(64, Duration::from_secs(10)).is_none(),
            "then the worker exits"
        );
    }

    #[test]
    fn cross_thread_wakeup() {
        let q = Arc::new(ShardQueue::new(4));
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            q2.push(9usize).unwrap();
        });
        // Worker parked on an empty queue gets woken by the push.
        let (batch, _) = q.pop_batch(1, Duration::from_secs(5)).unwrap();
        assert_eq!(batch[0], 9);
        producer.join().unwrap();
    }

    #[test]
    fn fill_is_first_write_wins() {
        let slot = ResponseSlot::new();
        slot.fill(Ok(vec![1.0]));
        // The panic-recovery blanket must not clobber a real answer.
        slot.fill(Err(ServeError::WorkerLost));
        assert_eq!(slot.wait().unwrap(), vec![1.0]);
    }

    #[test]
    fn response_slot_round_trip() {
        let slot = Arc::new(ResponseSlot::new());
        let slot2 = Arc::clone(&slot);
        let filler = std::thread::spawn(move || slot2.fill(Ok(vec![1.0, 2.0])));
        assert_eq!(slot.wait().unwrap(), vec![1.0, 2.0]);
        filler.join().unwrap();
    }

    #[test]
    fn slab_slot_round_trips_buffers() {
        let slot = Arc::new(SlabSlot::new());
        let slot2 = Arc::clone(&slot);
        let filler = std::thread::spawn(move || {
            slot2.fill(SlabOutcome {
                ids: vec![3, 9],
                out: vec![1.0, 2.0, 3.0, 4.0],
                result: Ok(()),
            });
        });
        let outcome = slot.wait();
        filler.join().unwrap();
        assert_eq!(outcome.ids, vec![3, 9]);
        assert_eq!(outcome.out, vec![1.0, 2.0, 3.0, 4.0]);
        assert!(outcome.result.is_ok());
        // First write wins here too.
        slot.fail(ServeError::WorkerLost);
        slot.fill(SlabOutcome {
            ids: Vec::new(),
            out: Vec::new(),
            result: Ok(()),
        });
        assert!(slot.wait().result.is_err());
    }
}
