//! Micro-batching request queues and response cells.
//!
//! Each shard owns one bounded queue and one worker. The worker blocks
//! for the first request, then holds the batch open until either
//! `max_batch` requests have coalesced or `max_wait` has elapsed since
//! the batch opened — the classic throughput/latency micro-batching
//! trade-off, made observable through [`FlushReason`] counters.
//!
//! Two response cells cover the two request shapes the router enqueues
//! (see [`crate::router`]): a [`ResponseSlot`] carries one owned row
//! back to a single-id requester, and a [`SlabSlot`] round-trips the
//! caller's id/output buffers for the zero-copy batch path, so the
//! buffers can be pooled and reused across calls.
//!
//! Producers pick their overload behavior per push: [`ShardQueue::push`]
//! blocks while the queue is full (backpressure), while
//! [`ShardQueue::try_push`] / [`ShardQueue::push_until`] never wait past
//! the caller's budget and hand the rejected request back through
//! [`PushError`] — the primitive under
//! [`crate::AdmissionPolicy::Shed`]'s admission control.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::{Result, ServeError};

/// Why a push failed — carrying the rejected request back to the
/// producer, so buffers it owns (e.g. a slab request's id/out vectors)
/// survive the rejection and can be recycled instead of reallocated.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue stayed full past the producer's budget (shed).
    Full(T),
    /// The queue is closed (shutdown).
    Closed(T),
}

impl<T> PushError<T> {
    /// Recovers the rejected request.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(request) | PushError::Closed(request) => request,
        }
    }
}

/// Why a worker closed a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The batch reached `max_batch` requests.
    Full,
    /// `max_wait` elapsed before the batch filled.
    Timeout,
    /// The server is shutting down; remaining requests are drained.
    Drain,
}

/// A single-consumer response cell the requester blocks on.
#[derive(Debug)]
pub struct ResponseSlot {
    state: Mutex<Option<Result<Vec<f32>>>>,
    ready: Condvar,
}

impl ResponseSlot {
    /// Creates an unfilled slot.
    pub fn new() -> Self {
        ResponseSlot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Publishes the outcome, waking the waiting requester. The first
    /// write wins: a later fill (e.g. the worker's panic-recovery path
    /// blanketing a batch with errors) cannot clobber a real answer.
    pub fn fill(&self, outcome: Result<Vec<f32>>) {
        let mut state = self.state.lock();
        if state.is_none() {
            *state = Some(outcome);
            self.ready.notify_all();
        }
    }

    /// Blocks until the outcome arrives and takes it.
    pub fn wait(&self) -> Result<Vec<f32>> {
        let mut state = self.state.lock();
        loop {
            if let Some(outcome) = state.take() {
                return outcome;
            }
            self.ready.wait(&mut state);
        }
    }
}

impl Default for ResponseSlot {
    fn default() -> Self {
        Self::new()
    }
}

/// What a [`SlabSlot`] carries back: the request's id list and output
/// slab (returned so the caller can recycle both buffers) plus the
/// serving outcome. On a worker-lost blanket the buffers come back
/// empty — they were consumed by the panicking batch.
#[derive(Debug)]
pub struct SlabOutcome {
    /// The ids the request asked for, handed back for reuse.
    pub ids: Vec<usize>,
    /// The output slab, `ids.len() * dim` values row-major on success.
    pub out: Vec<f32>,
    /// Whether the slab was filled.
    pub result: Result<()>,
}

/// Response cell for the slab (batch) path: round-trips the caller's
/// buffers so the steady state allocates nothing per row.
#[derive(Debug)]
pub struct SlabSlot {
    state: Mutex<Option<SlabOutcome>>,
    ready: Condvar,
}

impl SlabSlot {
    /// Creates an unfilled slot.
    pub fn new() -> Self {
        SlabSlot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Publishes the outcome (first write wins, as for [`ResponseSlot`]).
    pub fn fill(&self, outcome: SlabOutcome) {
        let mut state = self.state.lock();
        if state.is_none() {
            *state = Some(outcome);
            self.ready.notify_all();
        }
    }

    /// Fails the request while handing the caller's buffers back for
    /// reuse. This is the failure path whenever the worker still owns
    /// the buffers (store error, expired-at-dequeue) — under load
    /// shedding it is hot, and losing the buffers here would cost the
    /// caller a reallocation per failed request.
    pub fn fail_with_buffers(&self, ids: Vec<usize>, out: Vec<f32>, error: ServeError) {
        self.fill(SlabOutcome {
            ids,
            out,
            result: Err(error),
        });
    }

    /// Fails the request *without* buffers. Only for the panic-recovery
    /// blanket, where the buffers died with the panicking batch —
    /// every other failure path must use
    /// [`fail_with_buffers`](Self::fail_with_buffers) so the caller's
    /// pool stays warm.
    pub fn fail(&self, error: ServeError) {
        self.fill(SlabOutcome {
            ids: Vec::new(),
            out: Vec::new(),
            result: Err(error),
        });
    }

    /// Blocks until the outcome arrives and takes it.
    pub fn wait(&self) -> SlabOutcome {
        let mut state = self.state.lock();
        loop {
            if let Some(outcome) = state.take() {
                return outcome;
            }
            self.ready.wait(&mut state);
        }
    }
}

impl Default for SlabSlot {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug)]
struct QueueState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

impl<T> Default for QueueState<T> {
    fn default() -> Self {
        QueueState {
            queue: VecDeque::new(),
            closed: false,
        }
    }
}

/// A bounded MPSC queue with batch-oriented consumption, generic over
/// the queued request type (the router enqueues [`crate::router`]'s
/// `Request`; tests use plain values).
#[derive(Debug)]
pub struct ShardQueue<T> {
    state: Mutex<QueueState<T>>,
    /// Wakes the worker when requests arrive or the queue closes.
    ready: Condvar,
    /// Wakes blocked producers when capacity frees up.
    space: Condvar,
    capacity: usize,
}

impl<T> ShardQueue<T> {
    /// Creates a queue holding at most `capacity` pending requests.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0` — rejected earlier by config
    /// validation.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        ShardQueue {
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues a request, blocking while the queue is full
    /// (backpressure — the [`crate::AdmissionPolicy::Block`] path).
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] (with the request) once the queue
    /// is closed.
    pub fn push(&self, request: T) -> std::result::Result<(), PushError<T>> {
        let mut state = self.state.lock();
        loop {
            if state.closed {
                return Err(PushError::Closed(request));
            }
            if state.queue.len() < self.capacity {
                break;
            }
            self.space.wait(&mut state);
        }
        state.queue.push_back(request);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Enqueues without waiting: a full queue rejects immediately with
    /// [`PushError::Full`], handing the request back.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Full`] when the queue is at capacity and
    /// [`PushError::Closed`] once it is closed.
    pub fn try_push(&self, request: T) -> std::result::Result<(), PushError<T>> {
        let mut state = self.state.lock();
        if state.closed {
            return Err(PushError::Closed(request));
        }
        if state.queue.len() >= self.capacity {
            return Err(PushError::Full(request));
        }
        state.queue.push_back(request);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Enqueues, waiting at most `budget` for queue space — the
    /// bounded-blocking admission path of
    /// [`crate::AdmissionPolicy::Shed`]: a producer never waits past its
    /// budget, so an open-loop caller keeps its arrival schedule even
    /// under sustained overload.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Full`] when the queue stayed full for the
    /// whole budget and [`PushError::Closed`] once the queue is closed.
    /// A budget too large to represent as a point in time (e.g.
    /// `Duration::MAX`) waits indefinitely, like [`push`](Self::push).
    // memcom-lint: hot-path
    pub fn push_until(
        &self,
        request: T,
        budget: Duration,
    ) -> std::result::Result<(), PushError<T>> {
        // memcom-lint: allow(L002) -- the admission budget is defined in wall-clock time; one anchor read per push, before the loop
        let deadline = Instant::now().checked_add(budget);
        let mut state = self.state.lock();
        loop {
            if state.closed {
                return Err(PushError::Closed(request));
            }
            if state.queue.len() < self.capacity {
                break;
            }
            match deadline {
                Some(deadline) => {
                    // memcom-lint: allow(L002) -- re-read only while blocked on a full queue, never on the uncontended fast path
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(PushError::Full(request));
                    }
                    self.space.wait_for(&mut state, deadline - now);
                }
                None => self.space.wait(&mut state),
            }
        }
        state.queue.push_back(request);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }
    // memcom-lint: end-hot-path

    /// Pops the next micro-batch: blocks for the first request, then
    /// coalesces up to `max_batch` requests over at most `max_wait`.
    /// Returns `None` when the queue is closed *and* fully drained —
    /// the worker's exit signal.
    ///
    /// Allocates a fresh `Vec` per call; workers on the hot path reuse
    /// one buffer through [`pop_batch_into`](Self::pop_batch_into).
    pub fn pop_batch(&self, max_batch: usize, max_wait: Duration) -> Option<(Vec<T>, FlushReason)> {
        let mut batch = Vec::new();
        let reason = self.pop_batch_into(&mut batch, max_batch, max_wait)?;
        Some((batch, reason))
    }

    /// Like [`pop_batch`](Self::pop_batch), but drains the batch into
    /// the caller's reusable buffer (cleared first) instead of
    /// allocating one per flush — the worker loop's zero-allocation
    /// steady state, certified by `tests/alloc_count.rs`.
    pub fn pop_batch_into(
        &self,
        batch: &mut Vec<T>,
        max_batch: usize,
        max_wait: Duration,
    ) -> Option<FlushReason> {
        self.pop_batch_into_timed(batch, max_batch, max_wait)
            .map(|(reason, _)| reason)
    }

    /// Like [`pop_batch_into`](Self::pop_batch_into), additionally
    /// reporting how long the batch was held open (batch-open → flush,
    /// the assembly latency half of the micro-batching trade-off).
    /// Costs nothing extra: phase 2 reads the clock for its deadline
    /// anyway.
    // memcom-lint: hot-path
    pub fn pop_batch_into_timed(
        &self,
        batch: &mut Vec<T>,
        max_batch: usize,
        max_wait: Duration,
    ) -> Option<(FlushReason, Duration)> {
        batch.clear();
        let mut state = self.state.lock();
        // Phase 1: wait for the batch-opening request.
        loop {
            if !state.queue.is_empty() {
                break;
            }
            if state.closed {
                return None;
            }
            self.ready.wait(&mut state);
        }
        // Phase 2: hold the batch open until full, timed out, or closed.
        // A `max_wait` too large to represent as a point in time holds
        // the batch open until it fills or the queue closes.
        // memcom-lint: allow(L002) -- the batch window is defined in wall-clock time; one anchor read per flush, and it doubles as the assembly-latency start
        let opened = Instant::now();
        let deadline = opened.checked_add(max_wait);
        while state.queue.len() < max_batch && !state.closed {
            match deadline {
                Some(deadline) => {
                    // memcom-lint: allow(L002) -- re-read only while the batch is deliberately held open waiting for more requests
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    self.ready.wait_for(&mut state, deadline - now);
                }
                None => self.ready.wait(&mut state),
            }
        }
        let assembly = opened.elapsed();
        let take = state.queue.len().min(max_batch);
        batch.extend(state.queue.drain(..take));
        let reason = if batch.len() == max_batch {
            FlushReason::Full
        } else if state.closed {
            FlushReason::Drain
        } else {
            FlushReason::Timeout
        };
        drop(state);
        self.space.notify_all();
        Some((reason, assembly))
    }
    // memcom-lint: end-hot-path

    /// Closes the queue: producers start failing, the worker drains what
    /// remains and exits.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// Pending request count (diagnostics).
    pub fn depth(&self) -> usize {
        self.state.lock().queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn batch_flushes_when_full() {
        let q = ShardQueue::new(16);
        for id in 0..5usize {
            q.push(id).unwrap();
        }
        let (batch, reason) = q.pop_batch(4, Duration::from_secs(10)).unwrap();
        assert_eq!(batch.len(), 4, "full batch without waiting out the clock");
        assert_eq!(reason, FlushReason::Full);
        assert_eq!(q.depth(), 1);
        let (rest, reason) = q.pop_batch(4, Duration::from_millis(1)).unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(reason, FlushReason::Timeout);
    }

    #[test]
    fn batch_flushes_on_timeout() {
        let q = ShardQueue::new(16);
        q.push(7usize).unwrap();
        let t0 = Instant::now();
        let (batch, reason) = q.pop_batch(64, Duration::from_millis(30)).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(reason, FlushReason::Timeout);
        assert!(
            t0.elapsed() >= Duration::from_millis(25),
            "waited out max_wait"
        );
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = ShardQueue::new(16);
        q.push(1usize).unwrap();
        q.push(2).unwrap();
        q.close();
        assert!(matches!(q.push(3), Err(PushError::Closed(3))));
        let (batch, reason) = q.pop_batch(64, Duration::from_secs(10)).unwrap();
        assert_eq!(batch.len(), 2, "queued work survives close");
        assert_eq!(reason, FlushReason::Drain);
        assert!(
            q.pop_batch(64, Duration::from_secs(10)).is_none(),
            "then the worker exits"
        );
    }

    #[test]
    fn try_push_rejects_when_full_and_hands_the_request_back() {
        let q = ShardQueue::new(2);
        q.try_push(1usize).unwrap();
        q.try_push(2).unwrap();
        // Full: immediate rejection, request recovered intact.
        match q.try_push(3) {
            Err(PushError::Full(rejected)) => assert_eq!(rejected, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
        // Space frees up -> accepted again.
        let (batch, _) = q.pop_batch(1, Duration::from_millis(1)).unwrap();
        assert_eq!(batch, vec![1]);
        q.try_push(3).unwrap();
        q.close();
        assert!(matches!(q.try_push(4), Err(PushError::Closed(4))));
    }

    #[test]
    fn push_until_waits_out_its_budget_then_sheds() {
        let q = ShardQueue::new(1);
        q.push(0usize).unwrap();
        // Nothing drains the queue: the push must give up after ~budget,
        // not block forever (the coordinated-omission fix).
        let t0 = Instant::now();
        let budget = Duration::from_millis(30);
        match q.push_until(9, budget) {
            Err(PushError::Full(rejected)) => assert_eq!(rejected, 9),
            other => panic!("expected Full, got {other:?}"),
        }
        let waited = t0.elapsed();
        assert!(waited >= Duration::from_millis(25), "waited {waited:?}");
        assert!(waited < Duration::from_secs(5), "waited {waited:?}");

        // With a consumer freeing space inside the budget, it succeeds.
        let q = Arc::new(ShardQueue::new(1));
        q.push(0usize).unwrap();
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            q2.pop_batch(1, Duration::from_millis(1))
        });
        q.push_until(9, Duration::from_secs(5)).unwrap();
        consumer.join().unwrap().unwrap();
        assert_eq!(q.depth(), 1);
        // A zero budget behaves like try_push on a full queue.
        assert!(matches!(
            q.push_until(7, Duration::ZERO),
            Err(PushError::Full(7))
        ));
    }

    #[test]
    fn unrepresentable_budgets_never_panic() {
        // `Instant::now() + Duration::MAX` would overflow-panic; these
        // budgets must instead mean "wait indefinitely".
        let q = ShardQueue::new(2);
        q.push_until(1usize, Duration::MAX).unwrap();
        let (batch, _) = q.pop_batch(4, Duration::from_millis(1)).unwrap();
        assert_eq!(batch, vec![1]);
        // Phase-2 hold with an unrepresentable max_wait still flushes
        // when the batch fills.
        let q2 = Arc::new(ShardQueue::new(4));
        let q3 = Arc::clone(&q2);
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            q3.push(8usize).unwrap();
            q3.push(9).unwrap();
        });
        let (batch, reason) = q2.pop_batch(2, Duration::MAX).unwrap();
        producer.join().unwrap();
        assert_eq!(batch, vec![8, 9]);
        assert_eq!(reason, FlushReason::Full);
    }

    #[test]
    fn pop_batch_into_reuses_the_callers_buffer() {
        let q = ShardQueue::new(16);
        let mut batch: Vec<usize> = Vec::with_capacity(8);
        for id in 0..6usize {
            q.push(id).unwrap();
        }
        let reason = q
            .pop_batch_into(&mut batch, 4, Duration::from_secs(1))
            .unwrap();
        assert_eq!(batch, vec![0, 1, 2, 3]);
        assert_eq!(reason, FlushReason::Full);
        let capacity = batch.capacity();
        // Stale contents are cleared; capacity is reused, not reallocated.
        let reason = q
            .pop_batch_into(&mut batch, 4, Duration::from_millis(1))
            .unwrap();
        assert_eq!(batch, vec![4, 5]);
        assert_eq!(reason, FlushReason::Timeout);
        assert_eq!(batch.capacity(), capacity);
        q.close();
        assert!(q
            .pop_batch_into(&mut batch, 4, Duration::from_secs(1))
            .is_none());
    }

    #[test]
    fn timed_pop_reports_assembly_hold() {
        let q = ShardQueue::new(16);
        let mut batch: Vec<usize> = Vec::new();
        // A full batch flushes without waiting out the clock.
        for id in 0..4usize {
            q.push(id).unwrap();
        }
        let (reason, held) = q
            .pop_batch_into_timed(&mut batch, 4, Duration::from_secs(10))
            .unwrap();
        assert_eq!(reason, FlushReason::Full);
        assert!(held < Duration::from_secs(1), "held {held:?}");
        // A timeout flush reports roughly the configured hold.
        q.push(9).unwrap();
        let (reason, held) = q
            .pop_batch_into_timed(&mut batch, 4, Duration::from_millis(30))
            .unwrap();
        assert_eq!(reason, FlushReason::Timeout);
        assert!(held >= Duration::from_millis(25), "held {held:?}");
    }

    #[test]
    fn cross_thread_wakeup() {
        let q = Arc::new(ShardQueue::new(4));
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            q2.push(9usize).unwrap();
        });
        // Worker parked on an empty queue gets woken by the push.
        let (batch, _) = q.pop_batch(1, Duration::from_secs(5)).unwrap();
        assert_eq!(batch[0], 9);
        producer.join().unwrap();
    }

    #[test]
    fn fill_is_first_write_wins() {
        let slot = ResponseSlot::new();
        slot.fill(Ok(vec![1.0]));
        // The panic-recovery blanket must not clobber a real answer.
        slot.fill(Err(ServeError::WorkerLost));
        assert_eq!(slot.wait().unwrap(), vec![1.0]);
    }

    #[test]
    fn response_slot_round_trip() {
        let slot = Arc::new(ResponseSlot::new());
        let slot2 = Arc::clone(&slot);
        let filler = std::thread::spawn(move || slot2.fill(Ok(vec![1.0, 2.0])));
        assert_eq!(slot.wait().unwrap(), vec![1.0, 2.0]);
        filler.join().unwrap();
    }

    #[test]
    fn slab_slot_round_trips_buffers() {
        let slot = Arc::new(SlabSlot::new());
        let slot2 = Arc::clone(&slot);
        let filler = std::thread::spawn(move || {
            slot2.fill(SlabOutcome {
                ids: vec![3, 9],
                out: vec![1.0, 2.0, 3.0, 4.0],
                result: Ok(()),
            });
        });
        let outcome = slot.wait();
        filler.join().unwrap();
        assert_eq!(outcome.ids, vec![3, 9]);
        assert_eq!(outcome.out, vec![1.0, 2.0, 3.0, 4.0]);
        assert!(outcome.result.is_ok());
        // First write wins here too.
        slot.fail(ServeError::WorkerLost);
        slot.fill(SlabOutcome {
            ids: Vec::new(),
            out: Vec::new(),
            result: Ok(()),
        });
        assert!(slot.wait().result.is_err());
    }

    #[test]
    fn fail_with_buffers_preserves_capacity() {
        let slot = SlabSlot::new();
        slot.fail_with_buffers(vec![1, 2], vec![0.0; 8], ServeError::ShuttingDown);
        let outcome = slot.wait();
        assert!(matches!(outcome.result, Err(ServeError::ShuttingDown)));
        // The buffers come back with their capacity intact, ready to be
        // recycled into the caller's pool.
        assert!(outcome.ids.capacity() >= 2);
        assert!(outcome.out.capacity() >= 8);
    }
}
