//! Error type for the serving engine.

use std::error::Error;
use std::fmt;

use memcom_core::CoreError;
use memcom_ondevice::OnDeviceError;

/// Everything that can go wrong while building or querying a server.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Invalid serving configuration.
    BadConfig {
        /// What was wrong.
        context: String,
    },
    /// Requested id is outside the served vocabulary.
    IdOutOfVocab {
        /// The offending id.
        id: usize,
        /// The vocabulary bound.
        vocab: usize,
    },
    /// No model with this name is registered on the router (or it was
    /// deregistered).
    ModelNotFound {
        /// The requested model name.
        name: String,
    },
    /// A model with this name is already registered on the router.
    ModelExists {
        /// The conflicting model name.
        name: String,
    },
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown,
    /// Shed at admission: the shard queue stayed full past the
    /// producer's enqueue budget
    /// ([`crate::AdmissionPolicy::Shed`]`::enqueue_timeout`). A load
    /// condition, not a bug — retry later or back off.
    Overloaded {
        /// How long the producer waited for queue space before giving
        /// up (the configured enqueue budget).
        waited: std::time::Duration,
        /// Suggested backoff before retrying, derived from the rejecting
        /// shard's queue depth divided by its calibrated service
        /// capacity (`max_batch / store_latency` — see
        /// [`crate::ServeConfig::suggested_backoff`]): roughly how long
        /// the backlog ahead of a retry needs to drain. Cooperating
        /// clients that pace themselves by this hint stop hammering the
        /// admission gate; the closed-loop load generator honors it.
        retry_after: std::time::Duration,
    },
    /// Dropped at dequeue: the request was older than its end-to-end
    /// deadline ([`crate::AdmissionPolicy::Shed`]`::request_deadline`)
    /// by the time a worker picked it up, so the worker failed it
    /// instead of computing an answer nobody is still waiting for.
    DeadlineExceeded {
        /// How long the request had been outstanding when a worker
        /// dequeued it — measured from issue, so it includes admission
        /// waits (and, for a fanned-out request, the admission of
        /// earlier shards), not just time in this shard's queue.
        queued: std::time::Duration,
        /// The deadline it was issued under.
        deadline: std::time::Duration,
    },
    /// A serving worker disappeared without answering (a bug, not a load
    /// condition).
    WorkerLost,
    /// Error from the compression layer during store construction.
    Core(CoreError),
    /// Error from the simulated mmap / on-device layer.
    OnDevice(OnDeviceError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadConfig { context } => write!(f, "bad serving config: {context}"),
            ServeError::IdOutOfVocab { id, vocab } => {
                write!(f, "id {id} out of served vocabulary {vocab}")
            }
            ServeError::ModelNotFound { name } => write!(f, "no model named {name:?} is serving"),
            ServeError::ModelExists { name } => {
                write!(f, "a model named {name:?} is already serving")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Overloaded {
                waited,
                retry_after,
            } => write!(
                f,
                "request shed: shard queue still full after {waited:?} enqueue budget \
                 (suggested retry in {retry_after:?})"
            ),
            ServeError::DeadlineExceeded { queued, deadline } => write!(
                f,
                "request deadline exceeded: queued {queued:?} against a {deadline:?} budget"
            ),
            ServeError::WorkerLost => write!(f, "serving worker dropped a request"),
            ServeError::Core(e) => write!(f, "core error: {e}"),
            ServeError::OnDevice(e) => write!(f, "on-device error: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            ServeError::OnDevice(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<OnDeviceError> for ServeError {
    fn from(e: OnDeviceError) -> Self {
        ServeError::OnDevice(e)
    }
}
