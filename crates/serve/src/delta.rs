//! Row-level store deltas.
//!
//! A [`StoreDelta`] is the incremental-refresh unit of the serving tier:
//! a batch of row upserts and removals that
//! [`crate::ShardedStore::apply_delta`] turns into a **new store
//! snapshot sharing every untouched page** with the old one, and
//! [`crate::Router::apply_delta`] flips in atomically under live
//! traffic. Where [`crate::Router::swap`] rebuilds and re-registers an
//! entire store (O(table) work and 2× peak memory), a delta costs work
//! and fresh memory proportional to the rows it touches — the update
//! path production parameter servers ship for continuously-refreshing
//! embedding tables.
//!
//! Deltas are **dtype-aware**: rows arrive as `f32` and are re-encoded
//! at apply time to the target store's [`crate::Dtype`] with a per-row
//! scale, and the store's certified
//! [`error_bound`](crate::ShardedStore::error_bound) is re-certified to
//! cover the new rows.
//!
//! ```
//! use memcom_core::{FullEmbedding, EmbeddingCompressor};
//! use memcom_serve::{ShardedStore, StoreDelta};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let emb = FullEmbedding::new(1_000, 16, &mut rng)?;
//! let store = ShardedStore::build(&emb, 2, 64, 4096)?;
//!
//! // Three changed rows out of 1 000: refresh one, retire one, add one.
//! let mut delta = StoreDelta::new(16);
//! delta.upsert_row(7, &[0.25; 16])?;
//! delta.remove_row(9)?;
//! delta.upsert_row(1_000, &[0.5; 16])?; // grows the vocabulary
//!
//! let refreshed = store.apply_delta(&delta)?;
//! assert_eq!(refreshed.vocab(), 1_001);
//! assert_eq!(refreshed.get(7)?, vec![0.25; 16]);
//! assert_eq!(refreshed.get(9)?, vec![0.0; 16]); // tombstoned
//! assert_eq!(store.get(7)?.len(), 16); // old snapshot untouched
//!
//! // Untouched pages are physically shared, not copied.
//! assert!(refreshed.shared_bytes_with(&store) > store.stored_bytes() / 2);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;

use crate::{Result, ServeError};

/// One pending change to a row id (last write per id wins).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum DeltaOp {
    /// Replace (or, past the current vocabulary, append) the row.
    Upsert(Vec<f32>),
    /// Tombstone the row: it serves the zero embedding afterwards.
    Remove,
}

/// A builder for a batch of row-level store updates.
///
/// Ids are collected in a map, so repeated operations on one id collapse
/// to the final one — the delta describes the *end state* of each
/// touched row, which is what makes `apply_delta` equivalent to a full
/// rebuild of the mutated table.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreDelta {
    dim: usize,
    ops: BTreeMap<usize, DeltaOp>,
}

impl StoreDelta {
    /// An empty delta for rows of `dim` values.
    pub fn new(dim: usize) -> Self {
        StoreDelta {
            dim,
            ops: BTreeMap::new(),
        }
    }

    /// Row width this delta carries.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of distinct ids this delta touches.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the delta touches no ids.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Whether the delta touches `id` (upsert or remove).
    pub fn contains(&self, id: usize) -> bool {
        self.ops.contains_key(&id)
    }

    /// Distinct ids upserted.
    pub fn upserts(&self) -> usize {
        self.ops
            .values()
            .filter(|op| matches!(op, DeltaOp::Upsert(_)))
            .count()
    }

    /// Distinct ids removed.
    pub fn removes(&self) -> usize {
        self.len() - self.upserts()
    }

    /// The largest id the delta upserts (removals never grow a store).
    pub(crate) fn max_upsert_id(&self) -> Option<usize> {
        self.ops
            .iter()
            .rev()
            .find(|(_, op)| matches!(op, DeltaOp::Upsert(_)))
            .map(|(&id, _)| id)
    }

    /// The pending operations in ascending id order.
    pub(crate) fn ops(&self) -> impl Iterator<Item = (usize, &DeltaOp)> {
        self.ops.iter().map(|(&id, op)| (id, op))
    }

    /// Queues an upsert of `row` for `id`. An id at or past the target
    /// store's vocabulary grows it (intermediate never-upserted ids
    /// serve the zero embedding).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] when `row` is not `dim` values.
    pub fn upsert_row(&mut self, id: usize, row: &[f32]) -> Result<()> {
        if row.len() != self.dim {
            return Err(ServeError::BadConfig {
                context: format!(
                    "delta row for id {id} has {} values, expected dim {}",
                    row.len(),
                    self.dim
                ),
            });
        }
        self.ops.insert(id, DeltaOp::Upsert(row.to_vec()));
        Ok(())
    }

    /// Queues upserts for `ids` with their rows packed row-major in
    /// `rows` (`ids.len() * dim` values).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] on a size mismatch.
    pub fn upsert_rows(&mut self, ids: &[usize], rows: &[f32]) -> Result<()> {
        if rows.len() != ids.len() * self.dim {
            return Err(ServeError::BadConfig {
                context: format!(
                    "delta rows hold {} values for {} ids of dim {}",
                    rows.len(),
                    ids.len(),
                    self.dim
                ),
            });
        }
        for (k, &id) in ids.iter().enumerate() {
            self.upsert_row(id, &rows[k * self.dim..(k + 1) * self.dim])?;
        }
        Ok(())
    }

    /// Queues a removal: after apply, `id` serves the zero embedding
    /// (and its cached copy is invalidated). Removal never shrinks the
    /// vocabulary — ids stay addressable, which keeps the slot layout
    /// stable across snapshots.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` so id validation can move here
    /// without breaking callers.
    pub fn remove_row(&mut self, id: usize) -> Result<()> {
        self.ops.insert(id, DeltaOp::Remove);
        Ok(())
    }

    /// Queues removals for every id in `ids`.
    ///
    /// # Errors
    ///
    /// Same as [`remove_row`](Self::remove_row).
    pub fn remove_rows(&mut self, ids: &[usize]) -> Result<()> {
        for &id in ids {
            self.remove_row(id)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collapses_to_final_op_per_id() {
        let mut d = StoreDelta::new(2);
        d.upsert_row(5, &[1.0, 2.0]).unwrap();
        d.remove_row(5).unwrap();
        d.upsert_rows(&[3, 9], &[0.1, 0.2, 0.3, 0.4]).unwrap();
        d.upsert_row(3, &[9.0, 9.0]).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert!(!d.is_empty());
        assert!(d.contains(5) && d.contains(3) && d.contains(9));
        assert!(!d.contains(4));
        assert_eq!((d.upserts(), d.removes()), (2, 1));
        assert_eq!(d.max_upsert_id(), Some(9));
        // Ascending id order; id 5's final op is the removal, id 3's the
        // second upsert.
        let ops: Vec<(usize, DeltaOp)> = d.ops().map(|(id, op)| (id, op.clone())).collect();
        assert_eq!(ops[0], (3, DeltaOp::Upsert(vec![9.0, 9.0])));
        assert_eq!(ops[1], (5, DeltaOp::Remove));
        assert_eq!(ops[2], (9, DeltaOp::Upsert(vec![0.3, 0.4])));
    }

    #[test]
    fn size_mismatches_rejected() {
        let mut d = StoreDelta::new(3);
        assert!(matches!(
            d.upsert_row(0, &[1.0]),
            Err(ServeError::BadConfig { .. })
        ));
        assert!(matches!(
            d.upsert_rows(&[0, 1], &[0.0; 5]),
            Err(ServeError::BadConfig { .. })
        ));
        assert!(d.is_empty());
        assert_eq!(d.max_upsert_id(), None);
        d.remove_rows(&[1, 2]).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.max_upsert_id(), None, "removals never grow");
    }
}
