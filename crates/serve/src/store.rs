//! The sharded row store.
//!
//! Partitions a trained embedding model's per-entity state across N
//! shards, each backed by its own [`MmapSim`] (its own page-residency
//! tracking, so shards never contend on a shared lock) and fronted by its
//! own hot-row LRU.
//!
//! Two layouts, chosen automatically at build time:
//!
//! * **MemCom** — the shard replicates the *small shared table* (`m × e`,
//!   the whole point of the compression is that this is tiny) and
//!   partitions the *large per-entity tables* (multipliers, biases)
//!   round-robin. A lookup reads one shared row + one or two
//!   scalars and reconstructs the embedding exactly as the on-device
//!   engine does.
//! * **Rows** — any other compressor is materialized through its
//!   zero-copy `embed_into` path into dense per-shard row files. Correct
//!   for every technique, at uncompressed storage cost — which is
//!   precisely the serving-memory trade-off the paper's Table 3
//!   contrasts.
//!
//! Ids are routed `shard = id % n_shards`, `slot = id / n_shards`:
//! contiguous popular ids (the paper frequency-sorts ids, §5.1) spread
//! across all shards, so Zipf-skewed traffic load-balances naturally.
//!
//! The batch read path is slab-based: [`ShardedStore::lookup_batch`]
//! writes rows straight into a caller-owned flat buffer — cache hits are
//! `memcpy`s out of the LRU, misses decode from the mmap in place, and
//! nothing on that path allocates per row.
//!
//! Either layout can store its rows below fp32
//! ([`ShardedStore::build_quantized`]): shard pages then hold
//! [`Dtype`]-packed row bytes — each integer-quantized row carries its
//! own inline `f32` scale, so one page-local read yields both — and the
//! miss path dequantizes **directly into the caller's slab** through
//! [`memcom_ondevice::decode_row_into`], preserving the zero-allocation
//! guarantee. The hot-row LRU always caches decoded fp32 rows, so cache
//! hits stay pure memcpys regardless of the storage dtype, and
//! [`ShardedStore::error_bound`] certifies the worst-case absolute error
//! any served row can carry.

use std::sync::atomic::{AtomicU64, Ordering};

use memcom_core::hashing::mod_hash;
use memcom_core::EmbeddingCompressor;
use memcom_core::MemCom;
use memcom_ondevice::compute::WorkCounts;
use memcom_ondevice::engine::RunStats;
use memcom_ondevice::mmap_sim::MmapSim;
use memcom_ondevice::quant::{decode_row_into, dequant_error_bound, quantize_row, Dtype};
use parking_lot::Mutex;

use crate::cache::LruCache;
use crate::{Result, ServeError};

/// Aggregate cache-effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the hot-row cache.
    pub hits: u64,
    /// Lookups that had to touch the backing store.
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (`0` before any traffic).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Layout {
    /// Materialized rows: slot `s` holds the full row of id `s*n + shard`.
    Rows,
    /// Replicated shared table + partitioned multipliers (and biases).
    MemCom {
        /// Shared-table rows (the paper's `m`).
        m: usize,
        /// Whether a per-entity bias table follows the multipliers.
        bias: bool,
    },
}

struct Shard {
    mmap: MmapSim,
    layout: Layout,
    /// Storage dtype of this shard's row bytes.
    dtype: Dtype,
    /// Rows owned by this shard (its slot count).
    slots: usize,
    cache: Mutex<LruCache>,
    /// Reusable `(position, id)` miss list for the batch path; per-shard
    /// like the cache, so the one-worker-per-shard discipline keeps it
    /// uncontended and allocation settles after the first large batch.
    miss_scratch: Mutex<Vec<(usize, usize)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    flops: AtomicU64,
}

impl Shard {
    /// Decodes the embedding row for global `id` at local `slot` from the
    /// backing mmap straight into `out`, bypassing the cache — the
    /// zero-copy miss path: quantized bytes dequantize in place, no
    /// intermediate buffer.
    fn read_row_into(&self, id: usize, slot: usize, dim: usize, out: &mut [f32]) -> Result<()> {
        debug_assert!(slot < self.slots, "slot routed to wrong shard");
        debug_assert_eq!(out.len(), dim);
        let stride = self.dtype.stored_row_bytes(dim);
        match self.layout {
            Layout::Rows => {
                let bytes = self.mmap.read(slot * stride, stride)?;
                decode_stored_row(bytes, self.dtype, out);
                if self.dtype != Dtype::F32 {
                    // Dequantization is real reconstruction work: one
                    // multiply (or half-to-float convert) per element.
                    self.flops.fetch_add(dim as u64, Ordering::Relaxed);
                }
            }
            Layout::MemCom { m, bias } => {
                let shared_row = mod_hash(id, m);
                let mult_base = m * stride;
                let v = decode_f32(self.mmap.read(mult_base + slot * 4, 4)?);
                let u = self.mmap.read(shared_row * stride, stride)?;
                decode_stored_row(u, self.dtype, out);
                if bias {
                    let bias_base = mult_base + self.slots * 4;
                    let w = decode_f32(self.mmap.read(bias_base + slot * 4, 4)?);
                    self.flops.fetch_add(2 * dim as u64, Ordering::Relaxed);
                    for o in out.iter_mut() {
                        *o = *o * v + w;
                    }
                } else {
                    self.flops.fetch_add(dim as u64, Ordering::Relaxed);
                    for o in out.iter_mut() {
                        *o *= v;
                    }
                }
                if self.dtype != Dtype::F32 {
                    self.flops.fetch_add(dim as u64, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    }

    /// Serves a batch of ids owned by this shard into the flat slab
    /// `out` (`ids.len() * dim` values, row-major): one cache-lock
    /// acquisition for the hit scan, store reads only for misses, one
    /// more lock for the fills — the lock amortization micro-batching
    /// buys. Nothing here allocates per row: hits copy out of the LRU,
    /// misses decode in place, duplicate ids copy within the slab, and
    /// cache fills recycle LRU storage via `insert_from`.
    fn lookup_into(
        &self,
        ids: &[usize],
        n_shards: usize,
        dim: usize,
        out: &mut [f32],
    ) -> Result<()> {
        assert_eq!(
            out.len(),
            ids.len() * dim,
            "slab holds {} values for {} rows of dim {dim}",
            out.len(),
            ids.len()
        );
        let mut missing = self.miss_scratch.lock();
        missing.clear();
        {
            let mut cache = self.cache.lock();
            for (pos, &id) in ids.iter().enumerate() {
                match cache.get(id) {
                    Some(row) => out[pos * dim..(pos + 1) * dim].copy_from_slice(row),
                    None => missing.push((pos, id)),
                }
            }
        }
        let mut hits = (ids.len() - missing.len()) as u64;

        if !missing.is_empty() {
            // Ascending-id order keeps reads page-local within the batch
            // and groups duplicates, so a burst of requests for one cold
            // id (the batcher's bread and butter) pays one store read.
            missing.sort_unstable_by_key(|&(_, id)| id);
            let mut first_of_id: Option<(usize, usize)> = None; // (id, pos)
            let mut dup_hits = 0u64;
            for &(pos, id) in missing.iter() {
                match first_of_id {
                    Some((seen_id, seen_pos)) if seen_id == id => {
                        out.copy_within(seen_pos * dim..(seen_pos + 1) * dim, pos * dim);
                        dup_hits += 1;
                    }
                    _ => {
                        self.read_row_into(
                            id,
                            id / n_shards,
                            dim,
                            &mut out[pos * dim..(pos + 1) * dim],
                        )?;
                        first_of_id = Some((id, pos));
                    }
                }
            }
            let mut cache = self.cache.lock();
            let mut last_inserted = None;
            for &(pos, id) in missing.iter() {
                if last_inserted != Some(id) {
                    cache.insert_from(id, &out[pos * dim..(pos + 1) * dim]);
                    last_inserted = Some(id);
                }
            }
            // Duplicates served from the batch count as hits: they never
            // touched the store.
            hits += dup_hits;
            self.misses
                .fetch_add(missing.len() as u64 - dup_hits, Ordering::Relaxed);
        }
        self.hits.fetch_add(hits, Ordering::Relaxed);
        Ok(())
    }
}

/// A sharded, cached, mmap-backed read-only row store built from any
/// [`EmbeddingCompressor`].
///
/// Thread-safety note: lookups are always *correct* under arbitrary
/// concurrency, but the cache hit/miss and byte counters are exact only
/// with one accessor per shard (the [`crate::Router`] discipline —
/// one worker per shard). Concurrent direct calls into the same shard
/// can both miss on the same cold id between the hit scan and the fill,
/// double-reading the row and counting two misses where the serving
/// path would count one.
pub struct ShardedStore {
    shards: Vec<Shard>,
    vocab: usize,
    dim: usize,
    dtype: Dtype,
    /// Worst-case absolute error of any served row vs. the fp32 model.
    error_bound: f32,
    method: &'static str,
}

impl ShardedStore {
    /// Builds an fp32 store with `n_shards` shards from a trained
    /// compressor, using the given per-shard cache capacity and simulated
    /// page size. Served rows are bit-exact
    /// ([`error_bound`](Self::error_bound) is 0); for sub-fp32 row
    /// storage use [`build_quantized`](Self::build_quantized).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for a zero shard count or an
    /// empty model, and propagates compressor errors from
    /// materialization.
    pub fn build(
        emb: &dyn EmbeddingCompressor,
        n_shards: usize,
        cache_capacity: usize,
        page_size: usize,
    ) -> Result<Self> {
        Self::build_quantized(emb, n_shards, cache_capacity, page_size, Dtype::F32)
    }

    /// Builds a store whose shard pages hold `dtype`-packed row bytes.
    ///
    /// Each integer-quantized row is encoded with its **own** linear
    /// scale (stored inline before the payload), so the error of any row
    /// is bounded by *that row's* half-step, not the worst row's. For the
    /// MemCom layout the small shared table is quantized per row while
    /// the per-entity scalars stay `f32` (they are one value per entity —
    /// already the minimal footprint, and keeping them exact means the
    /// reconstruction error is just `|v| · err(u_row)`).
    /// [`error_bound`](Self::error_bound) reports the certified
    /// worst-case absolute error across the whole table.
    ///
    /// # Errors
    ///
    /// Same conditions as [`build`](Self::build).
    pub fn build_quantized(
        emb: &dyn EmbeddingCompressor,
        n_shards: usize,
        cache_capacity: usize,
        page_size: usize,
        dtype: Dtype,
    ) -> Result<Self> {
        if n_shards == 0 {
            return Err(ServeError::BadConfig {
                context: "n_shards must be >= 1".into(),
            });
        }
        let vocab = emb.vocab_size();
        let dim = emb.output_dim();
        if vocab == 0 || dim == 0 {
            return Err(ServeError::BadConfig {
                context: format!("degenerate model: vocab {vocab}, dim {dim}"),
            });
        }

        let memcom = emb.as_any().downcast_ref::<MemCom>();
        // The replicated shared-table prefix is identical for every
        // shard; encode it once and memcpy it per shard. For MemCom the
        // final row is u_row · v (+ w) with exact scalars, so its error
        // bound is the shared table's row bound times the largest |v|.
        let shared_encoded = memcom.map(|mc| {
            let m = mc.shared_table().shape().dims()[0];
            let (bytes, shared_bound) = encode_rows(mc.shared_table().as_slice(), m, dim, dtype);
            let max_abs_v = mc
                .multiplier_table()
                .as_slice()
                .iter()
                .fold(0f32, |acc, &v| acc.max(v.abs()));
            (bytes, shared_bound * max_abs_v)
        });
        let mut error_bound = 0f32;
        let mut row_scratch = vec![0f32; dim];
        let mut payload_scratch = vec![0u8; dtype.row_bytes(dim)];
        let mut shards = Vec::with_capacity(n_shards);
        for shard_idx in 0..n_shards {
            // Ids owned by this shard: shard_idx, shard_idx + n, ...
            let slots = if shard_idx < vocab {
                (vocab - shard_idx).div_ceil(n_shards)
            } else {
                0
            };
            let (bytes, layout) = match memcom {
                Some(mc) => {
                    let m = mc.shared_table().shape().dims()[0];
                    let (shared_bytes, bound) =
                        shared_encoded.as_ref().expect("encoded for memcom");
                    error_bound = error_bound.max(*bound);
                    let mut bytes = shared_bytes.clone();
                    let mult = mc.multiplier_table().as_slice();
                    for slot in 0..slots {
                        bytes.extend_from_slice(&mult[shard_idx + slot * n_shards].to_le_bytes());
                    }
                    let bias = mc.bias_table().map(|b| b.as_slice());
                    if let Some(b) = bias {
                        for slot in 0..slots {
                            bytes.extend_from_slice(&b[shard_idx + slot * n_shards].to_le_bytes());
                        }
                    }
                    (
                        bytes,
                        Layout::MemCom {
                            m,
                            bias: bias.is_some(),
                        },
                    )
                }
                None => {
                    let mut bytes = Vec::with_capacity(slots * dtype.stored_row_bytes(dim));
                    for slot in 0..slots {
                        emb.embed_into(shard_idx + slot * n_shards, &mut row_scratch)?;
                        let bound = encode_stored_row(
                            &row_scratch,
                            dtype,
                            &mut payload_scratch,
                            &mut bytes,
                        );
                        error_bound = error_bound.max(bound);
                    }
                    (bytes, Layout::Rows)
                }
            };
            shards.push(Shard {
                mmap: MmapSim::with_page_size(bytes, page_size),
                layout,
                dtype,
                slots,
                cache: Mutex::new(LruCache::new(cache_capacity)),
                miss_scratch: Mutex::new(Vec::new()),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                flops: AtomicU64::new(0),
            });
        }
        Ok(ShardedStore {
            shards,
            vocab,
            dim,
            dtype,
            error_bound,
            method: emb.method_name(),
        })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Served vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Compression technique backing the store (e.g. `"memcom"`).
    pub fn method(&self) -> &'static str {
        self.method
    }

    /// Storage dtype of the shard row bytes.
    pub fn dtype(&self) -> Dtype {
        self.dtype
    }

    /// Certified worst-case absolute error of any served row relative to
    /// the fp32 model it was built from (`0.0` for [`Dtype::F32`]).
    pub fn error_bound(&self) -> f32 {
        self.error_bound
    }

    /// The shard owning `id`.
    pub fn shard_of(&self, id: usize) -> usize {
        id % self.shards.len()
    }

    /// Total bytes held by all shard stores (on-"disk" model size).
    pub fn stored_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.mmap.len()).sum()
    }

    /// Validates an id against the served vocabulary.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::IdOutOfVocab`] when out of range.
    pub fn check_id(&self, id: usize) -> Result<()> {
        if id >= self.vocab {
            return Err(ServeError::IdOutOfVocab {
                id,
                vocab: self.vocab,
            });
        }
        Ok(())
    }

    /// Looks up a single id through its shard's cache and store.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::IdOutOfVocab`] for ids past the vocabulary.
    pub fn get(&self, id: usize) -> Result<Vec<f32>> {
        self.check_id(id)?;
        let mut row = vec![0f32; self.dim];
        let shard = &self.shards[self.shard_of(id)];
        shard.lookup_into(
            std::slice::from_ref(&id),
            self.shards.len(),
            self.dim,
            &mut row,
        )?;
        Ok(row)
    }

    /// Serves a batch of ids that all route to `shard_idx` into the flat
    /// slab `out` — the zero-copy batch path. `out` must hold exactly
    /// `ids.len() * dim()` values; row `k` of the result lands at
    /// `out[k*dim .. (k+1)*dim]`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::IdOutOfVocab`] on any out-of-range id and
    /// [`ServeError::BadConfig`] when an id routes to a different shard
    /// (an internal routing bug).
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != ids.len() * dim()` — the slab is sized
    /// by the serving layer, so a mismatch is an internal bug, and
    /// panicking (rather than quietly truncating) lets the worker's
    /// panic recovery fail the whole batch loudly.
    pub fn lookup_batch(&self, shard_idx: usize, ids: &[usize], out: &mut [f32]) -> Result<()> {
        for &id in ids {
            self.check_id(id)?;
            if self.shard_of(id) != shard_idx {
                return Err(ServeError::BadConfig {
                    context: format!("id {id} routed to shard {shard_idx}"),
                });
            }
        }
        self.shards[shard_idx].lookup_into(ids, self.shards.len(), self.dim, out)
    }

    /// Serves a batch of ids that all route to `shard_idx`, allocating
    /// one `Vec` per row (legacy convenience over
    /// [`lookup_batch`](Self::lookup_batch)).
    ///
    /// # Errors
    ///
    /// Same conditions as [`lookup_batch`](Self::lookup_batch).
    pub fn get_shard_batch(&self, shard_idx: usize, ids: &[usize]) -> Result<Vec<Vec<f32>>> {
        let mut flat = vec![0f32; ids.len() * self.dim];
        self.lookup_batch(shard_idx, ids, &mut flat)?;
        Ok(flat.chunks_exact(self.dim).map(<[f32]>::to_vec).collect())
    }

    /// Aggregate cache counters across shards.
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        for shard in &self.shards {
            stats.hits += shard.hits.load(Ordering::Relaxed);
            stats.misses += shard.misses.load(Ordering::Relaxed);
        }
        stats
    }

    /// Counted work since construction, in the on-device cost model's
    /// terms: store reads split into cold (first page touch) and warm
    /// bytes, plus reconstruction flops for compressed layouts. Cache
    /// hits contribute *nothing* here — that is the cache's saving, and
    /// it shows directly in [`RunStats::time_ms`] comparisons.
    pub fn work(&self) -> WorkCounts {
        let mut work = WorkCounts::default();
        for shard in &self.shards {
            let cold = shard.mmap.cold_read_bytes();
            work.cold_bytes += cold;
            work.warm_bytes += shard.mmap.total_read_bytes().saturating_sub(cold);
            work.flops += shard.flops.load(Ordering::Relaxed);
        }
        work.activation_bytes = (self.dim * 4) as u64;
        work
    }

    /// Snapshot of counted work + resident footprint as a [`RunStats`],
    /// so serving cost plugs into the same per-compute-unit model as
    /// single-inference runs (Table 3's units).
    pub fn run_stats(&self) -> RunStats {
        RunStats {
            work: self.work(),
            resident_model_bytes: self.shards.iter().map(|s| s.mmap.resident_bytes()).sum(),
            wall_nanos: 0,
        }
    }
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("method", &self.method)
            .field("vocab", &self.vocab)
            .field("dim", &self.dim)
            .field("dtype", &self.dtype)
            .field("n_shards", &self.shards.len())
            .field("stored_bytes", &self.stored_bytes())
            .finish()
    }
}

/// Appends `row` in the stored-row layout (inline per-row scale for
/// integer dtypes, then the packed payload), reusing `payload_scratch`
/// (`dtype.row_bytes(row.len())` bytes) across calls. Returns the row's
/// worst-case absolute dequantization error.
fn encode_stored_row(
    row: &[f32],
    dtype: Dtype,
    payload_scratch: &mut [u8],
    bytes: &mut Vec<u8>,
) -> f32 {
    let scale = quantize_row(row, dtype, payload_scratch);
    if dtype.scale_prefix_bytes() > 0 {
        bytes.extend_from_slice(&scale.to_le_bytes());
    }
    bytes.extend_from_slice(payload_scratch);
    let max_abs = row.iter().fold(0f32, |acc, &x| acc.max(x.abs()));
    dequant_error_bound(dtype, scale, max_abs)
}

/// Encodes `rows` rows of `cols` values each, returning the packed bytes
/// and the worst per-row error bound.
fn encode_rows(values: &[f32], rows: usize, cols: usize, dtype: Dtype) -> (Vec<u8>, f32) {
    let mut bytes = Vec::with_capacity(rows * dtype.stored_row_bytes(cols));
    let mut payload_scratch = vec![0u8; dtype.row_bytes(cols)];
    let mut bound = 0f32;
    for r in 0..rows {
        let row = &values[r * cols..(r + 1) * cols];
        bound = bound.max(encode_stored_row(
            row,
            dtype,
            &mut payload_scratch,
            &mut bytes,
        ));
    }
    (bytes, bound)
}

/// Decodes one stored row (optional inline scale + packed payload)
/// straight into `out`.
fn decode_stored_row(bytes: &[u8], dtype: Dtype, out: &mut [f32]) {
    let prefix = dtype.scale_prefix_bytes();
    let scale = if prefix == 0 {
        1.0
    } else {
        decode_f32(&bytes[..prefix])
    };
    decode_row_into(&bytes[prefix..], dtype, scale, out);
}

fn decode_f32(bytes: &[u8]) -> f32 {
    f32::from_le_bytes(bytes.try_into().expect("4-byte scalar"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcom_core::{EmbeddingCompressor, FullEmbedding, MemComConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn memcom(vocab: usize, dim: usize, m: usize, bias: bool) -> MemCom {
        let mut rng = StdRng::seed_from_u64(11);
        let config = if bias {
            MemComConfig::with_bias(vocab, dim, m)
        } else {
            MemComConfig::new(vocab, dim, m)
        };
        MemCom::new(config, &mut rng).unwrap()
    }

    #[test]
    fn memcom_store_matches_lookup_exactly() {
        for bias in [false, true] {
            let emb = memcom(257, 8, 31, bias); // deliberately non-divisible
            let store = ShardedStore::build(&emb, 4, 16, 256).unwrap();
            for id in 0..257 {
                let want = emb.lookup(&[id]).unwrap();
                let got = store.get(id).unwrap();
                assert_eq!(got.as_slice(), want.as_slice(), "id {id} bias {bias}");
            }
        }
    }

    #[test]
    fn materialized_store_matches_lookup_exactly() {
        let mut rng = StdRng::seed_from_u64(3);
        let emb = FullEmbedding::new(100, 6, &mut rng).unwrap();
        let store = ShardedStore::build(&emb, 3, 8, 128).unwrap();
        assert_eq!(store.method(), "uncompressed");
        for id in 0..100 {
            let want = emb.lookup(&[id]).unwrap();
            assert_eq!(
                store.get(id).unwrap().as_slice(),
                want.as_slice(),
                "id {id}"
            );
        }
    }

    #[test]
    fn memcom_store_is_smaller_than_materialized() {
        let emb = memcom(5_000, 32, 500, false);
        let compressed = ShardedStore::build(&emb, 4, 0, 4096).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let full = FullEmbedding::new(5_000, 32, &mut rng).unwrap();
        let dense = ShardedStore::build(&full, 4, 0, 4096).unwrap();
        // 4 shards × replicated shared table + scalars ≪ dense rows.
        assert!(compressed.stored_bytes() * 2 < dense.stored_bytes());
    }

    #[test]
    fn cache_hits_skip_store_reads() {
        let emb = memcom(64, 4, 8, false);
        let store = ShardedStore::build(&emb, 2, 32, 64).unwrap();
        store.get(5).unwrap();
        let after_first = store.work();
        store.get(5).unwrap();
        let after_second = store.work();
        assert_eq!(
            after_first.warm_bytes + after_first.cold_bytes,
            after_second.warm_bytes + after_second.cold_bytes,
            "second (cached) read must not touch the store"
        );
        let cache = store.cache_stats();
        assert_eq!((cache.hits, cache.misses), (1, 1));
        assert!((store.cache_stats().hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn batch_routing_and_validation() {
        let emb = memcom(40, 4, 8, false);
        let store = ShardedStore::build(&emb, 4, 8, 64).unwrap();
        // Shard 1 owns 1, 5, 9, ...
        let rows = store.get_shard_batch(1, &[1, 5, 9, 5]).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[1], rows[3], "duplicate ids in a batch get equal rows");
        // The duplicate is served from the batch: one store read, counted
        // as a hit rather than a second miss.
        let cache = store.cache_stats();
        assert_eq!((cache.hits, cache.misses), (1, 3), "dedup within the batch");
        assert!(matches!(
            store.get_shard_batch(0, &[1]),
            Err(ServeError::BadConfig { .. })
        ));
        assert!(matches!(
            store.get(40),
            Err(ServeError::IdOutOfVocab { id: 40, vocab: 40 })
        ));
    }

    #[test]
    fn lookup_batch_fills_caller_slab() {
        let emb = memcom(40, 4, 8, true);
        let store = ShardedStore::build(&emb, 4, 8, 64).unwrap();
        let ids = [2usize, 6, 10, 6];
        let mut slab = vec![0f32; ids.len() * 4];
        store.lookup_batch(2, &ids, &mut slab).unwrap();
        for (k, &id) in ids.iter().enumerate() {
            let want = emb.lookup(&[id]).unwrap();
            assert_eq!(&slab[k * 4..(k + 1) * 4], want.as_slice(), "id {id}");
        }
        // Reusing the same slab for a second batch overwrites cleanly.
        store.lookup_batch(2, &[14, 18, 22, 26], &mut slab).unwrap();
        assert_eq!(
            &slab[0..4],
            emb.lookup(&[14]).unwrap().as_slice(),
            "slab reuse"
        );
    }

    #[test]
    #[should_panic(expected = "slab holds")]
    fn lookup_batch_rejects_mis_sized_slab() {
        let emb = memcom(40, 4, 8, false);
        let store = ShardedStore::build(&emb, 2, 8, 64).unwrap();
        let mut slab = vec![0f32; 3]; // needs 2 rows × dim 4 = 8
        let _ = store.lookup_batch(0, &[0, 2], &mut slab);
    }

    #[test]
    fn run_stats_plug_into_cost_model() {
        use memcom_ondevice::ComputeUnit;
        let emb = memcom(128, 8, 16, true);
        let store = ShardedStore::build(&emb, 2, 0, 128).unwrap();
        for id in 0..64 {
            store.get(id).unwrap();
        }
        let stats = store.run_stats();
        assert!(stats.work.flops >= 64 * 16, "2e flops per bias lookup");
        assert!(stats.work.cold_bytes > 0);
        assert!(stats.resident_model_bytes > 0);
        for unit in ComputeUnit::all() {
            assert!(stats.time_ms(unit) > 0.0);
        }
    }

    #[test]
    fn quantized_stores_serve_within_certified_bound() {
        let mut rng = StdRng::seed_from_u64(13);
        let full = FullEmbedding::new(120, 16, &mut rng).unwrap();
        let compressed = memcom(120, 16, 12, true);
        for dtype in [Dtype::F16, Dtype::Int8, Dtype::Int4, Dtype::Int2] {
            for emb in [&full as &dyn EmbeddingCompressor, &compressed] {
                let exact = ShardedStore::build(emb, 3, 8, 256).unwrap();
                let quant = ShardedStore::build_quantized(emb, 3, 8, 256, dtype).unwrap();
                assert_eq!(quant.dtype(), dtype);
                assert_eq!(exact.dtype(), Dtype::F32);
                assert_eq!(exact.error_bound(), 0.0);
                assert!(quant.error_bound() > 0.0, "{dtype:?}");
                assert!(
                    quant.stored_bytes() < exact.stored_bytes(),
                    "{dtype:?} must shrink the store"
                );
                let bound = quant.error_bound() + 1e-6;
                for id in 0..120 {
                    let want = exact.get(id).unwrap();
                    let got = quant.get(id).unwrap();
                    for (a, b) in want.iter().zip(&got) {
                        assert!(
                            (a - b).abs() <= bound,
                            "{dtype:?} {} id {id}: {a} vs {b} (bound {bound})",
                            emb.method_name(),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn int8_rows_store_is_at_least_3x_smaller() {
        let mut rng = StdRng::seed_from_u64(5);
        let full = FullEmbedding::new(1_000, 32, &mut rng).unwrap();
        let exact = ShardedStore::build(&full, 4, 0, 4096).unwrap();
        let int8 = ShardedStore::build_quantized(&full, 4, 0, 4096, Dtype::Int8).unwrap();
        // 128 B/row fp32 vs 4 B scale + 32 B payload.
        assert!(
            int8.stored_bytes() * 3 <= exact.stored_bytes(),
            "{} vs {}",
            int8.stored_bytes(),
            exact.stored_bytes()
        );
    }

    #[test]
    fn quantized_miss_path_still_counts_work() {
        let emb = memcom(64, 8, 8, false);
        let store = ShardedStore::build_quantized(&emb, 2, 0, 128, Dtype::Int8).unwrap();
        for id in 0..64 {
            store.get(id).unwrap();
        }
        let work = store.work();
        // Reconstruction (dim) + dequantization (dim) flops per lookup.
        assert!(work.flops >= 64 * 16, "flops {}", work.flops);
        assert!(work.cold_bytes > 0);
    }

    #[test]
    fn more_shards_than_vocab_still_works() {
        let emb = memcom(3, 4, 2, false);
        let store = ShardedStore::build(&emb, 8, 4, 64).unwrap();
        for id in 0..3 {
            let want = emb.lookup(&[id]).unwrap();
            assert_eq!(store.get(id).unwrap().as_slice(), want.as_slice());
        }
    }
}
