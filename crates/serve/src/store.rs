//! The sharded row store.
//!
//! Partitions a trained embedding model's per-entity state across N
//! shards, each backed by its own set of structurally-shared pages
//! ([`memcom_ondevice::PagedTable`]: its own lazy residency and fault
//! accounting, so shards never contend on a shared lock) and fronted by
//! its own hot-row LRU.
//!
//! Two layouts, chosen automatically at build time:
//!
//! * **MemCom** — the shard replicates the *small shared table* (`m × e`,
//!   the whole point of the compression is that this is tiny) and
//!   partitions the *large per-entity tables* (multipliers, biases)
//!   round-robin. A lookup reads one shared row + one or two
//!   scalars and reconstructs the embedding exactly as the on-device
//!   engine does. (The replicated shared-table pages are physically one
//!   allocation shared by every shard's `Arc`s; only the residency
//!   accounting is per shard.)
//! * **Rows** — any other compressor is materialized through its
//!   zero-copy `embed_into` path into dense per-shard row pages. Correct
//!   for every technique, at uncompressed storage cost — which is
//!   precisely the serving-memory trade-off the paper's Table 3
//!   contrasts.
//!
//! Ids are routed `shard = id % n_shards`, `slot = id / n_shards`:
//! contiguous popular ids (the paper frequency-sorts ids, §5.1) spread
//! across all shards, so Zipf-skewed traffic load-balances naturally.
//!
//! The batch read path is slab-based: [`ShardedStore::lookup_batch`]
//! writes rows straight into a caller-owned flat buffer — cache hits are
//! `memcpy`s out of the LRU, misses decode from the page store in place,
//! and nothing on that path allocates per row.
//!
//! Either layout can store its rows below fp32
//! ([`ShardedStore::build_quantized`]): shard pages then hold
//! [`Dtype`]-packed row bytes — each integer-quantized row carries its
//! own inline `f32` scale, so one page-local read yields both — and the
//! miss path dequantizes **directly into the caller's slab** through
//! [`memcom_ondevice::decode_row_into`], preserving the zero-allocation
//! guarantee. The hot-row LRU always caches decoded fp32 rows, so cache
//! hits stay pure memcpys regardless of the storage dtype, and
//! [`ShardedStore::error_bound`] certifies the worst-case absolute error
//! any served row can carry.
//!
//! ## Delta snapshots
//!
//! Because pages are `Arc`-shared, a store is **cheap to update
//! incrementally**: [`ShardedStore::apply_delta`] produces a new
//! snapshot that copy-on-writes only the pages a [`StoreDelta`]'s
//! upserts/removals touch — every untouched page is the same physical
//! allocation as the old snapshot's
//! ([`ShardedStore::shared_bytes_with`] proves it), each shard's hot-row
//! LRU carries over with only the changed ids invalidated, and the
//! certified error bound is re-certified over the re-encoded rows. A
//! 0.1%-of-rows delta therefore costs ~0.1% of a rebuild in bytes
//! copied and wall time, which is what makes high-frequency online
//! refresh ([`crate::Router::apply_delta`]) affordable.

use std::sync::atomic::{AtomicU64, Ordering};

use memcom_core::hashing::mod_hash;
use memcom_core::EmbeddingCompressor;
use memcom_core::MemCom;
use memcom_ondevice::compute::WorkCounts;
use memcom_ondevice::engine::RunStats;
use memcom_ondevice::pages::PagedTable;
use memcom_ondevice::quant::{
    decode_stored_row, encode_stored_row, quantize_row, stored_zero_row, Dtype,
};
use memcom_ondevice::simd;
use parking_lot::Mutex;

use crate::cache::LruCache;
use crate::delta::{DeltaOp, StoreDelta};
use crate::{Result, ServeError};

/// Aggregate cache-effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the hot-row cache.
    pub hits: u64,
    /// Lookups that had to touch the backing store.
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (`0` before any traffic).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One shard's hot-row cache counters, read in one consistent pass
/// (see [`ShardedStore::shard_cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCacheStats {
    /// Lookups answered from this shard's cache.
    pub hits: u64,
    /// Lookups that had to touch this shard's backing store.
    pub misses: u64,
    /// Rows pushed out of this shard's cache by capacity pressure.
    pub evictions: u64,
    /// Bytes of row data currently resident in this shard's cache.
    pub resident_bytes: usize,
    /// Rows currently resident in this shard's cache.
    pub cached_rows: usize,
}

/// Slots per int8 scalar block ([`ScalarTable::Int8`]).
const SCALAR_BLOCK: usize = 64;
/// Stored bytes per int8 scalar block: inline `f32` scale + one code
/// per slot.
const SCALAR_BLOCK_BYTES: usize = 4 + SCALAR_BLOCK;

/// A MemCom per-entity scalar column (multipliers, biases): one value
/// per slot, the dominant per-entity store term at scale.
///
/// Quantized stores pack it as [`SCALAR_BLOCK`]-slot **int8 blocks
/// with per-block scales** — the same symmetric linear scheme the row
/// tables use, with the block standing in for the row — at
/// `(4 + 64) / 64 ≈ 1.06` bytes per slot instead of 4. A zeroed block
/// stores scale `0.0` (codes decode to exact 0 at any scale, and a
/// zero scale forces the first real write through the re-scale path
/// instead of rounding against a meaningless step).
#[derive(Debug)]
enum ScalarTable {
    /// One exact `f32` per slot (F32-dtype stores).
    F32(PagedTable),
    /// Int8 blocks with inline per-block scales.
    Int8(PagedTable),
}

/// What a [`ScalarTable::set`] actually did to served values — the
/// terms [`ShardedStore::apply_delta`] folds into the certified bound.
#[derive(Debug, Clone, Copy, Default)]
struct ScalarWrite {
    /// `|requested − stored|` for the written slot.
    err: f32,
    /// Max `|old − new|` over the *other* slots of a re-scaled block
    /// (0 when the write fit the block's existing scale, and for F32).
    neighbor_drift: f32,
}

impl ScalarTable {
    /// Builds a column from per-slot values; `quantize` selects the
    /// int8 block layout. Returns the table and the measured max
    /// `|source − stored|` across slots (0 for F32).
    fn build(
        values: impl ExactSizeIterator<Item = f32>,
        quantize: bool,
        page_size: usize,
    ) -> (Self, f32) {
        if !quantize {
            let mut bytes = Vec::with_capacity(values.len() * 4);
            for v in values {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            return (
                ScalarTable::F32(PagedTable::from_rows(&bytes, 4, page_size)),
                0.0,
            );
        }
        let slots = values.len();
        let blocks = slots.div_ceil(SCALAR_BLOCK);
        let mut bytes = Vec::with_capacity(blocks * SCALAR_BLOCK_BYTES);
        let mut block = [0f32; SCALAR_BLOCK];
        let mut payload = [0u8; SCALAR_BLOCK];
        let mut err = 0f32;
        let mut values = values;
        for _ in 0..blocks {
            let mut fill = 0usize;
            block.fill(0.0);
            for slot in block.iter_mut() {
                match values.next() {
                    Some(v) => *slot = v,
                    None => break,
                }
                fill += 1;
            }
            let mut scale = quantize_row(&block, Dtype::Int8, &mut payload);
            if block.iter().all(|&x| x == 0.0) {
                scale = 0.0; // zero blocks stay re-scalable
            }
            for (&src, &code) in block.iter().zip(&payload).take(fill) {
                err = err.max((src - (code as i8) as f32 * scale).abs());
            }
            bytes.extend_from_slice(&scale.to_le_bytes());
            bytes.extend_from_slice(&payload);
        }
        (
            ScalarTable::Int8(PagedTable::from_rows(&bytes, SCALAR_BLOCK_BYTES, page_size)),
            err,
        )
    }

    /// The stored scalar for `slot`.
    fn get(&self, slot: usize) -> Result<f32> {
        match self {
            ScalarTable::F32(t) => Ok(decode_f32(t.read_row(slot)?)),
            ScalarTable::Int8(t) => {
                let row = t.read_row(slot / SCALAR_BLOCK)?;
                let scale = decode_f32(&row[..4]);
                Ok((row[4 + slot % SCALAR_BLOCK] as i8) as f32 * scale)
            }
        }
    }

    /// Stores `value` at `slot`. Int8 blocks re-use the block's
    /// existing scale when the value fits its code range (no other
    /// slot moves); otherwise the whole block re-encodes around a new
    /// scale and the returned [`ScalarWrite::neighbor_drift`] reports
    /// how far the block's other slots moved.
    fn set(&mut self, slot: usize, value: f32) -> Result<ScalarWrite> {
        match self {
            ScalarTable::F32(t) => {
                t.write_row(slot, &value.to_le_bytes())?;
                Ok(ScalarWrite::default())
            }
            ScalarTable::Int8(t) => {
                let (block, idx) = (slot / SCALAR_BLOCK, slot % SCALAR_BLOCK);
                let mut row = t.read_row(block)?.to_vec();
                let scale = decode_f32(&row[..4]);
                if scale > 0.0 {
                    let q = (value / scale).round();
                    if q.abs() <= 127.0 {
                        let q = q as i8;
                        row[4 + idx] = q as u8;
                        t.write_row(block, &row)?;
                        return Ok(ScalarWrite {
                            err: (value - q as f32 * scale).abs(),
                            neighbor_drift: 0.0,
                        });
                    }
                }
                // Out of range (or a zeroed block): re-encode the whole
                // block around a fresh scale.
                let mut vals = [0f32; SCALAR_BLOCK];
                for (i, v) in vals.iter_mut().enumerate() {
                    *v = (row[4 + i] as i8) as f32 * scale;
                }
                let old = vals;
                vals[idx] = value;
                let mut payload = [0u8; SCALAR_BLOCK];
                let mut new_scale = quantize_row(&vals, Dtype::Int8, &mut payload);
                if vals.iter().all(|&x| x == 0.0) {
                    new_scale = 0.0;
                }
                row[..4].copy_from_slice(&new_scale.to_le_bytes());
                row[4..].copy_from_slice(&payload);
                t.write_row(block, &row)?;
                let mut write = ScalarWrite::default();
                for (i, (&was, &code)) in old.iter().zip(&payload).enumerate() {
                    let now = (code as i8) as f32 * new_scale;
                    if i == idx {
                        write.err = (value - now).abs();
                    } else {
                        write.neighbor_drift = write.neighbor_drift.max((was - now).abs());
                    }
                }
                Ok(write)
            }
        }
    }

    /// Appends zeroed slots for vocabulary growth (`old_slots` →
    /// `new_slots`).
    fn extend(&mut self, old_slots: usize, new_slots: usize) {
        match self {
            ScalarTable::F32(t) => t.extend_rows(new_slots - old_slots, &0f32.to_le_bytes()),
            ScalarTable::Int8(t) => {
                let extra = new_slots.div_ceil(SCALAR_BLOCK) - old_slots.div_ceil(SCALAR_BLOCK);
                if extra > 0 {
                    t.extend_rows(extra, &[0u8; SCALAR_BLOCK_BYTES]);
                }
            }
        }
    }

    fn shared_clone(&self) -> Self {
        match self {
            ScalarTable::F32(t) => ScalarTable::F32(t.shared_clone()),
            ScalarTable::Int8(t) => ScalarTable::Int8(t.shared_clone()),
        }
    }

    /// Bytes physically shared with `other` (0 across layouts).
    fn shared_bytes_with(&self, other: &ScalarTable) -> usize {
        match (self, other) {
            (ScalarTable::F32(a), ScalarTable::F32(b))
            | (ScalarTable::Int8(a), ScalarTable::Int8(b)) => a.shared_bytes_with(b),
            _ => 0,
        }
    }

    /// The backing page table (accounting).
    fn table(&self) -> &PagedTable {
        match self {
            ScalarTable::F32(t) | ScalarTable::Int8(t) => t,
        }
    }
}

/// One shard's page-backed storage.
// One long-lived instance per shard, never moved by value on a hot
// path — boxing the larger MemCom variant would only add a pointer
// chase to every lookup.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum ShardData {
    /// Materialized rows: slot `s` holds the full stored row of id
    /// `s*n + shard`.
    Rows {
        /// Stored rows, one stride-aligned row per slot.
        table: PagedTable,
    },
    /// Replicated shared table + partitioned per-entity scalars.
    MemCom {
        /// Shared-table rows (the paper's `m`).
        m: usize,
        /// The `m` stored shared rows (pages physically shared across
        /// shards).
        shared: PagedTable,
        /// Upper bound on `|u|` for any decoded stored shared value —
        /// the factor that converts a multiplier's quantization error
        /// into served-row error when deltas re-encode scalars.
        u_max_abs: f32,
        /// One multiplier per slot.
        mult: ScalarTable,
        /// One bias per slot, when the model trains biases.
        bias: Option<ScalarTable>,
    },
}

impl ShardData {
    /// Every page table this shard reads through (for accounting).
    fn tables(&self) -> impl Iterator<Item = &PagedTable> {
        let (a, b, c) = match self {
            ShardData::Rows { table } => (table, None, None),
            ShardData::MemCom {
                shared, mult, bias, ..
            } => (
                shared,
                Some(mult.table()),
                bias.as_ref().map(ScalarTable::table),
            ),
        };
        std::iter::once(a).chain(b).chain(c)
    }

    /// A snapshot clone sharing every page (see
    /// [`PagedTable::shared_clone`]).
    fn shared_clone(&self) -> Self {
        match self {
            ShardData::Rows { table } => ShardData::Rows {
                table: table.shared_clone(),
            },
            ShardData::MemCom {
                m,
                shared,
                u_max_abs,
                mult,
                bias,
            } => ShardData::MemCom {
                m: *m,
                shared: shared.shared_clone(),
                u_max_abs: *u_max_abs,
                mult: mult.shared_clone(),
                bias: bias.as_ref().map(ScalarTable::shared_clone),
            },
        }
    }

    /// Appends zeroed slots (vocabulary growth, `old_slots` →
    /// `new_slots`).
    fn extend_slots(&mut self, old_slots: usize, new_slots: usize, zero_row: &[u8]) {
        match self {
            ShardData::Rows { table } => table.extend_rows(new_slots - old_slots, zero_row),
            ShardData::MemCom { mult, bias, .. } => {
                mult.extend(old_slots, new_slots);
                if let Some(b) = bias {
                    b.extend(old_slots, new_slots);
                }
            }
        }
    }

    /// Bytes of pages physically shared with `other` (0 for mismatched
    /// layouts).
    fn shared_bytes_with(&self, other: &ShardData) -> usize {
        match (self, other) {
            (ShardData::Rows { table: a }, ShardData::Rows { table: b }) => a.shared_bytes_with(b),
            (
                ShardData::MemCom {
                    shared: sa,
                    mult: ma,
                    bias: ba,
                    ..
                },
                ShardData::MemCom {
                    shared: sb,
                    mult: mb,
                    bias: bb,
                    ..
                },
            ) => {
                sa.shared_bytes_with(sb)
                    + ma.shared_bytes_with(mb)
                    + match (ba, bb) {
                        (Some(a), Some(b)) => a.shared_bytes_with(b),
                        _ => 0,
                    }
            }
            _ => 0,
        }
    }
}

struct Shard {
    data: ShardData,
    /// Storage dtype of this shard's row bytes.
    dtype: Dtype,
    /// Rows owned by this shard (its slot count).
    slots: usize,
    cache: Mutex<LruCache>,
    /// Reusable `(position, id)` miss list for the batch path; per-shard
    /// like the cache, so the one-worker-per-shard discipline keeps it
    /// uncontended and allocation settles after the first large batch.
    miss_scratch: Mutex<Vec<(usize, usize)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    flops: AtomicU64,
}

impl Shard {
    /// Decodes the embedding row for global `id` at local `slot` from the
    /// backing pages straight into `out`, bypassing the cache — the
    /// zero-copy miss path: quantized bytes dequantize in place, no
    /// intermediate buffer.
    fn read_row_into(&self, id: usize, slot: usize, dim: usize, out: &mut [f32]) -> Result<()> {
        debug_assert!(slot < self.slots, "slot routed to wrong shard");
        debug_assert_eq!(out.len(), dim);
        match &self.data {
            ShardData::Rows { table } => {
                decode_stored_row(table.read_row(slot)?, self.dtype, out);
                if self.dtype != Dtype::F32 {
                    // Dequantization is real reconstruction work: one
                    // multiply (or half-to-float convert) per element.
                    self.flops.fetch_add(dim as u64, Ordering::Relaxed);
                }
            }
            ShardData::MemCom {
                m,
                shared,
                mult,
                bias,
                ..
            } => {
                decode_stored_row(shared.read_row(mod_hash(id, *m))?, self.dtype, out);
                let v = mult.get(slot)?;
                if let Some(b) = bias {
                    let w = b.get(slot)?;
                    self.flops.fetch_add(2 * dim as u64, Ordering::Relaxed);
                    simd::scale_add(out, v, w);
                } else {
                    self.flops.fetch_add(dim as u64, Ordering::Relaxed);
                    simd::scale_mul(out, v);
                }
                if self.dtype != Dtype::F32 {
                    self.flops.fetch_add(dim as u64, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    }

    /// Serves a batch of ids owned by this shard into the flat slab
    /// `out` (`ids.len() * dim` values, row-major): one cache-lock
    /// acquisition for the hit scan, store reads only for misses, one
    /// more lock for the fills — the lock amortization micro-batching
    /// buys. Nothing here allocates per row: hits copy out of the LRU,
    /// misses decode in place, duplicate ids copy within the slab, and
    /// cache fills recycle LRU storage via `insert_from`.
    fn lookup_into(
        &self,
        ids: &[usize],
        n_shards: usize,
        dim: usize,
        out: &mut [f32],
    ) -> Result<()> {
        assert_eq!(
            out.len(),
            ids.len() * dim,
            "slab holds {} values for {} rows of dim {dim}",
            out.len(),
            ids.len()
        );
        let mut missing = self.miss_scratch.lock();
        missing.clear();
        {
            let mut cache = self.cache.lock();
            for (pos, &id) in ids.iter().enumerate() {
                match cache.get(id) {
                    Some(row) => out[pos * dim..(pos + 1) * dim].copy_from_slice(row),
                    None => missing.push((pos, id)),
                }
            }
        }
        let mut hits = (ids.len() - missing.len()) as u64;

        if !missing.is_empty() {
            // Ascending-id order keeps reads page-local within the batch
            // and groups duplicates, so a burst of requests for one cold
            // id (the batcher's bread and butter) pays one store read.
            missing.sort_unstable_by_key(|&(_, id)| id);
            let mut first_of_id: Option<(usize, usize)> = None; // (id, pos)
            let mut dup_hits = 0u64;
            for &(pos, id) in missing.iter() {
                match first_of_id {
                    Some((seen_id, seen_pos)) if seen_id == id => {
                        out.copy_within(seen_pos * dim..(seen_pos + 1) * dim, pos * dim);
                        dup_hits += 1;
                    }
                    _ => {
                        self.read_row_into(
                            id,
                            id / n_shards,
                            dim,
                            &mut out[pos * dim..(pos + 1) * dim],
                        )?;
                        first_of_id = Some((id, pos));
                    }
                }
            }
            let mut cache = self.cache.lock();
            let mut last_inserted = None;
            for &(pos, id) in missing.iter() {
                if last_inserted != Some(id) {
                    cache.insert_from(id, &out[pos * dim..(pos + 1) * dim]);
                    last_inserted = Some(id);
                }
            }
            // Duplicates served from the batch count as hits: they never
            // touched the store.
            hits += dup_hits;
            self.misses
                .fetch_add(missing.len() as u64 - dup_hits, Ordering::Relaxed);
        }
        self.hits.fetch_add(hits, Ordering::Relaxed);
        Ok(())
    }
}

/// A sharded, cached, page-backed read-only row store built from any
/// [`EmbeddingCompressor`].
///
/// Thread-safety note: lookups are always *correct* under arbitrary
/// concurrency, but the cache hit/miss and byte counters are exact only
/// with one accessor per shard (the [`crate::Router`] discipline —
/// one worker per shard). Concurrent direct calls into the same shard
/// can both miss on the same cold id between the hit scan and the fill,
/// double-reading the row and counting two misses where the serving
/// path would count one.
pub struct ShardedStore {
    shards: Vec<Shard>,
    vocab: usize,
    dim: usize,
    dtype: Dtype,
    /// Worst-case absolute error of any served row vs. the rows the
    /// store was asked to hold.
    error_bound: f32,
    method: &'static str,
}

impl ShardedStore {
    /// Builds an fp32 store with `n_shards` shards from a trained
    /// compressor, using the given per-shard cache capacity and page
    /// size. Served rows are bit-exact
    /// ([`error_bound`](Self::error_bound) is 0); for sub-fp32 row
    /// storage use [`build_quantized`](Self::build_quantized).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for a zero shard count or an
    /// empty model, and propagates compressor errors from
    /// materialization.
    pub fn build(
        emb: &dyn EmbeddingCompressor,
        n_shards: usize,
        cache_capacity: usize,
        page_size: usize,
    ) -> Result<Self> {
        Self::build_quantized(emb, n_shards, cache_capacity, page_size, Dtype::F32)
    }

    /// Builds a store whose shard pages hold `dtype`-packed row bytes.
    ///
    /// Each integer-quantized row is encoded with its **own** linear
    /// scale (stored inline before the payload), so the error of any row
    /// is bounded by *that row's* half-step, not the worst row's. For the
    /// MemCom layout the small shared table is quantized per row **and**
    /// the per-entity scalars are packed as int8 blocks with a per-block
    /// `f32` scale (64 codes per scale — about 3.8× smaller than one
    /// `f32` per entity). The reconstruction error composes both terms:
    /// `|v|·err(u) + |u_q|·err(v) + err(w)`.
    /// [`error_bound`](Self::error_bound) reports the certified
    /// worst-case absolute error across the whole table.
    ///
    /// # Errors
    ///
    /// Same conditions as [`build`](Self::build).
    pub fn build_quantized(
        emb: &dyn EmbeddingCompressor,
        n_shards: usize,
        cache_capacity: usize,
        page_size: usize,
        dtype: Dtype,
    ) -> Result<Self> {
        if n_shards == 0 {
            return Err(ServeError::BadConfig {
                context: "n_shards must be >= 1".into(),
            });
        }
        let vocab = emb.vocab_size();
        let dim = emb.output_dim();
        if vocab == 0 || dim == 0 {
            return Err(ServeError::BadConfig {
                context: format!("degenerate model: vocab {vocab}, dim {dim}"),
            });
        }

        let stride = dtype.stored_row_bytes(dim);
        let memcom = emb.as_any().downcast_ref::<MemCom>();
        // The replicated shared-table prefix is identical for every
        // shard: encode it once into one page set and let every shard
        // `Arc`-share those pages (per-shard residency accounting over
        // one physical allocation). Quantized MemCom stores quantize
        // the per-entity scalars too (int8 blocks, per-block scales),
        // so the served row u_q · v_q (+ w_q) errs by at most
        // |v|·err(u) + |u_q|·err(v) + err(w) — composed below once the
        // per-shard scalar errors are known.
        let quantize_scalars = dtype != Dtype::F32;
        let shared_encoded = memcom.map(|mc| {
            let m = mc.shared_table().shape().dims()[0];
            let (bytes, shared_bound) = encode_rows(mc.shared_table().as_slice(), m, dim, dtype);
            let max_abs_u = mc
                .shared_table()
                .as_slice()
                .iter()
                .fold(0f32, |acc, &u| acc.max(u.abs()));
            let max_abs_v = mc
                .multiplier_table()
                .as_slice()
                .iter()
                .fold(0f32, |acc, &v| acc.max(v.abs()));
            let table = PagedTable::from_rows(&bytes, stride, page_size);
            (m, table, shared_bound, max_abs_u, max_abs_v)
        });
        let mut error_bound = 0f32;
        let mut scalar_err_v = 0f32;
        let mut scalar_err_w = 0f32;
        let mut row_scratch = vec![0f32; dim];
        let mut payload_scratch = vec![0u8; dtype.row_bytes(dim)];
        let mut shards = Vec::with_capacity(n_shards);
        for shard_idx in 0..n_shards {
            // Ids owned by this shard: shard_idx, shard_idx + n, ...
            let slots = if shard_idx < vocab {
                (vocab - shard_idx).div_ceil(n_shards)
            } else {
                0
            };
            let data = match &shared_encoded {
                Some((m, shared_table, shared_bound, max_abs_u, _)) => {
                    let mc = memcom.expect("encoded for memcom");
                    let mult_src = mc.multiplier_table().as_slice();
                    let (mult, mult_err) = ScalarTable::build(
                        (0..slots).map(|slot| mult_src[shard_idx + slot * n_shards]),
                        quantize_scalars,
                        page_size,
                    );
                    scalar_err_v = scalar_err_v.max(mult_err);
                    let bias = mc.bias_table().map(|b| {
                        let src = b.as_slice();
                        let (table, err) = ScalarTable::build(
                            (0..slots).map(|slot| src[shard_idx + slot * n_shards]),
                            quantize_scalars,
                            page_size,
                        );
                        scalar_err_w = scalar_err_w.max(err);
                        table
                    });
                    ShardData::MemCom {
                        m: *m,
                        shared: shared_table.shared_clone(),
                        u_max_abs: max_abs_u + shared_bound,
                        mult,
                        bias,
                    }
                }
                None => {
                    let mut bytes = Vec::with_capacity(slots * stride);
                    for slot in 0..slots {
                        emb.embed_into(shard_idx + slot * n_shards, &mut row_scratch)?;
                        let bound = encode_stored_row(
                            &row_scratch,
                            dtype,
                            &mut payload_scratch,
                            &mut bytes,
                        );
                        error_bound = error_bound.max(bound);
                    }
                    ShardData::Rows {
                        table: PagedTable::from_rows(&bytes, stride, page_size),
                    }
                }
            };
            shards.push(Shard {
                data,
                dtype,
                slots,
                cache: Mutex::new(LruCache::new(cache_capacity)),
                miss_scratch: Mutex::new(Vec::new()),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                flops: AtomicU64::new(0),
            });
        }
        if let Some((_, _, shared_bound, max_abs_u, max_abs_v)) = &shared_encoded {
            // |u·v + w − u_q·v_q − w_q| ≤ |v|·err(u) + |u_q|·err(v) + err(w),
            // with |u_q| ≤ max|u| + err(u). Reduces to the old
            // `err(u)·max|v|` when the scalars stay f32 (both scalar
            // error terms are 0).
            error_bound = error_bound.max(
                max_abs_v * shared_bound + (max_abs_u + shared_bound) * scalar_err_v + scalar_err_w,
            );
        }
        Ok(ShardedStore {
            shards,
            vocab,
            dim,
            dtype,
            error_bound,
            method: emb.method_name(),
        })
    }

    /// Applies a [`StoreDelta`], returning a **new snapshot** that
    /// copy-on-writes only the pages the delta touches:
    ///
    /// * Untouched pages stay physically shared with `self` (`Arc`
    ///   clones, zero bytes copied) — a delta touching 0.1% of rows
    ///   copies on the order of 0.1% of the store
    ///   ([`shared_bytes_with`](Self::shared_bytes_with) /
    ///   [`cow_copied_bytes`](Self::cow_copied_bytes) quantify it).
    /// * Upserted rows are re-encoded at the store's [`Dtype`] with
    ///   their own inline scale, and
    ///   [`error_bound`](Self::error_bound) is re-certified to cover
    ///   them. Removed rows are tombstoned to the exact zero embedding.
    /// * Upserting `id >= vocab()` **grows** the vocabulary; ids in the
    ///   gap serve zeros until upserted.
    /// * Each shard's hot-row LRU carries over with **only the changed
    ///   ids invalidated**, so a refresh does not restart the cache cold
    ///   the way a full rebuild does.
    /// * For the MemCom layout, an upserted row is projected onto the
    ///   (stored) shared row by least squares — the per-entity
    ///   multiplier/bias become the best scalars for the requested row,
    ///   exact when the row came from a retrained model sharing the
    ///   shared table — and the projection's true residual is folded
    ///   into the certified bound.
    ///
    /// `self` is untouched and keeps serving: [`crate::Router::apply_delta`]
    /// flips the returned snapshot in atomically, with in-flight
    /// requests finishing on the old one.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] on a row-width mismatch and
    /// [`ServeError::IdOutOfVocab`] for a removal past the current
    /// vocabulary (removals never grow a store).
    pub fn apply_delta(&self, delta: &StoreDelta) -> Result<ShardedStore> {
        if delta.dim() != self.dim {
            return Err(ServeError::BadConfig {
                context: format!(
                    "delta carries dim-{} rows for a dim-{} store",
                    delta.dim(),
                    self.dim
                ),
            });
        }
        for (id, op) in delta.ops() {
            if matches!(op, DeltaOp::Remove) && id >= self.vocab {
                return Err(ServeError::IdOutOfVocab {
                    id,
                    vocab: self.vocab,
                });
            }
        }
        let n_shards = self.shards.len();
        let new_vocab = match delta.max_upsert_id() {
            Some(max_id) => self.vocab.max(max_id + 1),
            None => self.vocab,
        };
        let zero_row = stored_zero_row(self.dtype, self.dim);
        let mut error_bound = self.error_bound;
        let mut payload_scratch = vec![0u8; self.dtype.row_bytes(self.dim)];
        let mut stored_scratch: Vec<u8> = Vec::with_capacity(self.dtype.stored_row_bytes(self.dim));
        let mut u_scratch = vec![0f32; self.dim];
        let mut shards = Vec::with_capacity(n_shards);
        for (shard_idx, old) in self.shards.iter().enumerate() {
            let mut data = old.data.shared_clone();
            let new_slots = if shard_idx < new_vocab {
                (new_vocab - shard_idx).div_ceil(n_shards)
            } else {
                0
            };
            if new_slots > old.slots {
                data.extend_slots(old.slots, new_slots, &zero_row);
            }
            for (id, op) in delta.ops() {
                if id % n_shards != shard_idx {
                    continue;
                }
                let slot = id / n_shards;
                match (&mut data, op) {
                    (ShardData::Rows { table }, DeltaOp::Upsert(row)) => {
                        stored_scratch.clear();
                        let bound = encode_stored_row(
                            row,
                            self.dtype,
                            &mut payload_scratch,
                            &mut stored_scratch,
                        );
                        error_bound = error_bound.max(bound);
                        table.write_row(slot, &stored_scratch)?;
                    }
                    (ShardData::Rows { table }, DeltaOp::Remove) => {
                        table.write_row(slot, &zero_row)?;
                    }
                    (
                        ShardData::MemCom {
                            m,
                            shared,
                            u_max_abs,
                            mult,
                            bias,
                        },
                        DeltaOp::Upsert(row),
                    ) => {
                        // Project the requested row onto the *stored*
                        // (possibly quantized) shared row, so the fit —
                        // and its residual — are against what lookups
                        // will actually reconstruct.
                        decode_stored_row(
                            shared.read_row(mod_hash(id, *m))?,
                            self.dtype,
                            &mut u_scratch,
                        );
                        let (v, w, residual) = project_scalars(&u_scratch, row, bias.is_some());
                        // Re-quantizing the scalars adds its own error,
                        // and re-scaling a block may nudge neighbours:
                        // the drift term widens the whole bound (every
                        // row may sit on a re-scaled block), while the
                        // quant term only gates this row's residual.
                        let wv = mult.set(slot, v)?;
                        let wb = match bias {
                            Some(b) => b.set(slot, w)?,
                            None => ScalarWrite::default(),
                        };
                        let quant_err = *u_max_abs * wv.err + wb.err;
                        let drift = *u_max_abs * wv.neighbor_drift + wb.neighbor_drift;
                        error_bound = (error_bound + drift).max(residual + quant_err);
                    }
                    (
                        ShardData::MemCom {
                            u_max_abs,
                            mult,
                            bias,
                            ..
                        },
                        DeltaOp::Remove,
                    ) => {
                        // Code 0 decodes to exactly 0.0 at any block
                        // scale, so tombstoning is exact (err 0) and
                        // never re-scales a block (drift 0) — but fold
                        // the terms anyway so the bound stays certified
                        // even if the write path changes.
                        let wv = mult.set(slot, 0.0)?;
                        let wb = match bias {
                            Some(b) => b.set(slot, 0.0)?,
                            None => ScalarWrite::default(),
                        };
                        let drift = *u_max_abs * wv.neighbor_drift + wb.neighbor_drift;
                        error_bound = (error_bound + drift).max(*u_max_abs * wv.err + wb.err);
                    }
                }
            }
            // The hot-row cache carries over minus exactly the changed
            // ids — the "LRU invalidation limited to changed ids" that
            // keeps a refresh from serving every hot row cold again.
            let cache = old.cache.lock().clone_retaining(|id| !delta.contains(id));
            shards.push(Shard {
                data,
                dtype: self.dtype,
                slots: new_slots,
                cache: Mutex::new(cache),
                miss_scratch: Mutex::new(Vec::new()),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                flops: AtomicU64::new(0),
            });
        }
        Ok(ShardedStore {
            shards,
            vocab: new_vocab,
            dim: self.dim,
            dtype: self.dtype,
            error_bound,
            method: self.method,
        })
    }

    /// Bytes of shard pages physically shared (same allocations) with
    /// `other` — for two snapshots related by
    /// [`apply_delta`](Self::apply_delta), everything the delta did not
    /// touch. Returns 0 for stores of different shard counts or
    /// layouts.
    pub fn shared_bytes_with(&self, other: &ShardedStore) -> usize {
        if self.shards.len() != other.shards.len() {
            return 0;
        }
        self.shards
            .iter()
            .zip(&other.shards)
            .map(|(a, b)| a.data.shared_bytes_with(&b.data))
            .sum()
    }

    /// Bytes physically copied by copy-on-write writes while building
    /// this snapshot (0 for a freshly built store).
    pub fn cow_copied_bytes(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.data.tables())
            .map(PagedTable::cow_copied_bytes)
            .sum()
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Served vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Compression technique backing the store (e.g. `"memcom"`).
    pub fn method(&self) -> &'static str {
        self.method
    }

    /// Storage dtype of the shard row bytes.
    pub fn dtype(&self) -> Dtype {
        self.dtype
    }

    /// Bytes held by the per-entity scalar tables of a MemCom store
    /// (multiplier + bias, across all shards). Zero for row stores —
    /// this isolates exactly the footprint the int8 scalar packing
    /// shrinks.
    pub fn memcom_scalar_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| match &s.data {
                ShardData::Rows { .. } => 0,
                ShardData::MemCom { mult, bias, .. } => {
                    mult.table().len() + bias.as_ref().map_or(0, |b| b.table().len())
                }
            })
            .sum()
    }

    /// Certified worst-case absolute error of any served row relative to
    /// the rows the store was asked to hold (`0.0` for a freshly built
    /// [`Dtype::F32`] store; [`apply_delta`](Self::apply_delta)
    /// re-certifies it over re-encoded rows).
    pub fn error_bound(&self) -> f32 {
        self.error_bound
    }

    /// The shard owning `id`.
    pub fn shard_of(&self, id: usize) -> usize {
        id % self.shards.len()
    }

    /// Total bytes held by all shard stores (on-"disk" model size,
    /// counting the MemCom shared table once per shard even though the
    /// shards physically share those pages).
    pub fn stored_bytes(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.data.tables())
            .map(PagedTable::len)
            .sum()
    }

    /// Validates an id against the served vocabulary.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::IdOutOfVocab`] when out of range.
    pub fn check_id(&self, id: usize) -> Result<()> {
        if id >= self.vocab {
            return Err(ServeError::IdOutOfVocab {
                id,
                vocab: self.vocab,
            });
        }
        Ok(())
    }

    /// Looks up a single id through its shard's cache and store.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::IdOutOfVocab`] for ids past the vocabulary.
    pub fn get(&self, id: usize) -> Result<Vec<f32>> {
        self.check_id(id)?;
        let mut row = vec![0f32; self.dim];
        let shard = &self.shards[self.shard_of(id)];
        shard.lookup_into(
            std::slice::from_ref(&id),
            self.shards.len(),
            self.dim,
            &mut row,
        )?;
        Ok(row)
    }

    /// Serves a batch of ids that all route to `shard_idx` into the flat
    /// slab `out` — the zero-copy batch path. `out` must hold exactly
    /// `ids.len() * dim()` values; row `k` of the result lands at
    /// `out[k*dim .. (k+1)*dim]`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::IdOutOfVocab`] on any out-of-range id and
    /// [`ServeError::BadConfig`] when an id routes to a different shard
    /// (an internal routing bug).
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != ids.len() * dim()` — the slab is sized
    /// by the serving layer, so a mismatch is an internal bug, and
    /// panicking (rather than quietly truncating) lets the worker's
    /// panic recovery fail the whole batch loudly.
    // memcom-lint: hot-path
    pub fn lookup_batch(&self, shard_idx: usize, ids: &[usize], out: &mut [f32]) -> Result<()> {
        for &id in ids {
            self.check_id(id)?;
            if self.shard_of(id) != shard_idx {
                return Err(ServeError::BadConfig {
                    context: format!("id {id} routed to shard {shard_idx}"),
                });
            }
        }
        self.shards[shard_idx].lookup_into(ids, self.shards.len(), self.dim, out)
    }

    /// Serves a batch of ids that all route to `shard_idx`, allocating
    /// one `Vec` per row (legacy convenience over
    /// [`lookup_batch`](Self::lookup_batch)).
    ///
    /// # Errors
    ///
    /// Same conditions as [`lookup_batch`](Self::lookup_batch).
    pub fn get_shard_batch(&self, shard_idx: usize, ids: &[usize]) -> Result<Vec<Vec<f32>>> {
        let mut flat = vec![0f32; ids.len() * self.dim];
        self.lookup_batch(shard_idx, ids, &mut flat)?;
        Ok(flat.chunks_exact(self.dim).map(<[f32]>::to_vec).collect())
    }
    // memcom-lint: end-hot-path

    /// Page clone-on-write events while building this snapshot — the
    /// number of pages physically copied off their shared allocation
    /// (0 for a freshly built store; each page counts once even when
    /// several delta rows land on it).
    pub fn cow_touched_pages(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.data.tables())
            .map(PagedTable::cow_touched_pages)
            .sum()
    }

    /// One shard's cache counters, read in **one consistent pass**: the
    /// shard's cache lock is taken once for the eviction/residency view
    /// (so those three fields describe the same instant), then the
    /// hit/miss atomics are read. Hit/miss counts can therefore run a
    /// few rows ahead of the locked view under traffic, but the view
    /// never tears within itself.
    ///
    /// # Panics
    ///
    /// Panics when `shard_idx` is out of range.
    pub fn shard_cache_stats(&self, shard_idx: usize) -> ShardCacheStats {
        let shard = &self.shards[shard_idx];
        let (evictions, resident_bytes, cached_rows) = {
            let cache = shard.cache.lock();
            (cache.evictions(), cache.resident_bytes(), cache.len())
        };
        ShardCacheStats {
            hits: shard.hits.load(Ordering::Relaxed),
            misses: shard.misses.load(Ordering::Relaxed),
            evictions,
            resident_bytes,
            cached_rows,
        }
    }

    /// Cache counters for every shard (see
    /// [`shard_cache_stats`](Self::shard_cache_stats); consistency is
    /// per shard, not across shards).
    pub fn per_shard_cache_stats(&self) -> Vec<ShardCacheStats> {
        (0..self.shards.len())
            .map(|idx| self.shard_cache_stats(idx))
            .collect()
    }

    /// Decode hit/miss row counts for one shard without touching the
    /// cache lock — the worker's before/after read around a store batch,
    /// exact under the one-worker-per-shard discipline.
    pub(crate) fn shard_hit_miss(&self, shard_idx: usize) -> (u64, u64) {
        let shard = &self.shards[shard_idx];
        (
            shard.hits.load(Ordering::Relaxed),
            shard.misses.load(Ordering::Relaxed),
        )
    }

    /// Aggregate cache counters across shards.
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        for shard in &self.shards {
            stats.hits += shard.hits.load(Ordering::Relaxed);
            stats.misses += shard.misses.load(Ordering::Relaxed);
        }
        stats
    }

    /// Counted work since construction, in the on-device cost model's
    /// terms: store reads split into cold (first page touch) and warm
    /// bytes, plus reconstruction flops for compressed layouts. Cache
    /// hits contribute *nothing* here — that is the cache's saving, and
    /// it shows directly in [`RunStats::time_ms`] comparisons.
    pub fn work(&self) -> WorkCounts {
        let mut work = WorkCounts::default();
        for shard in &self.shards {
            for table in shard.data.tables() {
                let cold = table.cold_read_bytes();
                work.cold_bytes += cold;
                work.warm_bytes += table.total_read_bytes().saturating_sub(cold);
            }
            work.flops += shard.flops.load(Ordering::Relaxed);
        }
        work.activation_bytes = (self.dim * 4) as u64;
        work
    }

    /// Snapshot of counted work + resident footprint as a [`RunStats`],
    /// so serving cost plugs into the same per-compute-unit model as
    /// single-inference runs (Table 3's units).
    pub fn run_stats(&self) -> RunStats {
        RunStats {
            work: self.work(),
            resident_model_bytes: self
                .shards
                .iter()
                .flat_map(|s| s.data.tables())
                .map(PagedTable::resident_bytes)
                .sum(),
            wall_nanos: 0,
        }
    }
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("method", &self.method)
            .field("vocab", &self.vocab)
            .field("dim", &self.dim)
            .field("dtype", &self.dtype)
            .field("n_shards", &self.shards.len())
            .field("stored_bytes", &self.stored_bytes())
            .finish()
    }
}

/// Least-squares fit of `row ≈ v·u (+ w)` — the MemCom delta path:
/// given the stored shared row `u`, the best per-entity scalars for the
/// requested row, and the fit's true max-absolute residual (the served
/// error for that entity). With `fit_bias` false, `w` is 0.
fn project_scalars(u: &[f32], row: &[f32], fit_bias: bool) -> (f32, f32, f32) {
    let n = u.len() as f64;
    let uu: f64 = u.iter().map(|&x| (x as f64) * (x as f64)).sum();
    let ru: f64 = u
        .iter()
        .zip(row)
        .map(|(&x, &r)| (x as f64) * (r as f64))
        .sum();
    let (v, w) = if fit_bias {
        let su: f64 = u.iter().map(|&x| x as f64).sum();
        let rs: f64 = row.iter().map(|&r| r as f64).sum();
        let det = uu * n - su * su;
        if det.abs() > 1e-12 {
            ((ru * n - rs * su) / det, (rs * uu - ru * su) / det)
        } else {
            // A constant (or zero) shared row: v is unidentifiable, the
            // best fit is the plain mean.
            (0.0, rs / n)
        }
    } else if uu > 0.0 {
        (ru / uu, 0.0)
    } else {
        (0.0, 0.0)
    };
    let (v, w) = (v as f32, w as f32);
    let (v, w) = (
        if v.is_finite() { v } else { 0.0 },
        if w.is_finite() { w } else { 0.0 },
    );
    let residual = u
        .iter()
        .zip(row)
        .map(|(&x, &r)| (r - (v * x + w)).abs())
        .fold(0f32, f32::max);
    (v, w, residual)
}

/// Encodes `rows` rows of `cols` values each, returning the packed bytes
/// and the worst per-row error bound.
fn encode_rows(values: &[f32], rows: usize, cols: usize, dtype: Dtype) -> (Vec<u8>, f32) {
    let mut bytes = Vec::with_capacity(rows * dtype.stored_row_bytes(cols));
    let mut payload_scratch = vec![0u8; dtype.row_bytes(cols)];
    let mut bound = 0f32;
    for r in 0..rows {
        let row = &values[r * cols..(r + 1) * cols];
        bound = bound.max(encode_stored_row(
            row,
            dtype,
            &mut payload_scratch,
            &mut bytes,
        ));
    }
    (bytes, bound)
}

fn decode_f32(bytes: &[u8]) -> f32 {
    f32::from_le_bytes(bytes.try_into().expect("4-byte scalar"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcom_core::{EmbeddingCompressor, FullEmbedding, MemComConfig};
    use memcom_ondevice::quant::{dequant_error_bound, quantize_row};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Certifies one quantized row's bound without storing it.
    fn row_bound(row: &[f32], dtype: Dtype) -> f32 {
        let mut payload = vec![0u8; dtype.row_bytes(row.len())];
        let scale = quantize_row(row, dtype, &mut payload);
        let max_abs = row.iter().fold(0f32, |acc, &x| acc.max(x.abs()));
        dequant_error_bound(dtype, scale, max_abs)
    }

    fn memcom(vocab: usize, dim: usize, m: usize, bias: bool) -> MemCom {
        let mut rng = StdRng::seed_from_u64(11);
        let config = if bias {
            MemComConfig::with_bias(vocab, dim, m)
        } else {
            MemComConfig::new(vocab, dim, m)
        };
        MemCom::new(config, &mut rng).unwrap()
    }

    #[test]
    fn memcom_store_matches_lookup_exactly() {
        for bias in [false, true] {
            let emb = memcom(257, 8, 31, bias); // deliberately non-divisible
            let store = ShardedStore::build(&emb, 4, 16, 256).unwrap();
            for id in 0..257 {
                let want = emb.lookup(&[id]).unwrap();
                let got = store.get(id).unwrap();
                assert_eq!(got.as_slice(), want.as_slice(), "id {id} bias {bias}");
            }
        }
    }

    #[test]
    fn materialized_store_matches_lookup_exactly() {
        let mut rng = StdRng::seed_from_u64(3);
        let emb = FullEmbedding::new(100, 6, &mut rng).unwrap();
        let store = ShardedStore::build(&emb, 3, 8, 128).unwrap();
        assert_eq!(store.method(), "uncompressed");
        for id in 0..100 {
            let want = emb.lookup(&[id]).unwrap();
            assert_eq!(
                store.get(id).unwrap().as_slice(),
                want.as_slice(),
                "id {id}"
            );
        }
    }

    #[test]
    fn memcom_store_is_smaller_than_materialized() {
        let emb = memcom(5_000, 32, 500, false);
        let compressed = ShardedStore::build(&emb, 4, 0, 4096).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let full = FullEmbedding::new(5_000, 32, &mut rng).unwrap();
        let dense = ShardedStore::build(&full, 4, 0, 4096).unwrap();
        // 4 shards × replicated shared table + scalars ≪ dense rows.
        assert!(compressed.stored_bytes() * 2 < dense.stored_bytes());
    }

    #[test]
    fn memcom_shards_physically_share_the_shared_table() {
        let emb = memcom(1_000, 16, 100, true);
        let store = ShardedStore::build(&emb, 4, 0, 1024).unwrap();
        // stored_bytes counts the replicated shared table per shard; the
        // physical allocations behind it are shared, so a snapshot clone
        // of the whole store costs pointer bumps only.
        let clone_bytes = store.shared_bytes_with(&store);
        assert_eq!(clone_bytes, store.stored_bytes());
    }

    #[test]
    fn cache_hits_skip_store_reads() {
        let emb = memcom(64, 4, 8, false);
        let store = ShardedStore::build(&emb, 2, 32, 64).unwrap();
        store.get(5).unwrap();
        let after_first = store.work();
        store.get(5).unwrap();
        let after_second = store.work();
        assert_eq!(
            after_first.warm_bytes + after_first.cold_bytes,
            after_second.warm_bytes + after_second.cold_bytes,
            "second (cached) read must not touch the store"
        );
        let cache = store.cache_stats();
        assert_eq!((cache.hits, cache.misses), (1, 1));
        assert!((store.cache_stats().hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn batch_routing_and_validation() {
        let emb = memcom(40, 4, 8, false);
        let store = ShardedStore::build(&emb, 4, 8, 64).unwrap();
        // Shard 1 owns 1, 5, 9, ...
        let rows = store.get_shard_batch(1, &[1, 5, 9, 5]).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[1], rows[3], "duplicate ids in a batch get equal rows");
        // The duplicate is served from the batch: one store read, counted
        // as a hit rather than a second miss.
        let cache = store.cache_stats();
        assert_eq!((cache.hits, cache.misses), (1, 3), "dedup within the batch");
        assert!(matches!(
            store.get_shard_batch(0, &[1]),
            Err(ServeError::BadConfig { .. })
        ));
        assert!(matches!(
            store.get(40),
            Err(ServeError::IdOutOfVocab { id: 40, vocab: 40 })
        ));
    }

    #[test]
    fn lookup_batch_fills_caller_slab() {
        let emb = memcom(40, 4, 8, true);
        let store = ShardedStore::build(&emb, 4, 8, 64).unwrap();
        let ids = [2usize, 6, 10, 6];
        let mut slab = vec![0f32; ids.len() * 4];
        store.lookup_batch(2, &ids, &mut slab).unwrap();
        for (k, &id) in ids.iter().enumerate() {
            let want = emb.lookup(&[id]).unwrap();
            assert_eq!(&slab[k * 4..(k + 1) * 4], want.as_slice(), "id {id}");
        }
        // Reusing the same slab for a second batch overwrites cleanly.
        store.lookup_batch(2, &[14, 18, 22, 26], &mut slab).unwrap();
        assert_eq!(
            &slab[0..4],
            emb.lookup(&[14]).unwrap().as_slice(),
            "slab reuse"
        );
    }

    #[test]
    #[should_panic(expected = "slab holds")]
    fn lookup_batch_rejects_mis_sized_slab() {
        let emb = memcom(40, 4, 8, false);
        let store = ShardedStore::build(&emb, 2, 8, 64).unwrap();
        let mut slab = vec![0f32; 3]; // needs 2 rows × dim 4 = 8
        let _ = store.lookup_batch(0, &[0, 2], &mut slab);
    }

    #[test]
    fn run_stats_plug_into_cost_model() {
        use memcom_ondevice::ComputeUnit;
        let emb = memcom(128, 8, 16, true);
        let store = ShardedStore::build(&emb, 2, 0, 128).unwrap();
        for id in 0..64 {
            store.get(id).unwrap();
        }
        let stats = store.run_stats();
        assert!(stats.work.flops >= 64 * 16, "2e flops per bias lookup");
        assert!(stats.work.cold_bytes > 0);
        assert!(stats.resident_model_bytes > 0);
        for unit in ComputeUnit::all() {
            assert!(stats.time_ms(unit) > 0.0);
        }
    }

    #[test]
    fn quantized_stores_serve_within_certified_bound() {
        let mut rng = StdRng::seed_from_u64(13);
        let full = FullEmbedding::new(120, 16, &mut rng).unwrap();
        let compressed = memcom(120, 16, 12, true);
        for dtype in [Dtype::F16, Dtype::Int8, Dtype::Int4, Dtype::Int2] {
            for emb in [&full as &dyn EmbeddingCompressor, &compressed] {
                let exact = ShardedStore::build(emb, 3, 8, 256).unwrap();
                let quant = ShardedStore::build_quantized(emb, 3, 8, 256, dtype).unwrap();
                assert_eq!(quant.dtype(), dtype);
                assert_eq!(exact.dtype(), Dtype::F32);
                assert_eq!(exact.error_bound(), 0.0);
                assert!(quant.error_bound() > 0.0, "{dtype:?}");
                assert!(
                    quant.stored_bytes() < exact.stored_bytes(),
                    "{dtype:?} must shrink the store"
                );
                let bound = quant.error_bound() + 1e-6;
                for id in 0..120 {
                    let want = exact.get(id).unwrap();
                    let got = quant.get(id).unwrap();
                    for (a, b) in want.iter().zip(&got) {
                        assert!(
                            (a - b).abs() <= bound,
                            "{dtype:?} {} id {id}: {a} vs {b} (bound {bound})",
                            emb.method_name(),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn int8_rows_store_is_at_least_3x_smaller() {
        let mut rng = StdRng::seed_from_u64(5);
        let full = FullEmbedding::new(1_000, 32, &mut rng).unwrap();
        let exact = ShardedStore::build(&full, 4, 0, 4096).unwrap();
        let int8 = ShardedStore::build_quantized(&full, 4, 0, 4096, Dtype::Int8).unwrap();
        // 128 B/row fp32 vs 4 B scale + 32 B payload.
        assert!(
            int8.stored_bytes() * 3 <= exact.stored_bytes(),
            "{} vs {}",
            int8.stored_bytes(),
            exact.stored_bytes()
        );
    }

    #[test]
    fn quantized_miss_path_still_counts_work() {
        let emb = memcom(64, 8, 8, false);
        let store = ShardedStore::build_quantized(&emb, 2, 0, 128, Dtype::Int8).unwrap();
        for id in 0..64 {
            store.get(id).unwrap();
        }
        let work = store.work();
        // Reconstruction (dim) + dequantization (dim) flops per lookup.
        assert!(work.flops >= 64 * 16, "flops {}", work.flops);
        assert!(work.cold_bytes > 0);
    }

    #[test]
    fn more_shards_than_vocab_still_works() {
        let emb = memcom(3, 4, 2, false);
        let store = ShardedStore::build(&emb, 8, 4, 64).unwrap();
        for id in 0..3 {
            let want = emb.lookup(&[id]).unwrap();
            assert_eq!(store.get(id).unwrap().as_slice(), want.as_slice());
        }
    }

    #[test]
    fn delta_upsert_remove_and_grow_on_rows_layout() {
        let mut rng = StdRng::seed_from_u64(21);
        let emb = FullEmbedding::new(50, 4, &mut rng).unwrap();
        let store = ShardedStore::build(&emb, 3, 8, 64).unwrap();
        let mut delta = StoreDelta::new(4);
        delta.upsert_row(7, &[1.0, -2.0, 3.0, -4.0]).unwrap();
        delta.remove_row(11).unwrap();
        delta.upsert_row(53, &[0.5; 4]).unwrap(); // grows 50 -> 54
        let new = store.apply_delta(&delta).unwrap();
        assert_eq!(new.vocab(), 54);
        assert_eq!(store.vocab(), 50, "old snapshot untouched");
        assert_eq!(new.get(7).unwrap(), vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(new.get(11).unwrap(), vec![0.0; 4], "tombstoned");
        assert_eq!(new.get(53).unwrap(), vec![0.5; 4]);
        assert_eq!(new.get(51).unwrap(), vec![0.0; 4], "gap id serves zeros");
        // Unchanged ids serve identical rows; the old store still serves
        // the pre-delta values.
        for id in 0..50 {
            if !delta.contains(id) {
                assert_eq!(new.get(id).unwrap(), store.get(id).unwrap(), "id {id}");
            }
        }
        assert_eq!(
            store.get(7).unwrap().as_slice(),
            emb.lookup(&[7]).unwrap().as_slice()
        );
        // fp32 rows stay exact, so the bound stays 0.
        assert_eq!(new.error_bound(), 0.0);
        // Structural sharing: only the touched pages were copied.
        assert!(new.shared_bytes_with(&store) > 0);
        assert!(new.cow_copied_bytes() > 0);
        assert!((new.cow_copied_bytes() as usize) < store.stored_bytes());
    }

    #[test]
    fn delta_quantizes_at_store_dtype_and_recertifies_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let emb = FullEmbedding::new(64, 8, &mut rng).unwrap();
        for dtype in [Dtype::F16, Dtype::Int8, Dtype::Int4] {
            let store = ShardedStore::build_quantized(&emb, 2, 4, 128, dtype).unwrap();
            // A row with much larger magnitude than the trained table:
            // its per-row quant error exceeds the old bound, so the
            // bound must grow to stay certified.
            let big: Vec<f32> = (0..8).map(|i| (i as f32 - 3.5) * 10.0).collect();
            let mut delta = StoreDelta::new(8);
            delta.upsert_row(5, &big).unwrap();
            let new = store.apply_delta(&delta).unwrap();
            let expect = row_bound(&big, dtype);
            assert!(
                new.error_bound() >= expect - 1e-6,
                "{dtype:?}: bound {} vs per-row {}",
                new.error_bound(),
                expect
            );
            let bound = new.error_bound() + 1e-6;
            for (a, b) in big.iter().zip(new.get(5).unwrap()) {
                assert!((a - b).abs() <= bound, "{dtype:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn delta_on_memcom_projects_scalars() {
        let emb = memcom(60, 8, 6, true);
        let store = ShardedStore::build(&emb, 2, 8, 128).unwrap();
        // A row of the model's own form u*v + w round-trips exactly
        // (the LS projection recovers v and w).
        let m = 6usize;
        let id = 13usize;
        let u = store.get_shared_row_for_test(id, m);
        let want: Vec<f32> = u.iter().map(|&x| x * 1.75 - 0.25).collect();
        let mut delta = StoreDelta::new(8);
        delta.upsert_row(id, &want).unwrap();
        delta.remove_row(14).unwrap();
        let new = store.apply_delta(&delta).unwrap();
        let got = new.get(id).unwrap();
        let bound = new.error_bound() + 1e-4;
        for (a, b) in want.iter().zip(&got) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
        assert_eq!(new.get(14).unwrap(), vec![0.0; 8], "scalars tombstoned");
        // An arbitrary row is served at the certified (residual) bound.
        let arbitrary: Vec<f32> = (0..8).map(|i| (i as f32) * 0.3 - 1.0).collect();
        let mut delta = StoreDelta::new(8);
        delta.upsert_row(20, &arbitrary).unwrap();
        let new = store.apply_delta(&delta).unwrap();
        let bound = new.error_bound() + 1e-5;
        for (a, b) in arbitrary.iter().zip(new.get(20).unwrap()) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn memcom_scalar_tables_quantize_and_stay_certified() {
        let emb = memcom(2_000, 16, 50, true);
        let exact = ShardedStore::build(&emb, 4, 0, 4096).unwrap();
        let quant = ShardedStore::build_quantized(&emb, 4, 0, 4096, Dtype::Int8).unwrap();
        // 4 B per f32 scalar vs 68 B per 64-code block: ~3.76× smaller.
        assert!(
            quant.memcom_scalar_bytes() * 3 < exact.memcom_scalar_bytes(),
            "{} vs {}",
            quant.memcom_scalar_bytes(),
            exact.memcom_scalar_bytes()
        );
        let bound = quant.error_bound() + 1e-6;
        for id in (0..2_000).step_by(7) {
            let want = exact.get(id).unwrap();
            let got = quant.get(id).unwrap();
            for (a, b) in want.iter().zip(&got) {
                assert!(
                    (a - b).abs() <= bound,
                    "id {id}: {a} vs {b} (bound {bound})"
                );
            }
        }
    }

    #[test]
    fn delta_on_quantized_memcom_recertifies_scalar_terms() {
        let emb = memcom(120, 8, 10, true);
        let store = ShardedStore::build_quantized(&emb, 2, 0, 128, Dtype::Int8).unwrap();
        // A multiplier of 40 sits far outside the seeded scalars' range,
        // forcing the upserted slot's int8 block to re-scale — every
        // neighbour in that block is re-encoded and the drift must be
        // folded into the re-certified bound.
        let id = 9usize;
        let u = store.get_shared_row_for_test(id, 10);
        let want: Vec<f32> = u.iter().map(|&x| x * 40.0 + 3.0).collect();
        let mut delta = StoreDelta::new(8);
        delta.upsert_row(id, &want).unwrap();
        let new = store.apply_delta(&delta).unwrap();
        let bound = new.error_bound() + 1e-4;
        for (a, b) in want.iter().zip(new.get(id).unwrap()) {
            assert!(
                (a - b).abs() <= bound,
                "upserted: {a} vs {b} (bound {bound})"
            );
        }
        // Neighbours sharing the re-scaled block still serve within the
        // new bound relative to what the old snapshot certified.
        for other in 0..120 {
            if other == id {
                continue;
            }
            let before = store.get(other).unwrap();
            for (a, b) in before.iter().zip(new.get(other).unwrap()) {
                assert!(
                    (a - b).abs() <= bound,
                    "neighbour {other}: {a} vs {b} (bound {bound})"
                );
            }
        }
        // Removing an id on a quantized store is exact (code 0 decodes
        // to 0.0 at any scale) and never widens the bound.
        let mut rm = StoreDelta::new(8);
        rm.remove_row(5).unwrap();
        let new2 = new.apply_delta(&rm).unwrap();
        assert_eq!(new2.get(5).unwrap(), vec![0.0; 8]);
        assert_eq!(new2.error_bound(), new.error_bound());
    }

    #[test]
    fn delta_rejects_mismatched_dim_and_out_of_vocab_removal() {
        let emb = memcom(20, 4, 4, false);
        let store = ShardedStore::build(&emb, 2, 4, 64).unwrap();
        let mut wrong_dim = StoreDelta::new(5);
        wrong_dim.upsert_row(0, &[0.0; 5]).unwrap();
        assert!(matches!(
            store.apply_delta(&wrong_dim),
            Err(ServeError::BadConfig { .. })
        ));
        let mut bad_remove = StoreDelta::new(4);
        bad_remove.remove_row(20).unwrap();
        assert!(matches!(
            store.apply_delta(&bad_remove),
            Err(ServeError::IdOutOfVocab { id: 20, vocab: 20 })
        ));
        // An empty delta is a pure snapshot clone: everything shared.
        let clone = store.apply_delta(&StoreDelta::new(4)).unwrap();
        assert_eq!(clone.shared_bytes_with(&store), store.stored_bytes());
        assert_eq!(clone.cow_copied_bytes(), 0);
    }

    #[test]
    fn delta_carries_cache_over_minus_changed_ids() {
        let emb = memcom(40, 4, 8, false);
        let store = ShardedStore::build(&emb, 2, 16, 64).unwrap();
        for id in 0..10 {
            store.get(id).unwrap(); // warm the caches
        }
        // Scale id 4's row by 3: representable exactly in the MemCom
        // layout (same shared row, tripled multiplier).
        let tripled: Vec<f32> = store.get(4).unwrap().iter().map(|x| x * 3.0).collect();
        let mut delta = StoreDelta::new(4);
        delta.upsert_row(4, &tripled).unwrap();
        let new = store.apply_delta(&delta).unwrap();
        // Unchanged warm id: served from the carried-over cache — no new
        // store bytes read.
        let before = new.work();
        let row6 = new.get(6).unwrap();
        let after = new.work();
        assert_eq!(
            before.cold_bytes + before.warm_bytes,
            after.cold_bytes + after.warm_bytes,
            "warm id 6 must hit the carried-over cache"
        );
        assert_eq!(row6, store.get(6).unwrap());
        assert_eq!(new.cache_stats().hits, 1);
        // The changed id was invalidated: it reads through and serves
        // the new value, not the stale cached row.
        let row4 = new.get(4).unwrap();
        for (a, b) in row4.iter().zip(&tripled) {
            assert!((a - b).abs() <= new.error_bound() + 1e-5, "{a} vs {b}");
        }
        assert_ne!(row4, store.get(4).unwrap(), "stale cache row evicted");
        assert_eq!(new.cache_stats().misses, 1);
    }

    #[test]
    fn project_scalars_handles_degenerate_shared_rows() {
        // Zero shared row, no bias: only the zero row is representable.
        let (v, w, res) = project_scalars(&[0.0; 4], &[1.0, 1.0, 1.0, 1.0], false);
        assert_eq!((v, w), (0.0, 0.0));
        assert_eq!(res, 1.0);
        // Constant shared row with bias: the mean is the best fit.
        let (v, w, res) = project_scalars(&[0.0; 4], &[1.0, 3.0, 1.0, 3.0], true);
        assert_eq!(v, 0.0);
        assert!((w - 2.0).abs() < 1e-6);
        assert!((res - 1.0).abs() < 1e-6);
        // Exact fit: residual ~ 0.
        let u = [1.0f32, -2.0, 0.5, 3.0];
        let row: Vec<f32> = u.iter().map(|&x| x * -0.7 + 0.2).collect();
        let (v, w, res) = project_scalars(&u, &row, true);
        assert!((v + 0.7).abs() < 1e-5);
        assert!((w - 0.2).abs() < 1e-5);
        assert!(res < 1e-5);
    }

    impl ShardedStore {
        /// Test helper: the decoded stored shared row `mod_hash(id, m)`
        /// of `id`'s shard (MemCom layout only).
        fn get_shared_row_for_test(&self, id: usize, m: usize) -> Vec<f32> {
            let shard = &self.shards[self.shard_of(id)];
            match &shard.data {
                ShardData::MemCom { shared, .. } => {
                    let mut out = vec![0f32; self.dim];
                    decode_stored_row(
                        shared.read_row(mod_hash(id, m)).unwrap(),
                        self.dtype,
                        &mut out,
                    );
                    out
                }
                ShardData::Rows { .. } => panic!("not a memcom store"),
            }
        }
    }
}
