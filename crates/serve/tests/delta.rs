//! Delta-snapshot correctness: `apply_delta` must be indistinguishable
//! from a full rebuild of the mutated table — at every storage dtype —
//! while copying only the touched pages, never tearing a row under live
//! traffic, and releasing superseded snapshots once in-flight requests
//! drain.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use memcom_core::FullEmbedding;
use memcom_serve::{Dtype, Router, ServeConfig, ShardedStore, StoreDelta, DEFAULT_MODEL};
use memcom_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 6;
const VOCAB: usize = 60;

/// A deterministic pseudo-row for op `k` (no RNG in the delta itself, so
/// the proptest shrinker stays meaningful).
fn row_for(k: usize, base: f32) -> Vec<f32> {
    (0..DIM)
        .map(|j| base + (k as f32) * 0.13 - (j as f32) * 0.41)
        .collect()
}

/// Applies `ops` both to a [`StoreDelta`] and to a plain row matrix (the
/// "what a full rebuild would be built from" source of truth), returning
/// `(delta, final_rows)`.
fn apply_ops(table: &Tensor, ops: &[(usize, usize, f32)]) -> (StoreDelta, Vec<Vec<f32>>) {
    let mut rows: Vec<Vec<f32>> = (0..VOCAB).map(|r| table.row(r).unwrap().to_vec()).collect();
    let mut delta = StoreDelta::new(DIM);
    for (k, &(id, kind, base)) in ops.iter().enumerate() {
        if kind == 0 {
            // Removal: only valid inside the current vocabulary.
            let id = id % VOCAB;
            delta.remove_row(id).unwrap();
            rows[id] = vec![0.0; DIM];
        } else {
            let row = row_for(k, base);
            if id >= rows.len() {
                rows.resize(id + 1, vec![0.0; DIM]); // gap ids serve zeros
            }
            rows[id] = row.clone();
            delta.upsert_row(id, &row).unwrap();
        }
    }
    (delta, rows)
}

fn rebuild_from_rows(rows: &[Vec<f32>], dtype: Dtype) -> ShardedStore {
    let flat: Vec<f32> = rows.iter().flatten().copied().collect();
    let mut rng = StdRng::seed_from_u64(0);
    let mut emb = FullEmbedding::new(rows.len(), DIM, &mut rng).unwrap();
    emb.set_table(Tensor::from_vec(flat, &[rows.len(), DIM]).unwrap())
        .unwrap();
    ShardedStore::build_quantized(&emb, 3, 8, 128, dtype).unwrap()
}

proptest! {
    // For random upsert/remove sequences at every dtype, the delta'd
    // store and a store rebuilt from scratch over the mutated table
    // serve *identical* rows (same per-row encode), reconcile on
    // store/resident bytes, stay within the certified error bound of
    // the requested rows, and share every untouched page with the
    // pre-delta snapshot.
    #[test]
    fn apply_delta_equals_full_rebuild(
        ops in proptest::collection::vec(
            (0usize..(VOCAB + 20), 0usize..4, -2.0f32..2.0),
            1..40
        ),
        dtype in prop_oneof![
            Just(Dtype::F32),
            Just(Dtype::F16),
            Just(Dtype::Int8),
            Just(Dtype::Int4),
            Just(Dtype::Int2),
        ]
    ) {
        let mut rng = StdRng::seed_from_u64(19);
        let emb = FullEmbedding::new(VOCAB, DIM, &mut rng).unwrap();
        let store = ShardedStore::build_quantized(&emb, 3, 8, 128, dtype).unwrap();
        // Warm a few rows so the carried-over cache is exercised too.
        for id in 0..8 {
            store.get(id).unwrap();
        }
        let (delta, rows) = apply_ops(emb.table(), &ops);
        let delta_store = store.apply_delta(&delta).unwrap();
        let rebuilt = rebuild_from_rows(&rows, dtype);

        prop_assert_eq!(delta_store.vocab(), rows.len());
        prop_assert_eq!(delta_store.dtype(), dtype);
        prop_assert_eq!(
            delta_store.stored_bytes(),
            rebuilt.stored_bytes(),
            "store bytes reconcile"
        );
        let bound = delta_store.error_bound() * (1.0 + 1e-5) + 1e-6;
        for (id, want_row) in rows.iter().enumerate() {
            let a = delta_store.get(id).unwrap();
            let b = rebuilt.get(id).unwrap();
            prop_assert_eq!(&a, &b, "id {} differs from the rebuild", id);
            for (got, want) in a.iter().zip(want_row) {
                prop_assert!(
                    (got - want).abs() <= bound,
                    "id {}: {} vs {} (bound {})", id, got, want, bound
                );
            }
        }
        // After full scans of both stores, every page is resident on each
        // side and the geometries agree.
        prop_assert_eq!(
            delta_store.run_stats().resident_model_bytes,
            rebuilt.run_stats().resident_model_bytes,
            "resident bytes reconcile"
        );
        // Untouched pages are physically shared with the old snapshot.
        let shared = delta_store.shared_bytes_with(&store);
        let copied = delta_store.cow_copied_bytes() as usize;
        prop_assert!(shared + copied > 0);
        if delta.is_empty() {
            prop_assert_eq!(copied, 0);
        }
        // The old snapshot still serves the pre-delta table.
        for id in 0..8 {
            prop_assert_eq!(store.get(id).unwrap(), {
                let fresh = ShardedStore::build_quantized(&emb, 3, 8, 128, dtype).unwrap();
                fresh.get(id).unwrap()
            });
        }
    }
}

/// The acceptance-criterion numbers: a 0.1%-of-rows delta against a
/// 1M-row store copies < 2% of the store's bytes and applies ≥ 20×
/// faster than the full rebuild `swap` would need.
#[test]
fn small_delta_on_a_million_rows_is_cheap() {
    const VOCAB_1M: usize = 1_000_000;
    const DIM_1M: usize = 8;
    const DELTA_ROWS: usize = 1_000; // 0.1% of rows
    let mut rng = StdRng::seed_from_u64(5);
    let emb = FullEmbedding::new(VOCAB_1M, DIM_1M, &mut rng).unwrap();

    let t0 = Instant::now();
    let store = ShardedStore::build(&emb, 4, 0, 16 * 1024).unwrap();
    let rebuild_time = t0.elapsed();

    // Refreshed entities cluster in id space (the paper frequency-sorts
    // ids, so recently-active entities are neighbours).
    let mut delta = StoreDelta::new(DIM_1M);
    for k in 0..DELTA_ROWS {
        let id = 500_000 + k;
        let row: Vec<f32> = (0..DIM_1M).map(|j| (k + j) as f32 * 1e-3).collect();
        delta.upsert_row(id, &row).unwrap();
    }
    let t1 = Instant::now();
    let new = store.apply_delta(&delta).unwrap();
    let apply_time = t1.elapsed();

    let copied = new.cow_copied_bytes() as usize;
    let total = store.stored_bytes();
    assert!(
        copied * 50 < total,
        "0.1% delta copied {copied} of {total} bytes (>= 2%)"
    );
    assert_eq!(
        new.shared_bytes_with(&store) + copied,
        new.stored_bytes(),
        "every byte is either shared or was copied"
    );
    assert!(
        rebuild_time >= apply_time * 20,
        "rebuild {rebuild_time:?} vs apply {apply_time:?}: expected >= 20x"
    );
    // And it actually took.
    assert_eq!(new.get(500_123).unwrap()[0], 123.0 * 1e-3);
    assert_eq!(new.get(7).unwrap(), store.get(7).unwrap());
    eprintln!(
        "1M-row store: rebuild {rebuild_time:?}, 0.1% delta apply {apply_time:?} \
         ({:.1}x faster), copied {:.2}% of bytes",
        rebuild_time.as_secs_f64() / apply_time.as_secs_f64().max(1e-9),
        100.0 * copied as f64 / total as f64
    );
}

/// Under live traffic, a stream of delta flips must never let a request
/// observe a torn row: every served row is exactly one of the versions
/// that was ever published, and versions observed by one reader are
/// monotone (requests capture snapshots at admission).
#[test]
fn deltas_under_traffic_never_tear_rows() {
    const HOT: [usize; 8] = [3, 10, 17, 128, 300, 301, 999, 1500];
    const ROUNDS: usize = 30;
    let mut rng = StdRng::seed_from_u64(23);
    let emb = FullEmbedding::new(2_000, 8, &mut rng).unwrap();
    let router = Router::start(ServeConfig {
        n_shards: 2,
        max_batch: 8,
        max_wait: Duration::from_micros(50),
        ..ServeConfig::default()
    })
    .unwrap();
    router.register(DEFAULT_MODEL, &emb).unwrap();

    // Round 0: pin the hot rows to the uniform value 0.0 so every later
    // observation must be uniform at some round's value.
    let mut delta = StoreDelta::new(8);
    for &id in &HOT {
        delta.upsert_row(id, &[0.0; 8]).unwrap();
    }
    router.apply_delta(DEFAULT_MODEL, &delta).unwrap();

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for reader in 0..3 {
            let handle = router.handle(DEFAULT_MODEL).unwrap();
            let done = &done;
            scope.spawn(move || {
                let mut last_seen = vec![0f32; HOT.len()];
                let mut i = reader;
                while !done.load(Ordering::Relaxed) {
                    let slot = i % HOT.len();
                    let row = handle.get(HOT[slot]).unwrap();
                    let v = row[0];
                    assert!(
                        row.iter().all(|&x| x == v),
                        "torn row for id {}: {row:?}",
                        HOT[slot]
                    );
                    assert_eq!(v.fract(), 0.0, "unknown version {v}");
                    assert!(v >= 0.0 && v <= ROUNDS as f32, "unknown version {v}");
                    assert!(
                        v >= last_seen[slot],
                        "id {} went backwards: {} after {}",
                        HOT[slot],
                        v,
                        last_seen[slot]
                    );
                    last_seen[slot] = v;
                    i += 1;
                }
            });
        }
        for round in 1..=ROUNDS {
            let mut delta = StoreDelta::new(8);
            for &id in &HOT {
                delta.upsert_row(id, &[round as f32; 8]).unwrap();
            }
            router.apply_delta(DEFAULT_MODEL, &delta).unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        done.store(true, Ordering::Relaxed);
    });

    // Everything settled on the final version.
    let handle = router.handle(DEFAULT_MODEL).unwrap();
    for &id in &HOT {
        assert_eq!(handle.get(id).unwrap(), vec![ROUNDS as f32; 8]);
    }
}

/// Superseded snapshots (delta-flipped or deregistered) must actually be
/// freed once in-flight requests drain and callers drop their `Arc`s —
/// the hot-row LRU lives inside the store, so a retained snapshot would
/// silently pin every cached row of a dropped table.
#[test]
fn superseded_and_deregistered_snapshots_are_released() {
    let mut rng = StdRng::seed_from_u64(3);
    let emb = FullEmbedding::new(500, 8, &mut rng).unwrap();
    let router = Router::start(ServeConfig::with_shards(2)).unwrap();
    router.register("m", &emb).unwrap();
    let handle = router.handle("m").unwrap();

    // Warm the first snapshot's caches with real traffic.
    for id in 0..32 {
        handle.get(id).unwrap();
    }
    let first = router.snapshot("m").unwrap();
    let weak_first = Arc::downgrade(&first);
    drop(first);

    // Supersede it with a delta; the returned Arc is the last strong ref
    // besides any in-flight request's capture.
    let mut delta = StoreDelta::new(8);
    delta.upsert_row(1, &[0.5; 8]).unwrap();
    let old = router.apply_delta("m", &delta).unwrap();
    for id in 0..32 {
        handle.get(id).unwrap(); // traffic now runs on the new snapshot
    }
    drop(old);
    assert!(
        weak_first.upgrade().is_none(),
        "superseded snapshot (and its LRU rows) must be freed once \
         in-flight requests drain"
    );

    // Deregistration: the final snapshot is pinned only by live handles;
    // once they drop, the memory goes too.
    let last = router.snapshot("m").unwrap();
    let weak_last = Arc::downgrade(&last);
    drop(last);
    router.deregister("m").unwrap();
    assert!(
        weak_last.upgrade().is_some(),
        "live handles still answer metadata from the final snapshot"
    );
    drop(handle);
    assert!(
        weak_last.upgrade().is_none(),
        "deregistered model's store must be freed once handles drop"
    );
}

/// `Router::apply_delta` composes with `swap` and validates like it.
#[test]
fn router_apply_delta_validates_and_returns_old_snapshot() {
    let mut rng = StdRng::seed_from_u64(8);
    let emb = FullEmbedding::new(100, 4, &mut rng).unwrap();
    let router = Router::start(ServeConfig::with_shards(2)).unwrap();
    router.register("m", &emb).unwrap();

    let mut wrong = StoreDelta::new(3);
    wrong.upsert_row(0, &[0.0; 3]).unwrap();
    assert!(router.apply_delta("m", &wrong).is_err());
    assert!(router.apply_delta("missing", &StoreDelta::new(4)).is_err());

    let before = router.snapshot("m").unwrap();
    let mut delta = StoreDelta::new(4);
    delta.upsert_row(150, &[1.0; 4]).unwrap();
    let old = router.apply_delta("m", &delta).unwrap();
    assert!(Arc::ptr_eq(&before, &old), "old snapshot handed back");
    assert_eq!(router.snapshot("m").unwrap().vocab(), 151);
    let handle = router.handle("m").unwrap();
    assert_eq!(handle.get(150).unwrap(), vec![1.0; 4]);
    assert_eq!(handle.get(149).unwrap(), vec![0.0; 4], "gap id");
}
