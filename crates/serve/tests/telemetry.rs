//! Telemetry integration tests.
//!
//! Three angles, per the observability acceptance criteria:
//!
//! 1. **Histogram algebra** — property tests that `merge` is associative
//!    and quantiles are monotone in `q`, so per-shard accumulators can
//!    be folded in any order without changing what the exporter reports.
//! 2. **Exposition format** — the Prometheus text rendering parses with
//!    a strict hand-rolled parser: line grammar, label escaping,
//!    `_total`/`_bytes` naming, cumulative buckets, `+Inf` == `_count`.
//! 3. **Consistency under load** — rolling snapshots taken while an
//!    overloaded shedding server runs never tear
//!    (`issued >= requests + shed + expired`, all counters monotone),
//!    and the final server-side stage breakdown reconciles exactly with
//!    the client-side loadgen totals.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use memcom_core::{MemCom, MemComConfig};
use memcom_serve::{
    run_load, AdmissionPolicy, EmbedServer, LatencyHistogram, LoadGenConfig, LoadMode,
    MetricsSnapshot, ServeConfig, SpanOutcome, TelemetryConfig, TelemetryLevel,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn memcom(seed: u64, vocab: usize) -> MemCom {
    let mut rng = StdRng::seed_from_u64(seed);
    MemCom::new(MemComConfig::new(vocab, 8, vocab / 10), &mut rng).unwrap()
}

fn hist_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

fn hists_equal(a: &LatencyHistogram, b: &LatencyHistogram) -> bool {
    a.count() == b.count()
        && a.sum_nanos() == b.sum_nanos()
        && a.max_nanos() == b.max_nanos()
        && a.iter_buckets().eq(b.iter_buckets())
}

proptest! {
    #[test]
    fn prop_histogram_merge_is_associative(
        a in proptest::collection::vec(1u64..100_000_000, 0..40),
        b in proptest::collection::vec(1u64..100_000_000, 0..40),
        c in proptest::collection::vec(1u64..100_000_000, 0..40),
    ) {
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): fold order across shards must not
        // matter.
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert!(hists_equal(&left, &right));
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(left.quantile(q), right.quantile(q));
        }
    }

    #[test]
    fn prop_quantiles_monotone_in_q(
        samples in proptest::collection::vec(1u64..10_000_000_000, 1..80),
    ) {
        let h = hist_of(&samples);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0];
        for pair in qs.windows(2) {
            prop_assert!(
                h.quantile(pair[0]) <= h.quantile(pair[1]),
                "quantile({}) = {} > quantile({}) = {}",
                pair[0], h.quantile(pair[0]), pair[1], h.quantile(pair[1]),
            );
        }
        // Clamping keeps every quantile inside the observed range.
        let lo = *samples.iter().min().unwrap();
        let hi = *samples.iter().max().unwrap();
        for q in qs {
            prop_assert!(h.quantile(q) <= hi);
            prop_assert!(h.quantile(q) >= lo.min(h.quantile(0.0)));
        }
        prop_assert_eq!(h.quantile(1.0), hi);
    }
}

// ---------------------------------------------------------------------
// Prometheus exposition: strict parse of real output.
// ---------------------------------------------------------------------

#[derive(Debug)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

impl Sample {
    fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses one `name{k="v",...} value` line, unescaping label values.
fn parse_sample(line: &str) -> Sample {
    let (name, rest) = match line.find('{') {
        Some(brace) => (&line[..brace], &line[brace..]),
        None => {
            let (name, value) = line.split_once(' ').expect("bare sample has a value");
            return Sample {
                name: name.to_string(),
                labels: Vec::new(),
                value: value.trim().parse().expect("numeric value"),
            };
        }
    };
    let close = rest.rfind('}').expect("labels close");
    let (label_text, value_text) = (&rest[1..close], &rest[close + 1..]);
    let mut labels = Vec::new();
    let mut chars = label_text.chars().peekable();
    while chars.peek().is_some() {
        let key: String = chars.by_ref().take_while(|&c| c != '=').collect();
        assert_eq!(chars.next(), Some('"'), "label value opens with a quote");
        let mut value = String::new();
        loop {
            match chars.next().expect("unterminated label value") {
                '\\' => match chars.next().expect("dangling escape") {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    other => panic!("unknown escape \\{other}"),
                },
                '"' => break,
                c => value.push(c),
            }
        }
        labels.push((key, value));
        if chars.peek() == Some(&',') {
            chars.next();
        }
    }
    Sample {
        name: name.to_string(),
        labels,
        value: value_text.trim().parse().expect("numeric value"),
    }
}

/// Parses a full exposition, checking the line grammar and that every
/// sample belongs to a `# TYPE`-declared family (allowing the
/// histogram/summary `_bucket`/`_sum`/`_count` sub-series).
fn parse_exposition(text: &str) -> (BTreeMap<String, String>, Vec<Sample>) {
    let mut helps: Vec<String> = Vec::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        assert!(!line.is_empty(), "no blank lines in the exposition");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP has text");
            assert!(!help.is_empty());
            helps.push(name.to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE has a kind");
            assert!(
                ["counter", "gauge", "histogram", "summary"].contains(&kind),
                "unknown kind {kind:?}"
            );
            assert!(
                types.insert(name.to_string(), kind.to_string()).is_none(),
                "family {name} declared twice"
            );
        } else {
            assert!(!line.starts_with('#'), "unknown comment line: {line:?}");
            samples.push(parse_sample(line));
        }
    }
    for name in types.keys() {
        assert!(helps.contains(name), "family {name} has no HELP line");
    }
    for sample in &samples {
        let family = types.get(&sample.name).cloned().or_else(|| {
            ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
                let base = sample.name.strip_suffix(suffix)?;
                let kind = types.get(base)?;
                (kind == "histogram" || (kind == "summary" && *suffix != "_bucket"))
                    .then(|| kind.clone())
            })
        });
        let family = family.unwrap_or_else(|| panic!("undeclared family for {}", sample.name));
        // Naming conventions: counters end `_total`, gauges carry a
        // unit suffix.
        if types.get(&sample.name) == Some(&family) {
            match family.as_str() {
                "counter" => assert!(
                    sample.name.ends_with("_total"),
                    "counter {} must end with _total",
                    sample.name
                ),
                "gauge" => assert!(
                    ["_bytes", "_rows", "_seconds"]
                        .iter()
                        .any(|s| sample.name.ends_with(s)),
                    "gauge {} must carry a unit suffix",
                    sample.name
                ),
                _ => {}
            }
        }
    }
    (types, samples)
}

#[test]
fn prometheus_exposition_parses_and_reconciles() {
    // A model name that exercises every escape the format defines.
    let evil = "us\"east\\1\nblue";
    let emb = memcom(5, 200);
    let server = EmbedServer::start(
        &emb,
        ServeConfig {
            n_shards: 2,
            max_batch: 8,
            max_wait: Duration::from_micros(200),
            telemetry: TelemetryConfig::full(1.0),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    server.router().register(evil, &emb).unwrap();
    let handle = server.handle();
    for id in 0..20 {
        handle.get(id).unwrap();
    }
    server.router().handle(evil).unwrap().get(7).unwrap();

    let snapshot = server.metrics();
    let text = snapshot.to_prometheus();
    let (types, samples) = parse_exposition(&text);

    // Families the snapshot promises, with their kinds.
    for (name, kind) in [
        ("memcom_uptime_seconds", "gauge"),
        ("memcom_requests_total", "counter"),
        ("memcom_issued_rows_total", "counter"),
        ("memcom_cache_resident_bytes", "gauge"),
        ("memcom_decode_rows_total", "counter"),
        ("memcom_stage_latency_nanos", "histogram"),
        ("memcom_batch_size", "summary"),
    ] {
        assert_eq!(types.get(name).map(String::as_str), Some(kind), "{name}");
    }

    // Label escaping round-trips: the evil model name comes back intact.
    let model = |name: &str, want: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.label("model") == Some(want))
            .unwrap_or_else(|| panic!("no {name} sample for {want:?}"))
    };
    assert_eq!(model("memcom_requests_total", evil).value, 1.0);
    let default = model("memcom_requests_total", "default");
    assert_eq!(default.value, snapshot.models[0].requests as f64);
    assert_eq!(default.value, 20.0);

    // Histogram contract: within each series, cumulative bucket counts
    // are non-decreasing and the +Inf bucket equals its _count sample.
    let mut series: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
    for s in &samples {
        if s.name == "memcom_stage_latency_nanos_bucket" {
            let key: Vec<String> = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            series
                .entry(key.join(","))
                .or_default()
                .push((s.label("le").unwrap().to_string(), s.value));
        }
    }
    assert!(!series.is_empty(), "full telemetry emits stage histograms");
    for (key, buckets) in &series {
        for pair in buckets.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "{key}: cumulative counts dip");
        }
        let (last_le, last_value) = buckets.last().unwrap();
        assert_eq!(last_le, "+Inf", "{key}: last bucket is +Inf");
        let count = samples
            .iter()
            .find(|s| {
                s.name == "memcom_stage_latency_nanos_count"
                    && key.split(',').all(|kv| {
                        kv == format!("{}={}", s.labels[0].0, s.labels[0].1)
                            || s.labels.iter().any(|(k, v)| format!("{k}={v}") == kv)
                    })
            })
            .expect("each histogram series has a _count");
        assert_eq!(*last_value, count.value, "{key}: +Inf != _count");
    }

    // The queue-wait histogram accounts for every served row.
    let queue_counts: f64 = samples
        .iter()
        .filter(|s| {
            s.name == "memcom_stage_latency_nanos_count" && s.label("stage") == Some("queue_wait")
        })
        .map(|s| s.value)
        .sum();
    assert_eq!(queue_counts, 21.0);
}

#[test]
fn off_level_exports_counters_without_stages() {
    let emb = memcom(6, 100);
    let server = EmbedServer::start(&emb, ServeConfig::with_shards(2)).unwrap();
    server.handle().get(3).unwrap();
    let snapshot = server.metrics();
    assert_eq!(snapshot.level, TelemetryLevel::Off);
    assert_eq!(snapshot.traced_spans, 0);
    assert!(snapshot
        .stages
        .iter()
        .all(|s| s.queue_wait.count() == 0 && s.admission_wait.count() == 0));
    let text = snapshot.to_prometheus();
    assert!(!text.contains("memcom_stage_latency_nanos"));
    assert!(!text.contains("memcom_batch_size"));
    // The always-on counters still render.
    assert!(text.contains("memcom_requests_total{model=\"default\"} 1\n"));
    assert!(text.contains("memcom_issued_rows_total{model=\"default\"} 1\n"));
}

// ---------------------------------------------------------------------
// Consistency under load.
// ---------------------------------------------------------------------

fn model_tuple(snapshot: &MetricsSnapshot) -> (u64, u64, u64, u64) {
    let m = &snapshot.models[0];
    (m.issued, m.requests, m.shed, m.expired)
}

/// Rolling snapshots during an overloaded shedding run never violate the
/// counter contract and never move backwards; the final counts reconcile
/// exactly with what the load generator observed.
#[test]
fn snapshot_under_load_never_tears() {
    let emb = memcom(7, 2_000);
    let server = EmbedServer::start(
        &emb,
        ServeConfig {
            n_shards: 1,
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            queue_depth: 4,
            store_latency: Duration::from_millis(1),
            admission: AdmissionPolicy::Shed {
                enqueue_timeout: Duration::ZERO,
                request_deadline: Some(Duration::from_millis(10)),
            },
            telemetry: TelemetryConfig::full(0.05),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let load = LoadGenConfig {
        clients: 8,
        requests_per_client: 50,
        ids_per_request: 1,
        zipf_exponent: 1.1,
        mode: LoadMode::Open {
            target_qps: 20_000.0,
        },
        seed: 5,
    };
    let (report, snapshots) = std::thread::scope(|scope| {
        let loader = scope.spawn(|| run_load(&handle, &load).unwrap());
        let mut taken = 0u32;
        let mut prev = (0u64, 0u64, 0u64, 0u64);
        while !loader.is_finished() {
            let now = model_tuple(&server.metrics());
            let (issued, requests, shed, expired) = now;
            assert!(
                issued >= requests + shed + expired,
                "snapshot tears: issued {issued} < {requests} + {shed} + {expired}"
            );
            assert!(
                now.0 >= prev.0 && now.1 >= prev.1 && now.2 >= prev.2 && now.3 >= prev.3,
                "counters moved backwards: {prev:?} -> {now:?}"
            );
            prev = now;
            taken += 1;
        }
        (loader.join().unwrap(), taken)
    });
    assert!(snapshots > 0, "load ran long enough to snapshot");
    assert!(
        report.shed > 0,
        "5x-overload against a depth-4 queue must shed"
    );

    // Drained: the server-side tallies match the client-side ones row
    // for row, and the inequality closes to an equality.
    let stats = server.shutdown();
    assert_eq!(stats.requests, report.requests);
    assert_eq!(stats.shed, report.shed);
    assert_eq!(stats.expired, report.expired);
    assert_eq!(stats.issued, report.offered());
    assert_eq!(stats.issued, stats.requests + stats.shed + stats.expired);
}

/// The acceptance-criteria test: the server's stage breakdown reconciles
/// with the client-side loadgen totals — every issued row shows up in
/// admission, queueing, batching, decode, and tracing exactly once.
#[test]
fn stage_breakdown_reconciles_with_loadgen() {
    let emb = memcom(8, 2_000);
    let server = EmbedServer::start(
        &emb,
        ServeConfig {
            n_shards: 2,
            max_batch: 8,
            max_wait: Duration::from_micros(200),
            telemetry: TelemetryConfig::full(1.0),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let report = run_load(
        &server.handle(),
        &LoadGenConfig {
            clients: 4,
            requests_per_client: 100,
            ids_per_request: 1,
            zipf_exponent: 1.1,
            mode: LoadMode::Closed,
            seed: 9,
        },
    )
    .unwrap();
    let total = report.requests;
    assert_eq!(total, 400);

    // The last batch's stage recording can trail the last client's
    // response by a hair; poll until the books balance, then assert.
    let deadline = Instant::now() + Duration::from_secs(5);
    let snapshot = loop {
        let snapshot = server.metrics();
        let rows: u64 = snapshot
            .stages
            .iter()
            .map(|s| s.decode_rows_hit + s.decode_rows_miss)
            .sum();
        if (snapshot.traced_spans == total && rows == total) || Instant::now() > deadline {
            break snapshot;
        }
        std::thread::yield_now();
    };

    let m = &snapshot.models[0];
    assert_eq!(
        (m.issued, m.requests, m.shed, m.expired),
        (total, total, 0, 0)
    );

    let sum_count =
        |f: fn(&memcom_serve::ShardStageMetrics) -> u64| snapshot.stages.iter().map(f).sum::<u64>();
    assert_eq!(sum_count(|s| s.admission_wait.count()), total);
    assert_eq!(sum_count(|s| s.queue_wait.count()), total);
    assert_eq!(sum_count(|s| s.batch_size.sum), total);
    assert_eq!(sum_count(|s| s.decode_rows_hit + s.decode_rows_miss), total);
    // Single-id closed-loop traffic serves one coalesced run per batch,
    // so per-run stages fire once per flush.
    let batches = sum_count(|s| s.batch_size.count);
    assert_eq!(sum_count(|s| s.batch_assembly.count()), batches);
    assert_eq!(sum_count(|s| s.slab_write.count()), batches);
    assert_eq!(
        sum_count(|s| s.decode.iter().map(|(_, h)| h.count()).sum()),
        batches
    );

    // Every row was sampled (rate 1.0) and every span served.
    assert_eq!(snapshot.traced_spans, total);
    assert!(snapshot.slowest_traces.len() <= 32);
    assert!(!snapshot.recent_traces.is_empty());
    assert!(snapshot
        .slowest_traces
        .iter()
        .chain(&snapshot.recent_traces)
        .all(|span| span.outcome == SpanOutcome::Served && span.rows == 1));

    server.shutdown();
}
