//! Proof that the full-model score path performs no per-request heap
//! allocation beyond the response-slot `Arc`.
//!
//! Same harness as `alloc_count.rs`, pointed at `score_batch_into`: a
//! counting global allocator tallies every `alloc`/`realloc`, and after
//! warm-up (backend scratch grown, buffer rotation primed, LRU
//! populated) a 128-id score call — embedding gather plus the full
//! RankNet forward — must stay under a small constant number of
//! allocations, independent of the id count. The worker's
//! [`memcom_serve::InferScratch`] (gather scratch, head activations,
//! logit buffer) is reused across calls; a per-call scratch would blow
//! the bound immediately.
//!
//! This file holds exactly one `#[test]`: the allocator is process-wide,
//! so a sibling test running concurrently would pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use memcom_core::MethodSpec;
use memcom_models::{ModelConfig, RecModel};
use memcom_serve::{Dtype, RankNetBackend, Router, ScoreBatch, ServeConfig};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: a pure pass-through to `System` plus a relaxed counter
// bump; every GlobalAlloc contract obligation is discharged by the
// delegated call.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same layout handed unchanged to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: ptr/layout/new_size forwarded unchanged to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: ptr/layout forwarded unchanged to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn score_batch_into_allocates_constant_not_per_id() {
    const IDS: usize = 128;
    const CALLS: u64 = 50;

    let model = RecModel::new(
        &ModelConfig::pointwise(1_000, 16, IDS, 1),
        &MethodSpec::MemCom {
            hash_size: 100,
            bias: false,
        },
    )
    .unwrap();
    let router = Router::start(ServeConfig {
        n_shards: 1,
        // Flush every queue entry immediately: no timer waits, and a
        // deterministic one-batch-per-call steady state.
        max_batch: 1,
        max_wait: Duration::from_micros(1),
        // Every requested id stays resident, so steady-state gathers
        // are pure cache hits.
        cache_capacity: 1_024,
        ..ServeConfig::default()
    })
    .unwrap();
    router
        .backends()
        .register(
            "ranknet",
            Arc::new(RankNetBackend::from_model(&model).unwrap()),
        )
        .unwrap();
    router
        .register_with_backend("scorer", model.embedding(), Dtype::F32, "ranknet")
        .unwrap();
    let handle = router.handle("scorer").unwrap();
    let ids: Vec<usize> = (0..IDS).collect();
    let mut batch = ScoreBatch::new();

    // Warm up: fills the LRU, grows the id/score buffers and the
    // worker's inference scratch, and settles the allocator.
    for _ in 0..10 {
        handle.score_batch_into(&ids, &mut batch).unwrap();
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..CALLS {
        handle.score_batch_into(&ids, &mut batch).unwrap();
    }
    let per_call = (ALLOCATIONS.load(Ordering::Relaxed) - before) as f64 / CALLS as f64;
    eprintln!("score path: {per_call:.2} allocations/call");

    // Expected steady state: 1 response-slot Arc (caller side), nothing
    // from the worker — the gather scratch, head activations, and logit
    // buffer all live in the per-worker `InferScratch` and are reused
    // across batches.
    assert!(
        per_call <= 2.5,
        "expected ~1 allocation per {IDS}-id score call (slot Arc only), measured {per_call:.1}"
    );

    // Sanity: the scores really were served.
    assert_eq!(batch.scores().len(), 1, "pointwise ranker emits one logit");
    let stats = router.stats("scorer").unwrap();
    assert!(stats.requests >= (CALLS + 10) * IDS as u64);
    router.shutdown();
}
