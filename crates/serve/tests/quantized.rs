//! Cross-dtype serving certification.
//!
//! Two guarantees, asserted rather than printed:
//!
//! 1. **Equivalence** — for every compression technique a store can be
//!    built from, `lookup_batch` on an f16/int8/int4 store matches the
//!    fp32 store row for row within the quantized store's certified
//!    [`ShardedStore::error_bound`] (the serving analogue of the core
//!    crate's `embed_into` cross-method equivalence test).
//! 2. **Footprint** — an fp32-vs-int8 A/B of the *same* table behind one
//!    router reports ≥3× smaller store *and* resident bytes for int8 in
//!    [`memcom_serve::LoadReport::per_model`], while every served row
//!    stays within the advertised bound.

use memcom_core::{MethodSpec, QrCombiner};
use memcom_serve::{
    run_mixed_load, Dtype, LoadGenConfig, ModelMix, Router, ServeConfig, ShardedStore,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every spec the core crate's equivalence test sweeps.
fn all_specs() -> Vec<MethodSpec> {
    vec![
        MethodSpec::Uncompressed,
        MethodSpec::MemCom {
            hash_size: 10,
            bias: true,
        },
        MethodSpec::MemCom {
            hash_size: 10,
            bias: false,
        },
        MethodSpec::NaiveHash { hash_size: 10 },
        MethodSpec::DoubleHash { hash_size: 10 },
        MethodSpec::QuotientRemainder {
            hash_size: 10,
            combiner: QrCombiner::Multiply,
        },
        MethodSpec::QuotientRemainder {
            hash_size: 10,
            combiner: QrCombiner::Concat,
        },
        MethodSpec::Factorized { hidden: 4 },
        MethodSpec::ReduceDim { dim: 8 },
        MethodSpec::TruncateRare { keep: 20 },
        MethodSpec::WeinbergerOneHot { hash_size: 10 },
    ]
}

#[test]
fn lookup_batch_matches_fp32_store_within_bound_for_every_spec() {
    const VOCAB: usize = 120;
    const N_SHARDS: usize = 3;
    let mut rng = StdRng::seed_from_u64(29);
    for spec in all_specs() {
        let emb = spec.build(VOCAB, 16, &mut rng).unwrap();
        let exact = ShardedStore::build(emb.as_ref(), N_SHARDS, 8, 256).unwrap();
        let dim = exact.dim();
        for dtype in [Dtype::F16, Dtype::Int8, Dtype::Int4] {
            let quant =
                ShardedStore::build_quantized(emb.as_ref(), N_SHARDS, 8, 256, dtype).unwrap();
            assert!(
                quant.stored_bytes() < exact.stored_bytes(),
                "{spec:?} {dtype:?} must shrink the store"
            );
            let bound = quant.error_bound() + 1e-6;
            for shard in 0..N_SHARDS {
                let ids: Vec<usize> = (0..VOCAB).filter(|id| id % N_SHARDS == shard).collect();
                let mut want = vec![0f32; ids.len() * dim];
                let mut got = vec![f32::NAN; ids.len() * dim];
                exact.lookup_batch(shard, &ids, &mut want).unwrap();
                quant.lookup_batch(shard, &ids, &mut got).unwrap();
                for (k, (a, b)) in want.iter().zip(&got).enumerate() {
                    assert!(
                        (a - b).abs() <= bound,
                        "{spec:?} {dtype:?} shard {shard} value {k}: \
                         {a} vs {b} (bound {bound})"
                    );
                }
            }
        }
    }
}

#[test]
fn int8_ab_reports_3x_smaller_bytes_within_bound() {
    const VOCAB: usize = 1_200;
    const DIM: usize = 32;
    let mut rng = StdRng::seed_from_u64(41);
    let emb = MethodSpec::Uncompressed
        .build(VOCAB, DIM, &mut rng)
        .unwrap();

    // One worker set, two dtype variants of the same table: the A/B is
    // two register calls.
    let router = Router::start(ServeConfig {
        n_shards: 2,
        max_batch: 32,
        max_wait: std::time::Duration::from_micros(50),
        cache_capacity: 64,
        page_size: 1024,
        ..ServeConfig::default()
    })
    .unwrap();
    router.register("emb/fp32", emb.as_ref()).unwrap();
    router
        .register_with_dtype("emb/int8", emb.as_ref(), Dtype::Int8)
        .unwrap();

    // Near-uniform traffic, enough of it that essentially every page of
    // both stores is touched — resident bytes then reflect the full
    // footprint gap, not sampling luck (and the seed is fixed anyway).
    let load = LoadGenConfig {
        clients: 2,
        requests_per_client: 1_500,
        ids_per_request: 4,
        zipf_exponent: 0.05,
        ..LoadGenConfig::default()
    };
    let mix = [
        ModelMix::new("emb/fp32", 1.0),
        ModelMix::new("emb/int8", 1.0),
    ];
    let report = run_mixed_load(&router, &mix, &load).unwrap();
    assert_eq!(report.requests, 3_000);
    let (fp32, int8) = (&report.per_model[0], &report.per_model[1]);
    assert_eq!(fp32.dtype, Dtype::F32);
    assert_eq!(int8.dtype, Dtype::Int8);
    assert_eq!(fp32.dequant_error_bound, 0.0);
    assert!(int8.dequant_error_bound > 0.0);
    assert!(
        int8.store_bytes * 3 <= fp32.store_bytes,
        "store bytes: int8 {} vs fp32 {}",
        int8.store_bytes,
        fp32.store_bytes
    );
    assert!(
        int8.resident_bytes * 3 <= fp32.resident_bytes,
        "resident bytes: int8 {} vs fp32 {}",
        int8.resident_bytes,
        fp32.resident_bytes
    );

    // Every served row of the int8 variant stays within its advertised
    // bound of the fp32 truth.
    let exact = router.snapshot("emb/fp32").unwrap();
    let quant = router.snapshot("emb/int8").unwrap();
    assert_eq!(quant.error_bound(), int8.dequant_error_bound);
    let bound = quant.error_bound() + 1e-6;
    for id in 0..VOCAB {
        let want = exact.get(id).unwrap();
        let got = quant.get(id).unwrap();
        for (a, b) in want.iter().zip(&got) {
            assert!(
                (a - b).abs() <= bound,
                "id {id}: {a} vs {b} (bound {bound})"
            );
        }
    }
}
