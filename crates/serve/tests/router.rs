//! Router-level correctness: multi-model isolation, atomic snapshot
//! swaps under concurrent traffic, and drain semantics across models.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use memcom_core::{EmbeddingCompressor, FullEmbedding, MemCom, MemComConfig};
use memcom_serve::{EmbedBatch, Router, ServeConfig, ServeError, ShardedStore, DEFAULT_MODEL};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const VOCAB: usize = 400;
const DIM: usize = 8;

fn memcom(seed: u64) -> MemCom {
    let mut rng = StdRng::seed_from_u64(seed);
    MemCom::new(MemComConfig::with_bias(VOCAB, DIM, 40), &mut rng).unwrap()
}

fn full(seed: u64) -> FullEmbedding {
    let mut rng = StdRng::seed_from_u64(seed);
    FullEmbedding::new(VOCAB, DIM, &mut rng).unwrap()
}

fn config(n_shards: usize) -> ServeConfig {
    ServeConfig {
        n_shards,
        max_batch: 16,
        max_wait: Duration::from_micros(200),
        ..ServeConfig::default()
    }
}

/// Each model behind the router answers with *its own* rows — traffic on
/// one never bleeds into another, whichever API shape the client uses.
#[test]
fn models_are_isolated() {
    let emb_a = memcom(1);
    let emb_b = full(2);
    let router = Router::start(config(4)).unwrap();
    router.register("a", &emb_a).unwrap();
    router.register("b", &emb_b).unwrap();

    let ha = router.handle("a").unwrap();
    let hb = router.handle("b").unwrap();
    let ids: Vec<usize> = (0..64).map(|i| (i * 13) % VOCAB).collect();
    let mut batch = EmbedBatch::new();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for &id in &ids {
                assert_eq!(
                    ha.get(id).unwrap().as_slice(),
                    emb_a.lookup(&[id]).unwrap().as_slice(),
                    "model a id {id}"
                );
            }
        });
        scope.spawn(|| {
            let rows = hb.get_many(&ids).unwrap();
            for (&id, row) in ids.iter().zip(&rows) {
                assert_eq!(
                    row.as_slice(),
                    emb_b.lookup(&[id]).unwrap().as_slice(),
                    "model b id {id}"
                );
            }
        });
    });
    hb.get_batch_into(&ids, &mut batch).unwrap();
    for (k, &id) in ids.iter().enumerate() {
        assert_eq!(batch.row(k), emb_b.lookup(&[id]).unwrap().as_slice());
    }

    // Per-model accounting: each model saw its own row counts.
    let stats_a = router.stats("a").unwrap();
    let stats_b = router.stats("b").unwrap();
    assert_eq!(stats_a.requests, ids.len() as u64);
    assert_eq!(stats_b.requests, 2 * ids.len() as u64);
}

/// The acceptance-criteria test: an `Arc`-swapped snapshot serves new
/// values while concurrent lookups against the old snapshot — both
/// in-flight requests and direct reads through the returned `Arc` —
/// still complete with the old values.
#[test]
fn snapshot_swap_serves_new_values_without_stopping_traffic() {
    let emb_old = memcom(10);
    let emb_new = full(11);
    let router = Router::start(config(4)).unwrap();
    router.register(DEFAULT_MODEL, &emb_old).unwrap();
    let handle = router.handle(DEFAULT_MODEL).unwrap();

    let stop = AtomicBool::new(false);
    let swapped = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Hammer the model from several clients throughout the swap.
        // Every answer must be exactly one of the two snapshots' rows —
        // never a torn mix, never an error.
        let clients: Vec<_> = (0..4)
            .map(|c| {
                let handle = handle.clone();
                let (stop, swapped) = (&stop, &swapped);
                let (emb_old, emb_new) = (&emb_old, &emb_new);
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(100 + c);
                    let mut saw_new = false;
                    let mut batch = EmbedBatch::new();
                    while !stop.load(Ordering::Relaxed) {
                        let id = rng.gen_range(0..VOCAB);
                        // Sampled *before* the request: only if the swap
                        // had already completed by then must the answer
                        // come from the new table (a request enqueued
                        // during the swap may legitimately see either).
                        let swap_done = swapped.load(Ordering::Acquire);
                        let row = handle.get(id).unwrap();
                        let old_row = emb_old.lookup(&[id]).unwrap();
                        let new_row = emb_new.lookup(&[id]).unwrap();
                        let is_old = row.as_slice() == old_row.as_slice();
                        let is_new = row.as_slice() == new_row.as_slice();
                        assert!(is_old || is_new, "row for id {id} matches neither snapshot");
                        if swap_done {
                            assert!(is_new, "id {id} served stale row after swap");
                            saw_new = true;
                        }
                        // The slab path agrees with the single path.
                        handle
                            .get_batch_into(&[id, (id + 7) % VOCAB], &mut batch)
                            .unwrap();
                        assert_eq!(batch.row(0).len(), DIM);
                    }
                    saw_new
                })
            })
            .collect();

        // Let traffic build up, then flip the snapshot mid-flight.
        std::thread::sleep(Duration::from_millis(20));
        let new_store = ShardedStore::build(&emb_new, 4, 64, 4096).unwrap();
        let old_store = router.swap(DEFAULT_MODEL, new_store).unwrap();
        swapped.store(true, Ordering::Release);
        std::thread::sleep(Duration::from_millis(20));
        stop.store(true, Ordering::Relaxed);
        for client in clients {
            assert!(
                client.join().unwrap(),
                "every client observed post-swap rows"
            );
        }

        // The old snapshot stays fully readable through the returned Arc
        // (in-flight requests hold exactly such Arcs).
        for id in (0..VOCAB).step_by(37) {
            assert_eq!(
                old_store.get(id).unwrap().as_slice(),
                emb_old.lookup(&[id]).unwrap().as_slice(),
                "old snapshot id {id}"
            );
        }
    });

    // And new traffic keeps flowing after the scope.
    assert_eq!(
        handle.get(3).unwrap().as_slice(),
        emb_new.lookup(&[3]).unwrap().as_slice()
    );
}

/// Draining the router must answer every accepted request of **every**
/// model with its own model's rows — closing one model's traffic can
/// neither drop nor misroute another's in-flight requests.
#[test]
fn multi_model_drain_neither_drops_nor_misroutes() {
    let emb_a = memcom(20);
    let emb_b = full(21);
    let router = Router::start(ServeConfig {
        n_shards: 2,
        max_batch: 64,
        max_wait: Duration::from_millis(200),
        ..ServeConfig::default()
    })
    .unwrap();
    router.register("a", &emb_a).unwrap();
    router.register("b", &emb_b).unwrap();
    let ha = router.handle("a").unwrap();
    let hb = router.handle("b").unwrap();

    let (outcomes, stats) = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..8)
            .map(|i| {
                let (ha, hb) = (ha.clone(), hb.clone());
                scope.spawn(move || {
                    let id = (i * 17) % VOCAB;
                    if i % 2 == 0 {
                        ("a", id, ha.get(id))
                    } else {
                        ("b", id, hb.get(id))
                    }
                })
            })
            .collect();
        // Pull the plug while batches are still open. A heavily loaded
        // scheduler may deschedule a client past the shutdown — then its
        // push is *rejected*, which is also a valid outcome; what must
        // never happen is an accepted request that is dropped or answered
        // from the wrong model's table.
        std::thread::sleep(Duration::from_millis(20));
        let stats = router.shutdown();
        let outcomes: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        (outcomes, stats)
    });

    let mut served = 0u64;
    for (model, id, outcome) in outcomes {
        match outcome {
            Ok(row) => {
                let want = if model == "a" {
                    emb_a.lookup(&[id]).unwrap()
                } else {
                    emb_b.lookup(&[id]).unwrap()
                };
                assert_eq!(
                    row.as_slice(),
                    want.as_slice(),
                    "model {model} id {id} misrouted"
                );
                served += 1;
            }
            Err(ServeError::ShuttingDown) => {} // raced the close; rejected cleanly
            Err(other) => panic!("unexpected outcome: {other:?}"),
        }
    }
    let total: u64 = stats.iter().map(|(_, s)| s.requests).sum();
    assert_eq!(
        total, served,
        "every accepted request was served exactly once"
    );
    assert_eq!(stats.len(), 2, "per-model stats for both models");
    assert!(matches!(ha.get(1), Err(ServeError::ShuttingDown)));
}

/// Deregistering one model mid-traffic fails fast on its handles while
/// the other model keeps serving undisturbed.
#[test]
fn deregister_one_model_leaves_the_other_serving() {
    let emb_a = memcom(30);
    let emb_b = full(31);
    let router = Router::start(config(2)).unwrap();
    router.register("a", &emb_a).unwrap();
    router.register("b", &emb_b).unwrap();
    let ha = router.handle("a").unwrap();
    let hb = router.handle("b").unwrap();

    ha.get(5).unwrap();
    router.deregister("a").unwrap();
    assert!(matches!(ha.get(5), Err(ServeError::ModelNotFound { .. })));
    for id in (0..VOCAB).step_by(29) {
        assert_eq!(
            hb.get(id).unwrap().as_slice(),
            emb_b.lookup(&[id]).unwrap().as_slice(),
            "model b survives a's deregistration"
        );
    }
    assert_eq!(router.model_names(), vec!["b".to_string()]);
}
