//! Overload semantics, end to end: under a saturating open loop the
//! `Shed` admission policy must keep completed-request p99 bounded and
//! report a non-zero shed rate, while `Block` on the same traffic shows
//! the unbounded queueing-latency growth of blocked producers (the
//! coordinated-omission failure the shed policy exists to avoid).
//! Expired requests must fail loudly at dequeue, shutdown must answer
//! every accepted request, and client-side load-report counters must
//! reconcile with the router's server-side counters.
//!
//! Capacity engineering: `store_latency` charges a simulated backing-
//! store read per flushed batch, so a shard serves at most
//! `max_batch / store_latency` rows per second — which makes "offered
//! load ≥ 2× capacity" a configuration, not a race against the host.

use std::time::Duration;

use memcom_core::{MemCom, MemComConfig};
use memcom_serve::{
    run_load, AdmissionPolicy, EmbedBatch, EmbedServer, LoadGenConfig, LoadMode, ServeConfig,
    ServeError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn memcom(seed: u64) -> MemCom {
    let mut rng = StdRng::seed_from_u64(seed);
    MemCom::new(MemComConfig::new(1_000, 8, 100), &mut rng).unwrap()
}

/// The acceptance-criteria test: one saturating open-loop traffic
/// pattern (offered = 4× capacity), served once under `Shed` and once
/// under `Block`.
#[test]
fn shed_bounds_p99_where_block_collapses() {
    // Capacity: 1 shard × max_batch 4 / store_latency 4ms = 1 000 rows/s.
    const CAPACITY_QPS: f64 = 1_000.0;
    let max_wait = Duration::from_millis(1);
    let deadline = Duration::from_millis(25);
    let store_latency = Duration::from_millis(4);
    let base = ServeConfig {
        n_shards: 1,
        max_batch: 4,
        max_wait,
        queue_depth: 8,
        store_latency,
        ..ServeConfig::default()
    };
    // Offered: 4× capacity, paced by 12 open-loop clients (more than
    // the depth-8 queue, so Block mode really wedges producers).
    let load = LoadGenConfig {
        clients: 12,
        requests_per_client: 100,
        ids_per_request: 1,
        zipf_exponent: 1.1,
        mode: LoadMode::Open {
            target_qps: 4.0 * CAPACITY_QPS,
        },
        seed: 7,
    };
    let offered_total = (load.clients * load.requests_per_client) as u64;

    let emb = memcom(3);

    // --- Shed: producers never wait past their budget ---------------
    let server = EmbedServer::start(
        &emb,
        ServeConfig {
            admission: AdmissionPolicy::Shed {
                enqueue_timeout: Duration::ZERO,
                request_deadline: Some(deadline),
            },
            ..base.clone()
        },
    )
    .unwrap();
    let shed_report = run_load(&server.handle(), &load).unwrap();
    let shed_stats = server.shutdown();

    // Every issued request is accounted for: completed + shed + expired.
    assert_eq!(shed_report.offered(), offered_total);
    assert!(
        shed_report.shed > 0,
        "4x-capacity traffic against a depth-8 queue must shed"
    );
    assert!(shed_report.shed_rate() > 0.25, "most overflow is shed");
    // Goodput plateaus at capacity instead of collapsing.
    assert!(
        shed_report.goodput() > 0.4 * CAPACITY_QPS,
        "goodput {:.0} too far below capacity",
        shed_report.goodput()
    );
    assert!(
        shed_report.goodput() < 1.4 * CAPACITY_QPS,
        "goodput {:.0} cannot exceed capacity",
        shed_report.goodput()
    );
    // Completed-request p99 (measured from the *scheduled* send) is
    // bounded by the deadline budget plus batching/service slack and a
    // generous allowance for client-thread wake latency on a loaded
    // single-core host. Block mode's backlog (~1s by the end of the
    // run) sits far beyond this bound either way.
    let p99_bound = deadline + max_wait + store_latency + Duration::from_millis(220);
    let shed_p99 = Duration::from_nanos(shed_report.histogram.p99());
    assert!(
        shed_p99 <= p99_bound,
        "shed p99 {shed_p99:?} exceeds {p99_bound:?}"
    );
    // Client-side tallies reconcile with the router's counters
    // (single-id requests, so rows == requests).
    assert_eq!(shed_stats.requests, shed_report.requests);
    assert_eq!(shed_stats.shed, shed_report.shed);
    assert_eq!(shed_stats.expired, shed_report.expired);
    let model = &shed_report.per_model[0];
    assert_eq!(model.shed, shed_report.shed);
    assert_eq!(model.expired, shed_report.expired);
    assert_eq!(model.offered(), offered_total);
    assert!((model.shed_rate() - shed_report.shed_rate()).abs() < 1e-9);

    // --- Block: the same traffic turns the open loop closed ---------
    let server = EmbedServer::start(&emb, base).unwrap();
    let block_report = run_load(&server.handle(), &load).unwrap();
    let block_stats = server.shutdown();

    // Identical issued traffic (same seed), radically different fate.
    assert_eq!(block_report.traffic_checksum, shed_report.traffic_checksum);
    assert_eq!(block_report.shed, 0, "Block never sheds");
    assert_eq!(block_report.expired, 0, "Block never expires");
    assert_eq!(block_report.requests, offered_total, "Block answers all");
    assert_eq!(block_stats.shed, 0);
    assert_eq!(block_stats.expired, 0);
    // Blocked producers serialize on backpressure: scheduled-send p99
    // grows with the backlog, far past the shed policy's bound.
    let block_p99 = Duration::from_nanos(block_report.histogram.p99());
    assert!(
        block_p99 >= 2 * shed_p99.max(Duration::from_millis(10)),
        "block p99 {block_p99:?} should dwarf shed p99 {shed_p99:?}"
    );
    assert!(
        block_p99 > p99_bound,
        "block p99 {block_p99:?} should exceed the shed bound {p99_bound:?}"
    );
}

/// A request whose deadline passes while it waits in the queue is
/// answered with `DeadlineExceeded` at dequeue — never silence, and
/// never a wasted store read.
#[test]
fn expired_requests_fail_at_dequeue_not_silently() {
    let emb = memcom(5);
    let deadline = Duration::from_millis(10);
    // A lone request can never fill max_batch, so it waits out the
    // 60ms flush timer in the queue — far past its 10ms deadline.
    let server = EmbedServer::start(
        &emb,
        ServeConfig {
            n_shards: 1,
            max_batch: 512,
            max_wait: Duration::from_millis(60),
            admission: AdmissionPolicy::Shed {
                enqueue_timeout: Duration::from_secs(5),
                request_deadline: Some(deadline),
            },
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();

    // Single-id path.
    match handle.get(3) {
        Err(ServeError::DeadlineExceeded {
            queued,
            deadline: reported,
        }) => {
            assert_eq!(reported, deadline);
            assert!(queued >= deadline, "queued {queued:?} < {deadline:?}");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.requests, 0, "no store read for a dead request");

    // Slab paths expire identically (and count in rows).
    assert!(matches!(
        handle.get_many(&[1, 2, 3]),
        Err(ServeError::DeadlineExceeded { .. })
    ));
    let mut batch = EmbedBatch::new();
    assert!(matches!(
        handle.get_batch_into(&[4, 5, 6], &mut batch),
        Err(ServeError::DeadlineExceeded { .. })
    ));
    let stats = server.shutdown();
    assert_eq!(stats.expired, 7);
    assert_eq!(stats.requests, 0);
}

/// The admission reject is a typed, budget-stamped error, surfaced
/// after exactly the configured enqueue wait.
#[test]
fn shed_rejection_reports_the_enqueue_budget() {
    let emb = memcom(9);
    let enqueue_timeout = Duration::from_millis(5);
    let server = EmbedServer::start(
        &emb,
        ServeConfig {
            n_shards: 1,
            max_batch: 1,
            max_wait: Duration::from_micros(1),
            queue_depth: 1,
            // Wedge the worker: the first flush sleeps 400ms, so the
            // queue stays occupied while we probe the reject path.
            store_latency: Duration::from_millis(400),
            admission: AdmissionPolicy::Shed {
                enqueue_timeout,
                request_deadline: None,
            },
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    std::thread::scope(|scope| {
        let wedger = server.handle();
        scope.spawn(move || wedger.get(0).unwrap());
        std::thread::sleep(Duration::from_millis(50));
        let parker = server.handle();
        scope.spawn(move || parker.get(1).unwrap());
        std::thread::sleep(Duration::from_millis(50));
        // Queue full, worker asleep: this push waits out its budget,
        // then sheds.
        let t0 = std::time::Instant::now();
        match handle.get(2) {
            Err(ServeError::Overloaded {
                waited,
                retry_after,
            }) => {
                assert_eq!(waited, enqueue_timeout);
                // Queue depth 1 ÷ capacity (max_batch 1 / 400ms store
                // read), plus the wedged in-flight batch: 2 batch
                // service times of suggested backoff.
                assert_eq!(retry_after, Duration::from_millis(800));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        let elapsed = t0.elapsed();
        assert!(elapsed >= enqueue_timeout, "returned early: {elapsed:?}");
        assert!(
            elapsed < Duration::from_millis(200),
            "blocked past the budget: {elapsed:?}"
        );
    });
    let stats = server.shutdown();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.requests, 2, "wedger and parker were served");
}

/// A multi-shard fan-out that sheds partway through admission must
/// still account for every row: already-admitted sub-requests run and
/// count as served, the shed shard's rows count as shed, and rows on
/// shards never attempted count as shed too — `requests + shed +
/// expired` equals the rows issued.
#[test]
fn partial_fanout_shed_accounts_for_every_row() {
    let emb = memcom(13);
    let server = EmbedServer::start(
        &emb,
        ServeConfig {
            n_shards: 3,
            max_batch: 1,
            max_wait: Duration::from_micros(10),
            queue_depth: 1,
            // Wedge window: each flush sleeps 300ms.
            store_latency: Duration::from_millis(300),
            admission: AdmissionPolicy::Shed {
                enqueue_timeout: Duration::ZERO,
                request_deadline: None,
            },
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    std::thread::scope(|scope| {
        // Wedge shard 1 (ids ≡ 1 mod 3): one request in flight, one
        // parked in its depth-1 queue.
        let wedger = server.handle();
        scope.spawn(move || wedger.get(1).unwrap());
        std::thread::sleep(Duration::from_millis(50));
        let parker = server.handle();
        scope.spawn(move || parker.get(4).unwrap());
        std::thread::sleep(Duration::from_millis(50));

        // Fan out over shards 0, 1, 2: shard 0 is admitted (and
        // served), shard 1 sheds, shard 2 is never attempted.
        let mut batch = EmbedBatch::new();
        assert!(matches!(
            handle.get_batch_into(&[0, 1, 2], &mut batch),
            Err(ServeError::Overloaded { .. })
        ));
    });
    let stats = server.shutdown();
    // Rows issued: wedger 1 + parker 1 + fan-out 3 = 5.
    assert_eq!(stats.requests, 3, "wedger, parker, and the shard-0 row");
    assert_eq!(
        stats.shed, 2,
        "the shed shard-1 row and the skipped shard-2 row"
    );
    assert_eq!(stats.expired, 0);
    assert_eq!(stats.requests + stats.shed + stats.expired, 5);
}

/// Budgets too large to represent as a point in time (an `Instant +
/// Duration::MAX` would overflow) must mean "no limit", not a panic.
#[test]
fn unrepresentable_budgets_serve_normally() {
    let emb = memcom(17);
    let server = EmbedServer::start(
        &emb,
        ServeConfig::with_shedding(Duration::MAX, Some(Duration::MAX)),
    )
    .unwrap();
    let handle = server.handle();
    assert_eq!(handle.get(5).unwrap().len(), 8, "never expires");
    let stats = server.shutdown();
    assert_eq!((stats.shed, stats.expired), (0, 0));
}

/// Shutdown under a shedding policy still answers every accepted
/// request — served, expired, or rejected, but never silence.
#[test]
fn shed_mode_drain_leaves_no_request_unanswered() {
    let emb = memcom(11);
    let server = EmbedServer::start(
        &emb,
        ServeConfig {
            n_shards: 1,
            max_batch: 1,
            max_wait: Duration::from_millis(1),
            queue_depth: 4,
            store_latency: Duration::from_millis(60),
            admission: AdmissionPolicy::Shed {
                enqueue_timeout: Duration::from_millis(1),
                request_deadline: Some(Duration::from_millis(30)),
            },
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let (stats, outcomes) = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..6)
            .map(|i| {
                let handle = handle.clone();
                scope.spawn(move || handle.get(i * 7))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        let stats = server.shutdown();
        let outcomes: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        (stats, outcomes)
    });
    let mut served = 0u64;
    let mut expired = 0u64;
    for outcome in outcomes {
        match outcome {
            Ok(row) => {
                assert_eq!(row.len(), 8);
                served += 1;
            }
            Err(ServeError::DeadlineExceeded { .. }) => expired += 1,
            Err(ServeError::Overloaded { .. }) | Err(ServeError::ShuttingDown) => {}
            Err(other) => panic!("unexpected outcome: {other:?}"),
        }
    }
    assert_eq!(stats.requests, served, "every served answer was counted");
    assert_eq!(stats.expired, expired, "every expiry was counted");
    assert!(matches!(handle.get(1), Err(ServeError::ShuttingDown)));
}

/// The retry-after hint: closed-loop clients honor the server's
/// suggested backoff (queue depth ÷ calibrated capacity) by pacing
/// themselves, and the load report records the mean suggestion.
#[test]
fn closed_loop_honors_retry_after_and_reports_mean_backoff() {
    let emb = memcom(41);
    let store_latency = Duration::from_millis(20);
    let server = EmbedServer::start(
        &emb,
        ServeConfig {
            n_shards: 1,
            max_batch: 1,
            max_wait: Duration::from_micros(10),
            queue_depth: 1,
            store_latency,
            admission: AdmissionPolicy::Shed {
                enqueue_timeout: Duration::ZERO,
                request_deadline: None,
            },
            ..ServeConfig::default()
        },
    )
    .unwrap();
    // Three closed-loop clients against a capacity of 50 rows/s with a
    // depth-1 queue: most arrivals are shed, and each shed client backs
    // off by the hint before its next request.
    let load = LoadGenConfig {
        clients: 3,
        requests_per_client: 10,
        ids_per_request: 1,
        zipf_exponent: 1.1,
        mode: LoadMode::Closed,
        seed: 3,
    };
    let started = std::time::Instant::now();
    let report = run_load(&server.handle(), &load).unwrap();
    let elapsed = started.elapsed();
    server.shutdown();

    assert!(report.shed > 0, "the saturated depth-1 queue must shed");
    let model = &report.per_model[0];
    // At rejection the queue holds 1 request (it is full) and one batch
    // is in flight: the hint is 1 or 2 batch service times, depending on
    // whether the worker drained the queue between the reject and the
    // depth probe.
    assert!(
        model.mean_backoff >= store_latency,
        "mean backoff {:?} below one batch service time",
        model.mean_backoff
    );
    assert!(
        model.mean_backoff <= store_latency * 2,
        "mean backoff {:?} above queue+in-flight drain time",
        model.mean_backoff
    );
    // Honoring the hint really paced the clients: the busiest client
    // slept out at least its own sheds' backoffs.
    let min_sleep = store_latency
        .mul_f64(report.shed as f64 / load.clients as f64)
        .mul_f64(0.5);
    assert!(
        elapsed >= min_sleep,
        "elapsed {elapsed:?} too short for {} honored backoffs",
        report.shed
    );

    // An open-loop client must keep its schedule: the hint is recorded,
    // not slept (the sleep call is gated on the closed discipline —
    // wall-clock bounds are too host-dependent to assert here, but the
    // recorded mean proves the hint still flows through the report).
    let server = EmbedServer::start(
        &emb,
        ServeConfig {
            n_shards: 1,
            max_batch: 1,
            max_wait: Duration::from_micros(10),
            queue_depth: 1,
            store_latency,
            admission: AdmissionPolicy::Shed {
                enqueue_timeout: Duration::ZERO,
                request_deadline: None,
            },
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let open_load = LoadGenConfig {
        mode: LoadMode::Open { target_qps: 500.0 },
        ..load
    };
    let open_report = run_load(&server.handle(), &open_load).unwrap();
    server.shutdown();
    assert!(open_report.shed > 0);
    assert!(
        open_report.per_model[0].mean_backoff >= store_latency,
        "open loop still records the suggestion"
    );
}
