//! Proof that the slab batch path performs no per-row heap allocation.
//!
//! A counting global allocator tallies every `alloc`/`realloc` in the
//! process. After warm-up (buffer pool primed, queue at capacity, LRU
//! populated), a `get_batch_into` call for hundreds of rows must stay
//! under a small constant number of allocations — the per-shard response
//! slot `Arc` and the worker's per-batch scratch — independent of the
//! row count. A per-row `Vec` pipeline (the old `get_many` shape) would
//! blow the bound by two orders of magnitude.
//!
//! This file holds exactly one `#[test]`: the allocator is process-wide,
//! so a sibling test running concurrently would pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use memcom_core::{MemCom, MemComConfig};
use memcom_serve::{AdmissionPolicy, Dtype, EmbedBatch, EmbedServer, ServeConfig, ShardedStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: a pure pass-through to `System` plus a relaxed counter
// bump; every GlobalAlloc contract obligation is discharged by the
// delegated call.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same layout handed unchanged to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: ptr/layout/new_size forwarded unchanged to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: ptr/layout forwarded unchanged to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn get_batch_into_allocates_constant_not_per_row() {
    const ROWS: usize = 512;
    const CALLS: u64 = 50;

    let mut rng = StdRng::seed_from_u64(7);
    let emb = MemCom::new(MemComConfig::new(1_000, 16, 100), &mut rng).unwrap();
    let server = EmbedServer::start(
        &emb,
        ServeConfig {
            n_shards: 1,
            // Flush every queue entry immediately: no timer waits, and a
            // deterministic one-batch-per-call steady state.
            max_batch: 1,
            max_wait: Duration::from_micros(1),
            // Every requested id stays resident, so steady-state lookups
            // are pure cache hits.
            cache_capacity: 1_024,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let ids: Vec<usize> = (0..ROWS).collect();
    let mut batch = EmbedBatch::new();

    // Warm up: fills the LRU, grows the slab/pool/queue capacities, and
    // settles the allocator to its steady state.
    for _ in 0..10 {
        handle.get_batch_into(&ids, &mut batch).unwrap();
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..CALLS {
        handle.get_batch_into(&ids, &mut batch).unwrap();
    }
    let per_call = (ALLOCATIONS.load(Ordering::Relaxed) - before) as f64 / CALLS as f64;
    eprintln!("fp32 cached path: {per_call:.2} allocations/call");

    // Expected steady state: 1 response-slot Arc (caller side) and
    // nothing from the worker — `pop_batch_into` drains into a reused
    // buffer and the panic-blanket slot list is reused too, so the old
    // per-flush `drain(..).collect()` + slot-`Vec` pair (~2 extra
    // allocations per call) would blow this bound.
    assert!(
        per_call <= 2.5,
        "expected ~1 allocation per {ROWS}-row call (slot Arc only), measured {per_call:.1}"
    );

    // Sanity: the rows really were served.
    assert_eq!(batch.len(), ROWS);
    assert_eq!(batch.dim(), 16);
    let stats = server.shutdown();
    assert!(stats.requests >= (CALLS + 10) * ROWS as u64);

    // Second phase: the *quantized miss path*. The cache is disabled, so
    // every row of every call dequantizes int8 bytes out of the mmap —
    // straight into the slab. That decode must be exactly as
    // allocation-free as the fp32 memcpy it replaces.
    let quantized = ShardedStore::build_quantized(
        &emb,
        1,
        0, // no LRU: every lookup exercises dequantization
        memcom_ondevice::mmap_sim::DEFAULT_PAGE_SIZE,
        Dtype::Int8,
    )
    .unwrap();
    let server = EmbedServer::start_with_store(
        quantized,
        ServeConfig {
            n_shards: 1,
            max_batch: 1,
            max_wait: Duration::from_micros(1),
            cache_capacity: 0,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    for _ in 0..10 {
        handle.get_batch_into(&ids, &mut batch).unwrap();
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..CALLS {
        handle.get_batch_into(&ids, &mut batch).unwrap();
    }
    let per_call = (ALLOCATIONS.load(Ordering::Relaxed) - before) as f64 / CALLS as f64;
    eprintln!("int8 miss path: {per_call:.2} allocations/call");
    assert!(
        per_call <= 2.5,
        "expected ~1 allocation per {ROWS}-row quantized-miss call, measured {per_call:.1}"
    );
    assert_eq!(batch.len(), ROWS);
    let stats = server.shutdown();
    assert!(stats.requests >= (CALLS + 10) * ROWS as u64);

    // Third phase: the *shedding* hot path. Depth-1 queue, worker
    // wedged behind a long simulated store read, one request in flight
    // and one parked in the queue — every push from the main thread is
    // rejected at admission for the whole store-latency window. A shed
    // slab request must hand its id/out buffers back through the pool,
    // so the reject path — which under overload runs for most traffic —
    // costs the same single slot-`Arc` allocation as a served call.
    let mut rng = StdRng::seed_from_u64(11);
    let emb = MemCom::new(MemComConfig::new(1_000, 16, 100), &mut rng).unwrap();
    let server = EmbedServer::start(
        &emb,
        ServeConfig {
            n_shards: 1,
            max_batch: 1,
            max_wait: Duration::from_micros(1),
            queue_depth: 1,
            store_latency: Duration::from_millis(400),
            admission: AdmissionPolicy::Shed {
                enqueue_timeout: Duration::ZERO,
                request_deadline: None,
            },
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let mut outcomes = [0u64; 2]; // [accepted, shed]
    std::thread::scope(|scope| {
        // Wedge: the worker pops this immediately and sleeps 400ms.
        let wedger = server.handle();
        scope.spawn(move || wedger.get(0).unwrap());
        std::thread::sleep(Duration::from_millis(50));
        // Parker: sits in the depth-1 queue — now every push is Full.
        let parker = server.handle();
        scope.spawn(move || parker.get(1).unwrap());
        std::thread::sleep(Duration::from_millis(50));

        // Warm the shed path, then measure inside the wedge window.
        for _ in 0..10 {
            let shed = matches!(
                handle.get_batch_into(&ids, &mut batch),
                Err(memcom_serve::ServeError::Overloaded { .. })
            );
            outcomes[shed as usize] += 1;
        }
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for _ in 0..CALLS {
            let shed = matches!(
                handle.get_batch_into(&ids, &mut batch),
                Err(memcom_serve::ServeError::Overloaded { .. })
            );
            outcomes[shed as usize] += 1;
        }
        let per_call = (ALLOCATIONS.load(Ordering::Relaxed) - before) as f64 / CALLS as f64;
        eprintln!(
            "shed path: {per_call:.2} allocations/call ({} shed / {} total)",
            outcomes[1],
            outcomes[0] + outcomes[1]
        );
        assert!(
            outcomes[1] >= CALLS / 2,
            "the wedged worker must shed most pushes, shed only {}",
            outcomes[1]
        );
        assert!(
            per_call <= 2.5,
            "expected ~1 allocation per shed {ROWS}-row call (slot Arc only), \
             measured {per_call:.1}"
        );
    });
    drop(server);
}
