//! Proof that the slab batch path performs no per-row heap allocation.
//!
//! A counting global allocator tallies every `alloc`/`realloc` in the
//! process. After warm-up (buffer pool primed, queue at capacity, LRU
//! populated), a `get_batch_into` call for hundreds of rows must stay
//! under a small constant number of allocations — the per-shard response
//! slot `Arc` and the worker's per-batch scratch — independent of the
//! row count. A per-row `Vec` pipeline (the old `get_many` shape) would
//! blow the bound by two orders of magnitude.
//!
//! This file holds exactly one `#[test]`: the allocator is process-wide,
//! so a sibling test running concurrently would pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use memcom_core::{MemCom, MemComConfig};
use memcom_serve::{Dtype, EmbedBatch, EmbedServer, ServeConfig, ShardedStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn get_batch_into_allocates_constant_not_per_row() {
    const ROWS: usize = 512;
    const CALLS: u64 = 50;

    let mut rng = StdRng::seed_from_u64(7);
    let emb = MemCom::new(MemComConfig::new(1_000, 16, 100), &mut rng).unwrap();
    let server = EmbedServer::start(
        &emb,
        ServeConfig {
            n_shards: 1,
            // Flush every queue entry immediately: no timer waits, and a
            // deterministic one-batch-per-call steady state.
            max_batch: 1,
            max_wait: Duration::from_micros(1),
            // Every requested id stays resident, so steady-state lookups
            // are pure cache hits.
            cache_capacity: 1_024,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let ids: Vec<usize> = (0..ROWS).collect();
    let mut batch = EmbedBatch::new();

    // Warm up: fills the LRU, grows the slab/pool/queue capacities, and
    // settles the allocator to its steady state.
    for _ in 0..10 {
        handle.get_batch_into(&ids, &mut batch).unwrap();
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..CALLS {
        handle.get_batch_into(&ids, &mut batch).unwrap();
    }
    let per_call = (ALLOCATIONS.load(Ordering::Relaxed) - before) as f64 / CALLS as f64;

    // Expected steady state: 1 slot Arc (caller) + ~2 per-batch vectors
    // (worker). The bound leaves an order of magnitude of slack and
    // still sits two orders below one-allocation-per-row.
    assert!(
        per_call <= 32.0,
        "expected O(1) allocations per {ROWS}-row call, measured {per_call:.1}"
    );

    // Sanity: the rows really were served.
    assert_eq!(batch.len(), ROWS);
    assert_eq!(batch.dim(), 16);
    let stats = server.shutdown();
    assert!(stats.requests >= (CALLS + 10) * ROWS as u64);

    // Second phase: the *quantized miss path*. The cache is disabled, so
    // every row of every call dequantizes int8 bytes out of the mmap —
    // straight into the slab. That decode must be exactly as
    // allocation-free as the fp32 memcpy it replaces.
    let quantized = ShardedStore::build_quantized(
        &emb,
        1,
        0, // no LRU: every lookup exercises dequantization
        memcom_ondevice::mmap_sim::DEFAULT_PAGE_SIZE,
        Dtype::Int8,
    )
    .unwrap();
    let server = EmbedServer::start_with_store(
        quantized,
        ServeConfig {
            n_shards: 1,
            max_batch: 1,
            max_wait: Duration::from_micros(1),
            cache_capacity: 0,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    for _ in 0..10 {
        handle.get_batch_into(&ids, &mut batch).unwrap();
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..CALLS {
        handle.get_batch_into(&ids, &mut batch).unwrap();
    }
    let per_call = (ALLOCATIONS.load(Ordering::Relaxed) - before) as f64 / CALLS as f64;
    assert!(
        per_call <= 32.0,
        "expected O(1) allocations per {ROWS}-row quantized-miss call, measured {per_call:.1}"
    );
    assert_eq!(batch.len(), ROWS);
    let stats = server.shutdown();
    assert!(stats.requests >= (CALLS + 10) * ROWS as u64);
}
