//! Concurrency correctness: batched parallel serving must be
//! indistinguishable from serial replay, and both flush triggers must
//! fire when — and only when — their condition holds.

use std::time::{Duration, Instant};

use memcom_core::{EmbeddingCompressor, MemCom, MemComConfig, MethodSpec};
use memcom_serve::{EmbedServer, ServeConfig, ServeError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn memcom(vocab: usize, dim: usize, m: usize) -> MemCom {
    let mut rng = StdRng::seed_from_u64(1234);
    MemCom::new(MemComConfig::with_bias(vocab, dim, m), &mut rng).unwrap()
}

/// N threads × M requests through the batched server give results
/// identical to serial replay through the compressor's lookup path.
#[test]
fn concurrent_batched_results_match_serial_replay() {
    let vocab = 2_000;
    let emb = memcom(vocab, 16, 200);
    let server = EmbedServer::start(
        &emb,
        ServeConfig {
            n_shards: 4,
            max_batch: 8,
            max_wait: Duration::from_micros(200),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();

    let threads = 8;
    let requests_per_thread = 250;
    // Pre-generate each thread's id stream so the serial replay sees the
    // exact same requests.
    let streams: Vec<Vec<usize>> = (0..threads)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(t as u64);
            (0..requests_per_thread)
                .map(|_| rng.gen_range(0..vocab))
                .collect()
        })
        .collect();

    let results: Vec<Vec<Vec<f32>>> = std::thread::scope(|scope| {
        let workers: Vec<_> = streams
            .iter()
            .map(|stream| {
                let handle = handle.clone();
                scope.spawn(move || {
                    stream
                        .iter()
                        .map(|&id| handle.get(id).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    // Serial replay: same ids through the untouched training-side path.
    for (stream, thread_results) in streams.iter().zip(&results) {
        for (&id, got) in stream.iter().zip(thread_results) {
            let want = emb.lookup(&[id]).unwrap();
            assert_eq!(got.as_slice(), want.as_slice(), "id {id}");
        }
    }

    let stats = server.shutdown();
    assert_eq!(stats.requests, (threads * requests_per_thread) as u64);
    assert!(
        stats.batches < stats.requests,
        "micro-batching must coalesce"
    );
    assert!(
        stats.max_batch_observed > 1,
        "some batch should exceed one request"
    );
}

/// Every serializable technique (not just MEmCom) serves correctly.
#[test]
fn every_method_serves_exact_rows() {
    let mut rng = StdRng::seed_from_u64(5);
    let specs = [
        MethodSpec::Uncompressed,
        MethodSpec::NaiveHash { hash_size: 32 },
        MethodSpec::MemCom {
            hash_size: 32,
            bias: false,
        },
        MethodSpec::TruncateRare { keep: 64 },
    ];
    for spec in specs {
        let emb = spec.build(300, 8, &mut rng).unwrap();
        let server = EmbedServer::start(emb.as_ref(), ServeConfig::with_shards(4)).unwrap();
        let handle = server.handle();
        for id in (0..300).step_by(7) {
            let want = emb.lookup(&[id]).unwrap();
            assert_eq!(
                handle.get(id).unwrap().as_slice(),
                want.as_slice(),
                "{spec:?} id {id}"
            );
        }
    }
}

/// A burst of exactly `max_batch` concurrent requests to one shard
/// flushes as a full batch, long before `max_wait` expires.
#[test]
fn flush_triggers_on_max_batch() {
    let emb = memcom(400, 8, 40);
    let max_batch = 4;
    let server = EmbedServer::start(
        &emb,
        ServeConfig {
            n_shards: 1, // single shard: the whole burst coalesces
            max_batch,
            max_wait: Duration::from_secs(30),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..max_batch {
            let handle = handle.clone();
            scope.spawn(move || handle.get(i * 3).unwrap());
        }
    });
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "a full batch must flush without waiting out max_wait (took {elapsed:?})"
    );
    let stats = server.shutdown();
    assert_eq!(stats.requests, max_batch as u64);
    assert_eq!(stats.flushes_full, 1, "exactly one full flush");
    assert_eq!(stats.flushes_timeout, 0, "the 30s timer never fired");
    assert_eq!(stats.max_batch_observed, max_batch);
}

/// A lone request in a huge-batch config flushes when `max_wait`
/// elapses — not sooner, not never.
#[test]
fn flush_triggers_on_max_wait() {
    let emb = memcom(400, 8, 40);
    let max_wait = Duration::from_millis(40);
    let server = EmbedServer::start(
        &emb,
        ServeConfig {
            n_shards: 1,
            max_batch: 1_024, // can never fill from one request
            max_wait,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();

    let t0 = Instant::now();
    handle.get(11).unwrap();
    let elapsed = t0.elapsed();
    assert!(
        elapsed >= Duration::from_millis(35),
        "lone request must wait out max_wait (took {elapsed:?})"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "…but must complete soon after (took {elapsed:?})"
    );
    let stats = server.shutdown();
    assert_eq!(stats.flushes_timeout, 1, "exactly one timeout flush");
    assert_eq!(stats.flushes_full, 0);
}

/// Shutdown drains queued requests (none hang, none are lost) and then
/// rejects new traffic.
#[test]
fn shutdown_drains_inflight_work() {
    let emb = memcom(500, 8, 50);
    let server = EmbedServer::start(
        &emb,
        ServeConfig {
            n_shards: 2,
            max_batch: 64,
            max_wait: Duration::from_millis(200),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();

    let (stats, outcomes) = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..6)
            .map(|i| {
                let handle = handle.clone();
                scope.spawn(move || handle.get(i * 11))
            })
            .collect();
        // Give the clients a moment to enqueue, then pull the plug while
        // their batches are still open. A heavily loaded scheduler may
        // deschedule a client past the shutdown — then its push is
        // *rejected*, which is also a valid outcome; what must never
        // happen is a request that was accepted but never answered.
        std::thread::sleep(Duration::from_millis(20));
        let stats = server.shutdown();
        let outcomes: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        (stats, outcomes)
    });
    let mut served = 0u64;
    for outcome in outcomes {
        match outcome {
            Ok(row) => {
                assert_eq!(row.len(), 8);
                served += 1;
            }
            Err(ServeError::ShuttingDown) => {} // raced the close; rejected cleanly
            Err(other) => panic!("unexpected outcome: {other:?}"),
        }
    }
    assert_eq!(
        stats.requests, served,
        "every accepted request was served exactly once"
    );
    assert!(matches!(handle.get(1), Err(ServeError::ShuttingDown)));
}
