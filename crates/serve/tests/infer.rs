//! Cross-backend equivalence and overload semantics of the score path.
//!
//! A model served through [`RankNetBackend`] must produce the same
//! numbers as the on-device engine run directly over the same weights:
//! bit for bit when the router's store is fp32 (same gather, same simd
//! reconstruction kernels, same head executor), and within the
//! backend's certified [`RankNetBackend::score_error_bound`] when the
//! store is quantized. The score path must also inherit the serve
//! tier's overload semantics unchanged — typed sheds with backoff
//! hints, deadline drops at dequeue without a wasted forward, and the
//! `issued >= requests + shed + expired` counter contract — which the
//! second half of this suite asserts by reusing the exact wedge
//! configurations from `overload.rs`.

use std::sync::Arc;
use std::time::Duration;

use memcom_core::MethodSpec;
use memcom_models::{ModelConfig, RecModel};
use memcom_serve::{
    AdmissionPolicy, Dtype, RankNetBackend, Router, ScoreBatch, ServeConfig, ServeError,
};

const VOCAB: usize = 500;
const DIM: usize = 8;
const INPUT_LEN: usize = 4;

fn ranker(seed: u64) -> RecModel {
    let config = ModelConfig {
        seed,
        ..ModelConfig::pointwise(VOCAB, DIM, INPUT_LEN, 1)
    };
    RecModel::new(
        &config,
        &MethodSpec::MemCom {
            hash_size: 50,
            bias: false,
        },
    )
    .unwrap()
}

fn router_serving(model: &RecModel, dtype: Dtype, config: ServeConfig) -> Router {
    let router = Router::start(config).unwrap();
    router
        .backends()
        .register(
            "ranknet",
            Arc::new(RankNetBackend::from_model(model).unwrap()),
        )
        .unwrap();
    router
        .register_with_backend("scorer", model.embedding(), dtype, "ranknet")
        .unwrap();
    router
}

/// Deterministic id sets that span shards (ids are routed by
/// `id % n_shards`, so mixing parities exercises the cross-shard
/// gather inside the executing worker).
fn probe_id_sets() -> Vec<Vec<usize>> {
    vec![
        vec![0, 1, 2, 3],
        vec![499, 498, 497, 496],
        vec![7, 7, 7, 7],
        vec![11, 250, 13, 402],
        vec![2, 4, 6, 8],
    ]
}

/// Over an fp32 store the served score is the *same computation* as the
/// on-device engine: identical gather, identical head executor. Equal
/// bits, not approximately equal floats.
#[test]
fn served_fp32_scores_match_the_engine_bit_for_bit() {
    let model = ranker(3);
    let direct = RankNetBackend::from_model(&model).unwrap();
    let router = router_serving(&model, Dtype::F32, ServeConfig::with_shards(2));
    let handle = router.handle("scorer").unwrap();

    // fp32 stores reconstruct exactly: the certified bound degenerates
    // to zero, which is what licenses the bit-for-bit assertion.
    let store = router.snapshot("scorer").unwrap();
    assert_eq!(direct.score_error_bound(&store), 0.0);

    for ids in probe_id_sets() {
        let served = handle.score(&ids).unwrap();
        let (exact, _) = direct.session().run(&ids).unwrap();
        assert_eq!(served.len(), exact.len());
        for (i, (s, e)) in served.iter().zip(exact.iter()).enumerate() {
            assert_eq!(
                s.to_bits(),
                e.to_bits(),
                "ids {ids:?} logit {i}: served {s} != engine {e}"
            );
        }
    }
    router.shutdown();
}

/// Over an int8 store every served score stays within the certified
/// worst-case bound of the exact fp32 forward — the serving-tier
/// restatement of the engine's quantization-error certificate.
#[test]
fn served_int8_scores_stay_within_the_certified_bound() {
    let model = ranker(5);
    let direct = RankNetBackend::from_model(&model).unwrap();
    let router = router_serving(&model, Dtype::Int8, ServeConfig::with_shards(2));
    let handle = router.handle("scorer").unwrap();

    let store = router.snapshot("scorer").unwrap();
    let bound = direct.score_error_bound(&store);
    assert!(
        bound.is_finite() && bound > 0.0,
        "int8 store must certify a positive finite bound, got {bound}"
    );
    // Tiny slack for float rounding in the bound arithmetic itself.
    let tolerance = bound * 1.01 + 1e-5;

    for ids in probe_id_sets() {
        let served = handle.score(&ids).unwrap();
        let (exact, _) = direct.session().run(&ids).unwrap();
        assert_eq!(served.len(), exact.len());
        for (i, (s, e)) in served.iter().zip(exact.iter()).enumerate() {
            let err = (s - e).abs();
            assert!(
                err <= tolerance,
                "ids {ids:?} logit {i}: |{s} - {e}| = {err} exceeds bound {bound}"
            );
        }
    }
    router.shutdown();
}

/// Score requests flow through the same admission counters as lookups:
/// `requests` counts ids (rows), invalid ids are rejected before they
/// are issued, and the reusable-batch API returns the same numbers as
/// the allocating one.
#[test]
fn score_requests_share_the_counter_contract() {
    let model = ranker(7);
    let router = router_serving(&model, Dtype::F32, ServeConfig::with_shards(2));
    let handle = router.handle("scorer").unwrap();

    // Variable-length inputs: the head pools over however many ids the
    // request carries.
    let mut batch = ScoreBatch::new();
    let mut rows = 0u64;
    for ids in [vec![1, 2, 3, 4], vec![9], vec![10, 20, 30]] {
        handle.score_batch_into(&ids, &mut batch).unwrap();
        assert_eq!(batch.scores().len(), 1, "pointwise ranker emits one logit");
        rows += ids.len() as u64;
    }

    // An out-of-vocab id fails admission without touching the counters.
    assert!(matches!(
        handle.score(&[VOCAB]),
        Err(ServeError::IdOutOfVocab { .. })
    ));

    let stats = router.stats("scorer").unwrap();
    assert_eq!(stats.requests, rows);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.expired, 0);
    assert!(
        stats.issued >= stats.requests + stats.shed + stats.expired,
        "issued {} < outcomes {}",
        stats.issued,
        stats.requests + stats.shed + stats.expired
    );
    router.shutdown();
}

/// A score request whose deadline passes while queued is answered
/// `DeadlineExceeded` at dequeue — no forward is run for it, exactly
/// like the lookup path in `overload.rs`.
#[test]
fn score_deadline_expires_at_dequeue_not_silently() {
    let model = ranker(11);
    let deadline = Duration::from_millis(10);
    // A lone request can never fill max_batch, so it waits out the 60ms
    // flush timer in the queue — far past its 10ms deadline.
    let router = router_serving(
        &model,
        Dtype::F32,
        ServeConfig {
            n_shards: 1,
            max_batch: 512,
            max_wait: Duration::from_millis(60),
            admission: AdmissionPolicy::Shed {
                enqueue_timeout: Duration::from_secs(5),
                request_deadline: Some(deadline),
            },
            ..ServeConfig::default()
        },
    );
    let handle = router.handle("scorer").unwrap();

    match handle.score(&[1, 2, 3]) {
        Err(ServeError::DeadlineExceeded {
            queued,
            deadline: reported,
        }) => {
            assert_eq!(reported, deadline);
            assert!(queued >= deadline, "queued {queued:?} < {deadline:?}");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let stats = router.stats("scorer").unwrap();
    assert_eq!(stats.expired, 3, "expiry counts rows, like slab lookups");
    assert_eq!(stats.requests, 0, "no forward for a dead request");
    router.shutdown();
}

/// A wedged shard sheds score requests with the same typed,
/// budget-stamped rejection and backoff hint as lookups.
#[test]
fn score_admission_sheds_when_the_queue_is_wedged() {
    let model = ranker(13);
    let enqueue_timeout = Duration::from_millis(5);
    let router = router_serving(
        &model,
        Dtype::F32,
        ServeConfig {
            n_shards: 1,
            max_batch: 1,
            max_wait: Duration::from_micros(1),
            queue_depth: 1,
            // Wedge the worker: the first flush sleeps 400ms, so the
            // queue stays occupied while we probe the reject path.
            store_latency: Duration::from_millis(400),
            admission: AdmissionPolicy::Shed {
                enqueue_timeout,
                request_deadline: None,
            },
            ..ServeConfig::default()
        },
    );
    let handle = router.handle("scorer").unwrap();
    std::thread::scope(|scope| {
        let wedger = router.handle("scorer").unwrap();
        scope.spawn(move || wedger.score(&[0]).unwrap());
        std::thread::sleep(Duration::from_millis(50));
        let parker = router.handle("scorer").unwrap();
        scope.spawn(move || parker.score(&[1]).unwrap());
        std::thread::sleep(Duration::from_millis(50));
        // Queue full, worker asleep: this push waits out its budget,
        // then sheds.
        match handle.score(&[2]) {
            Err(ServeError::Overloaded {
                waited,
                retry_after,
            }) => {
                assert_eq!(waited, enqueue_timeout);
                // Queue depth 1 ÷ capacity (max_batch 1 / 400ms store
                // read), plus the wedged in-flight batch: 2 batch
                // service times of suggested backoff.
                assert_eq!(retry_after, Duration::from_millis(800));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
    });
    let stats = router.stats("scorer").unwrap();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.requests, 2, "wedger and parker were served");
    router.shutdown();
}

/// Registration guards: duplicate backend names, unknown backend
/// references, and dimension-mismatched stores are all rejected with
/// `BadConfig` before anything is served.
#[test]
fn registry_rejects_duplicates_unknowns_and_mismatched_stores() {
    let model = ranker(17);
    let router = router_serving(&model, Dtype::F32, ServeConfig::with_shards(1));

    // Re-registering an existing backend name is a configuration error.
    let dup = router.backends().register(
        "ranknet",
        Arc::new(RankNetBackend::from_model(&model).unwrap()),
    );
    assert!(matches!(dup, Err(ServeError::BadConfig { .. })));

    // Referencing a backend that was never registered fails before a
    // store is built.
    assert!(matches!(
        router.register_with_backend("ghost", model.embedding(), Dtype::F32, "transformer"),
        Err(ServeError::BadConfig { .. })
    ));

    // A store whose rows are the wrong width for the backend's head is
    // rejected by `check_store` at registration, not at serve time.
    let wide = RecModel::new(
        &ModelConfig::pointwise(VOCAB, 2 * DIM, INPUT_LEN, 1),
        &MethodSpec::MemCom {
            hash_size: 50,
            bias: false,
        },
    )
    .unwrap();
    assert!(matches!(
        router.register_with_backend("wide", wide.embedding(), Dtype::F32, "ranknet"),
        Err(ServeError::BadConfig { .. })
    ));

    // The default lookup backend still serves plain row lookups next to
    // the scoring model: same router, same shards.
    router
        .register_with_dtype("rows", model.embedding(), Dtype::F32)
        .unwrap();
    let rows = router.handle("rows").unwrap();
    assert_eq!(rows.get(42).unwrap().len(), DIM);
    router.shutdown();
}
