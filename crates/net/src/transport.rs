//! Runtime-agnostic transport and connection-scheduling traits.
//!
//! This container has no async runtime (no tokio, no mio), so the
//! server's concurrency model is abstracted behind two small traits and
//! shipped with the one backend the environment supports:
//!
//! * [`Transport`] — how bytes move: bind/accept/connect over some
//!   stream type. [`TcpTransport`] is the `std::net` implementation.
//! * [`EventLoop`] — how accepted connections are *driven*:
//!   [`ThreadPerConnection`] runs each connection's service loop on its
//!   own OS thread. A poll/epoll reactor (mio-style readiness loop
//!   multiplexing many connections on few threads) slots in behind the
//!   same trait later: `dispatch` registers the connection with the
//!   reactor instead of spawning, `drain` parks until the reactor's
//!   ready-set empties.
//!
//! The server core ([`crate::NetServer`]) only speaks these traits, so
//! neither the wire protocol nor the shutdown ordering knows which
//! backend is underneath.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use parking_lot::Mutex;

/// A bidirectional byte stream (one client connection).
pub trait ByteStream: Read + Write + Send + 'static {
    /// An independently readable/writable handle to the same stream
    /// (the client splits reading and writing across threads).
    fn try_clone_stream(&self) -> std::io::Result<Self>
    where
        Self: Sized;

    /// Bounds blocking reads so pollers can notice flags; `None`
    /// blocks indefinitely.
    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()>;

    /// Disables (or restores) write coalescing — latency-bound RPC
    /// wants frames on the wire immediately.
    fn set_nodelay(&self, on: bool) -> std::io::Result<()>;

    /// Shuts down both directions, unblocking any thread parked in a
    /// read on a clone of this stream.
    fn shutdown_both(&self) -> std::io::Result<()>;

    /// Human-readable peer address for telemetry labels.
    fn peer_label(&self) -> String;
}

/// How bytes move: the bind/accept/connect factory for one stream type.
pub trait Transport: Send + Sync + 'static {
    /// The connection type this transport produces.
    type Stream: ByteStream;
    /// The listening endpoint.
    type Listener: Send + Sync + 'static;

    /// Binds a listener on `addr` (e.g. `"127.0.0.1:0"` for an
    /// ephemeral loopback port).
    fn bind(&self, addr: &str) -> std::io::Result<Self::Listener>;

    /// The listener's concrete local address (resolves ephemeral
    /// ports).
    fn local_addr(&self, listener: &Self::Listener) -> std::io::Result<String>;

    /// Blocks for the next inbound connection.
    fn accept(&self, listener: &Self::Listener) -> std::io::Result<Self::Stream>;

    /// Opens a client connection to `addr`.
    fn connect(&self, addr: &str) -> std::io::Result<Self::Stream>;
}

impl ByteStream for TcpStream {
    fn try_clone_stream(&self) -> std::io::Result<Self> {
        self.try_clone()
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }

    fn set_nodelay(&self, on: bool) -> std::io::Result<()> {
        TcpStream::set_nodelay(self, on)
    }

    fn shutdown_both(&self) -> std::io::Result<()> {
        TcpStream::shutdown(self, std::net::Shutdown::Both)
    }

    fn peer_label(&self) -> String {
        self.peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "unknown".to_string())
    }
}

/// The `std::net` TCP transport.
#[derive(Debug, Default, Clone, Copy)]
pub struct TcpTransport;

impl Transport for TcpTransport {
    type Stream = TcpStream;
    type Listener = TcpListener;

    fn bind(&self, addr: &str) -> std::io::Result<Self::Listener> {
        TcpListener::bind(addr)
    }

    fn local_addr(&self, listener: &Self::Listener) -> std::io::Result<String> {
        listener.local_addr().map(|a| a.to_string())
    }

    fn accept(&self, listener: &Self::Listener) -> std::io::Result<Self::Stream> {
        listener.accept().map(|(stream, _)| stream)
    }

    fn connect(&self, addr: &str) -> std::io::Result<Self::Stream> {
        TcpStream::connect(addr)
    }
}

/// How accepted connections are driven to completion.
pub trait EventLoop: Send + Sync + 'static {
    /// Hands one accepted connection's service loop to the backend;
    /// `serve` returns when the connection has fully drained (peer
    /// closed, or the server finished its shutdown drain).
    fn dispatch(&self, serve: Box<dyn FnOnce() + Send + 'static>);

    /// Blocks until every dispatched connection has finished. Called
    /// after the accept loop has stopped, so no new dispatch races the
    /// drain.
    fn drain(&self);
}

/// The thread-per-connection scheduler: one OS thread per accepted
/// connection, joined at drain. Simple, predictable, and fine for the
/// connection counts the loopback experiments use; a reactor backend
/// replaces it without touching the server core.
#[derive(Debug, Default)]
pub struct ThreadPerConnection {
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ThreadPerConnection {
    /// A fresh scheduler with no live connections.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventLoop for ThreadPerConnection {
    fn dispatch(&self, serve: Box<dyn FnOnce() + Send + 'static>) {
        let mut handles = self.handles.lock();
        // Long-lived servers churn connections: reap finished threads
        // here so the vector tracks live connections, not history.
        handles.retain(|h| !h.is_finished());
        handles.push(
            std::thread::Builder::new()
                .name("memcom-net-conn".into())
                .spawn(serve)
                .expect("spawning a connection thread"),
        );
    }

    fn drain(&self) {
        loop {
            let Some(handle) = self.handles.lock().pop() else {
                return;
            };
            // Joining outside the lock: the handler may itself call
            // dispatch-free telemetry, never dispatch, so no deadlock —
            // but keep the lock window minimal anyway.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn thread_per_connection_runs_and_drains() {
        let pool = ThreadPerConnection::new();
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let ran = Arc::clone(&ran);
            pool.dispatch(Box::new(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.drain();
        assert_eq!(ran.load(Ordering::SeqCst), 8);
        // Drain on an empty pool is a no-op.
        pool.drain();
    }

    #[test]
    fn tcp_transport_binds_accepts_and_connects() {
        let transport = TcpTransport;
        let listener = transport.bind("127.0.0.1:0").unwrap();
        let addr = transport.local_addr(&listener).unwrap();
        let client = std::thread::spawn({
            let addr = addr.clone();
            move || {
                let mut stream = TcpTransport.connect(&addr).unwrap();
                stream.write_all(b"ping").unwrap();
            }
        });
        let mut accepted = transport.accept(&listener).unwrap();
        let mut buf = [0u8; 4];
        accepted.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        assert!(accepted.peer_label().starts_with("127.0.0.1:"));
        client.join().unwrap();
    }
}
