//! The length-framed binary wire protocol.
//!
//! Every message travels as one **frame**:
//!
//! ```text
//! [u32 LE payload length][payload]
//! payload = [u8 version][u8 kind][u64 LE request id][body]
//! ```
//!
//! The request id is chosen by the client and echoed verbatim in the
//! response, which is what makes **pipelining** work: a client may have
//! any number of requests in flight on one connection and match answers
//! by id. Connection-level errors the server cannot attribute to a
//! request (an unknown protocol version, an oversized length prefix)
//! are reported with request id [`CONNECTION_REQUEST_ID`] and followed
//! by a clean close.
//!
//! # Frame layout, per kind
//!
//! All integers are little-endian. Offsets below are relative to the
//! start of the *payload* (after the 4-byte length prefix); every
//! payload opens with the fixed [`HEADER_LEN`]-byte header.
//!
//! Common header (all kinds):
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0 | 1 | protocol version ([`PROTOCOL_VERSION`]) |
//! | 1 | 1 | frame kind |
//! | 2 | 8 | request id (`u64`) |
//!
//! [`KIND_LOOKUP`] `= 1` (client → server) — batch row lookup. Body:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 10 | 1 | dtype hint (`0` = none, then [`Dtype`] codes 1–5: f32, f16, int8, int4, int2) |
//! | 11 | 8 | deadline in nanoseconds (`0` = no deadline) |
//! | 19 | 2 | model-name length `m` (≤ [`MAX_MODEL_LEN`]) |
//! | 21 | m | model name (UTF-8) |
//! | 21+m | 4 | id count `n` |
//! | 25+m | 8·n | ids (`u64` each) |
//!
//! [`KIND_ROWS`] `= 2` (server → client) — the response slab for both
//! lookups (`rows = n ids`, `dim` = embedding width, values in request
//! order) and scores (`rows = 1`, `dim` = the backend's output width).
//! Body:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 10 | 4 | row count |
//! | 14 | 4 | row dimensionality `dim` |
//! | 18 | 4·rows·dim | row-major `f32` values |
//!
//! [`KIND_ERROR`] `= 3` (server → client) — a typed rejection. Body:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 10 | 2 | error code ([`ErrorCode`] as `u16`, catalog below) |
//! | 12 | 8 | `retry_after` hint in nanoseconds (non-zero only for `overloaded`) |
//! | 20 | 4 | message length `k` |
//! | 24 | k | human-readable message (UTF-8) |
//!
//! [`KIND_SCORE`] `= 4` (client → server) — full-model scoring: the N
//! ids are gathered as embedding rows and pushed through the model's
//! registered inference backend
//! ([`InferBackend`](memcom_serve::InferBackend)) server-side; the
//! response is a [`KIND_ROWS`] frame carrying one row of K scores.
//! Body: **identical to [`KIND_LOOKUP`]** (dtype hint, deadline, model,
//! ids) — only the kind byte distinguishes a lookup from a score, so a
//! lookup-speaking implementation gains scoring by switching one byte.
//!
//! # Error-code catalog
//!
//! | code | name | meaning |
//! |-----:|------|---------|
//! | 1 | `overloaded` | shed at admission; `retry_after` carries the server's backoff hint |
//! | 2 | `deadline_exceeded` | dropped at dequeue past its end-to-end deadline |
//! | 3 | `model_not_found` | no model registered under the requested name |
//! | 4 | `id_out_of_vocab` | an id is outside the served vocabulary |
//! | 5 | `shutting_down` | the server is draining and no longer admits requests |
//! | 6 | `malformed` | the frame violated the protocol (truncated, trailing bytes, bad UTF-8, oversized prefix) |
//! | 7 | `unsupported` | unknown protocol version or frame kind |
//! | 8 | `internal` | a server-side bug or misconfiguration, not a load condition |
//!
//! # Version and compatibility rules
//!
//! * The version byte is checked **first**; a frame with an unknown
//!   version is answered `unsupported` at [`CONNECTION_REQUEST_ID`] and
//!   the connection closes — nothing after an untrusted version byte is
//!   interpreted.
//! * Within a version, field order and widths never change, and new
//!   fields are never inserted; extension happens by **adding kinds**.
//!   A server that does not know a kind answers `unsupported` with the
//!   request id echoed and keeps the connection — so a new-kind client
//!   degrades per-request against an old server (this is exactly how
//!   [`KIND_SCORE`] rolls out over version-1 framing).
//! * Responses never introduce kinds the client did not trigger: a
//!   request is answered by [`KIND_ROWS`] or [`KIND_ERROR`], nothing
//!   else.
//!
//! Decoding is strict: unknown versions or kinds, truncated bodies,
//! trailing bytes, oversized model names, and invalid dtype codes are
//! all [`WireError`]s — the server answers them with a typed error
//! frame (or closes, when the stream itself can no longer be trusted)
//! and **never panics** on hostile input; `tests/wire.rs` drives the
//! decoder through exactly these corruptions.

use std::io::Read;
use std::time::Duration;

use memcom_serve::Dtype;

use crate::error::ErrorCode;

/// Protocol version this crate speaks.
pub const PROTOCOL_VERSION: u8 = 1;

/// Request id used for connection-level error frames that answer no
/// particular request (bad version, oversized frame).
pub const CONNECTION_REQUEST_ID: u64 = 0;

/// Frame kind: batch-lookup request (client → server).
pub const KIND_LOOKUP: u8 = 1;
/// Frame kind: row-slab response (server → client).
pub const KIND_ROWS: u8 = 2;
/// Frame kind: typed-error response (server → client).
pub const KIND_ERROR: u8 = 3;
/// Frame kind: full-model score request (client → server). Same body
/// layout as [`KIND_LOOKUP`]; answered with a [`KIND_ROWS`] frame of
/// one row holding the backend's K output scores.
pub const KIND_SCORE: u8 = 4;

/// Default cap on one frame's payload length. A length prefix above the
/// configured cap is a protocol violation answered with
/// [`ErrorCode::Malformed`] and a close — it is never allocated.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 8 * 1024 * 1024;

/// Longest accepted model name on the wire, in bytes.
pub const MAX_MODEL_LEN: usize = 1024;

/// Fixed bytes before the body: version, kind, request id.
pub const HEADER_LEN: usize = 1 + 1 + 8;

/// What strict decoding can reject. Every variant is an answerable
/// condition, not a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The version byte is not [`PROTOCOL_VERSION`]. The rest of the
    /// stream cannot be trusted; the peer answers at
    /// [`CONNECTION_REQUEST_ID`] and closes.
    UnknownVersion(u8),
    /// The kind byte names no known message.
    UnknownKind(u8),
    /// The body ended before the field being read.
    Truncated(&'static str),
    /// Bytes remained after the last field — the declared length and
    /// the body disagree.
    TrailingBytes(usize),
    /// The model-name length exceeds [`MAX_MODEL_LEN`].
    ModelTooLong(usize),
    /// The model name is not valid UTF-8.
    BadModelUtf8,
    /// The dtype-hint byte names no known dtype.
    BadDtype(u8),
    /// The error-code field names no known [`ErrorCode`].
    BadErrorCode(u16),
    /// The frame's length prefix exceeds the configured cap; reported
    /// by [`FrameReader::read_frame`], never allocated.
    Oversized {
        /// The declared payload length.
        declared: u32,
        /// The configured cap.
        max: u32,
    },
    /// The message being **encoded** would not fit one frame — its
    /// payload exceeds [`DEFAULT_MAX_FRAME_LEN`] or a length field's
    /// integer width. Reported before any bytes are written, where the
    /// old encoders silently truncated counts with `as u32`/`as u16`
    /// and produced a self-consistent frame carrying the wrong data.
    TooLarge {
        /// The payload size the message would need.
        payload: u64,
        /// The frame cap it exceeds.
        max: u32,
    },
    /// A row slab whose geometry is inconsistent: `dim == 0` with
    /// non-empty data, or a data length that is not a multiple of
    /// `dim`. The old encoder hid both as a "0 rows" frame.
    BadSlab {
        /// The flat data length.
        len: usize,
        /// The claimed row dimensionality.
        dim: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnknownVersion(v) => write!(f, "unknown protocol version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Truncated(field) => write!(f, "frame truncated at {field}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after last field"),
            WireError::ModelTooLong(n) => {
                write!(f, "model name of {n} bytes exceeds {MAX_MODEL_LEN}")
            }
            WireError::BadModelUtf8 => write!(f, "model name is not valid UTF-8"),
            WireError::BadDtype(b) => write!(f, "unknown dtype code {b}"),
            WireError::BadErrorCode(c) => write!(f, "unknown error code {c}"),
            WireError::Oversized { declared, max } => {
                write!(
                    f,
                    "length prefix {declared} exceeds the {max}-byte frame cap"
                )
            }
            WireError::TooLarge { payload, max } => {
                write!(
                    f,
                    "message needs a {payload}-byte payload, over the {max}-byte frame cap"
                )
            }
            WireError::BadSlab { len, dim } => {
                write!(f, "row slab of {len} values is not rows of dim {dim}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A batch-lookup request.
#[derive(Debug, Clone, PartialEq)]
pub struct LookupRequest {
    /// Client-chosen id echoed in the response (pipelining key).
    pub request_id: u64,
    /// Registered model name on the server's router.
    pub model: String,
    /// Ids to look up, in response row order.
    pub ids: Vec<u64>,
    /// Advisory storage-dtype hint (`None` = no preference). Rows are
    /// served as f32 either way today; the field reserves negotiation
    /// room for wire-level quantized row encodings.
    pub dtype_hint: Option<Dtype>,
    /// Per-request end-to-end deadline, mapped onto the server's
    /// [`AdmissionPolicy::Shed`](memcom_serve::AdmissionPolicy::Shed)
    /// deadline check (tightest of this and the server's own deadline
    /// wins; ignored under blocking admission). `None` = no deadline.
    pub deadline: Option<Duration>,
}

/// A full-model score request: the ids are gathered as embedding rows
/// server-side and pushed through the model's registered inference
/// backend; the response is one row of K scores. Wire layout is
/// identical to [`LookupRequest`] — only the kind byte differs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreRequest {
    /// Client-chosen id echoed in the response (pipelining key).
    pub request_id: u64,
    /// Registered model name on the server's router.
    pub model: String,
    /// Item ids to score together (one request = one forward pass).
    pub ids: Vec<u64>,
    /// Advisory storage-dtype hint (`None` = no preference), same
    /// semantics as [`LookupRequest::dtype_hint`].
    pub dtype_hint: Option<Dtype>,
    /// Per-request end-to-end deadline, same semantics as
    /// [`LookupRequest::deadline`]. `None` = no deadline.
    pub deadline: Option<Duration>,
}

/// A row-slab response: `data.len() / dim` rows of `dim` f32 values in
/// request order.
#[derive(Debug, Clone, PartialEq)]
pub struct RowsResponse {
    /// Echoed request id.
    pub request_id: u64,
    /// Row dimensionality.
    pub dim: u32,
    /// Row-major f32 values, `rows * dim` long.
    pub data: Vec<f32>,
}

/// A typed-error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorResponse {
    /// Echoed request id ([`CONNECTION_REQUEST_ID`] for
    /// connection-level errors).
    pub request_id: u64,
    /// The typed error.
    pub code: ErrorCode,
    /// Suggested client backoff; non-zero only for
    /// [`ErrorCode::Overloaded`].
    pub retry_after: Duration,
    /// Human-readable detail.
    pub message: String,
}

/// Any decoded message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A batch-lookup request.
    Lookup(LookupRequest),
    /// A full-model score request.
    Score(ScoreRequest),
    /// A row-slab response.
    Rows(RowsResponse),
    /// A typed-error response.
    Error(ErrorResponse),
}

fn dtype_code(dtype: Option<Dtype>) -> u8 {
    match dtype {
        None => 0,
        Some(Dtype::F32) => 1,
        Some(Dtype::F16) => 2,
        Some(Dtype::Int8) => 3,
        Some(Dtype::Int4) => 4,
        Some(Dtype::Int2) => 5,
    }
}

fn dtype_from_code(code: u8) -> Result<Option<Dtype>, WireError> {
    Ok(match code {
        0 => None,
        1 => Some(Dtype::F32),
        2 => Some(Dtype::F16),
        3 => Some(Dtype::Int8),
        4 => Some(Dtype::Int4),
        5 => Some(Dtype::Int2),
        other => return Err(WireError::BadDtype(other)),
    })
}

fn duration_to_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Appends the frame header (length placeholder + version + kind + id)
/// and returns the index where the length must be patched.
fn begin_frame(out: &mut Vec<u8>, kind: u8, request_id: u64) -> usize {
    let len_at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    out.push(PROTOCOL_VERSION);
    out.push(kind);
    out.extend_from_slice(&request_id.to_le_bytes());
    len_at
}

/// Patches the length prefix once the payload is complete. On failure
/// (a payload the length field cannot express, or a `len_at` that does
/// not point at a header this function wrote) everything appended since
/// `len_at` is rolled back so `out` never holds a half-built frame.
fn end_frame(out: &mut Vec<u8>, len_at: usize) -> Result<(), WireError> {
    let payload = out.len().saturating_sub(len_at + 4);
    let Ok(payload_len) = u32::try_from(payload) else {
        out.truncate(len_at);
        return Err(WireError::TooLarge {
            payload: payload as u64,
            max: DEFAULT_MAX_FRAME_LEN,
        });
    };
    match out.get_mut(len_at..len_at + 4) {
        Some(slot) => {
            slot.copy_from_slice(&payload_len.to_le_bytes());
            Ok(())
        }
        None => {
            out.truncate(len_at);
            Err(WireError::Truncated("length slot"))
        }
    }
}

/// Encodes a lookup request as one complete frame appended to `out`.
///
/// # Errors
///
/// [`WireError::ModelTooLong`] when the model name exceeds
/// [`MAX_MODEL_LEN`] and [`WireError::TooLarge`] when the id list would
/// not fit one [`DEFAULT_MAX_FRAME_LEN`] frame. Validation happens
/// **before** any byte is written — on error `out` is untouched, where
/// the old signature silently wrapped the id count through `as u32` and
/// shipped a frame claiming the wrong ids.
pub fn encode_lookup(req: &LookupRequest, out: &mut Vec<u8>) -> Result<(), WireError> {
    encode_request(
        KIND_LOOKUP,
        req.request_id,
        &req.model,
        &req.ids,
        req.dtype_hint,
        req.deadline,
        out,
    )
}

/// Encodes a score request as one complete frame appended to `out`.
///
/// # Errors
///
/// Same validation as [`encode_lookup`] — the two kinds share one body
/// layout: [`WireError::ModelTooLong`] past [`MAX_MODEL_LEN`],
/// [`WireError::TooLarge`] past the frame cap, `out` untouched on
/// error.
pub fn encode_score(req: &ScoreRequest, out: &mut Vec<u8>) -> Result<(), WireError> {
    encode_request(
        KIND_SCORE,
        req.request_id,
        &req.model,
        &req.ids,
        req.dtype_hint,
        req.deadline,
        out,
    )
}

/// The shared lookup/score request-body encoder (the kinds differ only
/// in their kind byte).
fn encode_request(
    kind: u8,
    request_id: u64,
    model: &str,
    ids: &[u64],
    dtype_hint: Option<Dtype>,
    deadline: Option<Duration>,
    out: &mut Vec<u8>,
) -> Result<(), WireError> {
    let model = model.as_bytes();
    if model.len() > MAX_MODEL_LEN {
        return Err(WireError::ModelTooLong(model.len()));
    }
    let payload = HEADER_LEN as u64 + 1 + 8 + 2 + model.len() as u64 + 4 + 8 * ids.len() as u64;
    if payload > DEFAULT_MAX_FRAME_LEN as u64 {
        return Err(WireError::TooLarge {
            payload,
            max: DEFAULT_MAX_FRAME_LEN,
        });
    }
    let model_len = u16::try_from(model.len()).map_err(|_| WireError::ModelTooLong(model.len()))?;
    let n_ids = u32::try_from(ids.len()).map_err(|_| WireError::TooLarge {
        payload,
        max: DEFAULT_MAX_FRAME_LEN,
    })?;
    let len_at = begin_frame(out, kind, request_id);
    out.push(dtype_code(dtype_hint));
    out.extend_from_slice(&deadline.map_or(0, duration_to_nanos).to_le_bytes());
    out.extend_from_slice(&model_len.to_le_bytes());
    out.extend_from_slice(model);
    out.extend_from_slice(&n_ids.to_le_bytes());
    for &id in ids {
        out.extend_from_slice(&id.to_le_bytes());
    }
    end_frame(out, len_at)
}

/// Encodes a row-slab response as one complete frame appended to `out`.
///
/// # Errors
///
/// [`WireError::BadSlab`] when `data.len()` is not `rows × dim`
/// (including `dim == 0` with non-empty data, which the old encoder
/// shipped as a lying "0 rows" frame) and [`WireError::TooLarge`] when
/// the slab would not fit one [`DEFAULT_MAX_FRAME_LEN`] frame. On error
/// `out` is untouched.
pub fn encode_rows(
    request_id: u64,
    dim: u32,
    data: &[f32],
    out: &mut Vec<u8>,
) -> Result<(), WireError> {
    if (dim == 0 && !data.is_empty()) || (dim > 0 && !data.len().is_multiple_of(dim as usize)) {
        return Err(WireError::BadSlab {
            len: data.len(),
            dim,
        });
    }
    let rows = if dim == 0 {
        0
    } else {
        data.len() / dim as usize
    };
    let payload = HEADER_LEN as u64 + 4 + 4 + 4 * data.len() as u64;
    if payload > DEFAULT_MAX_FRAME_LEN as u64 || rows > u32::MAX as usize {
        return Err(WireError::TooLarge {
            payload,
            max: DEFAULT_MAX_FRAME_LEN,
        });
    }
    let rows = u32::try_from(rows).map_err(|_| WireError::TooLarge {
        payload,
        max: DEFAULT_MAX_FRAME_LEN,
    })?;
    let len_at = begin_frame(out, KIND_ROWS, request_id);
    out.extend_from_slice(&rows.to_le_bytes());
    out.extend_from_slice(&dim.to_le_bytes());
    for &v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    end_frame(out, len_at)
}

/// Encodes a typed-error response as one complete frame appended to
/// `out`.
///
/// # Errors
///
/// [`WireError::TooLarge`] when the message would not fit one
/// [`DEFAULT_MAX_FRAME_LEN`] frame; `out` is untouched on error. Server
/// reply paths that must always produce *some* frame use
/// [`encode_error_lossy`] instead.
pub fn encode_error(
    request_id: u64,
    code: ErrorCode,
    retry_after: Duration,
    message: &str,
    out: &mut Vec<u8>,
) -> Result<(), WireError> {
    let msg = message.as_bytes();
    let payload = HEADER_LEN as u64 + 2 + 8 + 4 + msg.len() as u64;
    if payload > DEFAULT_MAX_FRAME_LEN as u64 {
        return Err(WireError::TooLarge {
            payload,
            max: DEFAULT_MAX_FRAME_LEN,
        });
    }
    let msg_len = u32::try_from(msg.len()).map_err(|_| WireError::TooLarge {
        payload,
        max: DEFAULT_MAX_FRAME_LEN,
    })?;
    let len_at = begin_frame(out, KIND_ERROR, request_id);
    out.extend_from_slice(&code.as_u16().to_le_bytes());
    out.extend_from_slice(&duration_to_nanos(retry_after).to_le_bytes());
    out.extend_from_slice(&msg_len.to_le_bytes());
    out.extend_from_slice(msg);
    end_frame(out, len_at)
}

/// Longest error message [`encode_error_lossy`] can carry.
const MAX_ERROR_MSG_LEN: usize = DEFAULT_MAX_FRAME_LEN as usize - HEADER_LEN - 2 - 8 - 4;

/// Infallible [`encode_error`] for server reply paths: an error frame
/// must always go out, so an oversized message is truncated (at a UTF-8
/// character boundary) rather than refused.
pub fn encode_error_lossy(
    request_id: u64,
    code: ErrorCode,
    retry_after: Duration,
    message: &str,
    out: &mut Vec<u8>,
) {
    let mut end = message.len().min(MAX_ERROR_MSG_LEN);
    while end > 0 && !message.is_char_boundary(end) {
        end -= 1;
    }
    let truncated = message.get(..end).unwrap_or("");
    let base = out.len();
    if encode_error(request_id, code, retry_after, truncated, out).is_err() {
        // The truncated message provably fits the cap; if the strict
        // encoder still refuses, ship an empty-message error frame
        // (fixed 24-byte payload, always encodable) rather than panic.
        out.truncate(base);
        let _ = encode_error(request_id, code, retry_after, "", out);
    }
}

/// A strict little-endian cursor over one payload.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError::Truncated(field))?;
        let s = self
            .buf
            .get(self.at..end)
            .ok_or(WireError::Truncated(field))?;
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, field)?[0])
    }

    fn u16(&mut self, field: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, field)?;
        let b = b.try_into().map_err(|_| WireError::Truncated(field))?;
        Ok(u16::from_le_bytes(b))
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, field)?;
        let b = b.try_into().map_err(|_| WireError::Truncated(field))?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, field)?;
        let b = b.try_into().map_err(|_| WireError::Truncated(field))?;
        Ok(u64::from_le_bytes(b))
    }

    fn finish(self) -> Result<(), WireError> {
        let left = self.buf.len() - self.at;
        if left != 0 {
            return Err(WireError::TrailingBytes(left));
        }
        Ok(())
    }
}

/// Decodes the shared lookup/score request body (everything after the
/// header): dtype hint, deadline, model name, ids.
#[allow(clippy::type_complexity)]
fn decode_request_body(
    mut c: Cursor<'_>,
    payload: &[u8],
) -> Result<(String, Vec<u64>, Option<Dtype>, Option<Duration>), WireError> {
    let dtype_hint = dtype_from_code(c.u8("dtype hint")?)?;
    let deadline_nanos = c.u64("deadline")?;
    let model_len = c.u16("model length")? as usize;
    if model_len > MAX_MODEL_LEN {
        return Err(WireError::ModelTooLong(model_len));
    }
    let model = std::str::from_utf8(c.take(model_len, "model name")?)
        .map_err(|_| WireError::BadModelUtf8)?
        .to_string();
    let n_ids = c.u32("id count")? as usize;
    // The remaining payload bounds n_ids before any allocation,
    // so a hostile count cannot balloon memory past the frame
    // cap the reader already enforced.
    let mut ids = Vec::with_capacity(n_ids.min(payload.len() / 8 + 1));
    for _ in 0..n_ids {
        ids.push(c.u64("id")?);
    }
    c.finish()?;
    Ok((
        model,
        ids,
        dtype_hint,
        (deadline_nanos != 0).then(|| Duration::from_nanos(deadline_nanos)),
    ))
}

/// Decodes one payload (everything after the length prefix) into a
/// [`Message`], rejecting every malformation with a [`WireError`].
pub fn decode_payload(payload: &[u8]) -> Result<Message, WireError> {
    let mut c = Cursor {
        buf: payload,
        at: 0,
    };
    let version = c.u8("version")?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::UnknownVersion(version));
    }
    let kind = c.u8("kind")?;
    let request_id = c.u64("request id")?;
    match kind {
        KIND_LOOKUP => {
            let (model, ids, dtype_hint, deadline) = decode_request_body(c, payload)?;
            Ok(Message::Lookup(LookupRequest {
                request_id,
                model,
                ids,
                dtype_hint,
                deadline,
            }))
        }
        KIND_SCORE => {
            let (model, ids, dtype_hint, deadline) = decode_request_body(c, payload)?;
            Ok(Message::Score(ScoreRequest {
                request_id,
                model,
                ids,
                dtype_hint,
                deadline,
            }))
        }
        KIND_ROWS => {
            let rows = c.u32("row count")? as usize;
            let dim = c.u32("dim")?;
            let values = rows
                .checked_mul(dim as usize)
                .ok_or(WireError::Truncated("row data"))?;
            let mut data = Vec::with_capacity(values.min(payload.len() / 4 + 1));
            for _ in 0..values {
                let b = c.take(4, "row data")?;
                let b = b.try_into().map_err(|_| WireError::Truncated("row data"))?;
                data.push(f32::from_le_bytes(b));
            }
            c.finish()?;
            Ok(Message::Rows(RowsResponse {
                request_id,
                dim,
                data,
            }))
        }
        KIND_ERROR => {
            let raw = c.u16("error code")?;
            let code = ErrorCode::from_u16(raw).ok_or(WireError::BadErrorCode(raw))?;
            let retry_after = Duration::from_nanos(c.u64("retry after")?);
            let msg_len = c.u32("message length")? as usize;
            let message = String::from_utf8_lossy(c.take(msg_len, "message")?).into_owned();
            c.finish()?;
            Ok(Message::Error(ErrorResponse {
                request_id,
                code,
                retry_after,
                message,
            }))
        }
        other => Err(WireError::UnknownKind(other)),
    }
}

/// What one [`FrameReader::read_frame`] call observed.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadEvent {
    /// A complete frame arrived; its payload is at
    /// [`FrameReader::payload`].
    Frame,
    /// The peer closed the stream at a frame boundary (or mid-frame —
    /// either way there is nothing left to answer).
    Eof,
    /// The read timed out (`WouldBlock`/`TimedOut`) before a complete
    /// frame arrived; partial progress is retained for the next call.
    TimedOut,
}

/// Incremental frame reader: accumulates the 4-byte length prefix and
/// then the payload across partial reads, surviving read timeouts
/// mid-frame (the server's drain poll depends on that), and rejects
/// oversized length prefixes **before** allocating.
#[derive(Debug)]
pub struct FrameReader {
    max_frame_len: u32,
    header: [u8; 4],
    header_filled: usize,
    payload: Vec<u8>,
    payload_filled: usize,
    /// `Some(n)` once the header is complete and `n` payload bytes are
    /// expected.
    expecting: Option<usize>,
}

impl FrameReader {
    /// A reader enforcing `max_frame_len` as the payload-length cap.
    pub fn new(max_frame_len: u32) -> Self {
        FrameReader {
            max_frame_len,
            header: [0; 4],
            header_filled: 0,
            payload: Vec::new(),
            payload_filled: 0,
            expecting: None,
        }
    }

    /// The last complete frame's payload (valid after
    /// [`ReadEvent::Frame`], until the next `read_frame` call).
    pub fn payload(&self) -> &[u8] {
        self.payload.get(..self.payload_filled).unwrap_or(&[])
    }

    /// Advances toward the next frame. Timeouts and `Interrupted` are
    /// surfaced as [`ReadEvent::TimedOut`] with all partial progress
    /// kept; an oversized length prefix is a [`WireError::Oversized`];
    /// other I/O failures propagate.
    ///
    /// # Errors
    ///
    /// `Err(Ok(WireError))`-style nesting is avoided by flattening: the
    /// error type is [`FrameError`].
    pub fn read_frame(&mut self, r: &mut impl Read) -> Result<ReadEvent, FrameError> {
        let want = match self.expecting {
            Some(want) => want,
            None => {
                match self.fill_header(r)? {
                    ReadEvent::Frame => {} // header complete; fall through
                    other => return Ok(other),
                }
                let declared = u32::from_le_bytes(self.header);
                if declared > self.max_frame_len {
                    return Err(FrameError::Wire(WireError::Oversized {
                        declared,
                        max: self.max_frame_len,
                    }));
                }
                let want = declared as usize;
                self.expecting = Some(want);
                self.payload.resize(want, 0);
                self.payload_filled = 0;
                want
            }
        };
        while self.payload_filled < want {
            // `payload` was resized to exactly `want`, so the slice is
            // always there; if the invariant ever broke, stop reading
            // instead of panicking mid-connection.
            let Some(dst) = self.payload.get_mut(self.payload_filled..want) else {
                break;
            };
            match r.read(dst) {
                Ok(0) => return Ok(ReadEvent::Eof),
                Ok(n) => self.payload_filled += n,
                Err(e) => return Self::map_timeout(e),
            }
        }
        // Frame complete: reset header state for the next one.
        self.header_filled = 0;
        self.expecting = None;
        Ok(ReadEvent::Frame)
    }

    /// Reads header bytes; `Frame` here means "header complete".
    fn fill_header(&mut self, r: &mut impl Read) -> Result<ReadEvent, FrameError> {
        while self.header_filled < 4 {
            // `header_filled < 4` keeps the range inside the 4-byte
            // array; degrade to "header complete" on a broken invariant
            // rather than panic.
            let Some(dst) = self.header.get_mut(self.header_filled..) else {
                break;
            };
            match r.read(dst) {
                Ok(0) => return Ok(ReadEvent::Eof),
                Ok(n) => self.header_filled += n,
                Err(e) => return Self::map_timeout(e),
            }
        }
        Ok(ReadEvent::Frame)
    }

    fn map_timeout(e: std::io::Error) -> Result<ReadEvent, FrameError> {
        match e.kind() {
            std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::Interrupted => Ok(ReadEvent::TimedOut),
            _ => Err(FrameError::Io(e)),
        }
    }
}

/// Why [`FrameReader::read_frame`] failed.
#[derive(Debug)]
pub enum FrameError {
    /// A non-timeout I/O failure.
    Io(std::io::Error),
    /// A protocol violation detectable at the framing layer (today:
    /// [`WireError::Oversized`]).
    Wire(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Wire(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_of(req: &LookupRequest) -> Vec<u8> {
        let mut out = Vec::new();
        encode_lookup(req, &mut out).expect("encodes");
        out
    }

    #[test]
    fn lookup_roundtrip() {
        let req = LookupRequest {
            request_id: 42,
            model: "country/us".into(),
            ids: vec![0, 7, u64::MAX],
            dtype_hint: Some(Dtype::Int8),
            deadline: Some(Duration::from_millis(25)),
        };
        let bytes = frame_of(&req);
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME_LEN);
        let mut src = &bytes[..];
        assert_eq!(reader.read_frame(&mut src).unwrap(), ReadEvent::Frame);
        assert_eq!(
            decode_payload(reader.payload()).unwrap(),
            Message::Lookup(req)
        );
        assert_eq!(reader.read_frame(&mut src).unwrap(), ReadEvent::Eof);
    }

    #[test]
    fn score_roundtrip_differs_from_lookup_by_one_byte() {
        let req = ScoreRequest {
            request_id: 17,
            model: "scorer".into(),
            ids: vec![3, 1, 4, 1, 5],
            dtype_hint: Some(Dtype::F32),
            deadline: Some(Duration::from_millis(10)),
        };
        let mut frame = Vec::new();
        encode_score(&req, &mut frame).expect("encodes");
        assert_eq!(
            decode_payload(&frame[4..]).unwrap(),
            Message::Score(req.clone())
        );
        // Same body layout as a lookup: flipping the kind byte back
        // yields the equivalent LookupRequest.
        frame[4 + 1] = KIND_LOOKUP;
        let Message::Lookup(as_lookup) = decode_payload(&frame[4..]).unwrap() else {
            panic!("expected lookup after kind flip");
        };
        assert_eq!(
            (as_lookup.model, as_lookup.ids, as_lookup.deadline),
            (req.model, req.ids, req.deadline)
        );
    }

    #[test]
    fn rows_and_error_roundtrip() {
        let mut out = Vec::new();
        encode_rows(9, 2, &[1.0, 2.0, 3.0, 4.0], &mut out).expect("encodes");
        encode_error(
            10,
            ErrorCode::Overloaded,
            Duration::from_micros(500),
            "try later",
            &mut out,
        )
        .expect("encodes");
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME_LEN);
        let mut src = &out[..];
        assert_eq!(reader.read_frame(&mut src).unwrap(), ReadEvent::Frame);
        let Message::Rows(rows) = decode_payload(reader.payload()).unwrap() else {
            panic!("expected rows");
        };
        assert_eq!((rows.request_id, rows.dim), (9, 2));
        assert_eq!(rows.data, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(reader.read_frame(&mut src).unwrap(), ReadEvent::Frame);
        let Message::Error(err) = decode_payload(reader.payload()).unwrap() else {
            panic!("expected error");
        };
        assert_eq!(err.code, ErrorCode::Overloaded);
        assert_eq!(err.retry_after, Duration::from_micros(500));
        assert_eq!(err.message, "try later");
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut reader = FrameReader::new(64);
        let bytes = 1_000_000u32.to_le_bytes();
        let mut src = &bytes[..];
        match reader.read_frame(&mut src) {
            Err(FrameError::Wire(WireError::Oversized { declared, max })) => {
                assert_eq!((declared, max), (1_000_000, 64));
            }
            other => panic!("expected oversized, got {other:?}"),
        }
    }

    #[test]
    fn partial_reads_accumulate() {
        let req = LookupRequest {
            request_id: 1,
            model: "m".into(),
            ids: vec![5],
            dtype_hint: None,
            deadline: None,
        };
        let bytes = frame_of(&req);

        /// Yields one byte per read and times out between bytes, like a
        /// slow socket under a read timeout.
        struct Trickle<'a> {
            data: &'a [u8],
            at: usize,
            give: bool,
        }
        impl Read for Trickle<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if !self.give || self.at == self.data.len() {
                    self.give = true;
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                self.give = false;
                buf[0] = self.data[self.at];
                self.at += 1;
                Ok(1)
            }
        }

        let mut src = Trickle {
            data: &bytes,
            at: 0,
            give: true,
        };
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME_LEN);
        let mut timeouts = 0;
        loop {
            match reader.read_frame(&mut src).unwrap() {
                ReadEvent::Frame => break,
                ReadEvent::TimedOut => timeouts += 1,
                ReadEvent::Eof => panic!("trickle never closes"),
            }
        }
        assert!(timeouts > 0, "partial progress must survive timeouts");
        assert_eq!(
            decode_payload(reader.payload()).unwrap(),
            Message::Lookup(req)
        );
    }

    #[test]
    fn strict_decode_rejects_malformations() {
        let req = LookupRequest {
            request_id: 3,
            model: "m".into(),
            ids: vec![1, 2],
            dtype_hint: None,
            deadline: None,
        };
        let mut frame = frame_of(&req);
        let payload = frame.split_off(4);

        // Unknown version.
        let mut bad = payload.clone();
        bad[0] = 99;
        assert_eq!(decode_payload(&bad), Err(WireError::UnknownVersion(99)));
        // Unknown kind.
        let mut bad = payload.clone();
        bad[1] = 99;
        assert_eq!(decode_payload(&bad), Err(WireError::UnknownKind(99)));
        // Truncation at every split point.
        for cut in 0..payload.len() {
            assert!(
                matches!(
                    decode_payload(&payload[..cut]),
                    Err(WireError::Truncated(_) | WireError::UnknownVersion(_))
                ),
                "cut at {cut}"
            );
        }
        // Trailing garbage.
        let mut bad = payload.clone();
        bad.push(0);
        assert_eq!(decode_payload(&bad), Err(WireError::TrailingBytes(1)));
        // Bad dtype code.
        let mut bad = payload.clone();
        bad[HEADER_LEN] = 200;
        assert_eq!(decode_payload(&bad), Err(WireError::BadDtype(200)));
    }

    #[test]
    fn encode_lookup_refuses_untransmittable_requests() {
        let mut out = vec![0xAAu8; 3];
        // A model name past MAX_MODEL_LEN used to have its length
        // silently wrapped through `as u16`.
        let req = LookupRequest {
            request_id: 1,
            model: "m".repeat(70_000),
            ids: vec![1],
            dtype_hint: None,
            deadline: None,
        };
        assert_eq!(
            encode_lookup(&req, &mut out),
            Err(WireError::ModelTooLong(70_000))
        );
        // An id batch past the frame cap used to ship with a wrapped
        // count.
        let req = LookupRequest {
            request_id: 1,
            model: "m".into(),
            ids: vec![0; 2_000_000], // 16 MB of ids > 8 MiB cap
            dtype_hint: None,
            deadline: None,
        };
        assert!(matches!(
            encode_lookup(&req, &mut out),
            Err(WireError::TooLarge { .. })
        ));
        // On error the output buffer is untouched — no half frame.
        assert_eq!(out, vec![0xAA; 3]);
    }

    #[test]
    fn encode_rows_refuses_inconsistent_slabs() {
        let mut out = Vec::new();
        // dim 0 with data used to encode as a lying "0 rows" frame.
        assert_eq!(
            encode_rows(1, 0, &[1.0, 2.0], &mut out),
            Err(WireError::BadSlab { len: 2, dim: 0 })
        );
        // A length that is not rows × dim.
        assert_eq!(
            encode_rows(1, 3, &[1.0, 2.0], &mut out),
            Err(WireError::BadSlab { len: 2, dim: 3 })
        );
        assert!(out.is_empty(), "no bytes written on error");
        // dim 0 with no data is a legitimate empty slab.
        encode_rows(1, 0, &[], &mut out).expect("empty slab encodes");
        let Message::Rows(rows) = decode_payload(&out[4..]).unwrap() else {
            panic!("expected rows");
        };
        assert_eq!((rows.dim, rows.data.len()), (0, 0));
    }

    #[test]
    fn encode_error_lossy_truncates_at_char_boundaries() {
        // A message past the frame cap is refused by the strict encoder…
        let huge = "é".repeat(DEFAULT_MAX_FRAME_LEN as usize); // 2 bytes/char
        let mut out = Vec::new();
        assert!(matches!(
            encode_error(7, ErrorCode::Internal, Duration::ZERO, &huge, &mut out),
            Err(WireError::TooLarge { .. })
        ));
        assert!(out.is_empty());
        // …while the lossy encoder always produces a decodable frame,
        // cut at a UTF-8 boundary (MAX_ERROR_MSG_LEN is odd, so a naive
        // byte cut would split an 'é').
        encode_error_lossy(7, ErrorCode::Internal, Duration::ZERO, &huge, &mut out);
        let Message::Error(err) = decode_payload(&out[4..]).unwrap() else {
            panic!("expected error");
        };
        assert_eq!(err.request_id, 7);
        assert!(err.message.len() <= MAX_ERROR_MSG_LEN);
        assert!(err.message.chars().all(|c| c == 'é'), "no mangled tail");
        // Small messages pass through verbatim.
        let mut out = Vec::new();
        encode_error_lossy(8, ErrorCode::Overloaded, Duration::ZERO, "shed", &mut out);
        let Message::Error(err) = decode_payload(&out[4..]).unwrap() else {
            panic!("expected error");
        };
        assert_eq!(err.message, "shed");
    }

    #[test]
    fn zero_deadline_means_none() {
        let req = LookupRequest {
            request_id: 1,
            model: "m".into(),
            ids: vec![0],
            dtype_hint: None,
            deadline: None,
        };
        let frame = frame_of(&req);
        let Message::Lookup(decoded) = decode_payload(&frame[4..]).unwrap() else {
            panic!("expected lookup");
        };
        assert_eq!(decoded.deadline, None);
    }
}
