//! Network-tier telemetry: frame-level stage histograms and
//! per-connection counters, exported next to the serve tier's snapshot.
//!
//! The discipline mirrors `memcom-serve`'s registry exactly:
//!
//! * **Counters are always on** — per-connection frame/byte counts are
//!   relaxed atomics, like the serve tier's per-model row counters.
//! * **Stage histograms cost clock reads only at
//!   [`TelemetryLevel::Full`]** — the connection loop takes its
//!   `Instant::now` stamps *only* when `stages_on()` says so, so the
//!   `off()` zero-extra-clock-read guarantee extends across the network
//!   stages (`frame_decode`, `response_encode`, `socket_write`);
//!   `tests/net.rs` asserts the off-level snapshot stays empty under
//!   traffic.
//! * Histograms live behind per-connection mutexes the connection's
//!   single handler thread locks uncontended; snapshots merge them on
//!   demand.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use memcom_serve::{LatencyHistogram, MetricsSnapshot, TelemetryConfig, TelemetryLevel};
use parking_lot::Mutex;

/// The network stage histograms of one connection.
#[derive(Debug, Clone, Default)]
pub(crate) struct NetStageSet {
    /// Wire bytes → decoded request (strict parse of one payload).
    pub(crate) frame_decode: LatencyHistogram,
    /// Router answer → encoded response frame.
    pub(crate) response_encode: LatencyHistogram,
    /// Encoded frame → socket accepted the bytes (`write_all` +
    /// `flush`).
    pub(crate) socket_write: LatencyHistogram,
}

/// Always-on counters plus Full-level stage state for one connection.
#[derive(Debug, Default)]
pub(crate) struct ConnTelemetry {
    pub(crate) id: u64,
    pub(crate) peer: String,
    pub(crate) frames_in: AtomicU64,
    pub(crate) frames_out: AtomicU64,
    pub(crate) bytes_in: AtomicU64,
    pub(crate) bytes_out: AtomicU64,
    /// Lookup requests answered with rows.
    pub(crate) served: AtomicU64,
    /// Typed error frames sent (any code).
    pub(crate) errors_sent: AtomicU64,
    /// Malformed/unsupported frames received.
    pub(crate) protocol_errors: AtomicU64,
    /// Requests answered `shutting_down` during the drain grace.
    pub(crate) shutdown_rejected: AtomicU64,
    pub(crate) open: AtomicBool,
    stages: Mutex<NetStageSet>,
}

impl ConnTelemetry {
    pub(crate) fn record_stage(
        &self,
        pick: impl FnOnce(&mut NetStageSet) -> &mut LatencyHistogram,
        started: Instant,
    ) {
        pick(&mut self.stages.lock()).record(started.elapsed().as_nanos() as u64);
    }
}

/// Exported per-connection counters (one row per connection the server
/// has seen, newest last; closed connections stay visible so a
/// post-shutdown snapshot still reconciles).
#[derive(Debug, Clone)]
pub struct ConnectionMetrics {
    /// Server-assigned connection id (accept order, starting at 1).
    pub id: u64,
    /// Peer address label.
    pub peer: String,
    /// Frames received / sent on this connection.
    pub frames_in: u64,
    /// Frames sent.
    pub frames_out: u64,
    /// Wire bytes received / sent.
    pub bytes_in: u64,
    /// Wire bytes sent.
    pub bytes_out: u64,
    /// Lookup requests answered with rows.
    pub served: u64,
    /// Typed error frames sent.
    pub errors_sent: u64,
    /// Malformed/unsupported inbound frames.
    pub protocol_errors: u64,
    /// Requests rejected `shutting_down` during the drain.
    pub shutdown_rejected: u64,
    /// Whether the connection is still open.
    pub open: bool,
}

/// The server's network-telemetry registry.
#[derive(Debug)]
pub(crate) struct NetTelemetry {
    level: TelemetryLevel,
    started_at: Instant,
    accepted: AtomicU64,
    conns: Mutex<Vec<std::sync::Arc<ConnTelemetry>>>,
}

impl NetTelemetry {
    pub(crate) fn new(config: &TelemetryConfig) -> Self {
        NetTelemetry {
            level: config.level,
            started_at: Instant::now(),
            accepted: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
        }
    }

    /// Whether stage histograms (and their clock reads) are on.
    pub(crate) fn stages_on(&self) -> bool {
        self.level == TelemetryLevel::Full
    }

    pub(crate) fn connection_opened(&self, peer: String) -> std::sync::Arc<ConnTelemetry> {
        let id = self.accepted.fetch_add(1, Ordering::Relaxed) + 1;
        let conn = std::sync::Arc::new(ConnTelemetry {
            id,
            peer,
            open: AtomicBool::new(true),
            ..ConnTelemetry::default()
        });
        self.conns.lock().push(std::sync::Arc::clone(&conn));
        conn
    }

    pub(crate) fn snapshot(&self, serve: MetricsSnapshot) -> NetMetricsSnapshot {
        let conns = self.conns.lock();
        let connections: Vec<ConnectionMetrics> = conns
            .iter()
            .map(|c| ConnectionMetrics {
                id: c.id,
                peer: c.peer.clone(),
                frames_in: c.frames_in.load(Ordering::Relaxed),
                frames_out: c.frames_out.load(Ordering::Relaxed),
                bytes_in: c.bytes_in.load(Ordering::Relaxed),
                bytes_out: c.bytes_out.load(Ordering::Relaxed),
                served: c.served.load(Ordering::Relaxed),
                errors_sent: c.errors_sent.load(Ordering::Relaxed),
                protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
                shutdown_rejected: c.shutdown_rejected.load(Ordering::Relaxed),
                open: c.open.load(Ordering::Relaxed),
            })
            .collect();
        let mut stages = NetStageSet::default();
        for c in conns.iter() {
            let s = c.stages.lock().clone();
            stages.frame_decode.merge(&s.frame_decode);
            stages.response_encode.merge(&s.response_encode);
            stages.socket_write.merge(&s.socket_write);
        }
        NetMetricsSnapshot {
            level: self.level,
            uptime: self.started_at.elapsed(),
            accepted: connections.len() as u64,
            active: connections.iter().filter(|c| c.open).count() as u64,
            frame_decode: stages.frame_decode,
            response_encode: stages.response_encode,
            socket_write: stages.socket_write,
            connections,
            serve,
        }
    }
}

/// One consistent view of the network tier plus the embedded serve-tier
/// snapshot, renderable as Prometheus text or JSON.
#[derive(Debug, Clone)]
pub struct NetMetricsSnapshot {
    /// The network tier's telemetry level.
    pub level: TelemetryLevel,
    /// Time since the server started.
    pub uptime: Duration,
    /// Connections accepted since start.
    pub accepted: u64,
    /// Connections currently open.
    pub active: u64,
    /// Frame-decode latency across all connections (Full level only;
    /// empty otherwise).
    pub frame_decode: LatencyHistogram,
    /// Response-encode latency (Full level only).
    pub response_encode: LatencyHistogram,
    /// Socket-write latency (Full level only).
    pub socket_write: LatencyHistogram,
    /// Per-connection counters, accept order.
    pub connections: Vec<ConnectionMetrics>,
    /// The router's own snapshot
    /// ([`memcom_serve::Router::metrics`]), embedded so one scrape
    /// covers both tiers.
    pub serve: MetricsSnapshot,
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

fn render_hist(out: &mut String, name: &str, labels: &str, h: &LatencyHistogram) {
    let mut cumulative = 0u64;
    for (le, count) in h.iter_buckets() {
        cumulative += count;
        out.push_str(&format!(
            "{name}_bucket{{{labels}le=\"{le}\"}} {cumulative}\n"
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{{{labels}le=\"+Inf\"}} {}\n{name}_sum{{{l}}} {}\n{name}_count{{{l}}} {}\n",
        h.count(),
        h.sum_nanos(),
        h.count(),
        l = labels.trim_end_matches(','),
    ));
}

impl NetMetricsSnapshot {
    /// Aggregate totals across every connection: `(frames_in,
    /// frames_out, bytes_in, bytes_out, served, errors_sent,
    /// protocol_errors, shutdown_rejected)`.
    pub fn totals(&self) -> ConnectionMetrics {
        let mut t = ConnectionMetrics {
            id: 0,
            peer: "total".into(),
            frames_in: 0,
            frames_out: 0,
            bytes_in: 0,
            bytes_out: 0,
            served: 0,
            errors_sent: 0,
            protocol_errors: 0,
            shutdown_rejected: 0,
            open: false,
        };
        for c in &self.connections {
            t.frames_in += c.frames_in;
            t.frames_out += c.frames_out;
            t.bytes_in += c.bytes_in;
            t.bytes_out += c.bytes_out;
            t.served += c.served;
            t.errors_sent += c.errors_sent;
            t.protocol_errors += c.protocol_errors;
            t.shutdown_rejected += c.shutdown_rejected;
        }
        t
    }

    /// Prometheus text exposition: `memcom_net_*` series for the
    /// network tier followed by the embedded serve-tier exposition, so
    /// one scrape endpoint serves both.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        family(
            &mut out,
            "memcom_net_connections_accepted_total",
            "counter",
            "Connections accepted since server start.",
        );
        let _ = writeln!(
            out,
            "memcom_net_connections_accepted_total {}",
            self.accepted
        );
        family(
            &mut out,
            "memcom_net_connections_active",
            "gauge",
            "Connections currently open.",
        );
        let _ = writeln!(out, "memcom_net_connections_active {}", self.active);

        for (name, help, pick) in [
            (
                "memcom_net_frames_total",
                "Frames received per connection.",
                0usize,
            ),
            ("memcom_net_bytes_total", "Wire bytes per connection.", 1),
            (
                "memcom_net_served_total",
                "Lookup requests answered with rows, per connection.",
                2,
            ),
            (
                "memcom_net_errors_sent_total",
                "Typed error frames sent, per connection.",
                3,
            ),
            (
                "memcom_net_protocol_errors_total",
                "Malformed or unsupported inbound frames, per connection.",
                4,
            ),
            (
                "memcom_net_shutdown_rejected_total",
                "Requests rejected shutting_down during the drain, per connection.",
                5,
            ),
        ] {
            family(&mut out, name, "counter", help);
            for c in &self.connections {
                let conn = format!("conn=\"{}\",peer=\"{}\"", c.id, escape_label(&c.peer));
                match pick {
                    0 => {
                        let _ = writeln!(
                            out,
                            "{name}{{{conn},direction=\"in\"}} {}\n{name}{{{conn},direction=\"out\"}} {}",
                            c.frames_in, c.frames_out
                        );
                    }
                    1 => {
                        let _ = writeln!(
                            out,
                            "{name}{{{conn},direction=\"in\"}} {}\n{name}{{{conn},direction=\"out\"}} {}",
                            c.bytes_in, c.bytes_out
                        );
                    }
                    2 => {
                        let _ = writeln!(out, "{name}{{{conn}}} {}", c.served);
                    }
                    3 => {
                        let _ = writeln!(out, "{name}{{{conn}}} {}", c.errors_sent);
                    }
                    4 => {
                        let _ = writeln!(out, "{name}{{{conn}}} {}", c.protocol_errors);
                    }
                    _ => {
                        let _ = writeln!(out, "{name}{{{conn}}} {}", c.shutdown_rejected);
                    }
                }
            }
        }

        family(
            &mut out,
            "memcom_net_stage_latency_nanos",
            "histogram",
            "Network-stage latency: frame_decode, response_encode, socket_write.",
        );
        for (stage, hist) in [
            ("frame_decode", &self.frame_decode),
            ("response_encode", &self.response_encode),
            ("socket_write", &self.socket_write),
        ] {
            if hist.count() > 0 {
                render_hist(
                    &mut out,
                    "memcom_net_stage_latency_nanos",
                    &format!("stage=\"{stage}\","),
                    hist,
                );
            }
        }

        out.push_str(&self.serve.to_prometheus());
        out
    }

    /// JSON rendering: a `net` object plus the embedded serve snapshot
    /// under `serve`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let hist_json = |h: &LatencyHistogram| {
            format!(
                "{{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
                h.count(),
                h.p50(),
                h.p99(),
                h.max_nanos()
            )
        };
        let mut out = String::from("{\n  \"net\": {\n");
        let _ = writeln!(
            out,
            "    \"uptime_seconds\": {:.3},\n    \"accepted\": {},\n    \"active\": {},",
            self.uptime.as_secs_f64(),
            self.accepted,
            self.active
        );
        let _ = writeln!(
            out,
            "    \"stages\": {{\"frame_decode\": {}, \"response_encode\": {}, \"socket_write\": {}}},",
            hist_json(&self.frame_decode),
            hist_json(&self.response_encode),
            hist_json(&self.socket_write)
        );
        out.push_str("    \"connections\": [");
        for (i, c) in self.connections.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"id\": {}, \"peer\": \"{}\", \"frames_in\": {}, \"frames_out\": {}, \
                 \"bytes_in\": {}, \"bytes_out\": {}, \"served\": {}, \"errors_sent\": {}, \
                 \"protocol_errors\": {}, \"shutdown_rejected\": {}, \"open\": {}}}",
                c.id,
                escape_label(&c.peer),
                c.frames_in,
                c.frames_out,
                c.bytes_in,
                c.bytes_out,
                c.served,
                c.errors_sent,
                c.protocol_errors,
                c.shutdown_rejected,
                c.open
            );
        }
        out.push_str("]\n  },\n  \"serve\": ");
        out.push_str(&self.serve.to_json());
        out.push_str("\n}\n");
        out
    }
}
