//! The network server: accepts many concurrent clients and feeds their
//! lookups into an existing [`Router`]'s shard queues.
//!
//! # Shutdown ordering
//!
//! [`NetServer::shutdown`] drains in a fixed order so no request is
//! silently dropped:
//!
//! 1. The draining flag is raised and the acceptor is unblocked with a
//!    self-connect; it stops accepting and exits.
//! 2. Each connection finishes the request it is serving (its response
//!    is flushed), then spends up to `drain_grace` answering any frames
//!    already on the wire with a typed `shutting_down` error — an
//!    answer, not silence — before closing.
//! 3. The event loop joins every connection, and only then is the
//!    router shut down (workers drain their queues per the serve
//!    tier's own guarantees).
//!
//! The reconciliation consequence: every lookup a client sent either
//! passed through the router (rows / `overloaded` / `deadline_exceeded`
//! — all visible in [`ServeStats`]) or was answered `shutting_down`
//! (visible in the net tier's `shutdown_rejected` counter). Client and
//! server tallies therefore reconcile exactly; `tests/net.rs` proves
//! it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use memcom_serve::{
    EmbedBatch, Router, RouterHandle, ScoreBatch, ServeError, ServeStats, TelemetryConfig,
};

use crate::error::{error_response_for, ErrorCode, NetError};
use crate::telemetry::{ConnTelemetry, NetMetricsSnapshot, NetTelemetry};
use crate::transport::{ByteStream, EventLoop, TcpTransport, ThreadPerConnection, Transport};
use crate::wire::{
    decode_payload, encode_error_lossy, encode_rows, FrameError, FrameReader, Message, ReadEvent,
    WireError, CONNECTION_REQUEST_ID, DEFAULT_MAX_FRAME_LEN,
};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Bind address; `"127.0.0.1:0"` picks an ephemeral loopback port
    /// (read it back from [`NetServer::local_addr`]).
    pub addr: String,
    /// Largest accepted frame payload; larger length prefixes are
    /// rejected before any allocation.
    pub max_frame_len: u32,
    /// Disable write coalescing (`TCP_NODELAY`) — latency-bound RPC
    /// wants frames on the wire immediately.
    pub nodelay: bool,
    /// Read-timeout granularity for idle connections: how quickly a
    /// blocked connection notices the draining flag. Must be non-zero.
    pub poll_tick: Duration,
    /// How long a draining connection keeps answering already-sent
    /// frames with `shutting_down` before closing.
    pub drain_grace: Duration,
    /// Network-tier telemetry. Per-connection counters are always on;
    /// stage histograms (`frame_decode`, `response_encode`,
    /// `socket_write`) record only at [`TelemetryLevel::Full`]
    /// (zero extra clock reads otherwise).
    ///
    /// [`TelemetryLevel::Full`]: memcom_serve::TelemetryLevel::Full
    pub telemetry: TelemetryConfig,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            nodelay: true,
            poll_tick: Duration::from_millis(10),
            drain_grace: Duration::from_millis(50),
            telemetry: TelemetryConfig::off(),
        }
    }
}

struct Shared<T: Transport> {
    router: Arc<Router>,
    config: NetServerConfig,
    telemetry: NetTelemetry,
    draining: AtomicBool,
    transport: T,
}

/// A running network front-end over a [`Router`].
///
/// Generic over [`Transport`] (how bytes move) and [`EventLoop`] (how
/// connections are driven); [`NetServer::start`] wires the stock
/// TCP + thread-per-connection backend.
///
/// Dropping the server without calling
/// [`shutdown`](NetServer::shutdown) leaks the acceptor thread until
/// process exit — always shut down explicitly to get the drain
/// guarantees (and the final stats) described in the module docs.
pub struct NetServer<T: Transport = TcpTransport, E: EventLoop = ThreadPerConnection> {
    shared: Arc<Shared<T>>,
    event_loop: Arc<E>,
    acceptor: Option<JoinHandle<()>>,
    local_addr: String,
}

impl NetServer<TcpTransport, ThreadPerConnection> {
    /// Binds and starts serving with the stock TCP,
    /// thread-per-connection backend.
    ///
    /// # Errors
    ///
    /// Fails on bind errors or a zero `poll_tick`.
    pub fn start(router: Router, config: NetServerConfig) -> crate::Result<Self> {
        Self::start_with(TcpTransport, ThreadPerConnection::new(), router, config)
    }
}

impl<T: Transport, E: EventLoop> NetServer<T, E> {
    /// [`start`](NetServer::start) with explicit transport and
    /// event-loop backends.
    ///
    /// # Errors
    ///
    /// Fails on bind errors or a zero `poll_tick`.
    pub fn start_with(
        transport: T,
        event_loop: E,
        router: Router,
        config: NetServerConfig,
    ) -> crate::Result<Self> {
        if config.poll_tick.is_zero() {
            return Err(NetError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "poll_tick must be non-zero (it bounds drain latency)",
            )));
        }
        let listener = transport.bind(&config.addr)?;
        let local_addr = transport.local_addr(&listener)?;
        let telemetry = NetTelemetry::new(&config.telemetry);
        let shared = Arc::new(Shared {
            router: Arc::new(router),
            config,
            telemetry,
            draining: AtomicBool::new(false),
            transport,
        });
        let event_loop = Arc::new(event_loop);
        let acceptor = {
            let shared = Arc::clone(&shared);
            let event_loop = Arc::clone(&event_loop);
            std::thread::Builder::new()
                .name("memcom-net-accept".into())
                .spawn(move || loop {
                    match shared.transport.accept(&listener) {
                        Ok(stream) => {
                            if shared.draining.load(Ordering::Acquire) {
                                // The shutdown wake-up (or a client that
                                // raced the drain): refuse and exit.
                                let _ = stream.shutdown_both();
                                return;
                            }
                            let conn = shared.telemetry.connection_opened(stream.peer_label());
                            let shared = Arc::clone(&shared);
                            event_loop.dispatch(Box::new(move || {
                                serve_connection(&shared, stream, &conn);
                            }));
                        }
                        Err(_) if shared.draining.load(Ordering::Acquire) => return,
                        // Transient accept failures (e.g. the peer reset
                        // before we picked it up) don't stop the server.
                        Err(_) => {}
                    }
                })
                .map_err(NetError::Io)?
        };
        Ok(NetServer {
            shared,
            event_loop,
            acceptor: Some(acceptor),
            local_addr,
        })
    }

    /// The bound address, with ephemeral ports resolved — hand this to
    /// [`NetClient::connect`](crate::NetClient::connect).
    pub fn local_addr(&self) -> &str {
        &self.local_addr
    }

    /// The router behind this server, for registering models and
    /// reading stats while serving.
    pub fn router(&self) -> &Router {
        &self.shared.router
    }

    /// One consistent snapshot of both tiers: network-stage latencies
    /// and per-connection counters wrapped around the router's own
    /// [`metrics`](Router::metrics).
    pub fn metrics(&self) -> NetMetricsSnapshot {
        self.shared.telemetry.snapshot(self.shared.router.metrics())
    }

    /// Drains and stops everything in the order the module docs
    /// describe, returning the per-model [`ServeStats`] from the
    /// router's shutdown plus the final network snapshot.
    pub fn shutdown(mut self) -> (Vec<(String, ServeStats)>, NetMetricsSnapshot) {
        self.shared.draining.store(true, Ordering::Release);
        // Unblock the acceptor: it wakes on this connection, sees the
        // flag, and exits.
        let _ = self.shared.transport.connect(&self.local_addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // No new dispatches can happen now; join every connection.
        self.event_loop.drain();
        let snapshot = self.shared.telemetry.snapshot(self.shared.router.metrics());
        let Ok(shared) = Arc::try_unwrap(self.shared) else {
            // memcom-lint: allow(L003) -- not a wire path: shutdown() consumed self after joining every connection thread, so this Arc is provably unique
            unreachable!("all connection threads joined, no other Shared owners");
        };
        let Ok(router) = Arc::try_unwrap(shared.router) else {
            // memcom-lint: allow(L003) -- not a wire path: the acceptor and all connections are joined; only shutdown() still holds this Router Arc
            unreachable!("all connection threads joined, no other Router owners");
        };
        (router.shutdown(), snapshot)
    }
}

/// Per-connection service state, reused across requests so the steady
/// state allocates nothing per frame.
struct ConnCtx {
    reader: FrameReader,
    write_buf: Vec<u8>,
    ids: Vec<usize>,
    batch: EmbedBatch,
    score_batch: ScoreBatch,
    handles: HashMap<String, RouterHandle>,
    stages_on: bool,
}

// memcom-lint: hot-path
fn serve_connection<T: Transport>(shared: &Shared<T>, mut stream: T::Stream, conn: &ConnTelemetry) {
    let _ = stream.set_nodelay(shared.config.nodelay);
    let _ = stream.set_read_timeout(Some(shared.config.poll_tick));
    let mut ctx = ConnCtx {
        reader: FrameReader::new(shared.config.max_frame_len),
        write_buf: Vec::new(),
        ids: Vec::new(),
        batch: EmbedBatch::new(),
        score_batch: ScoreBatch::new(),
        handles: HashMap::new(),
        stages_on: shared.telemetry.stages_on(),
    };
    let mut drain_eligible = true;
    loop {
        if shared.draining.load(Ordering::Acquire) {
            break;
        }
        match ctx.reader.read_frame(&mut stream) {
            Ok(ReadEvent::Frame) => {
                if !handle_frame(shared, &mut stream, conn, &mut ctx, false) {
                    drain_eligible = false;
                    break;
                }
            }
            // The peer closed; there is nothing left to drain.
            Ok(ReadEvent::Eof) => {
                drain_eligible = false;
                break;
            }
            Ok(ReadEvent::TimedOut) => continue,
            Err(FrameError::Wire(err)) => {
                // An oversized length prefix — rejected before any
                // allocation. The framing is no longer trustworthy, so
                // answer once at connection level and close.
                conn.protocol_errors.fetch_add(1, Ordering::Relaxed);
                send_error(
                    &mut stream,
                    conn,
                    &mut ctx,
                    CONNECTION_REQUEST_ID,
                    ErrorCode::Malformed,
                    &err.to_string(),
                );
                drain_eligible = false;
                break;
            }
            Err(FrameError::Io(_)) => {
                drain_eligible = false;
                break;
            }
        }
    }
    if drain_eligible && shared.draining.load(Ordering::Acquire) {
        drain_connection(shared, &mut stream, conn, &mut ctx);
    }
    let _ = stream.shutdown_both();
    conn.open.store(false, Ordering::Relaxed);
}
// memcom-lint: end-hot-path

/// The shutdown drain: keep answering frames already on the wire with
/// typed `shutting_down` errors (never silence) until the grace period
/// lapses or the peer closes.
fn drain_connection<T: Transport>(
    shared: &Shared<T>,
    stream: &mut T::Stream,
    conn: &ConnTelemetry,
    ctx: &mut ConnCtx,
) {
    let deadline = Instant::now() + shared.config.drain_grace;
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let _ = stream.set_read_timeout(Some((deadline - now).min(shared.config.poll_tick)));
        match ctx.reader.read_frame(stream) {
            Ok(ReadEvent::Frame) => {
                if !handle_frame(shared, stream, conn, ctx, true) {
                    return;
                }
            }
            Ok(ReadEvent::TimedOut) => continue,
            Ok(ReadEvent::Eof) | Err(_) => return,
        }
    }
}

/// Serves one decoded frame. Returns `false` when the connection must
/// close (protocol violation or a failed write).
// memcom-lint: hot-path
fn handle_frame<T: Transport>(
    shared: &Shared<T>,
    stream: &mut T::Stream,
    conn: &ConnTelemetry,
    ctx: &mut ConnCtx,
    draining: bool,
) -> bool {
    let payload = ctx.reader.payload();
    conn.frames_in.fetch_add(1, Ordering::Relaxed);
    conn.bytes_in
        .fetch_add(4 + payload.len() as u64, Ordering::Relaxed);
    let started = ctx.stages_on.then(Instant::now);
    let decoded = decode_payload(payload);
    if let Some(started) = started {
        conn.record_stage(|s| &mut s.frame_decode, started);
    }
    match decoded {
        Ok(Message::Lookup(req)) => {
            if draining {
                conn.shutdown_rejected.fetch_add(1, Ordering::Relaxed);
                return send_error(
                    stream,
                    conn,
                    ctx,
                    req.request_id,
                    ErrorCode::ShuttingDown,
                    "server is draining",
                );
            }
            serve_lookup(shared, stream, conn, ctx, &req)
        }
        Ok(Message::Score(req)) => {
            if draining {
                conn.shutdown_rejected.fetch_add(1, Ordering::Relaxed);
                return send_error(
                    stream,
                    conn,
                    ctx,
                    req.request_id,
                    ErrorCode::ShuttingDown,
                    "server is draining",
                );
            }
            serve_score(shared, stream, conn, ctx, &req)
        }
        // Rows/Error frames flow server→client only; a client sending
        // one is confused but the framing is intact, so answer typed
        // and keep the connection.
        Ok(Message::Rows(r)) => {
            conn.protocol_errors.fetch_add(1, Ordering::Relaxed);
            send_error(
                stream,
                conn,
                ctx,
                r.request_id,
                ErrorCode::Unsupported,
                "rows frames are server-to-client only",
            )
        }
        Ok(Message::Error(e)) => {
            conn.protocol_errors.fetch_add(1, Ordering::Relaxed);
            send_error(
                stream,
                conn,
                ctx,
                e.request_id,
                ErrorCode::Unsupported,
                "error frames are server-to-client only",
            )
        }
        Err(err) => {
            // The payload did not parse: answer once at connection
            // level, then close — a peer this confused may also have
            // confused framing.
            conn.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let code = match err {
                WireError::UnknownVersion(_) | WireError::UnknownKind(_) => ErrorCode::Unsupported,
                _ => ErrorCode::Malformed,
            };
            send_error(
                stream,
                conn,
                ctx,
                CONNECTION_REQUEST_ID,
                code,
                &err.to_string(),
            );
            false
        }
    }
}

fn serve_lookup<T: Transport>(
    shared: &Shared<T>,
    stream: &mut T::Stream,
    conn: &ConnTelemetry,
    ctx: &mut ConnCtx,
    req: &crate::wire::LookupRequest,
) -> bool {
    ctx.ids.clear();
    ctx.ids.extend(req.ids.iter().map(|&id| id as usize));
    // The dtype hint is advisory (a cache/runtime prefetch hint); the
    // server always answers decoded f32 rows regardless.
    let mut retried = false;
    let result = loop {
        let handle = match ctx.handles.get(&req.model) {
            Some(h) => h,
            None => match shared.router.handle(&req.model) {
                Ok(h) => ctx.handles.entry(req.model.clone()).or_insert(h),
                Err(e) => break Err(e),
            },
        };
        let r = handle.get_batch_into_with_deadline(&ctx.ids, &mut ctx.batch, req.deadline);
        // A cached handle outlives deregistration; drop it and resolve
        // once more so a re-registered model under the same name is
        // picked up.
        if !retried && matches!(r, Err(ServeError::ModelNotFound { .. })) {
            ctx.handles.remove(&req.model);
            retried = true;
            continue;
        }
        break r;
    };
    match result {
        Ok(()) => {
            ctx.write_buf.clear();
            let started = ctx.stages_on.then(Instant::now);
            let encoded = u32::try_from(ctx.batch.dim())
                .map_err(|_| WireError::TooLarge {
                    payload: ctx.batch.dim() as u64,
                    max: DEFAULT_MAX_FRAME_LEN,
                })
                .and_then(|dim| {
                    encode_rows(req.request_id, dim, ctx.batch.data(), &mut ctx.write_buf)
                });
            if let Err(wire_err) = encoded {
                // The slab cannot travel (e.g. a batch over the frame
                // cap): the client still deserves an answer on this
                // request id, so downgrade to a typed error frame.
                ctx.write_buf.clear();
                encode_error_lossy(
                    req.request_id,
                    ErrorCode::Internal,
                    Duration::ZERO,
                    &wire_err.to_string(),
                    &mut ctx.write_buf,
                );
                if let Some(started) = started {
                    conn.record_stage(|s| &mut s.response_encode, started);
                }
                conn.errors_sent.fetch_add(1, Ordering::Relaxed);
                return send_buffered(stream, conn, ctx);
            }
            if let Some(started) = started {
                conn.record_stage(|s| &mut s.response_encode, started);
            }
            conn.served.fetch_add(1, Ordering::Relaxed);
            send_buffered(stream, conn, ctx)
        }
        Err(err) => {
            let resp = error_response_for(req.request_id, &err);
            ctx.write_buf.clear();
            let started = ctx.stages_on.then(Instant::now);
            encode_error_lossy(
                resp.request_id,
                resp.code,
                resp.retry_after,
                &resp.message,
                &mut ctx.write_buf,
            );
            if let Some(started) = started {
                conn.record_stage(|s| &mut s.response_encode, started);
            }
            conn.errors_sent.fetch_add(1, Ordering::Relaxed);
            send_buffered(stream, conn, ctx)
        }
    }
}

/// Serves one score request: ids through the model's inference backend,
/// answered as a single-row slab of `dim = K` output scores. Mirrors
/// [`serve_lookup`]'s handle caching, deregistration retry, and
/// downgrade-to-typed-error paths exactly.
fn serve_score<T: Transport>(
    shared: &Shared<T>,
    stream: &mut T::Stream,
    conn: &ConnTelemetry,
    ctx: &mut ConnCtx,
    req: &crate::wire::ScoreRequest,
) -> bool {
    ctx.ids.clear();
    ctx.ids.extend(req.ids.iter().map(|&id| id as usize));
    let mut retried = false;
    let result = loop {
        let handle = match ctx.handles.get(&req.model) {
            Some(h) => h,
            None => match shared.router.handle(&req.model) {
                Ok(h) => ctx.handles.entry(req.model.clone()).or_insert(h),
                Err(e) => break Err(e),
            },
        };
        let r = handle.score_batch_into_with_deadline(&ctx.ids, &mut ctx.score_batch, req.deadline);
        // A cached handle outlives deregistration; drop it and resolve
        // once more so a re-registered model under the same name is
        // picked up.
        if !retried && matches!(r, Err(ServeError::ModelNotFound { .. })) {
            ctx.handles.remove(&req.model);
            retried = true;
            continue;
        }
        break r;
    };
    match result {
        Ok(()) => {
            ctx.write_buf.clear();
            let started = ctx.stages_on.then(Instant::now);
            let scores = ctx.score_batch.scores();
            let encoded = u32::try_from(scores.len())
                .map_err(|_| WireError::TooLarge {
                    payload: scores.len() as u64,
                    max: DEFAULT_MAX_FRAME_LEN,
                })
                .and_then(|dim| encode_rows(req.request_id, dim, scores, &mut ctx.write_buf));
            if let Err(wire_err) = encoded {
                ctx.write_buf.clear();
                encode_error_lossy(
                    req.request_id,
                    ErrorCode::Internal,
                    Duration::ZERO,
                    &wire_err.to_string(),
                    &mut ctx.write_buf,
                );
                if let Some(started) = started {
                    conn.record_stage(|s| &mut s.response_encode, started);
                }
                conn.errors_sent.fetch_add(1, Ordering::Relaxed);
                return send_buffered(stream, conn, ctx);
            }
            if let Some(started) = started {
                conn.record_stage(|s| &mut s.response_encode, started);
            }
            conn.served.fetch_add(1, Ordering::Relaxed);
            send_buffered(stream, conn, ctx)
        }
        Err(err) => {
            let resp = error_response_for(req.request_id, &err);
            ctx.write_buf.clear();
            let started = ctx.stages_on.then(Instant::now);
            encode_error_lossy(
                resp.request_id,
                resp.code,
                resp.retry_after,
                &resp.message,
                &mut ctx.write_buf,
            );
            if let Some(started) = started {
                conn.record_stage(|s| &mut s.response_encode, started);
            }
            conn.errors_sent.fetch_add(1, Ordering::Relaxed);
            send_buffered(stream, conn, ctx)
        }
    }
}

fn send_error<S: ByteStream>(
    stream: &mut S,
    conn: &ConnTelemetry,
    ctx: &mut ConnCtx,
    request_id: u64,
    code: ErrorCode,
    message: &str,
) -> bool {
    ctx.write_buf.clear();
    let started = ctx.stages_on.then(Instant::now);
    encode_error_lossy(
        request_id,
        code,
        Duration::ZERO,
        message,
        &mut ctx.write_buf,
    );
    if let Some(started) = started {
        conn.record_stage(|s| &mut s.response_encode, started);
    }
    conn.errors_sent.fetch_add(1, Ordering::Relaxed);
    send_buffered(stream, conn, ctx)
}

/// Flushes `ctx.write_buf` to the socket, timing the write at Full
/// telemetry. Returns `false` when the write fails (peer gone).
fn send_buffered<S: ByteStream>(stream: &mut S, conn: &ConnTelemetry, ctx: &mut ConnCtx) -> bool {
    let started = ctx.stages_on.then(Instant::now);
    let ok = stream
        .write_all(&ctx.write_buf)
        .and_then(|_| stream.flush())
        .is_ok();
    if let Some(started) = started {
        conn.record_stage(|s| &mut s.socket_write, started);
    }
    if ok {
        conn.frames_out.fetch_add(1, Ordering::Relaxed);
        conn.bytes_out
            .fetch_add(ctx.write_buf.len() as u64, Ordering::Relaxed);
    }
    ok
}
// memcom-lint: end-hot-path
