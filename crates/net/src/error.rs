//! Typed protocol errors and the client-side error type.
//!
//! [`ErrorCode`] is the wire-level vocabulary: every
//! [`ServeError`] a lookup can produce maps
//! onto one code via [`error_response_for`], so a *remote* client gets
//! the same overload semantics an in-process caller does —
//! [`ErrorCode::Overloaded`] carries the server's `retry_after` hint in
//! nanoseconds, and [`ErrorCode::DeadlineExceeded`] distinguishes
//! deadline drops from admission sheds. Before this crate those hints
//! died at the process boundary.

use std::time::Duration;

use memcom_serve::ServeError;

use crate::wire::{ErrorResponse, WireError};

/// The wire-level error vocabulary (`u16` on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ErrorCode {
    /// Shed at admission ([`ServeError::Overloaded`]); the response's
    /// `retry_after` is the server's suggested backoff.
    Overloaded = 1,
    /// Dropped at dequeue past its end-to-end deadline
    /// ([`ServeError::DeadlineExceeded`]).
    DeadlineExceeded = 2,
    /// No model with the requested name is registered
    /// ([`ServeError::ModelNotFound`]).
    ModelNotFound = 3,
    /// An id is outside the served vocabulary
    /// ([`ServeError::IdOutOfVocab`]).
    IdOutOfVocab = 4,
    /// The server is draining and no longer admits requests
    /// ([`ServeError::ShuttingDown`], and the server's own drain path).
    ShuttingDown = 5,
    /// The request frame violated the protocol (truncated body, bad
    /// UTF-8 model name, oversized length prefix, trailing bytes).
    Malformed = 6,
    /// The frame used an unknown protocol version or kind.
    Unsupported = 7,
    /// A server-side failure that is a bug or misconfiguration, not a
    /// load condition ([`ServeError::WorkerLost`] and friends).
    Internal = 8,
}

impl ErrorCode {
    /// The wire representation.
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// Parses the wire representation.
    pub fn from_u16(raw: u16) -> Option<Self> {
        Some(match raw {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::DeadlineExceeded,
            3 => ErrorCode::ModelNotFound,
            4 => ErrorCode::IdOutOfVocab,
            5 => ErrorCode::ShuttingDown,
            6 => ErrorCode::Malformed,
            7 => ErrorCode::Unsupported,
            8 => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// Stable lower-snake name (exporter label, log lines).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::ModelNotFound => "model_not_found",
            ErrorCode::IdOutOfVocab => "id_out_of_vocab",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Malformed => "malformed",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::Internal => "internal",
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Maps a serving failure onto its typed wire error, preserving the
/// `retry_after` hint of [`ServeError::Overloaded`] so remote clients
/// can pace themselves exactly like in-process ones.
pub fn error_response_for(request_id: u64, err: &ServeError) -> ErrorResponse {
    let (code, retry_after) = match err {
        ServeError::Overloaded { retry_after, .. } => (ErrorCode::Overloaded, *retry_after),
        ServeError::DeadlineExceeded { .. } => (ErrorCode::DeadlineExceeded, Duration::ZERO),
        ServeError::ModelNotFound { .. } => (ErrorCode::ModelNotFound, Duration::ZERO),
        ServeError::IdOutOfVocab { .. } => (ErrorCode::IdOutOfVocab, Duration::ZERO),
        ServeError::ShuttingDown => (ErrorCode::ShuttingDown, Duration::ZERO),
        _ => (ErrorCode::Internal, Duration::ZERO),
    };
    ErrorResponse {
        request_id,
        code,
        retry_after,
        message: err.to_string(),
    }
}

/// Everything a [`NetClient`](crate::NetClient) call can fail with.
#[derive(Debug)]
pub enum NetError {
    /// A local I/O failure (connect, read, write).
    Io(std::io::Error),
    /// The peer violated the wire protocol.
    Protocol(WireError),
    /// The server answered with a typed error frame.
    Remote {
        /// The typed error.
        code: ErrorCode,
        /// Suggested backoff (non-zero only for
        /// [`ErrorCode::Overloaded`]).
        retry_after: Duration,
        /// The server's human-readable detail.
        message: String,
    },
    /// A degenerate configuration (zero clients, bad rates, …).
    BadConfig(String),
    /// The connection closed with this request still pending — the
    /// request may or may not have been served; nothing was received
    /// for it.
    ConnectionClosed,
    /// The client was closed locally before or during this call.
    ClientClosed,
}

impl NetError {
    /// The typed error code, for [`NetError::Remote`] outcomes.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            NetError::Remote { code, .. } => Some(*code),
            _ => None,
        }
    }

    /// The server's backoff hint, when this is an overload rejection.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            NetError::Remote {
                code: ErrorCode::Overloaded,
                retry_after,
                ..
            } => Some(*retry_after),
            _ => None,
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Protocol(e) => write!(f, "protocol error: {e}"),
            NetError::Remote {
                code,
                retry_after,
                message,
            } => {
                write!(f, "server error [{code}]: {message}")?;
                if !retry_after.is_zero() {
                    write!(f, " (retry in {retry_after:?})")?;
                }
                Ok(())
            }
            NetError::BadConfig(context) => write!(f, "bad config: {context}"),
            NetError::ConnectionClosed => write!(f, "connection closed with the request pending"),
            NetError::ClientClosed => write!(f, "client already closed"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Protocol(e)
    }
}

/// Convenience alias used throughout this crate.
pub type Result<T> = std::result::Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for code in [
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::ModelNotFound,
            ErrorCode::IdOutOfVocab,
            ErrorCode::ShuttingDown,
            ErrorCode::Malformed,
            ErrorCode::Unsupported,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u16(code.as_u16()), Some(code));
        }
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(999), None);
    }

    #[test]
    fn serve_errors_map_with_hints_preserved() {
        let shed = ServeError::Overloaded {
            waited: Duration::from_micros(200),
            retry_after: Duration::from_millis(4),
        };
        let resp = error_response_for(7, &shed);
        assert_eq!(resp.code, ErrorCode::Overloaded);
        assert_eq!(resp.retry_after, Duration::from_millis(4));
        assert_eq!(resp.request_id, 7);

        let expired = ServeError::DeadlineExceeded {
            queued: Duration::from_millis(30),
            deadline: Duration::from_millis(25),
        };
        assert_eq!(
            error_response_for(1, &expired).code,
            ErrorCode::DeadlineExceeded
        );
        assert_eq!(
            error_response_for(1, &ServeError::ShuttingDown).code,
            ErrorCode::ShuttingDown
        );
        assert_eq!(
            error_response_for(1, &ServeError::WorkerLost).code,
            ErrorCode::Internal
        );
    }
}
