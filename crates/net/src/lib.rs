//! Network-attached serving for memcom (MEmCom, MLSys 2022).
//!
//! The serve tier batches and shards lookups inside one process; this
//! crate puts it behind a socket, because the paper's deployment
//! target — an embedding store too large to replicate into every
//! inference process — implies lookups arrive over a network. The
//! overload semantics the serve tier spent previous iterations earning
//! (typed sheds with `retry_after` hints, deadline drops, loss-free
//! drains) would die at the process boundary without a protocol that
//! carries them; this crate is that protocol plus the two endpoints.
//!
//! * [`wire`] — the length-framed binary protocol: a versioned header,
//!   a request id for pipelining, batch lookups **and full-model score
//!   requests** (same body, one kind byte apart) with a model name +
//!   ids + an advisory dtype hint + an optional deadline, and
//!   responses that are either a row slab or a typed error carrying
//!   `retry_after` nanos. Strict decode: every malformation is a typed
//!   [`WireError`], never a panic; oversized length prefixes are
//!   rejected before allocation.
//! * [`transport`] — runtime-agnostic [`Transport`] (how bytes move)
//!   and [`EventLoop`] (how connections are driven) traits. The stock
//!   backend is `std::net` TCP with a thread per connection; a
//!   poll/mio-style reactor slots in behind the same traits without
//!   touching the server core.
//! * [`NetServer`] — accepts many concurrent clients and feeds the
//!   existing [`Router`](memcom_serve::Router)'s shard queues; wire
//!   deadlines map onto admission control via the serve tier's
//!   per-request deadline hooks. Graceful shutdown drains connections
//!   (in-flight responses flushed, already-sent frames answered with a
//!   typed `shutting_down` — never silence) before stopping workers.
//! * [`NetClient`] — request pipelining over one connection, blocking
//!   or ticket-based, honoring server `retry_after` hints
//!   automatically.
//! * [`loadgen`] — the serve tier's Zipf load generator over real
//!   sockets, with identical seeding and traffic digests so networked
//!   and in-process runs are directly comparable.
//! * [`telemetry`] — network-stage histograms (`frame_decode`,
//!   `response_encode`, `socket_write`) and always-on per-connection
//!   counters, exported as `memcom_net_*` Prometheus series or JSON
//!   with the serve tier's snapshot embedded. The serve tier's
//!   zero-clock-read guarantee at `TelemetryConfig::off()` extends
//!   across the network stages.
//!
//! # Reconciliation contract
//!
//! Every lookup a client sends is answered exactly once: with rows,
//! with a typed router error (`overloaded` / `deadline_exceeded` / …),
//! or with `shutting_down` during a drain. Rows and router errors pass
//! through the router and appear in [`ServeStats`](memcom_serve::ServeStats);
//! drain answers never enter the router and are counted in the net
//! tier's `shutdown_rejected`. Client tallies therefore reconcile
//! exactly with server stats — the integration tests assert equality,
//! not approximation.

pub mod client;
pub mod error;
pub mod loadgen;
pub mod server;
pub mod telemetry;
pub mod transport;
pub mod wire;

pub use client::{NetClient, NetClientConfig, NetClientStats, Pending};
pub use error::{error_response_for, ErrorCode, NetError, Result};
pub use loadgen::{run_net_load, run_net_score_load, NetLoadReport};
pub use server::{NetServer, NetServerConfig};
pub use telemetry::{ConnectionMetrics, NetMetricsSnapshot};
pub use transport::{ByteStream, EventLoop, TcpTransport, ThreadPerConnection, Transport};
pub use wire::{
    ErrorResponse, FrameReader, LookupRequest, Message, ReadEvent, RowsResponse, ScoreRequest,
    WireError, DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};
