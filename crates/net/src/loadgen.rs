//! Networked load generation: the serve tier's Zipf loadgen driven
//! through real sockets.
//!
//! [`run_net_load`] mirrors [`memcom_serve::loadgen`] deliberately —
//! same [`LoadGenConfig`], same per-client seeding (`seed +
//! client_idx`), same FNV traffic digest, same open-loop
//! scheduled-send pacing (latency measured from the *scheduled*
//! arrival, charging queueing to the system) — so a networked run's
//! `traffic_checksum` is directly comparable with an in-process run of
//! the same config, and any throughput difference is attributable to
//! the wire, not to different traffic.
//!
//! Each client thread opens its own connection. Closed-loop clients
//! honor the server's `retry_after` hints (the [`NetClient`] sleeps
//! them out before the next send); open-loop clients keep their
//! arrival schedule and only record the hints, exactly like the
//! in-process generator.

use std::time::{Duration, Instant};

use memcom_data::Zipf;
use memcom_serve::{LatencyHistogram, LoadGenConfig, LoadMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::client::{NetClient, NetClientConfig, NetClientStats};
use crate::error::{ErrorCode, NetError};
use crate::Result;

/// What a networked load run observed.
#[derive(Debug, Clone)]
pub struct NetLoadReport {
    /// Completed requests (answered with rows).
    pub requests: u64,
    /// `overloaded` rejections.
    pub shed: u64,
    /// `deadline_exceeded` rejections.
    pub expired: u64,
    /// `shutting_down` rejections (server drain answers).
    pub shutdown_rejected: u64,
    /// Ids embedded per request.
    pub ids_per_request: usize,
    /// Wall-clock span of the run.
    pub elapsed: Duration,
    /// Per-request latency distribution (completed requests, measured
    /// from the scheduled send under open loop).
    pub histogram: LatencyHistogram,
    /// Order-independent digest of the issued traffic; equals the
    /// in-process generator's checksum for the same config and vocab.
    pub traffic_checksum: u64,
    /// Aggregated client-side tallies across every connection — the
    /// client half of the client/server reconciliation.
    pub client: NetClientStats,
}

impl NetLoadReport {
    /// *Completed* requests per second (the goodput).
    pub fn qps(&self) -> f64 {
        per_second(self.requests, self.elapsed)
    }

    /// Synonym for [`qps`](Self::qps), for overload tables read
    /// against [`offered_qps`](Self::offered_qps).
    pub fn goodput(&self) -> f64 {
        self.qps()
    }

    /// Requests issued: completed + shed + expired + drain-rejected.
    pub fn offered(&self) -> u64 {
        self.requests + self.shed + self.expired + self.shutdown_rejected
    }

    /// Issued requests per second (the offered load).
    pub fn offered_qps(&self) -> f64 {
        per_second(self.offered(), self.elapsed)
    }

    /// Fraction of issued requests rejected instead of answered with
    /// rows.
    pub fn shed_rate(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            0.0
        } else {
            (offered - self.requests) as f64 / offered as f64
        }
    }

    /// Mean server backoff hint per shed request.
    pub fn mean_backoff(&self) -> Duration {
        self.client.mean_backoff()
    }
}

fn per_second(count: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs == 0.0 {
        0.0
    } else {
        count as f64 / secs
    }
}

fn arrival_tick(mode: LoadMode) -> Result<Duration> {
    match mode {
        LoadMode::Closed => Ok(Duration::ZERO),
        LoadMode::Open { target_qps } => {
            if !target_qps.is_finite() || target_qps <= 0.0 {
                return Err(NetError::BadConfig(format!(
                    "open-loop target_qps must be positive, got {target_qps}"
                )));
            }
            Ok(Duration::from_secs_f64(1.0 / target_qps))
        }
    }
}

/// When request `k` of `client_idx` starts — identical to the
/// in-process generator's schedule so latency semantics match.
fn request_start(
    mode: LoadMode,
    tick: Duration,
    started: Instant,
    client_idx: usize,
    clients: usize,
    k: usize,
) -> Instant {
    match mode {
        LoadMode::Closed => Instant::now(),
        LoadMode::Open { .. } => {
            let index = (client_idx + k * clients) as f64;
            let scheduled = started + Duration::from_secs_f64(tick.as_secs_f64() * index);
            let now = Instant::now();
            if scheduled > now {
                std::thread::sleep(scheduled - now);
            }
            scheduled
        }
    }
}

/// The in-process generator's FNV request digest, bit for bit, so
/// checksums agree across tiers.
fn request_digest(model_idx: usize, ids: &[usize]) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (model_idx as u64).wrapping_mul(FNV_PRIME);
    for &id in ids {
        h ^= id as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

struct ClientNetTally {
    histogram: LatencyHistogram,
    checksum: u64,
    stats: NetClientStats,
}

/// Runs Zipf traffic against a network server at `addr`, one
/// connection per client thread.
///
/// `vocab` is the served model's vocabulary size (the Zipf support);
/// `deadline` is attached to every request and mapped onto the
/// server's admission control.
///
/// # Errors
///
/// [`NetError::BadConfig`] for degenerate configs; connection failures
/// and non-overload server errors propagate from the first client that
/// hits one.
pub fn run_net_load(
    addr: &str,
    model: &str,
    vocab: usize,
    config: &LoadGenConfig,
    deadline: Option<Duration>,
) -> Result<NetLoadReport> {
    run_net_load_inner(addr, model, vocab, config, deadline, false)
}

/// [`run_net_load`] over the **score path**: identical Zipf traffic,
/// seeding, pacing, and FNV digest, but every request is a full-model
/// [`NetClient::score`] instead of a row lookup — so a score run's
/// `traffic_checksum` matches a lookup run of the same config and any
/// throughput delta is attributable to the inference backend, not to
/// different traffic.
///
/// # Errors
///
/// Same as [`run_net_load`].
pub fn run_net_score_load(
    addr: &str,
    model: &str,
    vocab: usize,
    config: &LoadGenConfig,
    deadline: Option<Duration>,
) -> Result<NetLoadReport> {
    run_net_load_inner(addr, model, vocab, config, deadline, true)
}

fn run_net_load_inner(
    addr: &str,
    model: &str,
    vocab: usize,
    config: &LoadGenConfig,
    deadline: Option<Duration>,
    score: bool,
) -> Result<NetLoadReport> {
    if config.clients == 0 || config.requests_per_client == 0 || config.ids_per_request == 0 {
        return Err(NetError::BadConfig(
            "load generation needs >= 1 client, request, and id per request".into(),
        ));
    }
    let zipf = Zipf::new(vocab, config.zipf_exponent)
        .map_err(|e| NetError::BadConfig(format!("zipf construction failed: {e}")))?;
    let tick = arrival_tick(config.mode)?;
    let client_config = NetClientConfig {
        deadline,
        // Closed-loop clients control their own pacing, so they honor
        // the hints; open-loop clients must keep their schedule.
        honor_backoff: config.mode == LoadMode::Closed,
        ..NetClientConfig::default()
    };

    let started = Instant::now();
    let outcomes: Vec<Result<ClientNetTally>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..config.clients)
            .map(|client_idx| {
                let zipf = &zipf;
                let client_config = &client_config;
                scope.spawn(move || {
                    net_client_loop(
                        addr,
                        model,
                        zipf,
                        config,
                        client_config,
                        tick,
                        client_idx,
                        started,
                        deadline,
                        score,
                    )
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("networked load-generator client panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut histogram = LatencyHistogram::new();
    let mut checksum = 0u64;
    let mut totals = NetClientStats::default();
    for outcome in outcomes {
        let tally = outcome?;
        histogram.merge(&tally.histogram);
        checksum = checksum.wrapping_add(tally.checksum);
        add_stats(&mut totals, &tally.stats);
    }
    Ok(NetLoadReport {
        requests: histogram.count(),
        shed: totals.shed,
        expired: totals.expired,
        shutdown_rejected: totals.shutdown_rejected,
        ids_per_request: config.ids_per_request,
        elapsed,
        histogram,
        traffic_checksum: checksum,
        client: totals,
    })
}

fn add_stats(into: &mut NetClientStats, from: &NetClientStats) {
    into.sent += from.sent;
    into.served += from.served;
    into.shed += from.shed;
    into.expired += from.expired;
    into.shutdown_rejected += from.shutdown_rejected;
    into.other_errors += from.other_errors;
    into.backoff_hint_nanos += from.backoff_hint_nanos;
    into.backoff_slept_nanos += from.backoff_slept_nanos;
}

#[allow(clippy::too_many_arguments)]
fn net_client_loop(
    addr: &str,
    model: &str,
    zipf: &Zipf,
    config: &LoadGenConfig,
    client_config: &NetClientConfig,
    tick: Duration,
    client_idx: usize,
    started: Instant,
    deadline: Option<Duration>,
    score: bool,
) -> Result<ClientNetTally> {
    let client = NetClient::connect(addr, client_config.clone())?;
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(client_idx as u64));
    let mut histogram = LatencyHistogram::new();
    let mut checksum = 0u64;
    let mut wire_ids: Vec<u64> = Vec::with_capacity(config.ids_per_request);
    for k in 0..config.requests_per_client {
        let ids = zipf.sample_many(config.ids_per_request, &mut rng);
        checksum = checksum.wrapping_add(request_digest(0, &ids));
        wire_ids.clear();
        wire_ids.extend(ids.iter().map(|&id| id as u64));
        let t0 = request_start(config.mode, tick, started, client_idx, config.clients, k);
        let outcome = if score {
            client.score_with_deadline(model, &wire_ids, deadline)
        } else {
            client.lookup_with_deadline(model, &wire_ids, deadline)
        };
        match outcome {
            Ok(_) => histogram.record(t0.elapsed().as_nanos() as u64),
            // Overload outcomes *are* the measurement; the client's
            // reader thread already tallied them (and set the backoff).
            Err(NetError::Remote {
                code: ErrorCode::Overloaded | ErrorCode::DeadlineExceeded | ErrorCode::ShuttingDown,
                ..
            }) => {}
            Err(e) => return Err(e),
        }
    }
    let stats = client.close();
    Ok(ClientNetTally {
        histogram,
        checksum,
        stats,
    })
}
