//! The pipelined network client.
//!
//! One connection carries many in-flight requests: [`NetClient::send`]
//! writes a frame and returns a [`Pending`] ticket immediately; a
//! dedicated reader thread matches response frames back to tickets by
//! request id, so callers overlap request latency freely. The blocking
//! [`NetClient::lookup`] is `send` + [`Pending::wait`].
//!
//! # Backoff
//!
//! Overload rejections carry the server's `retry_after` hint. With
//! [`NetClientConfig::honor_backoff`] set (the default) the client
//! sleeps out the most recent hint before its next send — the same
//! pacing contract the in-process load generator follows — and
//! [`NetClientStats`] reports both the hinted and the actually-slept
//! backoff so experiments can prove the hints were honored.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use memcom_serve::Dtype;
use parking_lot::{Condvar, Mutex};

use crate::error::{ErrorCode, NetError};
use crate::transport::{ByteStream, TcpTransport, Transport};
use crate::wire::{
    decode_payload, encode_lookup, encode_score, FrameReader, LookupRequest, Message, ReadEvent,
    RowsResponse, ScoreRequest, CONNECTION_REQUEST_ID, DEFAULT_MAX_FRAME_LEN,
};
use crate::Result;

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct NetClientConfig {
    /// Default per-request deadline attached to every
    /// [`lookup`](NetClient::lookup); the server maps it onto admission
    /// control under shed-mode policies.
    pub deadline: Option<Duration>,
    /// Sleep out the server's most recent `retry_after` hint before
    /// the next send.
    pub honor_backoff: bool,
    /// Largest accepted response frame.
    pub max_frame_len: u32,
    /// Disable write coalescing on the connection.
    pub nodelay: bool,
    /// Advisory dtype hint attached to requests (the compressed
    /// representation the caller expects the server to be holding).
    pub dtype_hint: Option<Dtype>,
}

impl Default for NetClientConfig {
    fn default() -> Self {
        NetClientConfig {
            deadline: None,
            honor_backoff: true,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            nodelay: true,
            dtype_hint: None,
        }
    }
}

/// Outcome tallies and backoff accounting, snapshot via
/// [`NetClient::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetClientStats {
    /// Requests successfully written to the socket.
    pub sent: u64,
    /// Row responses received.
    pub served: u64,
    /// `overloaded` rejections received.
    pub shed: u64,
    /// `deadline_exceeded` rejections received.
    pub expired: u64,
    /// `shutting_down` rejections received (the server's drain answers;
    /// these never entered the router).
    pub shutdown_rejected: u64,
    /// Every other typed error received.
    pub other_errors: u64,
    /// Sum of the server's `retry_after` hints, nanoseconds.
    pub backoff_hint_nanos: u64,
    /// Backoff actually slept before sends, nanoseconds.
    pub backoff_slept_nanos: u64,
}

impl NetClientStats {
    /// Mean server backoff hint per shed request.
    pub fn mean_backoff(&self) -> Duration {
        self.backoff_hint_nanos
            .checked_div(self.shed)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }
}

#[derive(Debug, Default)]
struct Counters {
    sent: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    shutdown_rejected: AtomicU64,
    other_errors: AtomicU64,
    backoff_hint_nanos: AtomicU64,
    backoff_slept_nanos: AtomicU64,
}

/// One reply's rendezvous: the reader thread fills it, the waiter
/// blocks on it.
struct ReplySlot {
    state: Mutex<Option<Result<RowsResponse>>>,
    cv: Condvar,
}

impl ReplySlot {
    fn new() -> Self {
        ReplySlot {
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fill(&self, result: Result<RowsResponse>) {
        let mut state = self.state.lock();
        // First write wins: a race between a real reply and the
        // connection teardown must not clobber the reply.
        if state.is_none() {
            *state = Some(result);
            self.cv.notify_all();
        }
    }

    fn wait(&self) -> Result<RowsResponse> {
        let mut state = self.state.lock();
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            self.cv.wait(&mut state);
        }
    }
}

struct WriterState<S: ByteStream> {
    stream: S,
    buf: Vec<u8>,
}

struct ClientInner<S: ByteStream> {
    config: NetClientConfig,
    writer: Mutex<WriterState<S>>,
    pending: Mutex<HashMap<u64, Arc<ReplySlot>>>,
    next_id: AtomicU64,
    closed: AtomicBool,
    /// Set (under the `pending` lock) when the reader thread gives up
    /// on the connection; no reply can arrive past this point.
    dead: AtomicBool,
    backoff_until: Mutex<Option<Instant>>,
    counters: Counters,
}

impl<S: ByteStream> ClientInner<S> {
    /// Fails every pending request with `make()`'s error and hands the
    /// slots their verdicts; used on connection teardown. Marks the
    /// connection dead *while holding the pending lock*, so a
    /// concurrent `send` either sees the flag (and refuses) or its
    /// entry is drained here — a ticket can never be orphaned.
    fn fail_all(&self, make: impl Fn() -> NetError) {
        let drained: Vec<Arc<ReplySlot>> = {
            let mut pending = self.pending.lock();
            self.dead.store(true, Ordering::Release);
            pending.drain().map(|(_, s)| s).collect()
        };
        for slot in drained {
            slot.fill(Err(make()));
        }
    }

    fn tally_error(&self, code: ErrorCode, retry_after: Duration) {
        match code {
            ErrorCode::Overloaded => {
                // ORDERING: client-side outcome tally, bumped only by
                // the single reader thread; not the server-side
                // `issued >= requests + shed + expired` contract.
                self.counters.shed.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .backoff_hint_nanos
                    .fetch_add(retry_after.as_nanos() as u64, Ordering::Relaxed);
                if !retry_after.is_zero() {
                    let until = Instant::now() + retry_after;
                    let mut slot = self.backoff_until.lock();
                    if slot.is_none_or(|prev| until > prev) {
                        *slot = Some(until);
                    }
                }
            }
            ErrorCode::DeadlineExceeded => {
                // ORDERING: same single-reader client tally as `shed`
                // above; no cross-counter invariant to preserve.
                self.counters.expired.fetch_add(1, Ordering::Relaxed);
            }
            ErrorCode::ShuttingDown => {
                self.counters
                    .shutdown_rejected
                    .fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.counters.other_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A ticket for one in-flight request; [`wait`](Pending::wait) blocks
/// until its response frame arrives (or the connection dies).
pub struct Pending {
    slot: Arc<ReplySlot>,
    request_id: u64,
}

impl Pending {
    /// The request id this ticket tracks.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// Blocks for the reply.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] for typed server rejections,
    /// [`NetError::ConnectionClosed`] if the connection died with this
    /// request unanswered.
    pub fn wait(self) -> Result<RowsResponse> {
        self.slot.wait()
    }
}

/// A pipelined connection to a [`NetServer`](crate::NetServer).
///
/// Cheap to share: wrap it in an [`Arc`] and issue sends from many
/// threads — the writer is serialized internally, replies are routed by
/// request id.
pub struct NetClient<S: ByteStream = std::net::TcpStream> {
    inner: Arc<ClientInner<S>>,
    reader: Option<JoinHandle<()>>,
}

impl NetClient<std::net::TcpStream> {
    /// Connects over TCP (the stock transport).
    ///
    /// # Errors
    ///
    /// Connection and socket-option failures surface as
    /// [`NetError::Io`].
    pub fn connect(addr: &str, config: NetClientConfig) -> Result<Self> {
        Self::connect_with(&TcpTransport, addr, config)
    }
}

impl<S: ByteStream> NetClient<S> {
    /// [`connect`](NetClient::connect) over an explicit [`Transport`].
    ///
    /// # Errors
    ///
    /// Connection and socket-option failures surface as
    /// [`NetError::Io`].
    pub fn connect_with<T: Transport<Stream = S>>(
        transport: &T,
        addr: &str,
        config: NetClientConfig,
    ) -> Result<Self> {
        let stream = transport.connect(addr)?;
        stream.set_nodelay(config.nodelay)?;
        stream.set_read_timeout(None)?;
        let read_half = stream.try_clone_stream()?;
        let max_frame_len = config.max_frame_len;
        let inner = Arc::new(ClientInner {
            config,
            writer: Mutex::new(WriterState {
                stream,
                buf: Vec::new(),
            }),
            pending: Mutex::new(HashMap::new()),
            // Id 0 is reserved for connection-level errors.
            next_id: AtomicU64::new(1),
            closed: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            backoff_until: Mutex::new(None),
            counters: Counters::default(),
        });
        let reader = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("memcom-net-client".into())
                .spawn(move || reader_loop(&inner, read_half, max_frame_len))
                .map_err(NetError::Io)?
        };
        Ok(NetClient {
            inner,
            reader: Some(reader),
        })
    }

    /// The client's configuration.
    pub fn config(&self) -> &NetClientConfig {
        &self.inner.config
    }

    /// Current outcome tallies.
    pub fn stats(&self) -> NetClientStats {
        let c = &self.inner.counters;
        NetClientStats {
            sent: c.sent.load(Ordering::Relaxed),
            served: c.served.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed), // ORDERING: advisory client tally, no contract
            expired: c.expired.load(Ordering::Relaxed), // ORDERING: advisory client tally, no contract
            shutdown_rejected: c.shutdown_rejected.load(Ordering::Relaxed),
            other_errors: c.other_errors.load(Ordering::Relaxed),
            backoff_hint_nanos: c.backoff_hint_nanos.load(Ordering::Relaxed),
            backoff_slept_nanos: c.backoff_slept_nanos.load(Ordering::Relaxed),
        }
    }

    /// Requests currently awaiting replies (pipeline depth).
    pub fn in_flight(&self) -> usize {
        self.inner.pending.lock().len()
    }

    /// Sends one lookup without waiting; pipeline as many as you like
    /// before collecting the [`Pending`] tickets.
    ///
    /// Honors the active backoff hint first (when configured), so a
    /// shed storm self-paces even in pipelined use.
    ///
    /// # Errors
    ///
    /// [`NetError::ClientClosed`] after close, [`NetError::Io`] if the
    /// write fails, [`NetError::Protocol`] if the request cannot be
    /// encoded (model name over [`crate::wire::MAX_MODEL_LEN`], id
    /// batch over the frame cap).
    // memcom-lint: hot-path
    pub fn send(&self, model: &str, ids: &[u64], deadline: Option<Duration>) -> Result<Pending> {
        self.send_frame(model, ids, deadline, false)
    }

    /// Sends one full-model score request without waiting — the
    /// scoring-path twin of [`send`](NetClient::send), with identical
    /// pipelining, backoff, and error semantics. The reply slab carries
    /// one row of the backend's K output scores.
    ///
    /// # Errors
    ///
    /// Same as [`send`](NetClient::send).
    pub fn send_score(
        &self,
        model: &str,
        ids: &[u64],
        deadline: Option<Duration>,
    ) -> Result<Pending> {
        self.send_frame(model, ids, deadline, true)
    }

    /// The shared send path: backoff pacing, ticket registration, frame
    /// encoding (lookup or score — same body, different kind byte), and
    /// the serialized socket write.
    fn send_frame(
        &self,
        model: &str,
        ids: &[u64],
        deadline: Option<Duration>,
        score: bool,
    ) -> Result<Pending> {
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(NetError::ClientClosed);
        }
        if self.inner.config.honor_backoff {
            let until = *self.inner.backoff_until.lock();
            if let Some(until) = until {
                // memcom-lint: allow(L002) -- reached only while a server
                // backoff hint is active; deciding whether the pause has
                // lapsed requires a wall-clock read.
                let now = Instant::now();
                if until > now {
                    let pause = until - now;
                    std::thread::sleep(pause);
                    self.inner
                        .counters
                        .backoff_slept_nanos
                        .fetch_add(pause.as_nanos() as u64, Ordering::Relaxed);
                }
            }
        }
        let request_id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(ReplySlot::new());
        {
            let mut pending = self.inner.pending.lock();
            if self.inner.dead.load(Ordering::Acquire) {
                // The reader thread is gone; nothing can ever answer.
                return Err(NetError::ConnectionClosed);
            }
            pending.insert(request_id, Arc::clone(&slot));
        }
        let mut w = self.inner.writer.lock();
        w.buf.clear();
        let encoded = if score {
            let req = ScoreRequest {
                request_id,
                model: model.to_string(),
                ids: ids.to_vec(),
                dtype_hint: self.inner.config.dtype_hint,
                deadline,
            };
            encode_score(&req, &mut w.buf)
        } else {
            let req = LookupRequest {
                request_id,
                model: model.to_string(),
                ids: ids.to_vec(),
                dtype_hint: self.inner.config.dtype_hint,
                deadline,
            };
            encode_lookup(&req, &mut w.buf)
        };
        if let Err(e) = encoded {
            // Unencodable request (model name or id batch over the
            // frame cap): surface it typed instead of shipping a frame
            // with silently-wrapped counts, and forget the reply slot —
            // nothing was sent, so nothing will answer it.
            drop(w);
            self.inner.pending.lock().remove(&request_id);
            return Err(NetError::Protocol(e));
        }
        let WriterState { stream, buf } = &mut *w;
        match stream.write_all(buf).and_then(|_| stream.flush()) {
            Ok(()) => {
                self.inner.counters.sent.fetch_add(1, Ordering::Relaxed);
                Ok(Pending { slot, request_id })
            }
            Err(e) => {
                drop(w);
                self.inner.pending.lock().remove(&request_id);
                Err(NetError::Io(e))
            }
        }
    }
    // memcom-lint: end-hot-path

    /// Blocking lookup with the config's default deadline.
    ///
    /// # Errors
    ///
    /// See [`Pending::wait`] and [`send`](NetClient::send).
    pub fn lookup(&self, model: &str, ids: &[u64]) -> Result<RowsResponse> {
        self.lookup_with_deadline(model, ids, self.inner.config.deadline)
    }

    /// Blocking lookup with an explicit per-request deadline.
    ///
    /// # Errors
    ///
    /// See [`Pending::wait`] and [`send`](NetClient::send).
    pub fn lookup_with_deadline(
        &self,
        model: &str,
        ids: &[u64],
        deadline: Option<Duration>,
    ) -> Result<RowsResponse> {
        self.send(model, ids, deadline)?.wait()
    }

    /// Blocking full-model score with the config's default deadline:
    /// the returned slab is one row of K scores (`dim == data.len()`).
    ///
    /// # Errors
    ///
    /// See [`Pending::wait`] and [`send_score`](NetClient::send_score).
    pub fn score(&self, model: &str, ids: &[u64]) -> Result<RowsResponse> {
        self.score_with_deadline(model, ids, self.inner.config.deadline)
    }

    /// Blocking full-model score with an explicit per-request deadline.
    ///
    /// # Errors
    ///
    /// See [`Pending::wait`] and [`send_score`](NetClient::send_score).
    pub fn score_with_deadline(
        &self,
        model: &str,
        ids: &[u64],
        deadline: Option<Duration>,
    ) -> Result<RowsResponse> {
        self.send_score(model, ids, deadline)?.wait()
    }

    /// Closes the connection, fails any still-pending requests with
    /// [`NetError::ConnectionClosed`], and returns the final tallies.
    pub fn close(mut self) -> NetClientStats {
        self.close_inner();
        self.stats()
    }

    fn close_inner(&mut self) {
        if self.inner.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        // Shutting down the socket unblocks the reader thread's read;
        // it observes EOF and fails whatever is still pending.
        let _ = self.inner.writer.lock().stream.shutdown_both();
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }
}

impl<S: ByteStream> Drop for NetClient<S> {
    fn drop(&mut self) {
        self.close_inner();
    }
}

fn reader_loop<S: ByteStream>(inner: &ClientInner<S>, mut stream: S, max_frame_len: u32) {
    let mut reader = FrameReader::new(max_frame_len);
    loop {
        match reader.read_frame(&mut stream) {
            Ok(ReadEvent::Frame) => match decode_payload(reader.payload()) {
                Ok(Message::Rows(rows)) => {
                    inner.counters.served.fetch_add(1, Ordering::Relaxed);
                    if let Some(slot) = inner.pending.lock().remove(&rows.request_id) {
                        slot.fill(Ok(rows));
                    }
                }
                Ok(Message::Error(err)) => {
                    inner.tally_error(err.code, err.retry_after);
                    if err.request_id == CONNECTION_REQUEST_ID {
                        // A connection-level verdict condemns every
                        // in-flight request; the server will close next.
                        let code = err.code;
                        let retry_after = err.retry_after;
                        let message = err.message;
                        inner.fail_all(|| NetError::Remote {
                            code,
                            retry_after,
                            message: message.clone(),
                        });
                        break;
                    }
                    if let Some(slot) = inner.pending.lock().remove(&err.request_id) {
                        slot.fill(Err(NetError::Remote {
                            code: err.code,
                            retry_after: err.retry_after,
                            message: err.message,
                        }));
                    }
                }
                // Lookup/score requests flow client→server only.
                Ok(Message::Lookup(_) | Message::Score(_)) | Err(_) => {
                    inner.fail_all(|| NetError::ConnectionClosed);
                    break;
                }
            },
            Ok(ReadEvent::TimedOut) => {
                if inner.closed.load(Ordering::Acquire) {
                    inner.fail_all(|| NetError::ClientClosed);
                    break;
                }
            }
            Ok(ReadEvent::Eof) | Err(_) => {
                inner.fail_all(|| NetError::ConnectionClosed);
                break;
            }
        }
    }
}
