//! Property tests over the wire protocol: roundtrips for every valid
//! message shape, and hostile inputs — truncated frames, oversized
//! length prefixes, unknown versions/kinds, garbage model bytes, raw
//! fuzz — which must always produce a typed error (or a clean
//! incremental parse), never a panic and never an allocation driven by
//! an attacker-controlled length.

use std::time::Duration;

use memcom_net::wire::{
    decode_payload, encode_error, encode_lookup, encode_rows, FrameError, FrameReader,
    LookupRequest, Message, ReadEvent, WireError, HEADER_LEN, PROTOCOL_VERSION,
};
use memcom_net::{ErrorCode, NetClientConfig, NetServerConfig};
use memcom_serve::Dtype;
use proptest::prelude::*;

fn dtype_from(raw: u8) -> Option<Dtype> {
    match raw % 6 {
        1 => Some(Dtype::F32),
        2 => Some(Dtype::F16),
        3 => Some(Dtype::Int8),
        4 => Some(Dtype::Int4),
        5 => Some(Dtype::Int2),
        _ => None,
    }
}

proptest! {
    // Every lookup request survives encode → frame-read → decode
    // bit for bit, including the dtype hint and deadline edge cases.
    #[test]
    fn lookup_roundtrips(
        request_id in 0u64..u64::MAX,
        model_bytes in proptest::collection::vec(97u8..123, 0..48),
        ids in proptest::collection::vec(0u64..1_000_000, 0..64),
        dtype_raw in 0u8..6,
        deadline_nanos in 0u64..5_000_000_000,
    ) {
        let req = LookupRequest {
            request_id,
            model: String::from_utf8(model_bytes).unwrap(),
            ids,
            dtype_hint: dtype_from(dtype_raw),
            deadline: (deadline_nanos > 0).then(|| Duration::from_nanos(deadline_nanos)),
        };
        let mut frame = Vec::new();
        encode_lookup(&req, &mut frame).expect("encodes");
        let mut reader = FrameReader::new(1 << 20);
        let mut cursor: &[u8] = &frame;
        prop_assert!(matches!(reader.read_frame(&mut cursor), Ok(ReadEvent::Frame)));
        match decode_payload(reader.payload()) {
            Ok(Message::Lookup(back)) => prop_assert_eq!(back, req),
            other => panic!("expected a lookup, got {other:?}"),
        }
    }

    // Rows and error responses roundtrip likewise; error codes and
    // retry-after hints survive exactly.
    #[test]
    fn responses_roundtrip(
        request_id in 1u64..u64::MAX,
        dim in 1u32..16,
        rows in 0u32..8,
        code_raw in 1u16..9,
        retry_nanos in 0u64..10_000_000_000,
        msg_bytes in proptest::collection::vec(32u8..127, 0..64),
    ) {
        let data: Vec<f32> = (0..dim * rows).map(|i| i as f32 * 0.5 - 3.0).collect();
        let mut frame = Vec::new();
        encode_rows(request_id, dim, &data, &mut frame).expect("encodes");
        match decode_payload(&frame[4..]) {
            Ok(Message::Rows(r)) => {
                prop_assert_eq!(r.request_id, request_id);
                prop_assert_eq!(r.dim, dim);
                prop_assert_eq!(r.data, data);
            }
            other => panic!("expected rows, got {other:?}"),
        }

        let code = ErrorCode::from_u16(code_raw).unwrap();
        let retry = Duration::from_nanos(retry_nanos);
        let message = String::from_utf8(msg_bytes).unwrap();
        let mut frame = Vec::new();
        encode_error(request_id, code, retry, &message, &mut frame).expect("encodes");
        match decode_payload(&frame[4..]) {
            Ok(Message::Error(e)) => {
                prop_assert_eq!(e.request_id, request_id);
                prop_assert_eq!(e.code, code);
                prop_assert_eq!(e.retry_after, retry);
                prop_assert_eq!(e.message, message);
            }
            other => panic!("expected an error frame, got {other:?}"),
        }
    }

    // Any strict prefix of a valid payload is a typed decode error —
    // truncation can never panic or be silently accepted.
    #[test]
    fn truncations_are_typed_errors(
        ids in proptest::collection::vec(0u64..1_000, 1..32),
        cut_seed in 0usize..10_000,
    ) {
        let req = LookupRequest {
            request_id: 7,
            model: "default".to_string(),
            ids,
            dtype_hint: Some(Dtype::Int8),
            deadline: Some(Duration::from_millis(25)),
        };
        let mut frame = Vec::new();
        encode_lookup(&req, &mut frame).expect("encodes");
        let payload = &frame[4..];
        let cut = cut_seed % payload.len();
        prop_assert!(decode_payload(&payload[..cut]).is_err());
    }

    // Unknown protocol versions and frame kinds are typed rejections.
    #[test]
    fn unknown_versions_and_kinds_are_rejected(
        version in 0u8..=255,
        kind in 0u8..=255,
        request_id in 0u64..1_000,
    ) {
        let mut payload = vec![version, kind];
        payload.extend_from_slice(&request_id.to_le_bytes());
        let decoded = decode_payload(&payload);
        if version != PROTOCOL_VERSION {
            prop_assert!(matches!(decoded, Err(WireError::UnknownVersion(v)) if v == version));
        } else if !(1..=3).contains(&kind) {
            prop_assert!(matches!(decoded, Err(WireError::UnknownKind(k)) if k == kind));
        } else {
            // A bare header with a known kind is a truncated body.
            prop_assert!(decoded.is_err());
        }
    }

    // Garbage model bytes: invalid UTF-8 is a typed error, and a model
    // length prefix pointing past the payload is a typed truncation.
    #[test]
    fn garbage_model_names_are_rejected(
        model_bytes in proptest::collection::vec(0u8..=255, 1..64),
        lie in 0u16..2_000,
    ) {
        let mut payload = vec![PROTOCOL_VERSION, 1u8];
        payload.extend_from_slice(&9u64.to_le_bytes());
        payload.push(0); // no dtype hint
        payload.extend_from_slice(&0u64.to_le_bytes()); // no deadline
        let mut lying = payload.clone();
        lying.extend_from_slice(&(model_bytes.len() as u16 + lie).to_le_bytes());
        lying.extend_from_slice(&model_bytes);
        // Claimed model length exceeds what's present: typed error
        // (truncated, or model-too-long when the lie is huge).
        if lie > 0 {
            prop_assert!(decode_payload(&lying).is_err());
        }
        payload.extend_from_slice(&(model_bytes.len() as u16).to_le_bytes());
        payload.extend_from_slice(&model_bytes);
        payload.extend_from_slice(&0u32.to_le_bytes()); // zero ids
        match decode_payload(&payload) {
            Ok(Message::Lookup(req)) => {
                // Accepted iff the bytes were valid UTF-8.
                prop_assert_eq!(req.model.as_bytes(), &model_bytes[..]);
            }
            Err(_) => prop_assert!(String::from_utf8(model_bytes).is_err()),
            Ok(other) => panic!("expected a lookup, got {other:?}"),
        }
    }

    // Raw fuzz against the frame reader: random bytes in random chunk
    // sizes never panic, and a length prefix beyond the cap is
    // rejected before any allocation.
    #[test]
    fn frame_reader_survives_fuzz(
        bytes in proptest::collection::vec(0u8..=255, 0..256),
        max_frame in 1u32..64,
    ) {
        let mut reader = FrameReader::new(max_frame);
        let mut cursor: &[u8] = &bytes;
        loop {
            match reader.read_frame(&mut cursor) {
                Ok(ReadEvent::Frame) => {
                    // Frames under the cap may appear; their payloads
                    // must decode to a message or a typed error.
                    let _ = decode_payload(reader.payload());
                }
                Ok(ReadEvent::Eof) | Ok(ReadEvent::TimedOut) => break,
                Err(FrameError::Wire(WireError::Oversized { declared, max })) => {
                    prop_assert!(declared > max);
                    break;
                }
                Err(_) => break,
            }
        }
    }
}

// Not a property, but pinned here with the wire suite: the declared
// header length matches the encoder's layout.
#[test]
fn header_len_matches_layout() {
    let mut frame = Vec::new();
    encode_error(1, ErrorCode::Internal, Duration::ZERO, "", &mut frame).expect("encodes");
    // 4-byte length prefix + header + (code u16 + retry u64 + msg len u32).
    assert_eq!(frame.len(), 4 + HEADER_LEN + 2 + 8 + 4);
    let _ = (NetClientConfig::default(), NetServerConfig::default());
}
