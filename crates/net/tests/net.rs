//! End-to-end network serving: correctness over loopback TCP, typed
//! overload semantics across the wire, pipelining, deadline mapping,
//! hostile bytes against a live server, telemetry gating, and the
//! drain guarantee — multi-client shutdown with exact client/server
//! counter reconciliation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use memcom_core::{MemCom, MemComConfig, MethodSpec};
use memcom_models::{ModelConfig, RecModel};
use memcom_net::wire::{decode_payload, FrameReader, Message, ReadEvent};
use memcom_net::{
    run_net_load, run_net_score_load, ErrorCode, NetClient, NetClientConfig, NetError, NetServer,
    NetServerConfig,
};
use memcom_serve::{
    run_load, AdmissionPolicy, Dtype, EmbedServer, LoadGenConfig, LoadMode, RankNetBackend, Router,
    ServeConfig, TelemetryConfig, DEFAULT_MODEL,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const VOCAB: usize = 1_000;
const DIM: usize = 8;

fn memcom(seed: u64) -> MemCom {
    let mut rng = StdRng::seed_from_u64(seed);
    MemCom::new(MemComConfig::new(VOCAB, DIM, 100), &mut rng).unwrap()
}

fn start_server(serve: ServeConfig, net: NetServerConfig) -> NetServer {
    let router = Router::start(serve).unwrap();
    router.register(DEFAULT_MODEL, &memcom(3)).unwrap();
    NetServer::start(router, net).unwrap()
}

#[test]
fn networked_rows_match_in_process_rows() {
    let server = start_server(ServeConfig::default(), NetServerConfig::default());
    let expected = {
        let handle = server.router().handle(DEFAULT_MODEL).unwrap();
        handle.get_many(&[1, 2, 999]).unwrap()
    };

    let client = NetClient::connect(server.local_addr(), NetClientConfig::default()).unwrap();
    let rows = client.lookup(DEFAULT_MODEL, &[1, 2, 999]).unwrap();
    assert_eq!(rows.dim as usize, DIM);
    assert_eq!(rows.data.len(), 3 * DIM);
    for (k, want) in expected.iter().enumerate() {
        assert_eq!(&rows.data[k * DIM..(k + 1) * DIM], want.as_slice());
    }

    // Single-id requests use the same path.
    let one = client.lookup(DEFAULT_MODEL, &[42]).unwrap();
    assert_eq!(one.data.len(), DIM);
    let stats = client.close();
    assert_eq!(stats.sent, 2);
    assert_eq!(stats.served, 2);

    let (per_model, snapshot) = server.shutdown();
    assert_eq!(per_model.len(), 1);
    // Rows through the router: 3 in-process + (3 + 1) over the wire.
    assert_eq!(per_model[0].1.requests, 7);
    let totals = snapshot.totals();
    assert_eq!(totals.served, 2);
    assert_eq!(totals.errors_sent, 0);
}

#[test]
fn typed_errors_cross_the_wire() {
    let server = start_server(ServeConfig::default(), NetServerConfig::default());
    let client = NetClient::connect(server.local_addr(), NetClientConfig::default()).unwrap();

    let err = client.lookup("no-such-model", &[1]).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::ModelNotFound));

    let err = client
        .lookup(DEFAULT_MODEL, &[VOCAB as u64 + 5])
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::IdOutOfVocab));

    // The connection survives typed rejections.
    assert!(client.lookup(DEFAULT_MODEL, &[1]).is_ok());
    let stats = client.close();
    assert_eq!(stats.other_errors, 2);
    assert_eq!(stats.served, 1);
    server.shutdown();
}

#[test]
fn pipelined_requests_all_resolve() {
    let server = start_server(ServeConfig::default(), NetServerConfig::default());
    let client = NetClient::connect(server.local_addr(), NetClientConfig::default()).unwrap();

    let tickets: Vec<_> = (0..32)
        .map(|k| {
            client
                .send(DEFAULT_MODEL, &[k as u64, k as u64 + 1], None)
                .unwrap()
        })
        .collect();
    let mut ids: Vec<u64> = tickets.iter().map(|t| t.request_id()).collect();
    ids.dedup();
    assert_eq!(ids.len(), 32, "request ids must be distinct");
    for ticket in tickets {
        let rows = ticket.wait().unwrap();
        assert_eq!(rows.data.len(), 2 * DIM);
    }
    assert_eq!(client.in_flight(), 0);
    let stats = client.close();
    assert_eq!((stats.sent, stats.served), (32, 32));
    server.shutdown();
}

#[test]
fn wire_deadlines_map_onto_admission_control() {
    // Shed policy with NO configured request deadline: only the
    // client's wire deadline can expire requests.
    let serve = ServeConfig {
        n_shards: 1,
        max_batch: 2,
        queue_depth: 64,
        store_latency: Duration::from_millis(10),
        admission: AdmissionPolicy::Shed {
            enqueue_timeout: Duration::from_millis(200),
            request_deadline: None,
        },
        ..ServeConfig::default()
    };
    let server = start_server(serve, NetServerConfig::default());
    let addr = server.local_addr().to_string();

    // Each connection serves one request at a time, so queueing needs
    // *concurrent connections*: 6 clients keep ~6 requests in a queue
    // drained at 2 rows / 10 ms — arrivals wait ~25 ms, far past the
    // 1 ms wire deadline.
    let expired: u64 = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..6)
            .map(|c| {
                let addr = &addr;
                scope.spawn(move || {
                    let client = NetClient::connect(addr, NetClientConfig::default()).unwrap();
                    let mut expired = 0u64;
                    for k in 0..20u64 {
                        match client.lookup_with_deadline(
                            DEFAULT_MODEL,
                            &[(c * 131 + k) % VOCAB as u64],
                            Some(Duration::from_millis(1)),
                        ) {
                            Ok(_) => {}
                            Err(err) => {
                                assert_eq!(err.code(), Some(ErrorCode::DeadlineExceeded));
                                expired += 1;
                            }
                        }
                    }
                    client.close();
                    expired
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });
    assert!(expired > 0, "1ms deadlines behind a 10ms store must expire");
    let (per_model, _) = server.shutdown();
    assert_eq!(per_model[0].1.expired, expired);

    // Under Block the same wire deadline is ignored: nothing expires.
    let server = start_server(
        ServeConfig {
            n_shards: 1,
            max_batch: 2,
            queue_depth: 64,
            store_latency: Duration::from_millis(2),
            admission: AdmissionPolicy::Block,
            ..ServeConfig::default()
        },
        NetServerConfig::default(),
    );
    let client = NetClient::connect(server.local_addr(), NetClientConfig::default()).unwrap();
    let tickets: Vec<_> = (0..16)
        .map(|k| {
            client
                .send(DEFAULT_MODEL, &[k as u64], Some(Duration::from_nanos(1)))
                .unwrap()
        })
        .collect();
    for ticket in tickets {
        ticket.wait().unwrap();
    }
    client.close();
    let (per_model, _) = server.shutdown();
    assert_eq!(per_model[0].1.expired, 0);
}

#[test]
fn overload_sheds_cross_the_wire_with_backoff_hints() {
    // Capacity: 1 shard × batch 2 / 4ms = 500 rows/s. Each connection
    // is served synchronously, so concurrency == client count: 8
    // clients against a depth-2 queue with a zero enqueue budget
    // overflow admission constantly.
    let serve = ServeConfig {
        n_shards: 1,
        max_batch: 2,
        max_wait: Duration::from_micros(200),
        queue_depth: 2,
        store_latency: Duration::from_millis(4),
        admission: AdmissionPolicy::Shed {
            enqueue_timeout: Duration::ZERO,
            request_deadline: Some(Duration::from_millis(25)),
        },
        ..ServeConfig::default()
    };
    let server = start_server(serve, NetServerConfig::default());
    let load = LoadGenConfig {
        clients: 8,
        requests_per_client: 40,
        ids_per_request: 1,
        zipf_exponent: 1.1,
        mode: LoadMode::Open {
            target_qps: 4_000.0,
        },
        seed: 7,
    };
    let report = run_net_load(server.local_addr(), DEFAULT_MODEL, VOCAB, &load, None).unwrap();
    let (per_model, snapshot) = server.shutdown();
    let stats = &per_model[0].1;

    // Every request is answered: completed + shed + expired covers the
    // offered load exactly (no drain ran — the run finished first).
    assert_eq!(
        report.offered(),
        (load.clients * load.requests_per_client) as u64
    );
    assert!(report.shed > 0, "4x-capacity traffic must shed");
    assert!(
        !report.mean_backoff().is_zero(),
        "sheds must carry retry_after hints"
    );

    // Exact client/server reconciliation (single-id ⇒ rows == requests).
    assert_eq!(stats.requests, report.requests);
    assert_eq!(stats.shed, report.shed);
    assert_eq!(stats.expired, report.expired);
    assert_eq!(report.client.sent, report.offered());

    // The network tier saw every frame: served + errors == sent.
    let totals = snapshot.totals();
    assert_eq!(totals.served, report.requests);
    assert_eq!(totals.errors_sent, report.shed + report.expired);
}

#[test]
fn networked_traffic_checksum_matches_in_process_generator() {
    let load = LoadGenConfig {
        clients: 3,
        requests_per_client: 40,
        ids_per_request: 4,
        zipf_exponent: 1.1,
        mode: LoadMode::Closed,
        seed: 11,
    };
    let emb = memcom(3);

    let in_process = EmbedServer::start(&emb, ServeConfig::default()).unwrap();
    let baseline = run_load(&in_process.handle(), &load).unwrap();
    in_process.shutdown();

    let router = Router::start(ServeConfig::default()).unwrap();
    router.register(DEFAULT_MODEL, &emb).unwrap();
    let server = NetServer::start(router, NetServerConfig::default()).unwrap();
    let networked = run_net_load(server.local_addr(), DEFAULT_MODEL, VOCAB, &load, None).unwrap();
    server.shutdown();

    assert_eq!(networked.traffic_checksum, baseline.traffic_checksum);
    assert_eq!(networked.requests, baseline.requests);
}

#[test]
fn hostile_bytes_against_a_live_server_get_typed_answers() {
    let server = start_server(ServeConfig::default(), NetServerConfig::default());

    // An unknown protocol version: typed `unsupported`, then close.
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    let mut payload = vec![99u8, 1u8];
    payload.extend_from_slice(&5u64.to_le_bytes());
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&payload);
    std::io::Write::write_all(&mut stream, &frame).unwrap();
    let mut reader = FrameReader::new(1 << 20);
    assert!(matches!(
        reader.read_frame(&mut stream),
        Ok(ReadEvent::Frame)
    ));
    match decode_payload(reader.payload()).unwrap() {
        Message::Error(err) => assert_eq!(err.code, ErrorCode::Unsupported),
        other => panic!("expected an error frame, got {other:?}"),
    }
    // The server closes after a connection-level rejection.
    assert!(matches!(reader.read_frame(&mut stream), Ok(ReadEvent::Eof)));

    // An oversized length prefix: typed `malformed`, then close —
    // rejected before the server allocates anything.
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    std::io::Write::write_all(&mut stream, &u32::MAX.to_le_bytes()).unwrap();
    let mut reader = FrameReader::new(1 << 20);
    assert!(matches!(
        reader.read_frame(&mut stream),
        Ok(ReadEvent::Frame)
    ));
    match decode_payload(reader.payload()).unwrap() {
        Message::Error(err) => assert_eq!(err.code, ErrorCode::Malformed),
        other => panic!("expected an error frame, got {other:?}"),
    }
    assert!(matches!(reader.read_frame(&mut stream), Ok(ReadEvent::Eof)));

    // The server is unharmed: a well-behaved client still gets rows.
    let client = NetClient::connect(server.local_addr(), NetClientConfig::default()).unwrap();
    assert!(client.lookup(DEFAULT_MODEL, &[1]).is_ok());
    client.close();

    let (_, snapshot) = server.shutdown();
    assert_eq!(snapshot.totals().protocol_errors, 2);
}

#[test]
fn telemetry_off_keeps_stage_histograms_empty() {
    let server = start_server(
        ServeConfig::default(),
        NetServerConfig {
            telemetry: TelemetryConfig::off(),
            ..NetServerConfig::default()
        },
    );
    let client = NetClient::connect(server.local_addr(), NetClientConfig::default()).unwrap();
    for k in 0..8 {
        client.lookup(DEFAULT_MODEL, &[k]).unwrap();
    }
    client.close();
    let (_, snapshot) = server.shutdown();

    // Counters are always on; stage clocks are never read at Off.
    let totals = snapshot.totals();
    assert_eq!(totals.served, 8);
    assert!(totals.bytes_in > 0 && totals.bytes_out > 0);
    assert_eq!(snapshot.frame_decode.count(), 0);
    assert_eq!(snapshot.response_encode.count(), 0);
    assert_eq!(snapshot.socket_write.count(), 0);

    let prom = snapshot.to_prometheus();
    assert!(prom.contains("memcom_net_connections_accepted_total 1"));
    assert!(prom.contains("memcom_net_served_total"));
    assert!(!prom.contains("memcom_net_stage_latency_nanos_bucket"));
    assert!(snapshot.to_json().contains("\"net\""));
}

#[test]
fn telemetry_full_records_network_stages() {
    let server = start_server(
        ServeConfig {
            telemetry: TelemetryConfig::full(1.0),
            ..ServeConfig::default()
        },
        NetServerConfig {
            telemetry: TelemetryConfig::full(1.0),
            ..NetServerConfig::default()
        },
    );
    let client = NetClient::connect(server.local_addr(), NetClientConfig::default()).unwrap();
    for k in 0..8 {
        client.lookup(DEFAULT_MODEL, &[k]).unwrap();
    }
    client.close();
    let (_, snapshot) = server.shutdown();

    assert_eq!(snapshot.frame_decode.count(), 8);
    assert_eq!(snapshot.response_encode.count(), 8);
    assert_eq!(snapshot.socket_write.count(), 8);
    let prom = snapshot.to_prometheus();
    assert!(prom.contains("memcom_net_stage_latency_nanos_bucket"));
    // The embedded serve-tier exposition rides along in one scrape.
    assert!(prom.contains("memcom_requests_total"));
}

/// The networked mirror of the serve tier's
/// `shed_mode_drain_leaves_no_request_unanswered`: many concurrent
/// clients hammer a slow shedding server, shutdown lands mid-flight,
/// and every outcome a client saw must be a *typed answer* — rows,
/// `overloaded`, `deadline_exceeded`, or `shutting_down` — with client
/// and server tallies reconciling exactly.
#[test]
fn multi_client_drain_reconciles_and_drops_nothing() {
    let serve = ServeConfig {
        n_shards: 1,
        max_batch: 2,
        queue_depth: 4,
        store_latency: Duration::from_millis(30),
        admission: AdmissionPolicy::Shed {
            enqueue_timeout: Duration::from_micros(200),
            request_deadline: Some(Duration::from_millis(120)),
        },
        ..ServeConfig::default()
    };
    let server = start_server(
        serve,
        NetServerConfig {
            drain_grace: Duration::from_millis(200),
            ..NetServerConfig::default()
        },
    );
    let addr = server.local_addr().to_string();

    let stop = AtomicBool::new(false);
    let client_totals = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..6)
            .map(|c| {
                let addr = &addr;
                let stop = &stop;
                scope.spawn(move || {
                    let client = NetClient::connect(addr, NetClientConfig::default()).unwrap();
                    let mut k = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        match client.lookup(DEFAULT_MODEL, &[(c as u64 * 131 + k) % VOCAB as u64]) {
                            Ok(_) => {}
                            Err(NetError::Remote { code, .. }) => {
                                assert!(
                                    matches!(
                                        code,
                                        ErrorCode::Overloaded
                                            | ErrorCode::DeadlineExceeded
                                            | ErrorCode::ShuttingDown
                                    ),
                                    "unexpected typed error {code} mid-drain"
                                );
                                // Once the server says it's draining,
                                // a polite client stops offering.
                                if code == ErrorCode::ShuttingDown {
                                    break;
                                }
                            }
                            // The connection closed after its drain
                            // grace: nothing more will be answered.
                            Err(NetError::ConnectionClosed | NetError::ClientClosed) => break,
                            Err(e) => panic!("request failed: {e}"),
                        }
                        k += 1;
                    }
                    client.close()
                })
            })
            .collect();

        // Let the fleet get properly mid-flight, then pull the plug
        // while requests are queued and in service.
        std::thread::sleep(Duration::from_millis(150));
        let (per_model, snapshot) = server.shutdown();
        stop.store(true, Ordering::Release);

        let mut totals = memcom_net::NetClientStats::default();
        for w in workers {
            let s = w.join().unwrap();
            totals.sent += s.sent;
            totals.served += s.served;
            totals.shed += s.shed;
            totals.expired += s.expired;
            totals.shutdown_rejected += s.shutdown_rejected;
            totals.other_errors += s.other_errors;
        }
        (per_model, snapshot, totals)
    });
    let (per_model, snapshot, totals) = client_totals;
    let stats = &per_model[0].1;

    assert!(totals.served > 0, "the run must have served something");
    assert_eq!(totals.other_errors, 0);

    // Exact reconciliation: everything that entered the router is in
    // ServeStats; everything rejected during the drain is in the net
    // tier's counter. Nothing is unaccounted for.
    assert_eq!(stats.requests, totals.served, "served rows reconcile");
    assert_eq!(stats.shed, totals.shed, "sheds reconcile");
    assert_eq!(stats.expired, totals.expired, "expiries reconcile");
    assert_eq!(
        snapshot.totals().shutdown_rejected,
        totals.shutdown_rejected,
        "drain answers reconcile"
    );
    // The router's own ledger stays closed, too.
    assert_eq!(
        stats.issued,
        stats.requests + stats.shed + stats.expired,
        "router ledger: issued == served + shed + expired"
    );
}

fn ranknet_router(seed: u64) -> (Router, RecModel) {
    let config = ModelConfig {
        seed,
        ..ModelConfig::pointwise(VOCAB, DIM, 4, 1)
    };
    let model = RecModel::new(
        &config,
        &MethodSpec::MemCom {
            hash_size: 100,
            bias: false,
        },
    )
    .unwrap();
    let router = Router::start(ServeConfig::default()).unwrap();
    router
        .backends()
        .register(
            "ranknet",
            Arc::new(RankNetBackend::from_model(&model).unwrap()),
        )
        .unwrap();
    router
        .register_with_backend("scorer", model.embedding(), Dtype::F32, "ranknet")
        .unwrap();
    (router, model)
}

/// Full-model serving over the wire: a RankNet-backed model answers
/// score requests over loopback TCP with exactly the numbers the
/// in-process score path produces, and the reply slab is one row of
/// the backend's K scores.
#[test]
fn networked_scores_match_in_process_scores_bit_for_bit() {
    let (router, _model) = ranknet_router(3);
    let expected = router
        .handle("scorer")
        .unwrap()
        .score(&[1, 2, 3, 999])
        .unwrap();
    let server = NetServer::start(router, NetServerConfig::default()).unwrap();

    let client = NetClient::connect(server.local_addr(), NetClientConfig::default()).unwrap();
    let scores = client.score("scorer", &[1, 2, 3, 999]).unwrap();
    // A score reply is one row of K scores: dim == K == data.len().
    assert_eq!(scores.dim as usize, expected.len());
    assert_eq!(scores.data.len(), expected.len());
    assert_eq!(scores.data, expected, "wire scores match in-process bits");

    // Typed rejections work on the score path too, and the connection
    // survives them.
    let err = client.score("no-such-model", &[1]).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::ModelNotFound));
    let err = client.score("scorer", &[VOCAB as u64 + 5]).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::IdOutOfVocab));
    assert!(client.score("scorer", &[7, 8]).is_ok());

    let stats = client.close();
    assert_eq!(stats.sent, 4);
    assert_eq!(stats.served, 2);
    assert_eq!(stats.other_errors, 2);

    let (per_model, snapshot) = server.shutdown();
    // Rows through the router: 4 in-process + (4 + 2) over the wire.
    assert_eq!(per_model.len(), 1);
    assert_eq!(per_model[0].1.requests, 10);
    let totals = snapshot.totals();
    assert_eq!(totals.served, 2);
    assert_eq!(totals.errors_sent, 2);
}

/// The networked score loadgen issues byte-identical traffic to the
/// lookup loadgen (same checksum), and a full score run reconciles
/// exactly: every request answered, client tallies matching the
/// router's row counters.
#[test]
fn networked_score_load_reconciles_with_router_counters() {
    let (router, model) = ranknet_router(7);
    // The same router also serves plain row lookups over the same
    // embedding, so the two generators can be compared on one server.
    router
        .register_with_dtype(DEFAULT_MODEL, model.embedding(), Dtype::F32)
        .unwrap();
    let server = NetServer::start(router, NetServerConfig::default()).unwrap();

    let load = LoadGenConfig {
        clients: 3,
        requests_per_client: 40,
        ids_per_request: 4,
        zipf_exponent: 1.1,
        mode: LoadMode::Closed,
        seed: 11,
    };
    let lookups = run_net_load(server.local_addr(), DEFAULT_MODEL, VOCAB, &load, None).unwrap();
    let scores = run_net_score_load(server.local_addr(), "scorer", VOCAB, &load, None).unwrap();
    let (per_model, snapshot) = server.shutdown();

    // Identical issued traffic: only the kind byte differs.
    assert_eq!(scores.traffic_checksum, lookups.traffic_checksum);

    // No overload was configured, so every request completed.
    let offered = (load.clients * load.requests_per_client) as u64;
    assert_eq!(scores.requests, offered);
    assert_eq!(
        (scores.shed, scores.expired, scores.shutdown_rejected),
        (0, 0, 0)
    );

    // Exact reconciliation: the router counts rows (ids per request).
    let scorer = per_model.iter().find(|(name, _)| name == "scorer").unwrap();
    assert_eq!(
        scorer.1.requests,
        scores.requests * load.ids_per_request as u64
    );
    assert_eq!(scorer.1.issued, scorer.1.requests);
    // The network tier answered every frame from both runs.
    assert_eq!(snapshot.totals().served, scores.requests + lookups.requests);
}

/// A client whose server went away must fail later sends instead of
/// hanging: once the reader thread exits on EOF, a freshly inserted
/// pending ticket has nothing left to answer it, so `send` itself has
/// to refuse. (Regression: the dead-connection flag is set under the
/// pending lock precisely so no ticket can be orphaned in the race.)
#[test]
fn send_after_server_shutdown_fails_instead_of_hanging() {
    let server = start_server(ServeConfig::default(), NetServerConfig::default());
    let client = NetClient::connect(server.local_addr(), NetClientConfig::default()).unwrap();
    client.lookup(DEFAULT_MODEL, &[1]).unwrap();
    server.shutdown();

    // Racing the teardown, a lookup may still see a drain answer
    // (`ShuttingDown`), a failed write (`Io`), or the settled state
    // (`ConnectionClosed`) — but every one must resolve promptly.
    let mut settled = false;
    for _ in 0..200 {
        match client.lookup(DEFAULT_MODEL, &[2]) {
            Ok(_) => panic!("the server is gone; lookups cannot succeed"),
            Err(NetError::ConnectionClosed) => {
                settled = true;
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    assert!(
        settled,
        "lookups after server shutdown must settle to ConnectionClosed"
    );
    client.close();
}
