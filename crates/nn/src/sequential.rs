//! Layer composition.

use memcom_tensor::Tensor;

use crate::layer::{Layer, Mode, ParamVisitor};
use crate::Result;

/// An ordered stack of layers applied front-to-back in `forward` and
/// back-to-front in `backward` — the shape of the paper's Code-1 network
/// after the embedding stage.
///
/// # Example
///
/// ```
/// use memcom_nn::{Dense, Relu, Sequential, Layer, Mode};
/// use memcom_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), memcom_nn::NnError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = Sequential::new();
/// net.push(Dense::new(8, 4, &mut rng));
/// net.push(Relu::new());
/// net.push(Dense::new(4, 2, &mut rng));
/// let y = net.forward(&Tensor::ones(&[5, 8]), Mode::Eval)?;
/// assert_eq!(y.shape().dims(), &[5, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential")
            .field("layers", &names)
            .finish()
    }
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer to the end of the stack.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends an already-boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to a layer by position.
    pub fn layer(&self, idx: usize) -> Option<&dyn Layer> {
        self.layers.get(idx).map(|b| b.as_ref())
    }

    /// Mutable access to a layer by position (used by serialization).
    pub fn layer_mut(&mut self, idx: usize) -> Option<&mut Box<dyn Layer>> {
        self.layers.get_mut(idx)
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut current = input.clone();
        for layer in &mut self.layers {
            current = layer.forward(&current, mode)?;
        }
        Ok(current)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut current = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            current = layer.backward(&current)?;
        }
        Ok(current)
    }

    fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    fn visit_params(&mut self, f: &mut ParamVisitor<'_>) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn name(&self) -> &'static str {
        "sequential"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_chains_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Sequential::new();
        net.push(Dense::new(3, 4, &mut rng))
            .push(Relu::new())
            .push(Dense::new(4, 2, &mut rng));
        assert_eq!(net.len(), 3);
        let y = net.forward(&Tensor::ones(&[2, 3]), Mode::Eval).unwrap();
        assert_eq!(y.shape().dims(), &[2, 2]);
    }

    #[test]
    fn backward_returns_input_gradient() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new();
        net.push(Dense::new(3, 2, &mut rng));
        net.forward(&Tensor::ones(&[4, 3]), Mode::Train).unwrap();
        let dx = net.backward(&Tensor::ones(&[4, 2])).unwrap();
        assert_eq!(dx.shape().dims(), &[4, 3]);
    }

    #[test]
    fn params_aggregate_across_layers() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Sequential::new();
        net.push(Dense::new(3, 4, &mut rng))
            .push(Dense::new(4, 2, &mut rng));
        assert_eq!(Layer::param_count(&mut net), (3 * 4 + 4) + (4 * 2 + 2));
        net.zero_grad();
        let mut count = 0;
        net.visit_params(&mut |_, _, _| count += 1);
        assert_eq!(count, 4); // two weights + two biases
    }

    #[test]
    fn empty_sequential_is_identity() {
        let mut net = Sequential::new();
        assert!(net.is_empty());
        let x = Tensor::from_vec(vec![1., 2.], &[1, 2]).unwrap();
        assert_eq!(net.forward(&x, Mode::Eval).unwrap(), x);
        assert_eq!(net.backward(&x).unwrap(), x);
    }

    #[test]
    fn debug_lists_layer_names() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Sequential::new();
        net.push(Dense::new(1, 1, &mut rng)).push(Relu::new());
        let dbg = format!("{net:?}");
        assert!(dbg.contains("dense"));
        assert!(dbg.contains("relu"));
    }
}
