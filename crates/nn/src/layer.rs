//! The [`Layer`] trait and parameter plumbing.

use std::sync::atomic::{AtomicU64, Ordering};

use memcom_tensor::Tensor;

use crate::Result;

/// Whether a forward pass is a training step (dropout active, batch-norm
/// uses batch statistics) or inference (deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training-time behaviour (stochastic regularizers active).
    Train,
    /// Inference-time behaviour (deterministic).
    Eval,
}

/// A process-unique identifier for one trainable parameter tensor.
///
/// Optimizers key their per-parameter state (momentum, Adam moments, …) by
/// `ParamId`, so ids must stay stable across the life of a model. Ids are
/// handed out by [`ParamId::fresh`] from a global counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(u64);

static NEXT_PARAM_ID: AtomicU64 = AtomicU64::new(0);

impl ParamId {
    /// Allocates a new process-unique id.
    pub fn fresh() -> Self {
        ParamId(NEXT_PARAM_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw numeric id (stable within a process run).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Callback used to walk a layer's (parameter, gradient) pairs.
///
/// The visitor style sidesteps returning collections of mutable borrows,
/// which Rust's borrow checker cannot express for heterogeneous layers.
pub type ParamVisitor<'a> = dyn FnMut(ParamId, &mut Tensor, &mut Tensor) + 'a;

/// One differentiable stage of a network.
///
/// Contract:
/// * `forward` caches whatever `backward` will need and returns the output.
/// * `backward` receives `∂L/∂output` and returns `∂L/∂input`, accumulating
///   `∂L/∂param` into the layer's gradient buffers.
/// * `zero_grad` clears gradient buffers between steps.
/// * `visit_params` exposes `(value, grad)` pairs to the optimizer.
///
/// # Example
///
/// ```
/// use memcom_nn::{Dense, Layer, Mode};
/// use memcom_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), memcom_nn::NnError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut layer = Dense::new(4, 2, &mut rng);
/// let x = Tensor::ones(&[3, 4]);
/// let y = layer.forward(&x, Mode::Train)?;
/// assert_eq!(y.shape().dims(), &[3, 2]);
/// let dx = layer.backward(&Tensor::ones(&[3, 2]))?;
/// assert_eq!(dx.shape().dims(), &[3, 4]);
/// # Ok(())
/// # }
/// ```
pub trait Layer {
    /// Computes the layer output for `input`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::BadInput`] when the input shape is invalid
    /// for the layer.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Back-propagates `grad_out = ∂L/∂output`, returning `∂L/∂input`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::BackwardBeforeForward`] when called without
    /// a preceding `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// Clears accumulated parameter gradients.
    fn zero_grad(&mut self);

    /// Visits every (id, value, gradient) parameter triple.
    fn visit_params(&mut self, f: &mut ParamVisitor<'_>);

    /// Human-readable layer name (used in error messages and model dumps).
    fn name(&self) -> &'static str;

    /// Upcast for downcasting to the concrete layer type (used by model
    /// serialization to reach layer-specific state such as batch-norm
    /// running statistics).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable variant of [`Layer::as_any`].
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Total number of trainable scalars in this layer.
    ///
    /// Takes `&mut self` because parameter access is routed through
    /// [`Layer::visit_params`], whose visitor hands out mutable borrows.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |_, value, _| n += value.len());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_ids_unique_and_increasing() {
        let a = ParamId::fresh();
        let b = ParamId::fresh();
        assert_ne!(a, b);
        assert!(b.raw() > a.raw());
    }

    #[test]
    fn mode_is_copy_eq() {
        let m = Mode::Train;
        let n = m;
        assert_eq!(m, n);
        assert_ne!(Mode::Train, Mode::Eval);
    }
}
