//! Neural-network substrate for the MEmCom reproduction.
//!
//! Implements precisely the layer set of the paper's network (Code 1):
//! `Dense`, `ReLU`, `Dropout`, `BatchNormalization`, `AveragePooling1D` (+
//! the implicit `Flatten`), softmax cross-entropy for classification /
//! pointwise ranking, and the RankNet pairwise loss — all with explicit,
//! finite-difference-verified backward passes.
//!
//! The design deliberately avoids a tape/autograd graph: each [`Layer`]
//! caches whatever it needs during `forward` and consumes it in `backward`.
//! This keeps every gradient auditable in isolation (see [`gradcheck`]).
//!
//! Optimizers ([`optim::Sgd`], [`optim::Adam`], [`optim::Adagrad`]) support
//! both dense parameter updates and *sparse row* updates, which is what
//! makes training large embedding tables practical — only touched vocabulary
//! rows pay any cost per step, mirroring how TensorFlow trains
//! `tf.nn.embedding_lookup` tables.

pub mod batchnorm;
pub mod dense;
pub mod dropout;
pub mod error;
pub mod gradcheck;
pub mod layer;
pub mod loss;
pub mod optim;
pub mod pooling;
pub mod relu;
pub mod sequential;

pub use batchnorm::BatchNorm1d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use error::NnError;
pub use layer::{Layer, Mode, ParamId, ParamVisitor};
pub use loss::{ranknet_loss, softmax_cross_entropy, LossOutput};
pub use optim::{Adagrad, Adam, Optimizer, Sgd};
pub use pooling::AveragePool1d;
pub use relu::Relu;
pub use sequential::Sequential;

/// Convenience alias for results returned throughout this crate.
pub type Result<T> = std::result::Result<T, NnError>;
