//! Finite-difference gradient verification.
//!
//! Every layer's `backward` in this repository is validated against central
//! finite differences through [`check_layer`]. The check runs the layer in
//! [`Mode::Train`] (so batch-norm exercises its batch-statistics path) and
//! uses a random linear functional of the output as the scalar loss, which
//! exercises every output coordinate.

use memcom_tensor::Tensor;
use rand::Rng;

use crate::layer::{Layer, Mode};
use crate::Result;

/// Outcome of a failed gradient check, with enough context to debug.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckFailure {
    /// Which quantity disagreed: "input" or a parameter's position.
    pub what: String,
    /// Flat element index that disagreed.
    pub index: usize,
    /// Analytic gradient value.
    pub analytic: f32,
    /// Finite-difference estimate.
    pub numeric: f32,
}

impl std::fmt::Display for GradCheckFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gradient mismatch on {} element {}: analytic {} vs numeric {}",
            self.what, self.index, self.analytic, self.numeric
        )
    }
}

/// Verifies a layer's input and parameter gradients against central finite
/// differences.
///
/// The scalar loss is `L = Σ w ⊙ layer(x)` for a fixed random `w`. The
/// layer must be deterministic in [`Mode::Train`] (do not pass `Dropout`).
/// Inputs are drawn away from ReLU's kink to avoid false positives.
///
/// # Errors
///
/// Returns the underlying layer error if forward/backward fail; panics on
/// gradient disagreement via `Err(NnError::BadInput)`-style message would
/// hide detail, so disagreements are reported as a panic in tests through
/// `unwrap()` on the returned `Result<(), GradCheckFailure>`-like value.
#[allow(clippy::result_large_err)]
pub fn check_layer<R: Rng + ?Sized>(
    mut layer: Box<dyn Layer>,
    input_dims: &[usize],
    tol: f32,
    rng: &mut R,
) -> std::result::Result<(), GradCheckFailure> {
    let run = |layer: &mut Box<dyn Layer>, x: &Tensor, w: &Tensor| -> Result<f32> {
        let y = layer.forward(x, Mode::Train)?;
        Ok(y.mul(w).map(|t| t.sum()).unwrap_or(f32::NAN))
    };

    // Sample inputs in [0.2, 1.2] ∪ [-1.2, -0.2] so no coordinate sits near
    // the ReLU kink and finite differences stay smooth.
    let mut x = Tensor::rand_uniform(input_dims, 0.2, 1.2, rng);
    for v in x.as_mut_slice() {
        if rng.gen::<bool>() {
            *v = -*v;
        }
    }

    let probe = layer
        .forward(&x, Mode::Train)
        .expect("gradcheck forward must succeed");
    let w = Tensor::rand_uniform(probe.shape().dims(), -1.0, 1.0, rng);

    // Analytic gradients.
    layer.zero_grad();
    layer.forward(&x, Mode::Train).expect("forward");
    let dx = layer.backward(&w).expect("backward");

    const EPS: f32 = 1e-2;

    // Input gradient check.
    for i in 0..x.len() {
        let orig = x.as_slice()[i];
        x.as_mut_slice()[i] = orig + EPS;
        let lp = run(&mut layer, &x, &w).expect("forward+");
        x.as_mut_slice()[i] = orig - EPS;
        let lm = run(&mut layer, &x, &w).expect("forward-");
        x.as_mut_slice()[i] = orig;
        let numeric = (lp - lm) / (2.0 * EPS);
        let analytic = dx.as_slice()[i];
        if !close(analytic, numeric, tol) {
            return Err(GradCheckFailure {
                what: "input".into(),
                index: i,
                analytic,
                numeric,
            });
        }
    }

    // Parameter gradient checks. Re-run the analytic pass so caches exist.
    layer.zero_grad();
    layer.forward(&x, Mode::Train).expect("forward");
    layer.backward(&w).expect("backward");
    let mut analytic_grads: Vec<Tensor> = Vec::new();
    layer.visit_params(&mut |_, _, g| analytic_grads.push(g.clone()));

    for (p, param_grads) in analytic_grads.iter().enumerate() {
        let n_elems = param_grads.len();
        for i in 0..n_elems {
            perturb_param(&mut layer, p, i, EPS);
            let lp = run(&mut layer, &x, &w).expect("forward p+");
            perturb_param(&mut layer, p, i, -2.0 * EPS);
            let lm = run(&mut layer, &x, &w).expect("forward p-");
            perturb_param(&mut layer, p, i, EPS); // restore
            let numeric = (lp - lm) / (2.0 * EPS);
            let analytic = param_grads.as_slice()[i];
            if !close(analytic, numeric, tol) {
                return Err(GradCheckFailure {
                    what: format!("param #{p}"),
                    index: i,
                    analytic,
                    numeric,
                });
            }
        }
    }
    Ok(())
}

fn perturb_param(layer: &mut Box<dyn Layer>, param_pos: usize, elem: usize, delta: f32) {
    let mut pos = 0usize;
    layer.visit_params(&mut |_, value, _| {
        if pos == param_pos {
            value.as_mut_slice()[elem] += delta;
        }
        pos += 1;
    });
}

fn close(analytic: f32, numeric: f32, tol: f32) -> bool {
    let denom = 1.0f32.max(analytic.abs()).max(numeric.abs());
    (analytic - numeric).abs() / denom <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{ParamId, ParamVisitor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A layer with a deliberately wrong backward pass, to prove the
    /// checker actually detects bugs.
    #[derive(Debug)]
    struct BrokenScale {
        factor: Tensor,
        grad: Tensor,
        id: ParamId,
        seen: Option<Tensor>,
    }

    impl BrokenScale {
        fn new() -> Self {
            BrokenScale {
                factor: Tensor::from_vec(vec![2.0], &[1]).unwrap(),
                grad: Tensor::zeros(&[1]),
                id: ParamId::fresh(),
                seen: None,
            }
        }
    }

    impl Layer for BrokenScale {
        fn forward(&mut self, input: &Tensor, _mode: Mode) -> crate::Result<Tensor> {
            self.seen = Some(input.clone());
            Ok(input.scale(self.factor.as_slice()[0]))
        }

        fn backward(&mut self, grad_out: &Tensor) -> crate::Result<Tensor> {
            // BUG (intentional): returns grad unscaled.
            Ok(grad_out.clone())
        }

        fn zero_grad(&mut self) {
            self.grad.map_inplace(|_| 0.0);
        }

        fn visit_params(&mut self, f: &mut ParamVisitor<'_>) {
            f(self.id, &mut self.factor, &mut self.grad);
        }

        fn name(&self) -> &'static str {
            "broken_scale"
        }

        fn as_any(&self) -> &dyn std::any::Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn detects_broken_backward() {
        let mut rng = StdRng::seed_from_u64(0);
        let err = check_layer(Box::new(BrokenScale::new()), &[2, 2], 1e-3, &mut rng);
        assert!(err.is_err());
        let failure = err.unwrap_err();
        assert_eq!(failure.what, "input");
        assert!(!failure.to_string().is_empty());
    }

    #[test]
    fn accepts_correct_dense_layer() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = crate::Dense::new(3, 2, &mut rng);
        check_layer(Box::new(layer), &[4, 3], 1e-2, &mut rng).unwrap();
    }
}
