//! Average pooling over the sequence axis.

use memcom_tensor::{ops, Tensor};

use crate::layer::{Layer, Mode, ParamVisitor};
use crate::{NnError, Result};

/// `AveragePooling1D(pool_size = L)` followed by `Flatten`, fused.
///
/// The paper's network pools the `[batch, L, e]` embedding activations over
/// the full input length `L` and immediately flattens the resulting
/// `[batch, 1, e]` to `[batch, e]`; this layer fuses the two steps.
#[derive(Debug, Default)]
pub struct AveragePool1d {
    cached_dims: Option<(usize, usize, usize)>,
}

impl AveragePool1d {
    /// Creates the pooling layer.
    pub fn new() -> Self {
        AveragePool1d { cached_dims: None }
    }
}

impl Layer for AveragePool1d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        if input.shape().rank() != 3 {
            return Err(NnError::BadInput {
                context: format!(
                    "average pool expects [batch, len, emb], got {}",
                    input.shape()
                ),
            });
        }
        let dims = input.shape().dims();
        let (b, l, e) = (dims[0], dims[1], dims[2]);
        if l == 0 {
            return Err(NnError::BadInput {
                context: "cannot pool a zero-length sequence".into(),
            });
        }
        self.cached_dims = Some((b, l, e));
        Ok(ops::mean_axis(input, 1)?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let (b, l, e) = self
            .cached_dims
            .take()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: "average_pool1d".into(),
            })?;
        if grad_out.shape().dims() != [b, e] {
            return Err(NnError::BadInput {
                context: format!("pool backward expects [{b}, {e}], got {}", grad_out.shape()),
            });
        }
        // Each of the L positions receives grad/L.
        let scale = 1.0 / l as f32;
        let mut dx = Tensor::zeros(&[b, l, e]);
        let g = grad_out.as_slice();
        let out = dx.as_mut_slice();
        for bi in 0..b {
            for li in 0..l {
                let dst = (bi * l + li) * e;
                let src = bi * e;
                for ei in 0..e {
                    out[dst + ei] = g[src + ei] * scale;
                }
            }
        }
        Ok(dx)
    }

    fn zero_grad(&mut self) {}

    fn visit_params(&mut self, _f: &mut ParamVisitor<'_>) {}

    fn name(&self) -> &'static str {
        "average_pool1d"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_averages_sequence() {
        let mut layer = AveragePool1d::new();
        let x = Tensor::from_vec(vec![1., 2., 3., 4., 10., 20., 30., 40.], &[2, 2, 2]).unwrap();
        let y = layer.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape().dims(), &[2, 2]);
        assert_eq!(y.as_slice(), &[2., 3., 20., 30.]);
    }

    #[test]
    fn backward_spreads_gradient() {
        let mut layer = AveragePool1d::new();
        let x = Tensor::zeros(&[1, 4, 2]);
        layer.forward(&x, Mode::Train).unwrap();
        let dx = layer.backward(&Tensor::ones(&[1, 2])).unwrap();
        assert_eq!(dx.shape().dims(), &[1, 4, 2]);
        assert!(dx.as_slice().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn shape_validation() {
        let mut layer = AveragePool1d::new();
        assert!(layer.forward(&Tensor::zeros(&[2, 3]), Mode::Eval).is_err());
        assert!(layer
            .forward(&Tensor::zeros(&[2, 0, 3]), Mode::Eval)
            .is_err());
        assert!(layer.backward(&Tensor::zeros(&[2, 3])).is_err());
        layer
            .forward(&Tensor::zeros(&[1, 2, 3]), Mode::Eval)
            .unwrap();
        assert!(layer.backward(&Tensor::zeros(&[9, 9])).is_err());
    }

    #[test]
    fn gradcheck_pooling() {
        let mut rng = StdRng::seed_from_u64(12);
        gradcheck::check_layer(Box::new(AveragePool1d::new()), &[2, 3, 4], 1e-2, &mut rng).unwrap();
    }
}
