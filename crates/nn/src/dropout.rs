//! Inverted dropout.

use memcom_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::layer::{Layer, Mode, ParamVisitor};
use crate::{NnError, Result};

/// Inverted dropout: during training each activation is zeroed with
/// probability `rate` and survivors are scaled by `1/(1-rate)` so the
/// expected activation is unchanged; at eval time the layer is the
/// identity. The layer owns a seeded RNG so training runs are reproducible.
#[derive(Debug)]
pub struct Dropout {
    rate: f32,
    rng: StdRng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `rate ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)` — a configuration bug, not a
    /// runtime condition.
    pub fn new(rate: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&rate),
            "dropout rate must be in [0, 1), got {rate}"
        );
        Dropout {
            rate,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
        }
    }

    /// The configured drop probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        match mode {
            Mode::Eval => {
                self.mask = Some(Tensor::ones(input.shape().dims()));
                Ok(input.clone())
            }
            Mode::Train => {
                if self.rate == 0.0 {
                    self.mask = Some(Tensor::ones(input.shape().dims()));
                    return Ok(input.clone());
                }
                let keep = 1.0 - self.rate;
                let scale = 1.0 / keep;
                let mut mask = Tensor::zeros(input.shape().dims());
                for m in mask.as_mut_slice() {
                    if self.rng.gen::<f32>() < keep {
                        *m = scale;
                    }
                }
                let out = input.mul(&mask)?;
                self.mask = Some(mask);
                Ok(out)
            }
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .take()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: "dropout".into(),
            })?;
        Ok(grad_out.mul(&mask)?)
    }

    fn zero_grad(&mut self) {}

    fn visit_params(&mut self, _f: &mut ParamVisitor<'_>) {}

    fn name(&self) -> &'static str {
        "dropout"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut layer = Dropout::new(0.5, 1);
        let x = Tensor::from_vec(vec![1., 2., 3.], &[3]).unwrap();
        assert_eq!(layer.forward(&x, Mode::Eval).unwrap(), x);
    }

    #[test]
    fn train_preserves_expectation() {
        let mut layer = Dropout::new(0.3, 2);
        let x = Tensor::ones(&[10_000]);
        let y = layer.forward(&x, Mode::Train).unwrap();
        // E[y] = 1; allow Monte-Carlo slack.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Survivors are exactly scaled.
        let keep_scale = 1.0 / 0.7;
        assert!(y
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - keep_scale).abs() < 1e-6));
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut layer = Dropout::new(0.5, 3);
        let x = Tensor::ones(&[100]);
        let y = layer.forward(&x, Mode::Train).unwrap();
        let dx = layer.backward(&Tensor::ones(&[100])).unwrap();
        // Gradient flows exactly where activations flowed.
        for (a, b) in y.as_slice().iter().zip(dx.as_slice()) {
            assert_eq!(a == &0.0, b == &0.0);
        }
    }

    #[test]
    fn zero_rate_is_identity_in_train() {
        let mut layer = Dropout::new(0.0, 4);
        let x = Tensor::from_vec(vec![5., -1.], &[2]).unwrap();
        assert_eq!(layer.forward(&x, Mode::Train).unwrap(), x);
    }

    #[test]
    fn seeded_reproducibility() {
        let x = Tensor::ones(&[64]);
        let mut a = Dropout::new(0.4, 9);
        let mut b = Dropout::new(0.4, 9);
        assert_eq!(
            a.forward(&x, Mode::Train).unwrap(),
            b.forward(&x, Mode::Train).unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn rejects_rate_one() {
        let _ = Dropout::new(1.0, 0);
    }
}
