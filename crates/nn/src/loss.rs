//! Loss functions: softmax cross-entropy and the RankNet pairwise loss.

use memcom_tensor::{ops, Tensor};

use crate::{NnError, Result};

/// A scalar loss together with the gradient of that loss with respect to
/// the predictions that produced it.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// `∂loss/∂predictions`, same shape as the predictions.
    pub grad: Tensor,
}

/// Softmax cross-entropy over `[batch, classes]` logits with integer
/// labels, averaged over the batch.
///
/// Combining softmax and negative log-likelihood in one step gives the
/// numerically exact gradient `softmax(logits) − one_hot(label)` scaled by
/// `1/batch`.
///
/// # Errors
///
/// Returns [`NnError::BadTarget`] when the label count differs from the
/// batch size or any label is out of range, and propagates shape errors for
/// non-rank-2 logits.
///
/// # Example
///
/// ```
/// use memcom_nn::softmax_cross_entropy;
/// use memcom_tensor::Tensor;
///
/// # fn main() -> Result<(), memcom_nn::NnError> {
/// let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0, 2.0], &[2, 2])?;
/// let out = softmax_cross_entropy(&logits, &[0, 1])?;
/// assert!(out.loss < 0.2); // confident and correct
/// # Ok(())
/// # }
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<LossOutput> {
    if logits.shape().rank() != 2 {
        return Err(NnError::BadInput {
            context: format!(
                "cross entropy expects rank-2 logits, got {}",
                logits.shape()
            ),
        });
    }
    let (b, c) = (logits.shape().dims()[0], logits.shape().dims()[1]);
    if labels.len() != b {
        return Err(NnError::BadTarget {
            context: format!("{} labels for a batch of {}", labels.len(), b),
        });
    }
    if b == 0 {
        return Err(NnError::BadTarget {
            context: "empty batch".into(),
        });
    }
    for &l in labels {
        if l >= c {
            return Err(NnError::BadTarget {
                context: format!("label {l} out of range for {c} classes"),
            });
        }
    }
    let log_probs = ops::log_softmax_rows(logits)?;
    let mut loss = 0f32;
    for (row, &label) in labels.iter().enumerate() {
        loss -= log_probs.at(&[row, label])?;
    }
    loss /= b as f32;

    let mut grad = log_probs.map(f32::exp); // softmax
    let scale = 1.0 / b as f32;
    {
        let g = grad.as_mut_slice();
        for (row, &label) in labels.iter().enumerate() {
            g[row * c + label] -= 1.0;
        }
        for v in g.iter_mut() {
            *v *= scale;
        }
    }
    Ok(LossOutput { loss, grad })
}

/// RankNet pairwise loss (Burges et al., 2005) for score pairs in which the
/// first item is preferred.
///
/// For each pair `(s⁺, s⁻)` the loss is `log(1 + exp(−(s⁺ − s⁻)))`,
/// averaged over pairs. Returns the loss plus gradients with respect to the
/// positive and negative score vectors.
///
/// # Errors
///
/// Returns [`NnError::BadTarget`] when the two score vectors differ in
/// length or are empty.
pub fn ranknet_loss(scores_pos: &Tensor, scores_neg: &Tensor) -> Result<(f32, Tensor, Tensor)> {
    if scores_pos.shape() != scores_neg.shape() || scores_pos.shape().rank() != 1 {
        return Err(NnError::BadTarget {
            context: format!(
                "ranknet expects equal rank-1 score vectors, got {} and {}",
                scores_pos.shape(),
                scores_neg.shape()
            ),
        });
    }
    let n = scores_pos.len();
    if n == 0 {
        return Err(NnError::BadTarget {
            context: "empty pair batch".into(),
        });
    }
    let mut loss = 0f32;
    let mut grad_pos = vec![0f32; n];
    let mut grad_neg = vec![0f32; n];
    let inv_n = 1.0 / n as f32;
    for i in 0..n {
        let diff = scores_pos.as_slice()[i] - scores_neg.as_slice()[i];
        // Stable softplus(−diff).
        loss += if diff > 0.0 {
            (-diff).exp().ln_1p()
        } else {
            (diff.exp().ln_1p()) - diff
        };
        // d/d diff softplus(−diff) = −sigmoid(−diff).
        let sg = if diff >= 0.0 {
            let e = (-diff).exp();
            e / (1.0 + e)
        } else {
            1.0 / (1.0 + diff.exp())
        };
        grad_pos[i] = -sg * inv_n;
        grad_neg[i] = sg * inv_n;
    }
    loss *= inv_n;
    Ok((
        loss,
        Tensor::from_vec(grad_pos, &[n])?,
        Tensor::from_vec(grad_neg, &[n])?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_uniform_logits() {
        // Uniform logits over C classes → loss = ln C.
        let logits = Tensor::zeros(&[4, 8]);
        let out = softmax_cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
        assert!((out.loss - (8f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_structure() {
        let logits = Tensor::from_vec(vec![5.0, 0.0], &[1, 2]).unwrap();
        let out = softmax_cross_entropy(&logits, &[0]).unwrap();
        // Gradient rows sum to zero (softmax minus one-hot).
        let s: f32 = out.grad.as_slice().iter().sum();
        assert!(s.abs() < 1e-6);
        // Correct-class gradient is negative.
        assert!(out.grad.as_slice()[0] < 0.0);
        assert!(out.grad.as_slice()[1] > 0.0);
    }

    #[test]
    fn cross_entropy_matches_finite_difference() {
        let base = Tensor::from_vec(vec![0.2, -0.3, 0.7, 0.1, 0.9, -0.5], &[2, 3]).unwrap();
        let labels = [2usize, 0usize];
        let out = softmax_cross_entropy(&base, &labels).unwrap();
        let eps = 1e-3f32;
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = base.clone();
            minus.as_mut_slice()[i] -= eps;
            let lp = softmax_cross_entropy(&plus, &labels).unwrap().loss;
            let lm = softmax_cross_entropy(&minus, &labels).unwrap().loss;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = out.grad.as_slice()[i];
            assert!(
                (numeric - analytic).abs() < 1e-3,
                "elem {i}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn cross_entropy_validates_targets() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 3]).is_err());
        assert!(softmax_cross_entropy(&Tensor::zeros(&[0, 3]), &[]).is_err());
        assert!(softmax_cross_entropy(&Tensor::zeros(&[3]), &[0, 0, 0]).is_err());
    }

    #[test]
    fn ranknet_correct_order_has_low_loss() {
        let pos = Tensor::from_vec(vec![5.0, 4.0], &[2]).unwrap();
        let neg = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        let (loss, gp, gn) = ranknet_loss(&pos, &neg).unwrap();
        assert!(loss < 0.05);
        // Gradients push scores apart (pos up, neg down) but are tiny here.
        assert!(gp.as_slice().iter().all(|&g| g <= 0.0));
        assert!(gn.as_slice().iter().all(|&g| g >= 0.0));
    }

    #[test]
    fn ranknet_tied_scores_loss_ln2() {
        let s = Tensor::zeros(&[3]);
        let (loss, gp, _gn) = ranknet_loss(&s, &s).unwrap();
        assert!((loss - (2f32).ln()).abs() < 1e-6);
        // At a tie the gradient magnitude is sigmoid(0)/n = 0.5/3.
        assert!(gp.as_slice().iter().all(|&g| (g + 0.5 / 3.0).abs() < 1e-6));
    }

    #[test]
    fn ranknet_matches_finite_difference() {
        let pos = Tensor::from_vec(vec![0.3, -0.8, 1.2], &[3]).unwrap();
        let neg = Tensor::from_vec(vec![0.5, -1.0, 0.2], &[3]).unwrap();
        let (_, gp, gn) = ranknet_loss(&pos, &neg).unwrap();
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut p = pos.clone();
            p.as_mut_slice()[i] += eps;
            let (lp, _, _) = ranknet_loss(&p, &neg).unwrap();
            p.as_mut_slice()[i] -= 2.0 * eps;
            let (lm, _, _) = ranknet_loss(&p, &neg).unwrap();
            assert!(((lp - lm) / (2.0 * eps) - gp.as_slice()[i]).abs() < 1e-3);

            let mut q = neg.clone();
            q.as_mut_slice()[i] += eps;
            let (lp2, _, _) = ranknet_loss(&pos, &q).unwrap();
            q.as_mut_slice()[i] -= 2.0 * eps;
            let (lm2, _, _) = ranknet_loss(&pos, &q).unwrap();
            assert!(((lp2 - lm2) / (2.0 * eps) - gn.as_slice()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn ranknet_extreme_scores_stable() {
        let pos = Tensor::from_vec(vec![1000.0, -1000.0], &[2]).unwrap();
        let neg = Tensor::from_vec(vec![-1000.0, 1000.0], &[2]).unwrap();
        let (loss, gp, gn) = ranknet_loss(&pos, &neg).unwrap();
        assert!(loss.is_finite());
        assert!(gp.as_slice().iter().all(|g| g.is_finite()));
        assert!(gn.as_slice().iter().all(|g| g.is_finite()));
        // Pair 2 is maximally wrong → loss ≈ 2000/2.
        assert!((loss - 1000.0).abs() < 1.0);
    }

    #[test]
    fn ranknet_validates_shapes() {
        assert!(ranknet_loss(&Tensor::zeros(&[2]), &Tensor::zeros(&[3])).is_err());
        assert!(ranknet_loss(&Tensor::zeros(&[0]), &Tensor::zeros(&[0])).is_err());
        assert!(ranknet_loss(&Tensor::zeros(&[2, 1]), &Tensor::zeros(&[2, 1])).is_err());
    }
}
