//! Rectified linear unit layer.

use memcom_tensor::{ops, Tensor};

use crate::layer::{Layer, Mode, ParamVisitor};
use crate::{NnError, Result};

/// Elementwise `max(0, x)` with the standard subgradient (0 at x = 0).
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        self.mask = Some(ops::relu_grad_mask(input));
        Ok(ops::relu(input))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .take()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: "relu".into(),
            })?;
        Ok(grad_out.mul(&mask)?)
    }

    fn zero_grad(&mut self) {}

    fn visit_params(&mut self, _f: &mut ParamVisitor<'_>) {}

    fn name(&self) -> &'static str {
        "relu"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_clamps_negatives() {
        let mut layer = Relu::new();
        let x = Tensor::from_vec(vec![-2., 0., 3.], &[3]).unwrap();
        assert_eq!(
            layer.forward(&x, Mode::Eval).unwrap().as_slice(),
            &[0., 0., 3.]
        );
    }

    #[test]
    fn backward_masks_gradient() {
        let mut layer = Relu::new();
        let x = Tensor::from_vec(vec![-2., 0., 3.], &[3]).unwrap();
        layer.forward(&x, Mode::Train).unwrap();
        let dx = layer.backward(&Tensor::ones(&[3])).unwrap();
        assert_eq!(dx.as_slice(), &[0., 0., 1.]);
        assert!(layer.backward(&Tensor::ones(&[3])).is_err());
    }

    #[test]
    fn no_params() {
        let mut layer = Relu::new();
        assert_eq!(Layer::param_count(&mut layer), 0);
    }

    #[test]
    fn gradcheck_away_from_kink() {
        let mut rng = StdRng::seed_from_u64(10);
        gradcheck::check_layer(Box::new(Relu::new()), &[3, 5], 1e-2, &mut rng).unwrap();
    }
}
