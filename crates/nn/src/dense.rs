//! Fully connected layer (`Dense` in Keras terms).

use memcom_tensor::{init, ops, Tensor};
use rand::Rng;

use crate::layer::{Layer, Mode, ParamId, ParamVisitor};
use crate::{NnError, Result};

/// `y = x·W + b` with `W ∈ ℝ^{in×out}`, `b ∈ ℝ^{out}`.
///
/// The kernel uses Glorot-uniform initialization and the bias starts at
/// zero, matching Keras defaults (the paper trains the Code-1 network with
/// Keras defaults).
#[derive(Debug)]
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    weight_id: ParamId,
    bias_id: ParamId,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer mapping `in_dim → out_dim`.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Dense {
            weight: init::glorot_uniform(in_dim, out_dim, rng),
            bias: Tensor::zeros(&[out_dim]),
            grad_weight: Tensor::zeros(&[in_dim, out_dim]),
            grad_bias: Tensor::zeros(&[out_dim]),
            weight_id: ParamId::fresh(),
            bias_id: ParamId::fresh(),
            cached_input: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.shape().dims()[0]
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.shape().dims()[1]
    }

    /// Borrows the kernel (used by serialization and tests).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Borrows the bias (used by serialization and tests).
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Replaces the kernel and bias (used by deserialization).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when shapes do not match the layer.
    pub fn set_weights(&mut self, weight: Tensor, bias: Tensor) -> Result<()> {
        if weight.shape() != self.weight.shape() || bias.shape() != self.bias.shape() {
            return Err(NnError::BadInput {
                context: format!(
                    "set_weights expects shapes {} and {}, got {} and {}",
                    self.weight.shape(),
                    self.bias.shape(),
                    weight.shape(),
                    bias.shape()
                ),
            });
        }
        self.weight = weight;
        self.bias = bias;
        Ok(())
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        if input.shape().rank() != 2 || input.shape().dims()[1] != self.in_dim() {
            return Err(NnError::BadInput {
                context: format!(
                    "dense expects [batch, {}], got {}",
                    self.in_dim(),
                    input.shape()
                ),
            });
        }
        self.cached_input = Some(input.clone());
        let y = ops::matmul(input, &self.weight)?;
        // Broadcast bias over the batch: [b, out] + [out].
        Ok(y.add(&self.bias)?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .take()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: "dense".into(),
            })?;
        // dW += xᵀ·dy ; db += Σ_batch dy ; dx = dy·Wᵀ
        let dw = ops::matmul(&input.transpose()?, grad_out)?;
        self.grad_weight.axpy(1.0, &dw)?;
        let db = ops::sum_axis(grad_out, 0)?;
        self.grad_bias.axpy(1.0, &db)?;
        Ok(ops::matmul(grad_out, &self.weight.transpose()?)?)
    }

    fn zero_grad(&mut self) {
        self.grad_weight.map_inplace(|_| 0.0);
        self.grad_bias.map_inplace(|_| 0.0);
    }

    fn visit_params(&mut self, f: &mut ParamVisitor<'_>) {
        f(self.weight_id, &mut self.weight, &mut self.grad_weight);
        f(self.bias_id, &mut self.bias, &mut self.grad_bias);
    }

    fn name(&self) -> &'static str {
        "dense"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Dense::new(3, 2, &mut rng);
        layer
            .set_weights(
                Tensor::from_vec(vec![1., 0., 0., 1., 1., 1.], &[3, 2]).unwrap(),
                Tensor::from_vec(vec![10., 20.], &[2]).unwrap(),
            )
            .unwrap();
        let x = Tensor::from_vec(vec![1., 2., 3.], &[1, 3]).unwrap();
        let y = layer.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[14., 25.]);
    }

    #[test]
    fn rejects_bad_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Dense::new(3, 2, &mut rng);
        assert!(layer.forward(&Tensor::zeros(&[2, 4]), Mode::Eval).is_err());
        assert!(layer.forward(&Tensor::zeros(&[3]), Mode::Eval).is_err());
        assert!(layer.backward(&Tensor::zeros(&[2, 2])).is_err());
    }

    #[test]
    fn set_weights_validates_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Dense::new(3, 2, &mut rng);
        assert!(layer
            .set_weights(Tensor::zeros(&[2, 2]), Tensor::zeros(&[2]))
            .is_err());
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Dense::new(5, 4, &mut rng);
        assert_eq!(Layer::param_count(&mut layer), 5 * 4 + 4);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Dense::new(4, 3, &mut rng);
        gradcheck::check_layer(Box::new(layer), &[2, 4], 1e-2, &mut rng).unwrap();
    }

    #[test]
    fn backward_accumulates_until_zero_grad() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Dense::new(2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        let dy = Tensor::ones(&[1, 2]);
        layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&dy).unwrap();
        let mut first = Tensor::default();
        layer.visit_params(&mut |_, _, g| {
            if g.shape().rank() == 2 {
                first = g.clone();
            }
        });
        layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&dy).unwrap();
        layer.visit_params(&mut |_, _, g| {
            if g.shape().rank() == 2 {
                assert!(g.allclose(&first.scale(2.0), 1e-6));
            }
        });
        layer.zero_grad();
        layer.visit_params(&mut |_, _, g| assert_eq!(g.sum(), 0.0));
    }
}
