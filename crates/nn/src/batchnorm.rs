//! 1-D batch normalization (`BatchNormalization` in Keras).

use memcom_tensor::{ops, Tensor};

use crate::layer::{Layer, Mode, ParamId, ParamVisitor};
use crate::{NnError, Result};

/// Batch normalization over the feature axis of `[batch, features]`
/// activations.
///
/// Training mode normalizes with batch statistics and maintains exponential
/// moving averages; eval mode normalizes with the moving averages. The
/// backward pass implements the full batch-norm gradient (including the
/// terms through the batch mean and variance), verified against finite
/// differences in the tests.
#[derive(Debug)]
pub struct BatchNorm1d {
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    gamma_id: ParamId,
    beta_id: ParamId,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    batch: usize,
}

impl BatchNorm1d {
    /// Keras-default construction: `momentum = 0.99`, `eps = 1e-3`.
    pub fn new(features: usize) -> Self {
        Self::with_hyper(features, 0.99, 1e-3)
    }

    /// Full-control constructor.
    ///
    /// # Panics
    ///
    /// Panics when `features == 0`, `momentum ∉ [0,1]`, or `eps <= 0` —
    /// these are configuration bugs.
    pub fn with_hyper(features: usize, momentum: f32, eps: f32) -> Self {
        assert!(features > 0, "batch norm needs at least one feature");
        assert!((0.0..=1.0).contains(&momentum), "momentum must be in [0,1]");
        assert!(eps > 0.0, "eps must be positive");
        BatchNorm1d {
            gamma: Tensor::ones(&[features]),
            beta: Tensor::zeros(&[features]),
            grad_gamma: Tensor::zeros(&[features]),
            grad_beta: Tensor::zeros(&[features]),
            gamma_id: ParamId::fresh(),
            beta_id: ParamId::fresh(),
            running_mean: Tensor::zeros(&[features]),
            running_var: Tensor::ones(&[features]),
            momentum,
            eps,
            cache: None,
        }
    }

    /// Number of normalized features.
    pub fn features(&self) -> usize {
        self.gamma.len()
    }

    /// The numerical-stability epsilon (needed to reproduce eval-mode
    /// normalization from serialized state).
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Borrow `(gamma, beta, running_mean, running_var)` for serialization.
    pub fn state(&self) -> (&Tensor, &Tensor, &Tensor, &Tensor) {
        (
            &self.gamma,
            &self.beta,
            &self.running_mean,
            &self.running_var,
        )
    }

    /// Restores `(gamma, beta, running_mean, running_var)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when any shape mismatches.
    pub fn set_state(
        &mut self,
        gamma: Tensor,
        beta: Tensor,
        running_mean: Tensor,
        running_var: Tensor,
    ) -> Result<()> {
        for t in [&gamma, &beta, &running_mean, &running_var] {
            if t.shape() != self.gamma.shape() {
                return Err(NnError::BadInput {
                    context: format!(
                        "batch-norm state expects shape {}, got {}",
                        self.gamma.shape(),
                        t.shape()
                    ),
                });
            }
        }
        self.gamma = gamma;
        self.beta = beta;
        self.running_mean = running_mean;
        self.running_var = running_var;
        Ok(())
    }

    fn check_input(&self, input: &Tensor) -> Result<()> {
        if input.shape().rank() != 2 || input.shape().dims()[1] != self.features() {
            return Err(NnError::BadInput {
                context: format!(
                    "batch norm expects [batch, {}], got {}",
                    self.features(),
                    input.shape()
                ),
            });
        }
        Ok(())
    }
}

impl Layer for BatchNorm1d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        self.check_input(input)?;
        let b = input.shape().dims()[0];
        let d = self.features();
        match mode {
            Mode::Train => {
                if b == 0 {
                    return Err(NnError::BadInput {
                        context: "batch norm cannot train on an empty batch".into(),
                    });
                }
                let mean = ops::mean_axis(input, 0)?;
                let centered = input.sub(&mean)?;
                let var = ops::mean_axis(&centered.mul(&centered)?, 0)?;
                let inv_std: Vec<f32> = var
                    .as_slice()
                    .iter()
                    .map(|&v| 1.0 / (v + self.eps).sqrt())
                    .collect();
                let inv_std_t = Tensor::from_vec(inv_std.clone(), &[d])?;
                let x_hat = centered.mul(&inv_std_t)?;
                let out = x_hat.mul(&self.gamma)?.add(&self.beta)?;
                // Exponential moving averages (Keras convention:
                // running = momentum*running + (1-momentum)*batch).
                let m = self.momentum;
                let new_mean = self.running_mean.scale(m).add(&mean.scale(1.0 - m))?;
                let new_var = self.running_var.scale(m).add(&var.scale(1.0 - m))?;
                self.running_mean = new_mean;
                self.running_var = new_var;
                self.cache = Some(BnCache {
                    x_hat,
                    inv_std,
                    batch: b,
                });
                Ok(out)
            }
            Mode::Eval => {
                let inv_std: Vec<f32> = self
                    .running_var
                    .as_slice()
                    .iter()
                    .map(|&v| 1.0 / (v + self.eps).sqrt())
                    .collect();
                let inv_std_t = Tensor::from_vec(inv_std, &[d])?;
                let x_hat = input.sub(&self.running_mean)?.mul(&inv_std_t)?;
                Ok(x_hat.mul(&self.gamma)?.add(&self.beta)?)
            }
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .take()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: "batchnorm".into(),
            })?;
        let BnCache {
            x_hat,
            inv_std,
            batch,
        } = cache;
        let d = self.features();
        // Parameter gradients.
        let dgamma = ops::sum_axis(&grad_out.mul(&x_hat)?, 0)?;
        let dbeta = ops::sum_axis(grad_out, 0)?;
        self.grad_gamma.axpy(1.0, &dgamma)?;
        self.grad_beta.axpy(1.0, &dbeta)?;
        // Input gradient:
        // dx = (gamma * inv_std / b) * (b*dy - Σdy - x_hat * Σ(dy*x_hat))
        let n = batch as f32;
        let sum_dy = ops::sum_axis(grad_out, 0)?;
        let sum_dy_xhat = ops::sum_axis(&grad_out.mul(&x_hat)?, 0)?;
        let term = grad_out
            .scale(n)
            .sub(&sum_dy)?
            .sub(&x_hat.mul(&sum_dy_xhat)?)?;
        let inv_std_t = Tensor::from_vec(inv_std, &[d])?;
        let coeff = self.gamma.mul(&inv_std_t)?.scale(1.0 / n);
        Ok(term.mul(&coeff)?)
    }

    fn zero_grad(&mut self) {
        self.grad_gamma.map_inplace(|_| 0.0);
        self.grad_beta.map_inplace(|_| 0.0);
    }

    fn visit_params(&mut self, f: &mut ParamVisitor<'_>) {
        f(self.gamma_id, &mut self.gamma, &mut self.grad_gamma);
        f(self.beta_id, &mut self.beta, &mut self.grad_beta);
    }

    fn name(&self) -> &'static str {
        "batchnorm1d"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn train_output_is_normalized() {
        let mut bn = BatchNorm1d::with_hyper(2, 0.9, 1e-5);
        let x = Tensor::from_vec(vec![1., 10., 3., 20., 5., 30.], &[3, 2]).unwrap();
        let y = bn.forward(&x, Mode::Train).unwrap();
        // Per-feature mean ≈ 0, var ≈ 1 (gamma=1, beta=0).
        let mean = ops::mean_axis(&y, 0).unwrap();
        assert!(mean.as_slice().iter().all(|&m| m.abs() < 1e-5));
        let var = ops::mean_axis(&y.mul(&y).unwrap(), 0).unwrap();
        assert!(
            var.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-3),
            "{var:?}"
        );
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm1d::with_hyper(1, 0.0, 1e-5); // momentum 0 → adopt batch stats
        let x = Tensor::from_vec(vec![0., 2.], &[2, 1]).unwrap();
        bn.forward(&x, Mode::Train).unwrap();
        // Running mean = 1, var = 1. Eval of x=1 → 0.
        let y = bn
            .forward(&Tensor::from_vec(vec![1.], &[1, 1]).unwrap(), Mode::Eval)
            .unwrap();
        assert!(y.as_slice()[0].abs() < 1e-3);
    }

    #[test]
    fn rejects_bad_shapes_and_empty_batch() {
        let mut bn = BatchNorm1d::new(3);
        assert!(bn.forward(&Tensor::zeros(&[2, 2]), Mode::Train).is_err());
        assert!(bn.forward(&Tensor::zeros(&[0, 3]), Mode::Train).is_err());
        assert!(bn.backward(&Tensor::zeros(&[2, 3])).is_err());
    }

    #[test]
    fn gradcheck_full_backward() {
        let mut rng = StdRng::seed_from_u64(11);
        let bn = BatchNorm1d::with_hyper(4, 0.9, 1e-3);
        gradcheck::check_layer(Box::new(bn), &[6, 4], 2e-2, &mut rng).unwrap();
    }

    #[test]
    fn state_round_trip() {
        let mut bn = BatchNorm1d::new(2);
        let g = Tensor::from_vec(vec![2., 3.], &[2]).unwrap();
        let b = Tensor::from_vec(vec![-1., 1.], &[2]).unwrap();
        let m = Tensor::from_vec(vec![0.5, 0.5], &[2]).unwrap();
        let v = Tensor::from_vec(vec![4., 4.], &[2]).unwrap();
        bn.set_state(g.clone(), b.clone(), m.clone(), v.clone())
            .unwrap();
        let (g2, b2, m2, v2) = bn.state();
        assert_eq!((&g, &b, &m, &v), (g2, b2, m2, v2));
        assert!(bn
            .set_state(
                Tensor::zeros(&[3]),
                Tensor::zeros(&[2]),
                Tensor::zeros(&[2]),
                Tensor::zeros(&[2])
            )
            .is_err());
    }

    #[test]
    fn param_count_is_two_per_feature() {
        let mut bn = BatchNorm1d::new(7);
        assert_eq!(Layer::param_count(&mut bn), 14);
    }
}
