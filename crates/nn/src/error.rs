//! Error type for the neural-network substrate.

use std::error::Error;
use std::fmt;

use memcom_tensor::TensorError;

/// Errors produced by layers, losses, and optimizers.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// `backward` was called before `forward` (no cached activations).
    BackwardBeforeForward {
        /// Layer that was misused.
        layer: String,
    },
    /// The input shape is invalid for this layer.
    BadInput {
        /// Human-readable description of the constraint that was violated.
        context: String,
    },
    /// Labels or targets are inconsistent with the predictions.
    BadTarget {
        /// Human-readable description of the inconsistency.
        context: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            NnError::BackwardBeforeForward { layer } => {
                write!(f, "backward called before forward on layer {layer}")
            }
            NnError::BadInput { context } => write!(f, "bad layer input: {context}"),
            NnError::BadTarget { context } => write!(f, "bad loss target: {context}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NnError::from(TensorError::EmptyTensor);
        assert!(e.to_string().contains("tensor"));
        assert!(Error::source(&e).is_some());
        let e2 = NnError::BackwardBeforeForward {
            layer: "dense".into(),
        };
        assert!(e2.to_string().contains("dense"));
        assert!(Error::source(&e2).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
