//! Optimizers with dense and sparse-row update paths.
//!
//! Embedding tables are updated through [`Optimizer::step_sparse_rows`],
//! which touches only the vocabulary rows seen in the current batch — the
//! same trick deep-learning frameworks use for `embedding_lookup` training
//! and the reason the paper can train 480K-entity vocabularies. Dense
//! layers use [`Optimizer::step_dense`].

use std::collections::HashMap;

use memcom_tensor::Tensor;

use crate::layer::ParamId;
use crate::{NnError, Result};

/// A gradient-descent update rule.
///
/// Optimizers key internal state (momentum/moments) by [`ParamId`], so the
/// same optimizer instance must be reused across steps for state to work.
pub trait Optimizer {
    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f32);

    /// Applies one update to a dense parameter given its full gradient.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when `value` and `grad` shapes differ.
    fn step_dense(&mut self, id: ParamId, value: &mut Tensor, grad: &Tensor) -> Result<()>;

    /// Applies one update to `rows` of a `[v, cols]` parameter, where
    /// `row_grads` is `[rows.len(), cols]`. Rows must be unique; callers
    /// pre-aggregate duplicate ids.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] on shape/row mismatches.
    fn step_sparse_rows(
        &mut self,
        id: ParamId,
        value: &mut Tensor,
        rows: &[usize],
        row_grads: &Tensor,
    ) -> Result<()>;
}

fn check_dense(value: &Tensor, grad: &Tensor) -> Result<()> {
    if value.shape() != grad.shape() {
        return Err(NnError::BadInput {
            context: format!(
                "optimizer shapes differ: {} vs {}",
                value.shape(),
                grad.shape()
            ),
        });
    }
    Ok(())
}

fn check_sparse(value: &Tensor, rows: &[usize], row_grads: &Tensor) -> Result<(usize, usize)> {
    if value.shape().rank() != 2 || row_grads.shape().rank() != 2 {
        return Err(NnError::BadInput {
            context: "sparse update requires rank-2 value and row_grads".into(),
        });
    }
    let v = value.shape().dims()[0];
    let cols = value.shape().dims()[1];
    if row_grads.shape().dims() != [rows.len(), cols] {
        return Err(NnError::BadInput {
            context: format!(
                "row_grads shape {} does not match {} rows × {} cols",
                row_grads.shape(),
                rows.len(),
                cols
            ),
        });
    }
    if let Some(&bad) = rows.iter().find(|&&r| r >= v) {
        return Err(NnError::BadInput {
            context: format!("row {bad} out of range for {v} rows"),
        });
    }
    Ok((v, cols))
}

/// Stochastic gradient descent with optional classical momentum.
///
/// Sparse updates intentionally skip momentum (the "lazy" convention):
/// maintaining velocity for every vocabulary row would reintroduce the
/// memory cost compression is trying to avoid.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<ParamId, Tensor>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// SGD with classical momentum `μ` (`v ← μv − lr·g`, `w ← w + v`).
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn step_dense(&mut self, id: ParamId, value: &mut Tensor, grad: &Tensor) -> Result<()> {
        check_dense(value, grad)?;
        if self.momentum == 0.0 {
            value.axpy(-self.lr, grad)?;
            return Ok(());
        }
        let vel = self
            .velocity
            .entry(id)
            .or_insert_with(|| Tensor::zeros(value.shape().dims()));
        let mut new_vel = vel.scale(self.momentum);
        new_vel.axpy(-self.lr, grad)?;
        value.axpy(1.0, &new_vel)?;
        *vel = new_vel;
        Ok(())
    }

    fn step_sparse_rows(
        &mut self,
        _id: ParamId,
        value: &mut Tensor,
        rows: &[usize],
        row_grads: &Tensor,
    ) -> Result<()> {
        let (_, cols) = check_sparse(value, rows, row_grads)?;
        let g = row_grads.as_slice();
        let w = value.as_mut_slice();
        for (k, &r) in rows.iter().enumerate() {
            for c in 0..cols {
                w[r * cols + c] -= self.lr * g[k * cols + c];
            }
        }
        Ok(())
    }
}

/// Adam (Kingma & Ba, 2015) with lazy sparse semantics: moments for
/// embedding rows are updated only when the row is touched, using the
/// parameter-global step count for bias correction.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    state: HashMap<ParamId, AdamState>,
}

#[derive(Debug)]
struct AdamState {
    m: Tensor,
    v: Tensor,
    t: u64,
}

impl Adam {
    /// Adam with the standard defaults `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            state: HashMap::new(),
        }
    }

    fn state_for(&mut self, id: ParamId, dims: &[usize]) -> &mut AdamState {
        self.state.entry(id).or_insert_with(|| AdamState {
            m: Tensor::zeros(dims),
            v: Tensor::zeros(dims),
            t: 0,
        })
    }
}

impl Optimizer for Adam {
    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn step_dense(&mut self, id: ParamId, value: &mut Tensor, grad: &Tensor) -> Result<()> {
        check_dense(value, grad)?;
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let st = self.state_for(id, value.shape().dims());
        st.t += 1;
        let bias1 = 1.0 - b1.powi(st.t as i32);
        let bias2 = 1.0 - b2.powi(st.t as i32);
        let w = value.as_mut_slice();
        let m = st.m.as_mut_slice();
        let v = st.v.as_mut_slice();
        for i in 0..w.len() {
            let g = grad.as_slice()[i];
            m[i] = b1 * m[i] + (1.0 - b1) * g;
            v[i] = b2 * v[i] + (1.0 - b2) * g * g;
            let m_hat = m[i] / bias1;
            let v_hat = v[i] / bias2;
            w[i] -= lr * m_hat / (v_hat.sqrt() + eps);
        }
        Ok(())
    }

    fn step_sparse_rows(
        &mut self,
        id: ParamId,
        value: &mut Tensor,
        rows: &[usize],
        row_grads: &Tensor,
    ) -> Result<()> {
        let (_, cols) = check_sparse(value, rows, row_grads)?;
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let st = self.state_for(id, value.shape().dims());
        st.t += 1;
        let bias1 = 1.0 - b1.powi(st.t as i32);
        let bias2 = 1.0 - b2.powi(st.t as i32);
        let g = row_grads.as_slice();
        let w = value.as_mut_slice();
        let m = st.m.as_mut_slice();
        let v = st.v.as_mut_slice();
        for (k, &r) in rows.iter().enumerate() {
            for c in 0..cols {
                let idx = r * cols + c;
                let gi = g[k * cols + c];
                m[idx] = b1 * m[idx] + (1.0 - b1) * gi;
                v[idx] = b2 * v[idx] + (1.0 - b2) * gi * gi;
                let m_hat = m[idx] / bias1;
                let v_hat = v[idx] / bias2;
                w[idx] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }
        Ok(())
    }
}

/// Adagrad (Duchi et al., 2011) — the classic choice for sparse features;
/// per-coordinate accumulators make frequent head ids take smaller steps
/// than rare tail ids, a good fit for power-law vocabularies.
#[derive(Debug)]
pub struct Adagrad {
    lr: f32,
    eps: f32,
    accum: HashMap<ParamId, Tensor>,
}

impl Adagrad {
    /// Adagrad with accumulator floor `ε = 1e-10`.
    pub fn new(lr: f32) -> Self {
        Adagrad {
            lr,
            eps: 1e-10,
            accum: HashMap::new(),
        }
    }
}

impl Optimizer for Adagrad {
    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn step_dense(&mut self, id: ParamId, value: &mut Tensor, grad: &Tensor) -> Result<()> {
        check_dense(value, grad)?;
        let acc = self
            .accum
            .entry(id)
            .or_insert_with(|| Tensor::zeros(value.shape().dims()));
        let w = value.as_mut_slice();
        let a = acc.as_mut_slice();
        for i in 0..w.len() {
            let g = grad.as_slice()[i];
            a[i] += g * g;
            w[i] -= self.lr * g / (a[i].sqrt() + self.eps);
        }
        Ok(())
    }

    fn step_sparse_rows(
        &mut self,
        id: ParamId,
        value: &mut Tensor,
        rows: &[usize],
        row_grads: &Tensor,
    ) -> Result<()> {
        let (_, cols) = check_sparse(value, rows, row_grads)?;
        let acc = self
            .accum
            .entry(id)
            .or_insert_with(|| Tensor::zeros(value.shape().dims()));
        let g = row_grads.as_slice();
        let w = value.as_mut_slice();
        let a = acc.as_mut_slice();
        for (k, &r) in rows.iter().enumerate() {
            for c in 0..cols {
                let idx = r * cols + c;
                let gi = g[k * cols + c];
                a[idx] += gi * gi;
                w[idx] -= self.lr * gi / (a[idx].sqrt() + self.eps);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_convergence(opt: &mut dyn Optimizer) -> f32 {
        // Minimize f(w) = ||w||² from w = (3, -4); grad = 2w.
        let id = ParamId::fresh();
        let mut w = Tensor::from_vec(vec![3.0, -4.0], &[2]).unwrap();
        for _ in 0..300 {
            let grad = w.scale(2.0);
            opt.step_dense(id, &mut w, &grad).unwrap();
        }
        w.norm()
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        assert!(quadratic_convergence(&mut Sgd::new(0.1)) < 1e-3);
    }

    #[test]
    fn sgd_momentum_minimizes_quadratic() {
        assert!(quadratic_convergence(&mut Sgd::with_momentum(0.05, 0.9)) < 1e-3);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        assert!(quadratic_convergence(&mut Adam::new(0.1)) < 1e-2);
    }

    #[test]
    fn adagrad_minimizes_quadratic() {
        assert!(quadratic_convergence(&mut Adagrad::new(1.0)) < 1e-2);
    }

    #[test]
    fn sgd_dense_single_step_exact() {
        let mut opt = Sgd::new(0.5);
        let mut w = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let g = Tensor::from_vec(vec![2.0, -2.0], &[2]).unwrap();
        opt.step_dense(ParamId::fresh(), &mut w, &g).unwrap();
        assert_eq!(w.as_slice(), &[0.0, 3.0]);
    }

    #[test]
    fn sparse_touches_only_listed_rows() {
        let mut opt = Sgd::new(1.0);
        let mut table = Tensor::ones(&[4, 2]);
        let rows = [1usize, 3usize];
        let grads = Tensor::from_vec(vec![1.0, 1.0, 0.5, 0.5], &[2, 2]).unwrap();
        opt.step_sparse_rows(ParamId::fresh(), &mut table, &rows, &grads)
            .unwrap();
        assert_eq!(table.row(0).unwrap(), &[1.0, 1.0]);
        assert_eq!(table.row(1).unwrap(), &[0.0, 0.0]);
        assert_eq!(table.row(2).unwrap(), &[1.0, 1.0]);
        assert_eq!(table.row(3).unwrap(), &[0.5, 0.5]);
    }

    #[test]
    fn sparse_validates_inputs() {
        let mut opt = Adam::new(0.1);
        let mut table = Tensor::ones(&[4, 2]);
        let id = ParamId::fresh();
        // Out-of-range row.
        assert!(opt
            .step_sparse_rows(id, &mut table, &[4], &Tensor::zeros(&[1, 2]))
            .is_err());
        // Bad grad shape.
        assert!(opt
            .step_sparse_rows(id, &mut table, &[0], &Tensor::zeros(&[1, 3]))
            .is_err());
        // Rank-1 value.
        let mut flat = Tensor::ones(&[4]);
        assert!(opt
            .step_sparse_rows(id, &mut flat, &[0], &Tensor::zeros(&[1, 1]))
            .is_err());
    }

    #[test]
    fn dense_shape_mismatch_rejected() {
        let mut opt = Adagrad::new(0.1);
        let mut w = Tensor::ones(&[2]);
        assert!(opt
            .step_dense(ParamId::fresh(), &mut w, &Tensor::ones(&[3]))
            .is_err());
    }

    #[test]
    fn adam_sparse_matches_dense_on_full_rows() {
        // Updating all rows sparsely must equal the dense update.
        let grad_rows = Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.4], &[2, 2]).unwrap();
        let mut dense_w = Tensor::ones(&[2, 2]);
        let mut sparse_w = Tensor::ones(&[2, 2]);
        let mut opt_a = Adam::new(0.05);
        let mut opt_b = Adam::new(0.05);
        let id_a = ParamId::fresh();
        let id_b = ParamId::fresh();
        for _ in 0..5 {
            opt_a.step_dense(id_a, &mut dense_w, &grad_rows).unwrap();
            opt_b
                .step_sparse_rows(id_b, &mut sparse_w, &[0, 1], &grad_rows)
                .unwrap();
        }
        assert!(dense_w.allclose(&sparse_w, 1e-6));
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Sgd::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    fn adagrad_decays_effective_step() {
        // Two identical gradients: the second step must be smaller.
        let mut opt = Adagrad::new(1.0);
        let id = ParamId::fresh();
        let mut w = Tensor::zeros(&[1]);
        let g = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        opt.step_dense(id, &mut w, &g).unwrap();
        let first = -w.as_slice()[0];
        let before = w.as_slice()[0];
        opt.step_dense(id, &mut w, &g).unwrap();
        let second = before - w.as_slice()[0];
        assert!(second < first);
    }
}
