//! Differentially-private training (§A.3 / Figure 5).
//!
//! The paper simulates private federated learning with the Rényi
//! Differential Privacy framework (Mironov 2017) through TensorFlow
//! Privacy: global-norm clipping, Gaussian noise scaled by a *noise
//! multiplier*, and `δ = 1/N`. This crate reimplements that stack:
//!
//! * [`rdp`] — the subsampled-Gaussian RDP accountant (integer orders,
//!   Mironov et al. 2019 binomial form) with the classic RDP → (ε, δ)
//!   conversion.
//! * [`dpsgd`] — a DP-SGD [`memcom_nn::Optimizer`] that collects
//!   per-example gradients, clips them to a global L2 bound, accumulates a
//!   lot, adds Gaussian noise, and applies the averaged noisy update.

pub mod dpsgd;
pub mod error;
pub mod rdp;

pub use dpsgd::{DpSgd, DpSgdConfig};
pub use error::DpError;
pub use rdp::{compute_epsilon, RdpAccountant};

/// Convenience alias for results returned throughout this crate.
pub type Result<T> = std::result::Result<T, DpError>;
