//! DP-SGD as a drop-in [`Optimizer`].
//!
//! The optimizer runs a three-phase protocol per *lot* (the DP-SGD batch):
//!
//! 1. **Collect** — for each example, the model's backward pass routes
//!    per-example gradients through `step_dense` / `step_sparse_rows`;
//!    the optimizer buffers them *without touching the weights*.
//! 2. [`DpSgd::end_example`] — clip the buffered gradients to the global
//!    L2 bound and fold them into the lot accumulator.
//! 3. [`DpSgd::begin_apply`] + one more (dummy) optimizer pass — Gaussian
//!    noise `N(0, σ²C²)` is added to every accumulated coordinate, the sum
//!    is averaged over the lot, and the update is applied when the model
//!    hands each parameter back to the optimizer.
//!
//! Sparse embedding gradients are densified on collection, matching how
//! TF-Privacy treats `tf.IndexedSlices` — noise must land on *every*
//! coordinate, touched or not, for the Gaussian mechanism's guarantee.

use std::collections::HashMap;

use memcom_nn::{NnError, Optimizer, ParamId};
use memcom_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// DP-SGD hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DpSgdConfig {
    /// Global L2 clipping bound `C` (the paper uses a constant clip).
    pub clip_norm: f32,
    /// Noise multiplier `σ` (Figure 5's x-axis).
    pub noise_multiplier: f32,
    /// Learning rate.
    pub lr: f32,
    /// Noise RNG seed.
    pub seed: u64,
}

impl Default for DpSgdConfig {
    fn default() -> Self {
        DpSgdConfig {
            clip_norm: 1.0,
            noise_multiplier: 1.0,
            lr: 0.1,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Collect,
    Apply,
}

/// The DP-SGD optimizer (see module docs for the lot protocol).
#[derive(Debug)]
pub struct DpSgd {
    config: DpSgdConfig,
    phase: Phase,
    rng: StdRng,
    /// Gradients of the example currently being collected.
    example: HashMap<ParamId, Tensor>,
    /// Clipped, accumulated lot gradients.
    lot: HashMap<ParamId, Tensor>,
    lot_examples: usize,
    applied_steps: u64,
}

impl DpSgd {
    /// Creates the optimizer.
    pub fn new(config: DpSgdConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed ^ 0xD9);
        DpSgd {
            config,
            phase: Phase::Collect,
            rng,
            example: HashMap::new(),
            lot: HashMap::new(),
            lot_examples: 0,
            applied_steps: 0,
        }
    }

    /// Number of noisy updates applied so far (drives the accountant).
    pub fn applied_steps(&self) -> u64 {
        self.applied_steps
    }

    /// Examples accumulated in the current lot.
    pub fn lot_examples(&self) -> usize {
        self.lot_examples
    }

    /// Finishes the current example: clips its gradient to the global L2
    /// bound and folds it into the lot.
    pub fn end_example(&mut self) {
        let sq_norm: f32 = self.example.values().map(Tensor::sq_norm).sum();
        let norm = sq_norm.sqrt();
        let scale = if norm > self.config.clip_norm {
            self.config.clip_norm / norm
        } else {
            1.0
        };
        for (id, grad) in self.example.drain() {
            let entry = self
                .lot
                .entry(id)
                .or_insert_with(|| Tensor::zeros(grad.shape().dims()));
            entry
                .axpy(scale, &grad)
                .expect("lot accumulator shape matches parameter shape");
        }
        self.lot_examples += 1;
    }

    /// Switches to apply mode: the next optimizer pass writes the noisy
    /// averaged update into the parameters. Call `end_example` first for
    /// every collected example.
    pub fn begin_apply(&mut self) {
        // Noise the accumulated sums now, once per lot.
        let sigma = self.config.noise_multiplier * self.config.clip_norm;
        if sigma > 0.0 {
            for grad in self.lot.values_mut() {
                let noise = Tensor::rand_normal(grad.shape().dims(), 0.0, sigma, &mut self.rng);
                grad.axpy(1.0, &noise).expect("noise shape matches");
            }
        }
        self.phase = Phase::Apply;
    }

    fn apply_to(&mut self, id: ParamId, value: &mut Tensor) {
        if let Some(noisy_sum) = self.lot.remove(&id) {
            let denom = self.lot_examples.max(1) as f32;
            value
                .axpy(-self.config.lr / denom, &noisy_sum)
                .expect("update shape matches parameter shape");
        }
    }

    /// Whether the lot has been fully applied (all buffers drained).
    fn maybe_finish_apply(&mut self) {
        if self.phase == Phase::Apply && self.lot.is_empty() {
            self.phase = Phase::Collect;
            self.lot_examples = 0;
            self.applied_steps += 1;
        }
    }

    fn collect_dense(&mut self, id: ParamId, dims: &[usize], add: impl Fn(&mut Tensor)) {
        let entry = self
            .example
            .entry(id)
            .or_insert_with(|| Tensor::zeros(dims));
        add(entry);
    }
}

impl Optimizer for DpSgd {
    fn learning_rate(&self) -> f32 {
        self.config.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    fn step_dense(
        &mut self,
        id: ParamId,
        value: &mut Tensor,
        grad: &Tensor,
    ) -> std::result::Result<(), NnError> {
        match self.phase {
            Phase::Collect => {
                if value.shape() != grad.shape() {
                    return Err(NnError::BadInput {
                        context: format!(
                            "dp-sgd shapes differ: {} vs {}",
                            value.shape(),
                            grad.shape()
                        ),
                    });
                }
                self.collect_dense(id, grad.shape().dims().to_vec().as_slice(), |t| {
                    t.axpy(1.0, grad).expect("same shape");
                });
            }
            Phase::Apply => {
                self.apply_to(id, value);
                self.maybe_finish_apply();
            }
        }
        Ok(())
    }

    fn step_sparse_rows(
        &mut self,
        id: ParamId,
        value: &mut Tensor,
        rows: &[usize],
        row_grads: &Tensor,
    ) -> std::result::Result<(), NnError> {
        match self.phase {
            Phase::Collect => {
                let dims = value.shape().dims().to_vec();
                let cols = dims[1];
                if row_grads.shape().dims() != [rows.len(), cols] {
                    return Err(NnError::BadInput {
                        context: format!(
                            "dp-sgd sparse grads {} do not match {} rows × {cols}",
                            row_grads.shape(),
                            rows.len()
                        ),
                    });
                }
                // Densify: DP noise must cover the whole table.
                let entry = self
                    .example
                    .entry(id)
                    .or_insert_with(|| Tensor::zeros(&dims));
                let buf = entry.as_mut_slice();
                for (k, &r) in rows.iter().enumerate() {
                    for c in 0..cols {
                        buf[r * cols + c] += row_grads.as_slice()[k * cols + c];
                    }
                }
            }
            Phase::Apply => {
                self.apply_to(id, value);
                self.maybe_finish_apply();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id() -> ParamId {
        ParamId::fresh()
    }

    #[test]
    fn collect_does_not_touch_weights() {
        let mut opt = DpSgd::new(DpSgdConfig::default());
        let pid = id();
        let mut w = Tensor::ones(&[4]);
        opt.step_dense(pid, &mut w, &Tensor::ones(&[4])).unwrap();
        assert_eq!(w.as_slice(), &[1.0; 4]);
    }

    #[test]
    fn clipping_bounds_example_contribution() {
        let mut opt = DpSgd::new(DpSgdConfig {
            clip_norm: 1.0,
            noise_multiplier: 0.0,
            lr: 1.0,
            seed: 0,
        });
        let pid = id();
        let mut w = Tensor::zeros(&[2]);
        // Example gradient of norm 10 → clipped to norm 1.
        opt.step_dense(
            pid,
            &mut w,
            &Tensor::from_vec(vec![6.0, 8.0], &[2]).unwrap(),
        )
        .unwrap();
        opt.end_example();
        opt.begin_apply();
        opt.step_dense(pid, &mut w, &Tensor::zeros(&[2])).unwrap();
        // Update = -lr · clipped/1 = -(0.6, 0.8).
        assert!((w.as_slice()[0] + 0.6).abs() < 1e-6);
        assert!((w.as_slice()[1] + 0.8).abs() < 1e-6);
        assert_eq!(opt.applied_steps(), 1);
    }

    #[test]
    fn small_gradients_not_scaled_up() {
        let mut opt = DpSgd::new(DpSgdConfig {
            clip_norm: 10.0,
            noise_multiplier: 0.0,
            lr: 1.0,
            seed: 0,
        });
        let pid = id();
        let mut w = Tensor::zeros(&[1]);
        opt.step_dense(pid, &mut w, &Tensor::from_vec(vec![0.5], &[1]).unwrap())
            .unwrap();
        opt.end_example();
        opt.begin_apply();
        opt.step_dense(pid, &mut w, &Tensor::zeros(&[1])).unwrap();
        assert!((w.as_slice()[0] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn lot_averages_examples() {
        let mut opt = DpSgd::new(DpSgdConfig {
            clip_norm: 100.0,
            noise_multiplier: 0.0,
            lr: 1.0,
            seed: 0,
        });
        let pid = id();
        let mut w = Tensor::zeros(&[1]);
        for g in [1.0f32, 3.0] {
            opt.step_dense(pid, &mut w, &Tensor::from_vec(vec![g], &[1]).unwrap())
                .unwrap();
            opt.end_example();
        }
        assert_eq!(opt.lot_examples(), 2);
        opt.begin_apply();
        opt.step_dense(pid, &mut w, &Tensor::zeros(&[1])).unwrap();
        // Mean of (1, 3) = 2.
        assert!((w.as_slice()[0] + 2.0).abs() < 1e-6);
    }

    #[test]
    fn sparse_gradients_densified_and_clipped_globally() {
        let mut opt = DpSgd::new(DpSgdConfig {
            clip_norm: 5.0,
            noise_multiplier: 0.0,
            lr: 1.0,
            seed: 0,
        });
        let table_id = id();
        let dense_id = id();
        let mut table = Tensor::zeros(&[3, 2]);
        let mut w = Tensor::zeros(&[1]);
        // Sparse grad norm² = 9+16=25, dense adds 0 → total norm 5 = C: no clip.
        opt.step_sparse_rows(
            table_id,
            &mut table,
            &[1],
            &Tensor::from_vec(vec![3.0, 4.0], &[1, 2]).unwrap(),
        )
        .unwrap();
        opt.step_dense(dense_id, &mut w, &Tensor::zeros(&[1]))
            .unwrap();
        opt.end_example();
        opt.begin_apply();
        opt.step_sparse_rows(
            table_id,
            &mut table,
            &[0],
            &Tensor::zeros(&[1, 2]).reshape(&[1, 2]).unwrap(),
        )
        .unwrap();
        opt.step_dense(dense_id, &mut w, &Tensor::zeros(&[1]))
            .unwrap();
        // Row 1 got the update even though the apply pass touched row 0.
        assert!((table.row(1).unwrap()[0] + 3.0).abs() < 1e-6);
        assert!((table.row(1).unwrap()[1] + 4.0).abs() < 1e-6);
        assert_eq!(table.row(0).unwrap(), &[0.0, 0.0]);
        assert_eq!(opt.applied_steps(), 1);
    }

    #[test]
    fn noise_perturbs_updates_deterministically_by_seed() {
        let run = |seed: u64| {
            let mut opt = DpSgd::new(DpSgdConfig {
                clip_norm: 1.0,
                noise_multiplier: 2.0,
                lr: 1.0,
                seed,
            });
            let pid = id();
            let mut w = Tensor::zeros(&[8]);
            opt.step_dense(pid, &mut w, &Tensor::ones(&[8])).unwrap();
            opt.end_example();
            opt.begin_apply();
            opt.step_dense(pid, &mut w, &Tensor::zeros(&[8])).unwrap();
            w
        };
        let a = run(1);
        let b = run(1);
        let c = run(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Noise is substantial at σ=2.
        assert!(a.norm() > 0.1);
    }

    #[test]
    fn shape_validation() {
        let mut opt = DpSgd::new(DpSgdConfig::default());
        let pid = id();
        let mut w = Tensor::zeros(&[2]);
        assert!(opt.step_dense(pid, &mut w, &Tensor::zeros(&[3])).is_err());
        let mut table = Tensor::zeros(&[2, 2]);
        assert!(opt
            .step_sparse_rows(pid, &mut table, &[0], &Tensor::zeros(&[1, 3]))
            .is_err());
    }

    #[test]
    fn multiple_lots_count_steps() {
        let mut opt = DpSgd::new(DpSgdConfig {
            noise_multiplier: 0.0,
            ..DpSgdConfig::default()
        });
        let pid = id();
        let mut w = Tensor::zeros(&[1]);
        for _ in 0..3 {
            opt.step_dense(pid, &mut w, &Tensor::ones(&[1])).unwrap();
            opt.end_example();
            opt.begin_apply();
            opt.step_dense(pid, &mut w, &Tensor::zeros(&[1])).unwrap();
        }
        assert_eq!(opt.applied_steps(), 3);
    }
}
