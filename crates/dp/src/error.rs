//! Error type for the differential-privacy crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the accountant and the DP-SGD optimizer.
#[derive(Debug, Clone, PartialEq)]
pub enum DpError {
    /// A privacy parameter is out of its valid range.
    BadParameter {
        /// Which parameter and why.
        context: String,
    },
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::BadParameter { context } => write!(f, "bad privacy parameter: {context}"),
        }
    }
}

impl Error for DpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(DpError::BadParameter {
            context: "sigma".into()
        }
        .to_string()
        .contains("sigma"));
    }
}
