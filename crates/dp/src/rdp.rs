//! Rényi-DP accounting for the subsampled Gaussian mechanism.
//!
//! For the (unsubsampled) Gaussian mechanism with noise multiplier `σ`,
//! the Rényi divergence at order `α` is exactly `α / (2σ²)`. With Poisson
//! subsampling at rate `q`, the integer-order RDP of the sampled Gaussian
//! mechanism (Mironov, Talwar & Zhang 2019, Eq. for integer α) is
//!
//! ```text
//! ε(α) = 1/(α−1) · ln Σ_{k=0}^{α} C(α,k)(1−q)^{α−k} q^k · e^{(k²−k)/(2σ²)}
//! ```
//!
//! RDP composes additively over steps; the classic conversion
//! `ε = min_α [ T·ε(α) + ln(1/δ)/(α−1) ]` produces the reported (ε, δ).

use crate::{DpError, Result};

/// Default integer RDP orders (2..=256, the TF-Privacy-style grid).
pub fn default_orders() -> Vec<u32> {
    let mut orders: Vec<u32> = (2..=64).collect();
    orders.extend([80, 96, 128, 160, 192, 256]);
    orders
}

/// RDP of one subsampled-Gaussian step at integer order `alpha`.
///
/// # Errors
///
/// Returns [`DpError::BadParameter`] for `sigma <= 0`, `q ∉ [0, 1]`, or
/// `alpha < 2`.
pub fn rdp_step(q: f64, sigma: f64, alpha: u32) -> Result<f64> {
    if sigma <= 0.0 || !sigma.is_finite() {
        return Err(DpError::BadParameter {
            context: format!("sigma must be positive, got {sigma}"),
        });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(DpError::BadParameter {
            context: format!("q must be a probability, got {q}"),
        });
    }
    if alpha < 2 {
        return Err(DpError::BadParameter {
            context: format!("alpha must be >= 2, got {alpha}"),
        });
    }
    if q == 0.0 {
        return Ok(0.0);
    }
    if (q - 1.0).abs() < f64::EPSILON {
        // No subsampling: plain Gaussian mechanism.
        return Ok(alpha as f64 / (2.0 * sigma * sigma));
    }
    // log-sum-exp over the binomial expansion.
    let a = alpha as f64;
    let mut log_terms = Vec::with_capacity(alpha as usize + 1);
    for k in 0..=alpha {
        let kf = k as f64;
        let log_binom = ln_binomial(alpha, k);
        let log_term = log_binom
            + (a - kf) * (1.0 - q).ln()
            + kf * q.ln()
            + (kf * kf - kf) / (2.0 * sigma * sigma);
        log_terms.push(log_term);
    }
    let max = log_terms.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let sum: f64 = log_terms.iter().map(|&t| (t - max).exp()).sum();
    let log_mgf = max + sum.ln();
    Ok((log_mgf / (a - 1.0)).max(0.0))
}

fn ln_binomial(n: u32, k: u32) -> f64 {
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

fn ln_factorial(n: u32) -> f64 {
    (2..=n as u64).map(|i| (i as f64).ln()).sum()
}

/// Tracks cumulative RDP over training steps at a grid of orders.
#[derive(Debug, Clone)]
pub struct RdpAccountant {
    orders: Vec<u32>,
    rdp: Vec<f64>,
}

impl Default for RdpAccountant {
    fn default() -> Self {
        Self::new()
    }
}

impl RdpAccountant {
    /// An accountant over [`default_orders`].
    pub fn new() -> Self {
        let orders = default_orders();
        let rdp = vec![0.0; orders.len()];
        RdpAccountant { orders, rdp }
    }

    /// Accumulates `steps` subsampled-Gaussian steps.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation from [`rdp_step`].
    pub fn add_steps(&mut self, steps: u64, q: f64, sigma: f64) -> Result<()> {
        for (i, &alpha) in self.orders.iter().enumerate() {
            self.rdp[i] += steps as f64 * rdp_step(q, sigma, alpha)?;
        }
        Ok(())
    }

    /// Converts accumulated RDP to an (ε, δ) guarantee:
    /// `ε = min_α [ RDP(α) + ln(1/δ)/(α−1) ]`.
    ///
    /// # Errors
    ///
    /// Returns [`DpError::BadParameter`] for `delta ∉ (0, 1)`.
    pub fn epsilon(&self, delta: f64) -> Result<f64> {
        if !(0.0..1.0).contains(&delta) || delta == 0.0 {
            return Err(DpError::BadParameter {
                context: format!("delta must be in (0,1), got {delta}"),
            });
        }
        let log_inv_delta = (1.0 / delta).ln();
        let eps = self
            .orders
            .iter()
            .zip(&self.rdp)
            .map(|(&alpha, &rdp)| rdp + log_inv_delta / (alpha as f64 - 1.0))
            .fold(f64::INFINITY, f64::min);
        Ok(eps)
    }
}

/// One-shot helper: ε for `steps` DP-SGD steps at sampling rate `q`,
/// noise multiplier `sigma`, and failure probability `delta`.
///
/// # Errors
///
/// Propagates parameter validation.
pub fn compute_epsilon(steps: u64, q: f64, sigma: f64, delta: f64) -> Result<f64> {
    let mut acct = RdpAccountant::new();
    acct.add_steps(steps, q, sigma)?;
    acct.epsilon(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gaussian_mechanism_exact_at_q1() {
        // q = 1 reduces to α/(2σ²).
        for alpha in [2u32, 5, 32] {
            for sigma in [0.5f64, 1.0, 4.0] {
                let got = rdp_step(1.0, sigma, alpha).unwrap();
                let want = alpha as f64 / (2.0 * sigma * sigma);
                assert!((got - want).abs() < 1e-12, "α={alpha} σ={sigma}");
            }
        }
    }

    #[test]
    fn q1_epsilon_matches_closed_form() {
        // ε = min_α [T·α/(2σ²) + ln(1/δ)/(α−1)] over the order grid.
        let (steps, sigma, delta) = (100u64, 2.0f64, 1e-5f64);
        let got = compute_epsilon(steps, 1.0, sigma, delta).unwrap();
        let want = default_orders()
            .iter()
            .map(|&a| {
                steps as f64 * a as f64 / (2.0 * sigma * sigma)
                    + (1.0 / delta).ln() / (a as f64 - 1.0)
            })
            .fold(f64::INFINITY, f64::min);
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    fn zero_sampling_rate_is_free() {
        assert_eq!(compute_epsilon(1_000_000, 0.0, 1.0, 1e-5).unwrap(), {
            // Only the conversion term survives, minimized at the largest order.
            let max_order = *default_orders().last().unwrap() as f64;
            (1e5f64).ln() / (max_order - 1.0)
        });
    }

    #[test]
    fn subsampling_amplifies_privacy() {
        // Same σ and steps: smaller q ⇒ smaller ε.
        let e_full = compute_epsilon(1000, 1.0, 1.0, 1e-5).unwrap();
        let e_sub = compute_epsilon(1000, 0.01, 1.0, 1e-5).unwrap();
        assert!(e_sub < e_full / 10.0, "{e_sub} vs {e_full}");
    }

    #[test]
    fn epsilon_monotone_in_noise() {
        let eps: Vec<f64> = [0.5, 1.0, 2.0, 4.0]
            .iter()
            .map(|&s| compute_epsilon(500, 0.02, s, 1e-5).unwrap())
            .collect();
        for w in eps.windows(2) {
            assert!(w[1] < w[0], "{eps:?}");
        }
    }

    #[test]
    fn epsilon_monotone_in_steps() {
        let e1 = compute_epsilon(100, 0.02, 1.0, 1e-5).unwrap();
        let e2 = compute_epsilon(1000, 0.02, 1.0, 1e-5).unwrap();
        assert!(e2 > e1);
    }

    #[test]
    fn mnist_tutorial_ballpark() {
        // The classic TF-Privacy MNIST setting: N=60000, batch 256,
        // σ=1.1, 60 epochs, δ=1e-5 → ε ≈ 3.2 (classic conversion).
        let q = 256.0 / 60_000.0;
        let steps = (60_000.0 / 256.0 * 60.0) as u64;
        let eps = compute_epsilon(steps, q, 1.1, 1e-5).unwrap();
        assert!(
            (2.0..5.0).contains(&eps),
            "ε = {eps} outside the published ballpark"
        );
    }

    #[test]
    fn parameter_validation() {
        assert!(rdp_step(0.5, 0.0, 2).is_err());
        assert!(rdp_step(0.5, -1.0, 2).is_err());
        assert!(rdp_step(1.5, 1.0, 2).is_err());
        assert!(rdp_step(0.5, 1.0, 1).is_err());
        assert!(RdpAccountant::new().epsilon(0.0).is_err());
        assert!(RdpAccountant::new().epsilon(1.0).is_err());
    }

    #[test]
    fn accountant_accumulates_additively() {
        let mut a = RdpAccountant::new();
        a.add_steps(10, 0.1, 1.0).unwrap();
        a.add_steps(10, 0.1, 1.0).unwrap();
        let mut b = RdpAccountant::new();
        b.add_steps(20, 0.1, 1.0).unwrap();
        assert!((a.epsilon(1e-5).unwrap() - b.epsilon(1e-5).unwrap()).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_rdp_nonnegative(q in 0.0f64..1.0, sigma in 0.3f64..8.0, alpha in 2u32..40) {
            prop_assert!(rdp_step(q, sigma, alpha).unwrap() >= 0.0);
        }

        #[test]
        fn prop_rdp_increasing_in_q(sigma in 0.5f64..4.0, alpha in 2u32..20) {
            let lo = rdp_step(0.01, sigma, alpha).unwrap();
            let hi = rdp_step(0.5, sigma, alpha).unwrap();
            prop_assert!(hi >= lo);
        }
    }
}
