//! CLI parsing, dataset scaling, and result output.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use memcom_data::DatasetSpec;

/// Arguments shared by every experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessArgs {
    /// Run at full Table-2 scale (hours of compute) instead of the scaled
    /// default.
    pub full: bool,
    /// Override the per-dataset scale divisor.
    pub scale: Option<usize>,
    /// Extra-small configuration for smoke tests.
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            full: false,
            scale: None,
            quick: false,
            seed: 42,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args()`-style arguments. Recognized flags:
    /// `--full`, `--quick`, `--scale N`, `--seed N`.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = HarnessArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--full" => out.full = true,
                "--quick" => out.quick = true,
                "--scale" => {
                    out.scale = iter.next().and_then(|v| v.parse().ok());
                }
                "--seed" => {
                    if let Some(s) = iter.next().and_then(|v| v.parse().ok()) {
                        out.seed = s;
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }
}

/// Default scale divisor per dataset: tuned so a figure's whole sweep
/// finishes in minutes while keeping ≥ thousands of vocabulary entities.
pub fn default_scale(name: &str) -> usize {
    match name {
        "newsgroup" => 10,
        "movielens" => 4,
        "million_songs" => 20,
        "google_local" => 40,
        "netflix" => 8,
        "games" => 200,
        "arcade" => 100,
        _ => 20,
    }
}

/// Applies the harness scale policy to a dataset spec: `--full` keeps
/// Table-2 scale; otherwise the per-dataset divisor (or `--scale`) is
/// applied and sample counts are capped to keep sweeps fast.
pub fn scaled_spec(spec: &DatasetSpec, args: &HarnessArgs) -> DatasetSpec {
    if args.full {
        return spec.clone();
    }
    let factor = args.scale.unwrap_or_else(|| default_scale(spec.name));
    let mut scaled = spec.scaled(factor);
    let (train_cap, eval_cap, len) = if args.quick {
        (400, 150, 16)
    } else {
        (4_000, 1_000, spec.input_len)
    };
    scaled.train_samples = scaled.train_samples.min(train_cap);
    scaled.eval_samples = scaled.eval_samples.min(eval_cap);
    scaled.input_len = len;
    scaled
}

/// Writes experiment rows to stdout and to `results/<name>.tsv`.
#[derive(Debug)]
pub struct ResultWriter {
    path: PathBuf,
    lines: Vec<String>,
}

impl ResultWriter {
    /// Creates a writer for experiment `name`.
    pub fn new(name: &str) -> Self {
        ResultWriter {
            path: PathBuf::from(format!("results/{name}.tsv")),
            lines: Vec::new(),
        }
    }

    /// Adds a header row.
    pub fn header(&mut self, cols: &[&str]) {
        self.row(cols);
    }

    /// Adds a data row (also echoed to stdout, tab-separated).
    pub fn row(&mut self, cols: &[&str]) {
        let line = cols.join("\t");
        println!("{line}");
        self.lines.push(line);
    }

    /// Adds a preformatted block verbatim.
    pub fn block(&mut self, text: &str) {
        println!("{text}");
        self.lines.push(text.to_string());
    }

    /// Flushes everything to `results/<name>.tsv`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating `results/` or the file.
    pub fn flush(&self) -> std::io::Result<()> {
        if let Some(dir) = self.path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut f = fs::File::create(&self.path)?;
        for line in &self.lines {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}

/// Prints a standard experiment banner with the paper reference.
pub fn banner(title: &str, paper_ref: &str, expectation: &str) {
    println!("================================================================");
    println!("{title}");
    println!("paper: {paper_ref}");
    println!("expected shape: {expectation}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags() {
        let args = HarnessArgs::parse(
            ["--full", "--scale", "7", "--seed", "9", "--quick"].map(String::from),
        );
        assert!(args.full);
        assert!(args.quick);
        assert_eq!(args.scale, Some(7));
        assert_eq!(args.seed, 9);
        let default = HarnessArgs::parse(Vec::<String>::new());
        assert_eq!(default, HarnessArgs::default());
    }

    #[test]
    fn parse_tolerates_garbage() {
        let args = HarnessArgs::parse(["--scale", "abc", "--bogus"].map(String::from));
        assert_eq!(args.scale, None);
        assert!(!args.full);
    }

    #[test]
    fn scaled_spec_respects_full() {
        let spec = DatasetSpec::movielens();
        let args = HarnessArgs {
            full: true,
            ..HarnessArgs::default()
        };
        assert_eq!(scaled_spec(&spec, &args), spec);
    }

    #[test]
    fn scaled_spec_caps_samples() {
        let spec = DatasetSpec::million_songs();
        let scaled = scaled_spec(&spec, &HarnessArgs::default());
        assert!(scaled.train_samples <= 4_000);
        assert!(scaled.eval_samples <= 1_000);
        assert_eq!(scaled.input_len, 128);
        let quick = scaled_spec(
            &spec,
            &HarnessArgs {
                quick: true,
                ..HarnessArgs::default()
            },
        );
        assert!(quick.train_samples <= 400);
        assert_eq!(quick.input_len, 16);
    }

    #[test]
    fn every_dataset_has_a_scale() {
        for spec in DatasetSpec::all() {
            assert!(default_scale(spec.name) > 1, "{}", spec.name);
        }
        assert_eq!(default_scale("unknown"), 20);
    }

    #[test]
    fn result_writer_accumulates() {
        let mut w = ResultWriter::new("harness_test_tmp");
        w.header(&["a", "b"]);
        w.row(&["1", "2"]);
        w.block("free text");
        assert_eq!(w.lines.len(), 3);
        assert_eq!(w.lines[1], "1\t2");
    }
}
