//! Figure 5 (§A.3): privacy vs accuracy tradeoff (Arcade).
//!
//! Trains compressed models under DP-SGD at increasing noise multipliers
//! and reports the nDCG loss against an uncompressed model trained
//! *without* noise, plus the (ε, δ = 1/N) privacy accounting.
//!
//! Paper expectation: "our approach has lower loss in nDCG for a given
//! noise multiplier and was more robust to noise than an uncompressed
//! model and naive hashing".

use memcom_bench::dp_train::{dp_train, DpTrainConfig};
use memcom_bench::harness::{banner, scaled_spec, HarnessArgs, ResultWriter};
use memcom_core::MethodSpec;
use memcom_data::DatasetSpec;
use memcom_metrics::relative_loss_pct;
use memcom_models::trainer::{train, TrainConfig};
use memcom_models::{ModelConfig, ModelKind, RecModel};

fn main() {
    let args = HarnessArgs::from_env();
    banner(
        "Figure 5 — privacy vs accuracy tradeoff (Arcade, DP federated training)",
        "§A.3, Figure 5 (RDP accounting, δ = 1/N, constant L2 clip)",
        "memcom degrades the least as the noise multiplier grows; naive hashing degrades the most",
    );
    let mut spec = scaled_spec(&DatasetSpec::arcade(), &args);
    // DP-SGD runs per-example; keep the training set small.
    spec.train_samples = spec.train_samples.min(if args.quick { 200 } else { 1_200 });
    spec.eval_samples = spec.eval_samples.min(500);
    let data = spec.generate(args.seed);
    let vocab = spec.input_vocab();
    let config_for = |e: usize| ModelConfig {
        kind: ModelKind::PointwiseRanker,
        vocab,
        embedding_dim: e,
        input_len: spec.input_len,
        n_classes: spec.output_vocab,
        dropout: 0.0,
        seed: args.seed,
    };
    let e = if args.quick { 8 } else { 16 };

    // Baseline: uncompressed, trained WITHOUT noise.
    let mut baseline = RecModel::new(&config_for(e), &MethodSpec::Uncompressed).expect("baseline");
    let report = train(
        &mut baseline,
        &data.train,
        &data.eval,
        &TrainConfig {
            epochs: 3,
            seed: args.seed,
            ..TrainConfig::default()
        },
    )
    .expect("baseline training");
    let base_ndcg = report.eval_ndcg;

    let mut writer = ResultWriter::new("fig5_privacy");
    writer.header(&[
        "method",
        "noise_multiplier",
        "epsilon",
        "ndcg",
        "ndcg_loss_pct_vs_noiseless",
    ]);
    writer.row(&[
        "uncompressed_no_noise",
        "0.0",
        "inf",
        &format!("{base_ndcg:.4}"),
        "0.00",
    ]);

    // §A.3 sets hyperparameters so compressed models share one size; we
    // use m = v/10 for the hashed methods and the matching reduced dim.
    let m = (vocab / 10).max(1);
    let methods: Vec<(&str, MethodSpec)> = vec![
        ("uncompressed", MethodSpec::Uncompressed),
        (
            "memcom",
            MethodSpec::MemCom {
                hash_size: m,
                bias: false,
            },
        ),
        ("naive_hash", MethodSpec::NaiveHash { hash_size: m }),
        (
            "reduce_dim",
            MethodSpec::ReduceDim {
                dim: (e / 2).max(2),
            },
        ),
    ];
    let noises: &[f32] = if args.quick {
        &[1.0]
    } else {
        &[0.5, 1.0, 2.0, 4.0]
    };
    for &noise in noises {
        for (name, spec_m) in &methods {
            let mut model = RecModel::new(&config_for(e), spec_m).expect("model builds");
            let report = dp_train(
                &mut model,
                &data.train,
                &data.eval,
                &DpTrainConfig {
                    epochs: if args.quick { 1 } else { 2 },
                    lot_size: 50,
                    noise_multiplier: noise,
                    seed: args.seed,
                    ..DpTrainConfig::default()
                },
            )
            .expect("dp training succeeds");
            writer.row(&[
                name,
                &format!("{noise:.1}"),
                &format!("{:.3}", report.epsilon),
                &format!("{:.4}", report.eval_ndcg),
                &format!("{:.2}", relative_loss_pct(base_ndcg, report.eval_ndcg)),
            ]);
        }
    }
    writer.flush().expect("results directory must be writable");
    println!("\nwrote results/fig5_privacy.tsv");
}
