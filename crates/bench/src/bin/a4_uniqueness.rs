//! §A.4: sanity check that MEmCom produces unique embeddings.
//!
//! Trains a MEmCom model on the Arcade stand-in at ~40x input-embedding
//! compression and audits every pair of multipliers sharing a `U` row.
//!
//! Paper expectation: "a pair of multipliers sharing a common x_rem
//! embedding differed by greater than 0.00001 in more than 99.98% of
//! cases".

use memcom_bench::harness::{banner, scaled_spec, HarnessArgs, ResultWriter};
use memcom_core::uniqueness::audit;
use memcom_core::{MemCom, MethodSpec};
use memcom_data::DatasetSpec;
use memcom_models::trainer::{train, TrainConfig};
use memcom_models::{ModelConfig, ModelKind, RecModel};

fn main() {
    let args = HarnessArgs::from_env();
    banner(
        "§A.4 — uniqueness of trained MEmCom embeddings (Arcade @ ~40x)",
        "Appendix A.4",
        ">99.98% of same-bucket multiplier pairs differ by more than 1e-5",
    );
    let spec = scaled_spec(&DatasetSpec::arcade(), &args);
    let data = spec.generate(args.seed);
    let v = spec.input_vocab();
    // 40x input-embedding compression: m·e + v ≈ (v·e)/40 ⇒ m ≈ v/40 − v/e·…;
    // m = v/64 gives ≈40-50x at e=32.
    let e = if args.quick { 16 } else { 32 };
    let m = (v / 64).max(1);
    let config = ModelConfig {
        kind: ModelKind::Classifier,
        vocab: v,
        embedding_dim: e,
        input_len: spec.input_len,
        n_classes: spec.output_vocab,
        dropout: 0.05,
        seed: args.seed,
    };
    let mut model = RecModel::new(
        &config,
        &MethodSpec::MemCom {
            hash_size: m,
            bias: false,
        },
    )
    .expect("model builds");
    let input_emb_ratio = (v * e) as f64 / (m * e + v) as f64;
    println!("input-embedding compression ratio: {input_emb_ratio:.1}x (paper: 40x)");
    train(
        &mut model,
        &data.train,
        &data.eval,
        &TrainConfig {
            epochs: if args.quick { 1 } else { 4 },
            seed: args.seed,
            ..TrainConfig::default()
        },
    )
    .expect("training succeeds");

    let memcom = model
        .embedding()
        .as_any()
        .downcast_ref::<MemCom>()
        .expect("model was built with a MemCom embedding");
    let report = audit(memcom);
    let mut writer = ResultWriter::new("a4_uniqueness");
    writer.header(&[
        "shared_pairs",
        "distinct_pairs",
        "distinct_fraction_pct",
        "threshold",
    ]);
    writer.row(&[
        &report.shared_pairs.to_string(),
        &report.distinct_pairs.to_string(),
        &format!("{:.4}", report.distinct_fraction() * 100.0),
        &format!("{:e}", report.threshold),
    ]);
    writer.block(&format!("# {report}"));
    writer.block("# paper: >99.98% of pairs distinct at the same threshold");
    writer.flush().expect("results directory must be writable");
    println!("\nwrote results/a4_uniqueness.tsv");
}
