//! Figure 3: compression vs nDCG tradeoff (pairwise RankNet on Arcade).
//!
//! Paper expectation: "MEmCom has less than 1% loss in nDCG while
//! compressing the Arcade ranking model by 32x"; the bias and no-bias
//! variants "perform exactly the same" (their curves overlap).

use memcom_bench::harness::{banner, scaled_spec, HarnessArgs, ResultWriter};
use memcom_core::{MethodSpec, QrCombiner};
use memcom_data::DatasetSpec;
use memcom_models::sweep::{hash_size_grid, run_pairwise_sweep};
use memcom_models::trainer::TrainConfig;
use memcom_models::{ModelKind, SweepConfig};

fn main() {
    let args = HarnessArgs::from_env();
    banner(
        "Figure 3 — compression vs nDCG tradeoff (Arcade, pairwise RankNet)",
        "§5.2, Figure 3",
        "memcom <1% ndcg loss at ~32x input-embedding compression; bias and no-bias curves overlap",
    );
    let spec = scaled_spec(&DatasetSpec::arcade(), &args);
    eprintln!(
        "[fig3] arcade: vocab={} out={} train={}",
        spec.input_vocab(),
        spec.output_vocab,
        spec.train_samples
    );
    let mut specs = Vec::new();
    for m in hash_size_grid(spec.input_vocab()) {
        specs.push(MethodSpec::MemCom {
            hash_size: m,
            bias: true,
        });
        specs.push(MethodSpec::MemCom {
            hash_size: m,
            bias: false,
        });
        specs.push(MethodSpec::NaiveHash { hash_size: m });
        specs.push(MethodSpec::DoubleHash { hash_size: m });
        specs.push(MethodSpec::QuotientRemainder {
            hash_size: m,
            combiner: QrCombiner::Multiply,
        });
        specs.push(MethodSpec::TruncateRare { keep: m });
    }
    let config = SweepConfig {
        kind: ModelKind::PointwiseRanker,
        embedding_dim: if args.quick { 16 } else { 32 },
        train: TrainConfig {
            epochs: if args.quick { 1 } else { 8 },
            seed: args.seed,
            ..TrainConfig::default()
        },
        replicates: if args.quick { 1 } else { 2 },
        ..SweepConfig::default()
    };
    let result =
        run_pairwise_sweep(&spec, &specs, &config, args.seed).expect("sweep must complete");
    let mut writer = ResultWriter::new("fig3_pairwise");
    writer.header(&[
        "method",
        "params",
        "compression_ratio",
        "pair_accuracy",
        "ndcg",
        "ndcg_loss_pct",
    ]);
    for point in std::iter::once(&result.baseline).chain(&result.points) {
        writer.row(&[
            &point.label,
            &point.params.to_string(),
            &format!("{:.2}", point.compression_ratio),
            &format!("{:.4}", point.accuracy),
            &format!("{:.4}", point.ndcg),
            &format!("{:.2}", point.ndcg_loss_pct),
        ]);
    }
    // Bias/no-bias overlap check (the paper's "their lines overlap").
    let overlap: Vec<(f64, f64)> = result
        .points
        .iter()
        .filter(|p| p.label.starts_with("memcom("))
        .zip(
            result
                .points
                .iter()
                .filter(|p| p.label.starts_with("memcom_nobias(")),
        )
        .map(|(a, b)| (a.ndcg_loss_pct, b.ndcg_loss_pct))
        .collect();
    for (bias_loss, nobias_loss) in overlap {
        writer.block(&format!(
            "# bias vs no-bias ndcg loss: {bias_loss:.2}% vs {nobias_loss:.2}% (paper: overlapping)"
        ));
    }
    writer.flush().expect("results directory must be writable");
    println!("\nwrote results/fig3_pairwise.tsv");
}
