//! The §4 properties table plus its collision-rate mathematics.
//!
//! Prints the paper's qualitative comparison (unique vector / simple
//! operator / power-law suitability) and backs the hashing rows with the
//! closed-form collision rates quoted in §4, checked against Monte-Carlo
//! counts from the actual hash implementations.

use memcom_bench::harness::{banner, HarnessArgs, ResultWriter};
use memcom_core::collision::{
    count_collisions, double_collision_rate, naive_collision_rate, non_unique_fraction,
};
use memcom_core::hashing::{mod_hash, seeded_hash};

fn main() {
    let _args = HarnessArgs::from_env();
    banner(
        "§4 — properties of embedding-compression techniques",
        "Section 4 table + collision-rate formulas",
        "memcom/QR/low-rank are collision-free; naive ≫ double hashing collision rates",
    );
    let mut writer = ResultWriter::new("properties_table");
    writer.header(&[
        "technique",
        "unique_vector",
        "simple_operator",
        "power_law_suited",
    ]);
    writer.row(&["low_rank_approximation", "yes", "n/a", "no"]);
    writer.row(&["quotient_remainder", "yes", "no", "yes"]);
    writer.row(&["naive_hashing", "no", "n/a", "yes"]);
    writer.row(&["double_hashing", "no", "yes", "yes"]);
    writer.row(&["memcom (ours)", "yes", "yes", "yes"]);

    writer.block("");
    writer.block("# collision analysis (v = 100000)");
    writer.block("case\tm\tanalytic_rate\tempirical_collisions\texpected_collisions");
    let v = 100_000usize;
    for m in [1_000usize, 10_000, 50_000] {
        let naive_rate = naive_collision_rate(v, m);
        let naive_empirical = count_collisions(v, |i| mod_hash(i, m));
        writer.block(&format!(
            "naive\t{m}\t{naive_rate:.4}\t{naive_empirical}\t{:.0}",
            naive_rate * m as f64
        ));
        let double_rate = double_collision_rate(v, m);
        let double_empirical =
            count_collisions(v, |i| seeded_hash(i, m, 1) * m + seeded_hash(i, m, 2));
        writer.block(&format!(
            "double\t{m}\t{double_rate:.6}\t{double_empirical}\t{:.0}",
            double_rate * (m * m) as f64
        ));
    }
    writer.block("");
    writer.block("# uniqueness (fraction of entities without a private representation)");
    let m = 10_000;
    writer.block(&format!(
        "naive_hash\t{:.4}",
        non_unique_fraction(v, |i| mod_hash(i, m))
    ));
    writer.block(&format!(
        "memcom\t{:.4}  # (q, r) per id plus per-id multiplier: always unique",
        non_unique_fraction(v, |i| i)
    ));
    writer.flush().expect("results directory must be writable");
    println!("\nwrote results/properties_table.tsv");
}
