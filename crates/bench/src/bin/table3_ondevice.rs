//! Table 3: on-device inference time and memory footprint.
//!
//! Compares MEmCom (no bias) with Weinberger's one-hot feature hashing on
//! the simulated compute units — CoreML `all` / `cpuOnly` / `cpuAndGPU`
//! and TF-Lite CPU — across all seven datasets, batch size 1, FP32, with
//! the paper's fixed hash size of 10K (clamped for scaled vocabularies).
//!
//! Paper expectation: "MEmCom outperforms Weinberger's hashing trick for
//! all computes on both smartphones … the memory footprint for MEmCom is
//! very small compared to the Weinberger's hashing method", with TF-Lite's
//! one-hot path the slowest by an order of magnitude (~31 ms).

use memcom_bench::harness::{banner, scaled_spec, HarnessArgs, ResultWriter};
use memcom_core::{MemCom, MemComConfig, OneHotHashEncoder};
use memcom_data::DatasetSpec;
use memcom_nn::{AveragePool1d, BatchNorm1d, Dense, Relu, Sequential};
use memcom_ondevice::format::OnDeviceModel;
use memcom_ondevice::{ComputeUnit, Dtype, InferenceSession};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn head(e: usize, classes: usize, rng: &mut StdRng) -> Sequential {
    let mut h = Sequential::new();
    h.push(AveragePool1d::new());
    h.push(Relu::new());
    h.push(BatchNorm1d::new(e));
    h.push(Dense::new(e, classes, rng));
    h
}

fn main() {
    let args = HarnessArgs::from_env();
    banner(
        "Table 3 — on-device inference time (ms) and memory footprint (MB)",
        "§5.3, Table 3 (iPhone 12 Pro / CoreML, Pixel 2 / TF-Lite; batch 1, FP32, hash 10K)",
        "memcom beats weinberger on every compute unit; the gap explodes on tflite_cpu (~30ms one-hot)",
    );
    let runs = if args.quick { 3 } else { 25 };
    let e = if args.quick { 16 } else { 64 };
    let mut writer = ResultWriter::new("table3_ondevice");
    let mut header = vec!["dataset".to_string(), "method".to_string()];
    for unit in ComputeUnit::all() {
        header.push(format!("time_ms:{}", unit.label()));
    }
    for unit in ComputeUnit::all() {
        header.push(format!("mem_mb:{}", unit.label()));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    writer.header(&header_refs);

    for base in DatasetSpec::all() {
        let spec = scaled_spec(&base, &args);
        let vocab = spec.input_vocab();
        let m = 10_000.min(vocab / 2).max(1);
        let classes = spec.output_vocab;
        let mut rng = StdRng::seed_from_u64(args.seed);
        // Table 3 measures runtime, not accuracy, so freshly initialized
        // weights are equivalent to trained ones.
        let memcom =
            MemCom::new(MemComConfig::new(vocab, e, m), &mut rng).expect("valid memcom config");
        let onehot = OneHotHashEncoder::new(vocab, e, m, &mut rng).expect("valid one-hot config");
        let h = head(e, classes, &mut rng);

        let mut ids_rng = StdRng::seed_from_u64(args.seed ^ 1);
        let queries: Vec<Vec<usize>> = (0..runs)
            .map(|_| {
                (0..spec.input_len)
                    .map(|_| ids_rng.gen_range(0..vocab))
                    .collect()
            })
            .collect();

        for (label, bytes) in [
            (
                "memcom",
                OnDeviceModel::serialize(&memcom, &h, spec.input_len, Dtype::F32)
                    .expect("memcom serializes"),
            ),
            (
                "weinberger",
                OnDeviceModel::serialize(&onehot, &h, spec.input_len, Dtype::F32)
                    .expect("one-hot serializes"),
            ),
        ] {
            let session = InferenceSession::new(OnDeviceModel::parse(bytes).expect("own bytes"));
            // Average over runs from a cold start, like the paper's
            // 1000-run averages (initialization excluded).
            let mut time_sums = [0f64; 4];
            let mut mem_maxes = [0f64; 4];
            for ids in &queries {
                let (_, stats) = session.run(ids).expect("inference succeeds");
                for (i, unit) in ComputeUnit::all().into_iter().enumerate() {
                    time_sums[i] += stats.time_ms(unit);
                    mem_maxes[i] = mem_maxes[i].max(stats.footprint_mb(unit));
                }
            }
            let mut row = vec![spec.name.to_string(), label.to_string()];
            for t in time_sums {
                row.push(format!("{:.3}", t / runs as f64));
            }
            for m in mem_maxes {
                row.push(format!("{m:.2}"));
            }
            let row_refs: Vec<&str> = row.iter().map(String::as_str).collect();
            writer.row(&row_refs);
        }
    }
    writer.flush().expect("results directory must be writable");
    println!("\nwrote results/table3_ondevice.tsv");
}
