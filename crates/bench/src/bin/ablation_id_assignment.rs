//! Ablation: frequency-sorted vs random id assignment for MEmCom.
//!
//! Algorithm 2 specifies ids "sorted by frequency", which makes `i mod m`
//! give the `m` most popular entities private buckets. This ablation
//! breaks that property by shuffling item ids with a fixed permutation and
//! retraining — quantifying how much of MEmCom's quality the
//! frequency-sorted layout contributes.

use memcom_bench::harness::{banner, scaled_spec, HarnessArgs, ResultWriter};
use memcom_core::MethodSpec;
use memcom_data::{DatasetSpec, Example};
use memcom_models::trainer::{train, TrainConfig};
use memcom_models::{ModelConfig, ModelKind, RecModel};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Applies a vocabulary permutation to every example (padding id 0 fixed).
fn permute(examples: &[Example], perm: &[usize]) -> Vec<Example> {
    examples
        .iter()
        .map(|ex| Example {
            input_ids: ex.input_ids.iter().map(|&id| perm[id]).collect(),
            label: ex.label,
        })
        .collect()
}

fn main() {
    let args = HarnessArgs::from_env();
    banner(
        "Ablation — frequency-sorted vs random id assignment (MEmCom)",
        "Algorithm 2's 'sorted by frequency' line",
        "frequency-sorted ids should match or beat shuffled ids, most visibly at aggressive compression",
    );
    let spec = scaled_spec(&DatasetSpec::movielens(), &args);
    let data = spec.generate(args.seed);
    let v = spec.input_vocab();
    // Permutation over non-padding ids.
    let mut perm: Vec<usize> = (0..v).collect();
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xAB);
    perm[1..].shuffle(&mut rng);
    let shuffled_train = permute(&data.train, &perm);
    let shuffled_eval = permute(&data.eval, &perm);

    let mut writer = ResultWriter::new("ablation_id_assignment");
    writer.header(&["m", "id_assignment", "accuracy", "ndcg"]);
    let e = if args.quick { 16 } else { 32 };
    for divisor in [10usize, 50, 200] {
        let m = (v / divisor).max(1);
        for (label, train_set, eval_set) in [
            ("frequency_sorted", &data.train, &data.eval),
            ("shuffled", &shuffled_train, &shuffled_eval),
        ] {
            let config = ModelConfig {
                kind: ModelKind::PointwiseRanker,
                vocab: v,
                embedding_dim: e,
                input_len: spec.input_len,
                n_classes: spec.output_vocab,
                dropout: 0.05,
                seed: args.seed,
            };
            let mut model = RecModel::new(
                &config,
                &MethodSpec::MemCom {
                    hash_size: m,
                    bias: false,
                },
            )
            .expect("model builds");
            let report = train(
                &mut model,
                train_set,
                eval_set,
                &TrainConfig {
                    epochs: if args.quick { 1 } else { 4 },
                    seed: args.seed,
                    ..TrainConfig::default()
                },
            )
            .expect("training succeeds");
            writer.row(&[
                &m.to_string(),
                label,
                &format!("{:.4}", report.eval_accuracy),
                &format!("{:.4}", report.eval_ndcg),
            ]);
        }
    }
    writer.flush().expect("results directory must be writable");
    println!("\nwrote results/ablation_id_assignment.tsv");
}
