//! Figure 6 (§A.1): tuning the embedding size under a fixed model size.
//!
//! For each dataset the model byte budget is fixed (half the baseline
//! size; a hard 20 MB for Games/Arcade in the paper) and, for each
//! candidate "number of embeddings" `m`, the largest embedding size `e`
//! that fits is found by binary search. Training each (m, e) pair reveals
//! the tradeoff curve.
//!
//! Paper expectation: "for most use cases … the optimal number of
//! embeddings for MEmCom is roughly 10x lower than its input vocabulary.
//! Interestingly, this did not hold for the Google Local Reviews use
//! case", whose flatter popularity favours more embeddings.

use memcom_bench::harness::{banner, scaled_spec, HarnessArgs, ResultWriter};
use memcom_core::budget::{memcom_model_params, solve_memcom_dim, BYTES_PER_PARAM};
use memcom_core::MethodSpec;
use memcom_data::DatasetSpec;
use memcom_models::trainer::{train, TrainConfig};
use memcom_models::{ModelConfig, ModelKind, RecModel};

fn main() {
    let args = HarnessArgs::from_env();
    banner(
        "Figure 6 — embedding size vs number of embeddings at fixed model size",
        "§A.1, Figure 6 (budget = half the baseline model; 20 MB for Games/Arcade)",
        "quality peaks near m = v/10 everywhere except google_local (flatter popularity)",
    );
    let datasets = if args.quick {
        vec![DatasetSpec::movielens()]
    } else {
        vec![
            DatasetSpec::movielens(),
            DatasetSpec::million_songs(),
            DatasetSpec::google_local(),
            DatasetSpec::netflix(),
            DatasetSpec::arcade(),
        ]
    };
    let mut writer = ResultWriter::new("fig6_fixed_size");
    writer.header(&[
        "dataset",
        "m",
        "solved_e",
        "model_params",
        "budget_params",
        "accuracy",
        "ndcg",
    ]);
    let reference_e = if args.quick { 16 } else { 32 };
    for base in datasets {
        let spec = scaled_spec(&base, &args);
        let data = spec.generate(args.seed);
        let v = spec.input_vocab();
        let out = spec.output_vocab;
        // Budget: half the uncompressed model (v·e + head), as §A.1 does
        // for the public datasets.
        let baseline_params = v * reference_e + reference_e * out + out;
        let budget_bytes = baseline_params * BYTES_PER_PARAM / 2;
        let budget_params = budget_bytes / BYTES_PER_PARAM;
        for divisor in [2usize, 5, 10, 20, 50, 100] {
            let m = (v / divisor).max(1);
            let Ok(e) = solve_memcom_dim(budget_bytes, v, m, out, false, 4_096) else {
                writer.block(&format!(
                    "# {}: m={m} does not fit the budget at any e",
                    spec.name
                ));
                continue;
            };
            let params = memcom_model_params(v, e, m, out, false);
            assert!(params <= budget_params, "solver must respect the budget");
            let config = ModelConfig {
                kind: ModelKind::PointwiseRanker,
                vocab: v,
                embedding_dim: e,
                input_len: spec.input_len,
                n_classes: out,
                dropout: 0.05,
                seed: args.seed,
            };
            let mut model = RecModel::new(
                &config,
                &MethodSpec::MemCom {
                    hash_size: m,
                    bias: false,
                },
            )
            .expect("model builds");
            let report = train(
                &mut model,
                &data.train,
                &data.eval,
                &TrainConfig {
                    epochs: if args.quick { 1 } else { 4 },
                    seed: args.seed,
                    ..TrainConfig::default()
                },
            )
            .expect("training succeeds");
            writer.row(&[
                spec.name,
                &m.to_string(),
                &e.to_string(),
                &params.to_string(),
                &budget_params.to_string(),
                &format!("{:.4}", report.eval_accuracy),
                &format!("{:.4}", report.eval_ndcg),
            ]);
        }
    }
    writer.flush().expect("results directory must be writable");
    println!("\nwrote results/fig6_fixed_size.tsv");
}
