//! Figure 1: compression vs accuracy tradeoff (classification).
//!
//! Three panels — Newsgroup, Games, Arcade — sweeping every compression
//! technique over the paper's hash-size grid and reporting the percentage
//! accuracy loss against the uncompressed Code-1 classifier.
//!
//! Paper expectation: "For all compression ratios, MEmCom has much lower
//! loss in accuracy compared to other techniques"; on Arcade the
//! truncate-rare baseline is surprisingly strong but MEmCom still beats it
//! by ~2x; on Newsgroup only MEmCom and factorized embeddings work at all.

use memcom_bench::harness::{banner, scaled_spec, HarnessArgs, ResultWriter};
use memcom_data::DatasetSpec;
use memcom_models::sweep::{paper_method_grid, run_sweep};
use memcom_models::trainer::TrainConfig;
use memcom_models::{ModelKind, SweepConfig};

fn main() {
    let args = HarnessArgs::from_env();
    banner(
        "Figure 1 — compression vs accuracy tradeoff (classification)",
        "§5.1, Figure 1 (Newsgroup / Games / Arcade panels)",
        "memcom dominates every baseline at every ratio; truncate_rare is the best non-memcom method on arcade",
    );
    let mut writer = ResultWriter::new("fig1_classification");
    writer.header(&[
        "dataset",
        "method",
        "params",
        "compression_ratio",
        "accuracy",
        "accuracy_loss_pct",
    ]);
    for base in [
        DatasetSpec::newsgroup(),
        DatasetSpec::games(),
        DatasetSpec::arcade(),
    ] {
        let spec = scaled_spec(&base, &args);
        eprintln!(
            "[fig1] {}: vocab={} out={} train={} (scaled from Table 2)",
            spec.name,
            spec.input_vocab(),
            spec.output_vocab,
            spec.train_samples
        );
        let data = spec.generate(args.seed);
        let config = SweepConfig {
            kind: ModelKind::Classifier,
            embedding_dim: if args.quick { 16 } else { 32 },
            train: TrainConfig {
                epochs: if args.quick { 1 } else { 8 },
                seed: args.seed,
                ..TrainConfig::default()
            },
            replicates: if args.quick { 1 } else { 2 },
            ..SweepConfig::default()
        };
        let grid = paper_method_grid(spec.input_vocab(), config.embedding_dim);
        let result = run_sweep(&spec, &data, &grid, &config).expect("sweep must complete");
        for point in std::iter::once(&result.baseline).chain(&result.points) {
            writer.row(&[
                spec.name,
                &point.label,
                &point.params.to_string(),
                &format!("{:.2}", point.compression_ratio),
                &format!("{:.4}", point.accuracy),
                &format!("{:.2}", point.accuracy_loss_pct),
            ]);
        }
    }
    writer.flush().expect("results directory must be writable");
    println!("\nwrote results/fig1_classification.tsv");
}
