//! Ablation: what each MEmCom ingredient buys.
//!
//! Compares, at identical hash sizes: the bare shared table (naive
//! hashing = MEmCom without multipliers), Algorithm 2 (multipliers), and
//! Algorithm 3 (multipliers + bias). The paper asserts "MEmCom with no
//! bias performs equally well" — the multiplier is the active ingredient.

use memcom_bench::harness::{banner, scaled_spec, HarnessArgs, ResultWriter};
use memcom_core::MethodSpec;
use memcom_data::DatasetSpec;
use memcom_models::sweep::run_sweep;
use memcom_models::trainer::TrainConfig;
use memcom_models::{ModelKind, SweepConfig};

fn main() {
    let args = HarnessArgs::from_env();
    banner(
        "Ablation — MEmCom composition (none / multiplier / multiplier+bias)",
        "Algorithms 2 vs 3; §5 'MEmCom with and without bias performs exactly the same'",
        "multiplier >> none; bias ≈ no-bias",
    );
    let spec = scaled_spec(&DatasetSpec::arcade(), &args);
    let data = spec.generate(args.seed);
    let v = spec.input_vocab();
    let mut specs = Vec::new();
    for divisor in [10usize, 50] {
        let m = (v / divisor).max(1);
        specs.push(MethodSpec::NaiveHash { hash_size: m }); // no composition
        specs.push(MethodSpec::MemCom {
            hash_size: m,
            bias: false,
        }); // Alg. 2
        specs.push(MethodSpec::MemCom {
            hash_size: m,
            bias: true,
        }); // Alg. 3
    }
    let config = SweepConfig {
        kind: ModelKind::Classifier,
        embedding_dim: if args.quick { 16 } else { 32 },
        train: TrainConfig {
            epochs: if args.quick { 1 } else { 4 },
            seed: args.seed,
            ..TrainConfig::default()
        },
        ..SweepConfig::default()
    };
    let result = run_sweep(&spec, &data, &specs, &config).expect("sweep completes");
    let mut writer = ResultWriter::new("ablation_composition");
    writer.header(&[
        "method",
        "compression_ratio",
        "accuracy",
        "accuracy_loss_pct",
    ]);
    for point in std::iter::once(&result.baseline).chain(&result.points) {
        writer.row(&[
            &point.label,
            &format!("{:.2}", point.compression_ratio),
            &format!("{:.4}", point.accuracy),
            &format!("{:.2}", point.accuracy_loss_pct),
        ]);
    }
    writer.flush().expect("results directory must be writable");
    println!("\nwrote results/ablation_composition.tsv");
}
