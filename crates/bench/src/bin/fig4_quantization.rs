//! Figure 4 (§A.2): accuracy vs floating-point precision.
//!
//! Trains a MEmCom model per dataset, then post-training-quantizes the
//! whole model to 16/8/4/2 bits (CoreML-style linear mode) and measures
//! the accuracy through the on-device inference session — the same
//! serialized artifact a phone would run.
//!
//! Paper expectation: "all the datasets … have no loss in accuracy when
//! the model is converted to half-point precision … the loss of accuracy
//! is approximately 0.13% when using 8-bit precision. However, the
//! accuracy drops significantly if we quantize the model further."

use memcom_bench::harness::{banner, scaled_spec, HarnessArgs, ResultWriter};
use memcom_core::MethodSpec;
use memcom_data::DatasetSpec;
use memcom_metrics::{accuracy, relative_loss_pct};
use memcom_models::trainer::{train, TrainConfig};
use memcom_models::{ModelConfig, ModelKind, RecModel};
use memcom_ondevice::format::OnDeviceModel;
use memcom_ondevice::{Dtype, InferenceSession};

fn main() {
    let args = HarnessArgs::from_env();
    banner(
        "Figure 4 — accuracy vs floating point precision (MEmCom models)",
        "§A.2, Figure 4",
        "flat to fp16, ~0.1% dip at int8, cliff below 8 bits",
    );
    let datasets = if args.quick {
        vec![DatasetSpec::movielens()]
    } else {
        vec![
            DatasetSpec::newsgroup(),
            DatasetSpec::movielens(),
            DatasetSpec::netflix(),
            DatasetSpec::arcade(),
        ]
    };
    let mut writer = ResultWriter::new("fig4_quantization");
    writer.header(&["dataset", "bits", "accuracy", "accuracy_loss_pct_vs_fp32"]);
    for base in datasets {
        let spec = scaled_spec(&base, &args);
        let data = spec.generate(args.seed);
        let m = (spec.input_vocab() / 10).max(1);
        let config = ModelConfig {
            kind: ModelKind::Classifier,
            vocab: spec.input_vocab(),
            embedding_dim: if args.quick { 16 } else { 32 },
            input_len: spec.input_len,
            n_classes: spec.output_vocab,
            dropout: 0.05,
            seed: args.seed,
        };
        let mut model = RecModel::new(
            &config,
            &MethodSpec::MemCom {
                hash_size: m,
                bias: false,
            },
        )
        .expect("valid model");
        train(
            &mut model,
            &data.train,
            &data.eval,
            &TrainConfig {
                epochs: if args.quick { 1 } else { 4 },
                seed: args.seed,
                ..TrainConfig::default()
            },
        )
        .expect("training succeeds");

        let labels: Vec<usize> = data.eval.iter().map(|ex| ex.label).collect();
        let mut fp32_accuracy = None;
        for bits in [32usize, 16, 8, 4, 2] {
            let dtype = Dtype::for_bits(bits).expect("supported width");
            let bytes =
                OnDeviceModel::serialize(model.embedding(), model.head(), spec.input_len, dtype)
                    .expect("serializable model");
            let session = InferenceSession::new(OnDeviceModel::parse(bytes).expect("own bytes"));
            let mut predictions = Vec::with_capacity(data.eval.len());
            for ex in &data.eval {
                let (logits, _) = session.run(&ex.input_ids).expect("inference succeeds");
                let argmax = logits
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .expect("non-empty logits");
                predictions.push(argmax);
            }
            let acc = accuracy(&predictions, &labels);
            let base_acc = *fp32_accuracy.get_or_insert(acc);
            writer.row(&[
                spec.name,
                &bits.to_string(),
                &format!("{acc:.4}"),
                &format!("{:.2}", relative_loss_pct(base_acc, acc)),
            ]);
        }
    }
    writer.flush().expect("results directory must be writable");
    println!("\nwrote results/fig4_quantization.tsv");
}
