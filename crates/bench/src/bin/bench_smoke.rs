//! CI perf-gate smoke benchmark.
//!
//! Runs a pinned subset of the serving benchmarks — the closed-loop
//! throughput scenario from `serve_throughput`, the quantized miss path
//! from `serve_dtype`, the steady-state allocation count certified by
//! `tests/alloc_count.rs`, the delta-apply scenario from `serve_delta`,
//! and the same closed-loop traffic once more through `memcom-net`'s
//! loopback wire path — in a couple of seconds, then:
//!
//! 1. writes the measurements as a flat JSON object (`BENCH_serve.json`,
//!    uploaded as a CI artifact so every run leaves a comparable trace),
//! 2. compares them against the checked-in baseline
//!    (`results/BENCH_serve_baseline.json`) and **fails the process**
//!    when any metric regresses by more than 25% — the CI perf gate.
//!
//! Higher-is-better metrics (QPS, delta speedup) fail below
//! `baseline / 1.25`; lower-is-better metrics (latency, allocations,
//! apply time, copied fraction) fail above `baseline * 1.25`. The
//! `telemetry_overhead_pct` metric (QPS lost to full telemetry vs off,
//! measured as interleaved pairs) is gated against its baseline entry
//! as an *absolute* percentage budget instead.
//! Improvements never fail; refresh the baseline deliberately with
//! `--quick --update-baseline` when a change moves the floor —
//! **matching the mode CI gates with** (`--quick`), since the two modes
//! measure different workload sizes and their numbers are not
//! comparable.
//!
//! ```text
//! bench_smoke [--quick] [--out PATH] [--baseline PATH] [--update-baseline]
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use memcom_core::{FullEmbedding, MemCom, MemComConfig};
use memcom_serve::{
    run_load, Dtype, EmbedBatch, EmbedServer, LoadGenConfig, LoadMode, ServeConfig, ShardedStore,
    StoreDelta, TelemetryConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counts every allocation in the process, so the steady-state
/// allocs-per-call metric is exact and machine-independent.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: a pure pass-through to `System` plus a relaxed counter
// bump; every GlobalAlloc contract obligation is discharged by the
// delegated call.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same layout handed unchanged to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: ptr/layout/new_size forwarded unchanged to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: ptr/layout forwarded unchanged to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Whether a bigger value is a better value.
#[derive(Clone, Copy, PartialEq)]
enum Direction {
    HigherIsBetter,
    LowerIsBetter,
}

/// The pinned metric set. Adding a metric here extends the gate; the
/// baseline file must carry the same keys.
const DIRECTIONS: &[(&str, Direction)] = &[
    ("throughput_qps", Direction::HigherIsBetter),
    ("p50_ns", Direction::LowerIsBetter),
    ("p99_ns", Direction::LowerIsBetter),
    ("int8_miss_ns_per_row", Direction::LowerIsBetter),
    ("f16_miss_ns_per_row", Direction::LowerIsBetter),
    ("int4_miss_ns_per_row", Direction::LowerIsBetter),
    ("memcom_scalar_int8_bytes", Direction::LowerIsBetter),
    ("allocs_per_call", Direction::LowerIsBetter),
    ("delta_apply_us", Direction::LowerIsBetter),
    ("delta_speedup_vs_rebuild", Direction::HigherIsBetter),
    ("delta_copied_frac", Direction::LowerIsBetter),
    ("telemetry_overhead_pct", Direction::LowerIsBetter),
    ("net_loopback_qps", Direction::HigherIsBetter),
    ("score_qps", Direction::HigherIsBetter),
    ("lint_runtime_ms", Direction::LowerIsBetter),
];

/// Allowed regression vs. the checked-in baseline.
const TOLERANCE: f64 = 1.25;

/// Metrics where the baseline value is itself the hard limit rather
/// than a floor the tolerance scales: `telemetry_overhead_pct` is a
/// percentage budget (full telemetry may cost at most this much QPS)
/// and `lint_runtime_ms` is a wall-clock budget for the full
/// memcom-lint pass, so a "25% worse than measured-at-baseline-time"
/// gate would drift.
const ABSOLUTE_CAPS: &[&str] = &["telemetry_overhead_pct", "lint_runtime_ms"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let update_baseline = args.iter().any(|a| a == "--update-baseline");
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let baseline_path = flag_value(&args, "--baseline")
        .unwrap_or_else(|| "results/BENCH_serve_baseline.json".to_string());

    let metrics = measure(quick);

    let json = to_json(&metrics);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("bench_smoke: cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    println!("bench_smoke: wrote {out_path}");
    for (key, value) in &metrics {
        println!("  {key:<26} {value:>14.3}");
    }

    if update_baseline {
        std::fs::write(&baseline_path, &json).unwrap_or_else(|e| {
            eprintln!("bench_smoke: cannot write {baseline_path}: {e}");
            std::process::exit(2);
        });
        println!("bench_smoke: baseline refreshed at {baseline_path}");
        return;
    }

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!(
                "bench_smoke: no baseline at {baseline_path} ({e}); \
                 run with --update-baseline to seed one"
            );
            std::process::exit(2);
        }
    };
    let baseline = parse_flat_json(&baseline_text).unwrap_or_else(|e| {
        eprintln!("bench_smoke: cannot parse {baseline_path}: {e}");
        std::process::exit(2);
    });

    let mut failures = 0;
    println!(
        "\nperf gate vs {baseline_path} (>{:.0}% regression fails):",
        (TOLERANCE - 1.0) * 100.0
    );
    for &(key, direction) in DIRECTIONS {
        let measured = lookup(&metrics, key);
        let Some(base) = baseline.iter().find(|(k, _)| k == key).map(|(_, v)| *v) else {
            println!("  {key:<26} (no baseline entry; skipped)");
            continue;
        };
        let (worst_allowed, regressed) = if ABSOLUTE_CAPS.contains(&key) {
            (base, measured > base)
        } else {
            match direction {
                Direction::HigherIsBetter => (base / TOLERANCE, measured < base / TOLERANCE),
                Direction::LowerIsBetter => (base * TOLERANCE, measured > base * TOLERANCE),
            }
        };
        let verdict = if regressed { "FAIL" } else { "ok" };
        println!(
            "  {key:<26} {measured:>14.3}  baseline {base:>14.3}  limit {worst_allowed:>14.3}  {verdict}"
        );
        if regressed {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("bench_smoke: {failures} metric(s) regressed beyond the 25% gate");
        std::process::exit(1);
    }
    println!("bench_smoke: perf gate passed");
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn lookup(metrics: &[(&'static str, f64)], key: &str) -> f64 {
    metrics
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .expect("metric measured")
}

fn measure(quick: bool) -> Vec<(&'static str, f64)> {
    let mut metrics = Vec::new();

    // --- serve_throughput subset: closed-loop QPS + latency ----------
    let (vocab, clients, requests) = if quick {
        (10_000, 2, 300)
    } else {
        (20_000, 4, 1_000)
    };
    let mut rng = StdRng::seed_from_u64(7);
    let emb = MemCom::new(MemComConfig::new(vocab, 32, vocab / 10), &mut rng).expect("memcom");
    let server = EmbedServer::start(
        &emb,
        ServeConfig {
            n_shards: 4,
            max_batch: 64,
            max_wait: Duration::from_micros(50),
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let report = run_load(
        &server.handle(),
        &LoadGenConfig {
            clients,
            requests_per_client: requests,
            ids_per_request: 16,
            zipf_exponent: 1.1,
            mode: LoadMode::Closed,
            seed: 42,
        },
    )
    .expect("load runs");
    metrics.push(("throughput_qps", report.qps()));
    metrics.push(("p50_ns", report.histogram.p50() as f64));
    metrics.push(("p99_ns", report.histogram.p99() as f64));
    drop(server);

    // --- serve_dtype subset: quantized cache-off miss paths ----------
    // One store per gated dtype; each drives the simd decode kernels
    // (`Kernel::{Avx2,Sse2,Scalar}` by runtime detection), so a kernel
    // regression shows up here per dtype.
    let mut rng = StdRng::seed_from_u64(9);
    let table = FullEmbedding::new(vocab / 2, 32, &mut rng).expect("table");
    let iters = if quick { 200 } else { 1_000 };
    for (key, dtype) in [
        ("int8_miss_ns_per_row", Dtype::Int8),
        ("f16_miss_ns_per_row", Dtype::F16),
        ("int4_miss_ns_per_row", Dtype::Int4),
    ] {
        let store = ShardedStore::build_quantized(&table, 1, 0, 16 * 1024, dtype).expect("store");
        let ids: Vec<usize> = (0..256).collect();
        let mut slab = vec![0f32; ids.len() * 32];
        for _ in 0..3 {
            store.lookup_batch(0, &ids, &mut slab).expect("warm");
        }
        let t0 = Instant::now();
        for _ in 0..iters {
            store.lookup_batch(0, &ids, &mut slab).expect("measured");
        }
        let per_row = t0.elapsed().as_nanos() as f64 / (iters as f64 * ids.len() as f64);
        metrics.push((key, per_row));
    }

    // --- quantized MemCom scalar-table footprint ---------------------
    // Byte count, not a timing: the int8 scalar blocks must stay ~3.8×
    // smaller than one f32 per entity, and any layout change that grows
    // them shows up as a gate failure.
    let mut rng = StdRng::seed_from_u64(10);
    let emb = MemCom::new(MemComConfig::new(vocab, 32, vocab / 10), &mut rng).expect("memcom");
    let quant_store =
        ShardedStore::build_quantized(&emb, 4, 0, 16 * 1024, Dtype::Int8).expect("memcom int8");
    metrics.push((
        "memcom_scalar_int8_bytes",
        quant_store.memcom_scalar_bytes() as f64,
    ));
    drop(quant_store);

    // --- alloc_count subset: steady-state allocations per batch call -
    let mut rng = StdRng::seed_from_u64(11);
    let emb = MemCom::new(MemComConfig::new(1_000, 16, 100), &mut rng).expect("memcom");
    let server = EmbedServer::start(
        &emb,
        ServeConfig {
            n_shards: 1,
            max_batch: 1,
            max_wait: Duration::from_micros(1),
            cache_capacity: 1_024,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let handle = server.handle();
    let ids: Vec<usize> = (0..512).collect();
    let mut batch = EmbedBatch::new();
    for _ in 0..10 {
        handle.get_batch_into(&ids, &mut batch).expect("warm");
    }
    let calls = 50u64;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..calls {
        handle.get_batch_into(&ids, &mut batch).expect("measured");
    }
    let allocs_per_call = (ALLOCATIONS.load(Ordering::Relaxed) - before) as f64 / calls as f64;
    metrics.push(("allocs_per_call", allocs_per_call));
    drop(server);

    // --- serve_delta subset: 0.1% delta apply vs full rebuild --------
    let (delta_vocab, delta_rows) = if quick {
        (100_000, 100)
    } else {
        (200_000, 200)
    };
    let mut rng = StdRng::seed_from_u64(13);
    let table = FullEmbedding::new(delta_vocab, 16, &mut rng).expect("table");
    let t0 = Instant::now();
    let store = ShardedStore::build(&table, 4, 1_024, 16 * 1024).expect("store");
    let rebuild = t0.elapsed();
    let mut delta = StoreDelta::new(16);
    for k in 0..delta_rows {
        let row: Vec<f32> = (0..16).map(|j| ((k + j) as f32) * 1e-3).collect();
        delta
            .upsert_row(delta_vocab / 2 + k, &row)
            .expect("dim matches");
    }
    let mut samples: Vec<f64> = (0..15)
        .map(|_| {
            let t0 = Instant::now();
            let new = store.apply_delta(&delta).expect("delta applies");
            let elapsed = t0.elapsed().as_secs_f64() * 1e6;
            std::hint::black_box(&new);
            elapsed
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    let apply_us = samples[samples.len() / 2];
    let new = store.apply_delta(&delta).expect("delta applies");
    metrics.push(("delta_apply_us", apply_us));
    metrics.push((
        "delta_speedup_vs_rebuild",
        rebuild.as_secs_f64() * 1e6 / apply_us.max(1e-9),
    ));
    metrics.push((
        "delta_copied_frac",
        new.cow_copied_bytes() as f64 / store.stored_bytes() as f64,
    ));

    // --- telemetry overhead: the act-1 closed loop, Off vs Full ------
    // Three interleaved Off/Full pairs cancel machine drift; the metric
    // is the median relative QPS loss of serving with full telemetry
    // (stage histograms + 1%-sampled tracing), clamped at zero. The
    // gate treats its baseline entry as an absolute percentage budget.
    let mut rng = StdRng::seed_from_u64(17);
    let emb = MemCom::new(MemComConfig::new(vocab, 32, vocab / 10), &mut rng).expect("memcom");
    let overhead_load = LoadGenConfig {
        clients,
        requests_per_client: requests / 2,
        ids_per_request: 16,
        zipf_exponent: 1.1,
        mode: LoadMode::Closed,
        seed: 42,
    };
    let qps_at = |telemetry: TelemetryConfig| {
        let server = EmbedServer::start(
            &emb,
            ServeConfig {
                n_shards: 4,
                max_batch: 64,
                max_wait: Duration::from_micros(50),
                telemetry,
                ..ServeConfig::default()
            },
        )
        .expect("server starts");
        let report = run_load(&server.handle(), &overhead_load).expect("load runs");
        report.qps()
    };
    let mut overheads: Vec<f64> = (0..3)
        .map(|_| {
            let off = qps_at(TelemetryConfig::off());
            let full = qps_at(TelemetryConfig::full(0.01));
            (100.0 * (off - full) / off).max(0.0)
        })
        .collect();
    overheads.sort_by(f64::total_cmp);
    metrics.push(("telemetry_overhead_pct", overheads[1]));

    // --- memcom-net subset: the same closed loop over loopback -------
    // One wire hop on top of the act-1 scenario: a Router behind a
    // NetServer, driven by `clients` connections of
    // synchronous lookups. Gates the whole frame-encode → socket →
    // frame-decode → router → response path.
    let mut rng = StdRng::seed_from_u64(19);
    let emb = MemCom::new(MemComConfig::new(vocab, 32, vocab / 10), &mut rng).expect("memcom");
    let router = memcom_serve::Router::start(ServeConfig {
        n_shards: 4,
        max_batch: 64,
        max_wait: Duration::from_micros(50),
        ..ServeConfig::default()
    })
    .expect("router starts");
    router.register("default", &emb).expect("registers");
    let net_server = memcom_net::NetServer::start(router, memcom_net::NetServerConfig::default())
        .expect("net server starts");
    let net_report = memcom_net::run_net_load(
        net_server.local_addr(),
        "default",
        vocab,
        &LoadGenConfig {
            clients,
            requests_per_client: requests / 2,
            ids_per_request: 16,
            zipf_exponent: 1.1,
            mode: LoadMode::Closed,
            seed: 42,
        },
        None,
    )
    .expect("net load runs");
    net_server.shutdown();
    metrics.push(("net_loopback_qps", net_report.qps()));

    // --- full-model score path: RankNet behind the router ------------
    // The same loopback closed loop, but every request is a full
    // scoring pipeline (embedding gather + pool + dense head) through
    // a `RankNetBackend` registered in the router's `InferBackend`
    // registry. Gates the whole score path: wire kind, shard-queue
    // micro-batching, per-worker inference scratch, and the forward.
    let ranker = memcom_models::RecModel::new(
        &memcom_models::ModelConfig::pointwise(vocab, 32, 16, 1),
        &memcom_core::MethodSpec::MemCom {
            hash_size: vocab / 10,
            bias: false,
        },
    )
    .expect("ranker builds");
    let router = memcom_serve::Router::start(ServeConfig {
        n_shards: 4,
        max_batch: 64,
        max_wait: Duration::from_micros(50),
        ..ServeConfig::default()
    })
    .expect("router starts");
    router
        .backends()
        .register(
            "ranknet",
            std::sync::Arc::new(
                memcom_serve::RankNetBackend::from_model(&ranker).expect("backend builds"),
            ),
        )
        .expect("backend registers");
    router
        .register_with_backend("scorer", ranker.embedding(), Dtype::F32, "ranknet")
        .expect("scorer registers");
    let net_server = memcom_net::NetServer::start(router, memcom_net::NetServerConfig::default())
        .expect("net server starts");
    let score_report = memcom_net::run_net_score_load(
        net_server.local_addr(),
        "scorer",
        vocab,
        &LoadGenConfig {
            clients,
            requests_per_client: requests / 2,
            ids_per_request: 16,
            zipf_exponent: 1.1,
            mode: LoadMode::Closed,
            seed: 42,
        },
        None,
    )
    .expect("score load runs");
    net_server.shutdown();
    metrics.push(("score_qps", score_report.qps()));

    // --- static-analysis runtime: the memcom-lint pass over the tree -
    // Wall-clock cost of the full lint walk (lex + directive parse +
    // the five-lint catalog over every .rs file, from the workspace
    // root CI runs this binary in). The baseline entry is an absolute
    // millisecond budget, not a measured floor: the gate keeps the
    // pass cheap enough to run on every push.
    let t0 = Instant::now();
    match memcom_analysis::check_workspace(std::path::Path::new(".")) {
        Ok(report) => {
            if !report.clean() {
                eprintln!(
                    "bench_smoke: memcom-lint found {} violation(s) while timing the pass",
                    report.diagnostics.len()
                );
            }
        }
        Err(e) => eprintln!("bench_smoke: lint timing walk failed: {e}"),
    }
    metrics.push(("lint_runtime_ms", t0.elapsed().as_secs_f64() * 1e3));

    metrics
}

fn to_json(metrics: &[(&'static str, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (key, value)) in metrics.iter().enumerate() {
        let sep = if i + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!("  \"{key}\": {value:.6}{sep}\n"));
    }
    out.push_str("}\n");
    out
}

/// Parses a flat `{"key": number, ...}` object — the only JSON shape the
/// gate exchanges, so no dependency is needed.
fn parse_flat_json(text: &str) -> Result<Vec<(String, f64)>, String> {
    let inner = text
        .trim()
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or("expected a {...} object")?;
    let mut out = Vec::new();
    for entry in inner.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry
            .split_once(':')
            .ok_or_else(|| format!("bad entry {entry:?}"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted key in {entry:?}"))?;
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("bad number in {entry:?}: {e}"))?;
        out.push((key.to_string(), value));
    }
    Ok(out)
}
