//! Table 2: dataset statistics (paper scale and the scaled stand-ins).

use memcom_bench::harness::{banner, scaled_spec, HarnessArgs, ResultWriter};
use memcom_data::DatasetSpec;

fn main() {
    let args = HarnessArgs::from_env();
    banner(
        "Table 2 — datasets used",
        "§5, Table 2",
        "seven datasets; Games is the largest (78M samples, 480K input vocab)",
    );
    let mut writer = ResultWriter::new("dataset_stats");
    writer.header(&[
        "dataset",
        "train_samples",
        "eval_samples",
        "input_vocab",
        "output_vocab",
        "input_len",
        "zipf_exponent",
        "scaled_train",
        "scaled_input_vocab",
        "scaled_output_vocab",
    ]);
    for spec in DatasetSpec::all() {
        let scaled = scaled_spec(&spec, &args);
        writer.row(&[
            spec.name,
            &spec.train_samples.to_string(),
            &spec.eval_samples.to_string(),
            &spec.input_vocab().to_string(),
            &spec.output_vocab.to_string(),
            &spec.input_len.to_string(),
            &format!("{:.2}", spec.zipf_exponent),
            &scaled.train_samples.to_string(),
            &scaled.input_vocab().to_string(),
            &scaled.output_vocab.to_string(),
        ]);
    }
    writer.flush().expect("results directory must be writable");
    println!("\nwrote results/dataset_stats.tsv");
}
