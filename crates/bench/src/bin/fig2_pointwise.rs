//! Figure 2: compression vs nDCG tradeoff (pointwise ranking).
//!
//! Panels for MovieLens, Million Songs, Google Local Reviews, and Netflix
//! with the pointwise learning-to-rank network (Code 1 minus the
//! post-pooling Dense layer).
//!
//! Paper expectation: ~4% nDCG loss for MEmCom at input-embedding
//! compressions of 16x (MovieLens), 12x (Million Songs), 4x (Google
//! Local), and 40x (Netflix), "beating out other state-of-the-art model
//! compression techniques" at the corresponding whole-model ratios.

use memcom_bench::harness::{banner, scaled_spec, HarnessArgs, ResultWriter};
use memcom_data::DatasetSpec;
use memcom_models::sweep::{paper_method_grid, run_sweep};
use memcom_models::trainer::TrainConfig;
use memcom_models::{ModelKind, SweepConfig};

fn main() {
    let args = HarnessArgs::from_env();
    banner(
        "Figure 2 — compression vs nDCG tradeoff (pointwise ranking)",
        "§5.2, Figure 2 (MovieLens / MillionSongs / GoogleLocal / Netflix)",
        "memcom holds a few-percent nDCG loss where hashing baselines degrade steeply",
    );
    let mut writer = ResultWriter::new("fig2_pointwise");
    writer.header(&[
        "dataset",
        "method",
        "params",
        "compression_ratio",
        "ndcg",
        "ndcg_loss_pct",
    ]);
    for base in [
        DatasetSpec::movielens(),
        DatasetSpec::million_songs(),
        DatasetSpec::google_local(),
        DatasetSpec::netflix(),
    ] {
        let spec = scaled_spec(&base, &args);
        eprintln!(
            "[fig2] {}: vocab={} out={} train={}",
            spec.name,
            spec.input_vocab(),
            spec.output_vocab,
            spec.train_samples
        );
        let data = spec.generate(args.seed);
        let config = SweepConfig {
            kind: ModelKind::PointwiseRanker,
            embedding_dim: if args.quick { 16 } else { 32 },
            train: TrainConfig {
                epochs: if args.quick { 1 } else { 8 },
                seed: args.seed,
                ..TrainConfig::default()
            },
            replicates: if args.quick { 1 } else { 2 },
            ..SweepConfig::default()
        };
        let grid = paper_method_grid(spec.input_vocab(), config.embedding_dim);
        let result = run_sweep(&spec, &data, &grid, &config).expect("sweep must complete");
        for point in std::iter::once(&result.baseline).chain(&result.points) {
            writer.row(&[
                spec.name,
                &point.label,
                &point.params.to_string(),
                &format!("{:.2}", point.compression_ratio),
                &format!("{:.4}", point.ndcg),
                &format!("{:.2}", point.ndcg_loss_pct),
            ]);
        }
    }
    writer.flush().expect("results directory must be writable");
    println!("\nwrote results/fig2_pointwise.tsv");
}
