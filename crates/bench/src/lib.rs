//! Shared harness for the experiment binaries.
//!
//! Every table and figure in the paper's evaluation has a binary under
//! `src/bin/`; this library carries what they share: CLI scale handling,
//! per-dataset default scale factors (so the whole suite runs on a laptop
//! while `--full` restores Table-2 scale), TSV result writing under
//! `results/`, and the DP-SGD training loop used by the Figure-5 binary.

pub mod dp_train;
pub mod harness;

pub use harness::{HarnessArgs, ResultWriter};
