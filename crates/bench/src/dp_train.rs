//! DP-SGD training loop over [`RecModel`] (drives Figure 5).

use memcom_data::Example;
use memcom_dp::rdp::compute_epsilon;
use memcom_dp::{DpSgd, DpSgdConfig};
use memcom_models::trainer::evaluate;
use memcom_models::{ModelError, RecModel};
use memcom_nn::{softmax_cross_entropy, Mode};

/// Hyperparameters of a DP training run.
#[derive(Debug, Clone, PartialEq)]
pub struct DpTrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// DP-SGD lot size (examples per noisy update).
    pub lot_size: usize,
    /// Global L2 clip bound.
    pub clip_norm: f32,
    /// Noise multiplier σ (Figure 5's x-axis).
    pub noise_multiplier: f32,
    /// Learning rate.
    pub lr: f32,
    /// Seed for noise.
    pub seed: u64,
}

impl Default for DpTrainConfig {
    fn default() -> Self {
        DpTrainConfig {
            epochs: 2,
            lot_size: 50,
            clip_norm: 1.0,
            noise_multiplier: 1.0,
            lr: 0.15,
            seed: 7,
        }
    }
}

/// Outcome of a DP training run.
#[derive(Debug, Clone, PartialEq)]
pub struct DpTrainReport {
    /// Eval accuracy after training.
    pub eval_accuracy: f64,
    /// Eval nDCG after training.
    pub eval_ndcg: f64,
    /// Privacy spent, computed by the RDP accountant at δ = 1/N (the
    /// paper's choice).
    pub epsilon: f64,
    /// Noisy updates applied.
    pub steps: u64,
}

/// Trains `model` with per-example clipping and Gaussian noise, then
/// evaluates and accounts privacy.
///
/// Per-example gradients require batch-size-1 passes, so this is
/// deliberately the slowest loop in the repository — run it on scaled
/// datasets.
///
/// # Errors
///
/// Propagates model forward/backward failures.
pub fn dp_train(
    model: &mut RecModel,
    train_set: &[Example],
    eval_set: &[Example],
    config: &DpTrainConfig,
) -> Result<DpTrainReport, ModelError> {
    let mut opt = DpSgd::new(DpSgdConfig {
        clip_norm: config.clip_norm,
        noise_multiplier: config.noise_multiplier,
        lr: config.lr,
        seed: config.seed,
    });
    let input_len = model.config().input_len;
    for _ in 0..config.epochs {
        for lot in train_set.chunks(config.lot_size) {
            for ex in lot {
                let logits = model.forward(&ex.input_ids, 1, Mode::Train)?;
                let out = softmax_cross_entropy(&logits, &[ex.label])?;
                model.backward_and_step(&out.grad, 1, &mut opt)?;
                opt.end_example();
            }
            // Apply pass: one dummy example routes every parameter through
            // the optimizer so the noisy lot update lands.
            opt.begin_apply();
            let dummy = &lot[0];
            let logits = model.forward(&dummy.input_ids, 1, Mode::Train)?;
            let out = softmax_cross_entropy(&logits, &[dummy.label])?;
            model.backward_and_step(&out.grad, 1, &mut opt)?;
            debug_assert_eq!(dummy.input_ids.len(), input_len);
        }
    }
    let (eval_accuracy, eval_ndcg) = evaluate(model, eval_set, 64)?;
    let q = (config.lot_size as f64 / train_set.len() as f64).min(1.0);
    let delta = 1.0 / train_set.len() as f64;
    let epsilon = if config.noise_multiplier > 0.0 {
        compute_epsilon(
            opt.applied_steps(),
            q,
            config.noise_multiplier as f64,
            delta,
        )
        .unwrap_or(f64::INFINITY)
    } else {
        f64::INFINITY
    };
    Ok(DpTrainReport {
        eval_accuracy,
        eval_ndcg,
        epsilon,
        steps: opt.applied_steps(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcom_core::MethodSpec;
    use memcom_data::DatasetSpec;
    use memcom_models::{ModelConfig, ModelKind};

    fn tiny() -> (DatasetSpec, Vec<Example>, Vec<Example>) {
        let mut spec = DatasetSpec::arcade().scaled(1_000_000);
        spec.train_samples = 150;
        spec.eval_samples = 60;
        spec.input_len = 12;
        let data = spec.generate(3);
        (spec, data.train, data.eval)
    }

    fn model_for(spec: &DatasetSpec) -> RecModel {
        let config = ModelConfig {
            kind: ModelKind::PointwiseRanker,
            vocab: spec.input_vocab(),
            embedding_dim: 8,
            input_len: spec.input_len,
            n_classes: spec.output_vocab,
            dropout: 0.0,
            seed: 5,
        };
        RecModel::new(
            &config,
            &MethodSpec::MemCom {
                hash_size: spec.input_vocab() / 4,
                bias: false,
            },
        )
        .unwrap()
    }

    #[test]
    fn dp_training_runs_and_accounts() {
        let (spec, train_set, eval_set) = tiny();
        let mut model = model_for(&spec);
        let report = dp_train(
            &mut model,
            &train_set,
            &eval_set,
            &DpTrainConfig {
                epochs: 1,
                lot_size: 30,
                ..DpTrainConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.steps, 5); // 150 / 30 lots
        assert!(report.epsilon.is_finite());
        assert!(report.epsilon > 0.0);
        assert!((0.0..=1.0).contains(&report.eval_ndcg));
    }

    #[test]
    fn more_noise_more_privacy() {
        let (spec, train_set, eval_set) = tiny();
        let eps_of = |sigma: f32| {
            let mut model = model_for(&spec);
            dp_train(
                &mut model,
                &train_set,
                &eval_set,
                &DpTrainConfig {
                    epochs: 1,
                    lot_size: 50,
                    noise_multiplier: sigma,
                    ..DpTrainConfig::default()
                },
            )
            .unwrap()
            .epsilon
        };
        let loose = eps_of(0.8);
        let tight = eps_of(3.0);
        assert!(
            tight < loose,
            "ε(σ=3) = {tight} should beat ε(σ=0.8) = {loose}"
        );
    }

    #[test]
    fn zero_noise_reports_infinite_epsilon() {
        let (spec, train_set, eval_set) = tiny();
        let mut model = model_for(&spec);
        let report = dp_train(
            &mut model,
            &train_set,
            &eval_set,
            &DpTrainConfig {
                epochs: 1,
                noise_multiplier: 0.0,
                ..DpTrainConfig::default()
            },
        )
        .unwrap();
        assert!(report.epsilon.is_infinite());
    }
}
