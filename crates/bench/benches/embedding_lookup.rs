//! Microbenchmark: embedding lookup throughput per compression technique.
//!
//! Each technique embeds one batch of 16 sequences × 128 ids (the paper's
//! input length). MEmCom's extra multiplier read should cost only
//! marginally more than a plain table lookup, while the one-hot matmul is
//! orders of magnitude slower — the §5.3 architectural story at
//! microbenchmark scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memcom_core::{MethodSpec, QrCombiner};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_lookup(c: &mut Criterion) {
    let vocab = 50_000;
    let dim = 64;
    let n_ids = 128 * 16; // 16 sequences of the paper's length
    let mut rng = StdRng::seed_from_u64(0);
    let ids: Vec<usize> = (0..n_ids).map(|_| rng.gen_range(0..vocab)).collect();

    let specs: Vec<(&str, MethodSpec)> = vec![
        ("uncompressed", MethodSpec::Uncompressed),
        (
            "memcom",
            MethodSpec::MemCom {
                hash_size: vocab / 10,
                bias: false,
            },
        ),
        (
            "memcom_bias",
            MethodSpec::MemCom {
                hash_size: vocab / 10,
                bias: true,
            },
        ),
        (
            "naive_hash",
            MethodSpec::NaiveHash {
                hash_size: vocab / 10,
            },
        ),
        (
            "double_hash",
            MethodSpec::DoubleHash {
                hash_size: vocab / 10,
            },
        ),
        (
            "qr_mult",
            MethodSpec::QuotientRemainder {
                hash_size: vocab / 10,
                combiner: QrCombiner::Multiply,
            },
        ),
        ("factorized", MethodSpec::Factorized { hidden: 16 }),
        (
            "truncate_rare",
            MethodSpec::TruncateRare { keep: vocab / 10 },
        ),
    ];

    let mut group = c.benchmark_group("embedding_lookup");
    group.throughput(Throughput::Elements(n_ids as u64));
    for (name, spec) in specs {
        let emb = spec.build(vocab, dim, &mut rng).expect("spec builds");
        group.bench_with_input(BenchmarkId::from_parameter(name), &emb, |b, emb| {
            b.iter(|| {
                emb.lookup(std::hint::black_box(&ids))
                    .expect("lookup succeeds")
            });
        });
    }
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let vocab = 50_000;
    let dim = 64;
    let n_ids = 128 * 4;
    let mut rng = StdRng::seed_from_u64(1);
    let ids: Vec<usize> = (0..n_ids).map(|_| rng.gen_range(0..vocab)).collect();
    let grad = memcom_tensor::Tensor::rand_uniform(&[n_ids, dim], -1.0, 1.0, &mut rng);

    let mut group = c.benchmark_group("embedding_train_step");
    group.throughput(Throughput::Elements(n_ids as u64));
    for (name, spec) in [
        ("uncompressed", MethodSpec::Uncompressed),
        (
            "memcom",
            MethodSpec::MemCom {
                hash_size: vocab / 10,
                bias: false,
            },
        ),
        (
            "naive_hash",
            MethodSpec::NaiveHash {
                hash_size: vocab / 10,
            },
        ),
    ] {
        let mut emb = spec.build(vocab, dim, &mut rng).expect("spec builds");
        let mut opt = memcom_nn::Sgd::new(0.01);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                emb.forward(std::hint::black_box(&ids)).expect("forward");
                emb.backward(std::hint::black_box(&grad)).expect("backward");
                emb.apply_gradients(&mut opt).expect("apply");
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lookup, bench_backward
}
criterion_main!(benches);
