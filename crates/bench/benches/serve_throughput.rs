//! Serving-throughput microbenchmark: shard-count scaling.
//!
//! Measures the sharded, micro-batching server end to end under Zipf
//! traffic at 1/2/4/8 shards, for MEmCom and the uncompressed baseline,
//! plus the raw (unbatched) `ShardedStore` path for reference. The
//! expected shape: throughput grows with shard count until worker threads
//! outnumber the machine's useful parallelism (on a single-core runner
//! extra shards only add scheduling overhead, so the curve inverts), and
//! MEmCom serves from a far smaller store at comparable speed.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memcom_core::MethodSpec;
use memcom_data::Zipf;
use memcom_serve::batcher::ShardQueue;
use memcom_serve::{AdmissionPolicy, Dtype, EmbedBatch, EmbedServer, ServeConfig, ShardedStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

const VOCAB: usize = 20_000;
const DIM: usize = 32;
const BATCH: usize = 256;

fn zipf_ids(n: usize, seed: u64) -> Vec<usize> {
    let zipf = Zipf::new(VOCAB, 1.1).expect("valid zipf");
    let mut rng = StdRng::seed_from_u64(seed);
    zipf.sample_many(n, &mut rng)
}

fn bench_shard_scaling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let spec = MethodSpec::MemCom {
        hash_size: VOCAB / 10,
        bias: false,
    };
    let emb = spec.build(VOCAB, DIM, &mut rng).expect("memcom builds");
    let ids = zipf_ids(BATCH, 7);

    let mut group = c.benchmark_group("serve_shard_scaling");
    group.throughput(Throughput::Elements(BATCH as u64));
    for n_shards in [1usize, 2, 4, 8] {
        let config = ServeConfig {
            n_shards,
            max_batch: 64,
            max_wait: Duration::from_micros(100),
            ..ServeConfig::default()
        };
        let server = EmbedServer::start(emb.as_ref(), config).expect("server starts");
        let handle = server.handle();
        group.bench_with_input(
            BenchmarkId::from_parameter(n_shards),
            &handle,
            |b, handle| {
                b.iter(|| {
                    handle
                        .get_many(std::hint::black_box(&ids))
                        .expect("batch served")
                });
            },
        );
        drop(server);
    }
    group.finish();
}

fn bench_method_comparison(c: &mut Criterion) {
    let ids = zipf_ids(BATCH, 11);
    let mut group = c.benchmark_group("serve_method");
    group.throughput(Throughput::Elements(BATCH as u64));
    for (name, spec) in [
        (
            "memcom",
            MethodSpec::MemCom {
                hash_size: VOCAB / 10,
                bias: false,
            },
        ),
        ("uncompressed", MethodSpec::Uncompressed),
    ] {
        let mut rng = StdRng::seed_from_u64(3);
        let emb = spec.build(VOCAB, DIM, &mut rng).expect("spec builds");
        let server =
            EmbedServer::start(emb.as_ref(), ServeConfig::with_shards(4)).expect("server starts");
        let handle = server.handle();
        group.bench_with_input(BenchmarkId::from_parameter(name), &handle, |b, handle| {
            b.iter(|| {
                handle
                    .get_many(std::hint::black_box(&ids))
                    .expect("batch served")
            });
        });
        drop(server);
    }
    group.finish();
}

fn bench_batch_api(c: &mut Criterion) {
    // The allocating batch path (`get_many`: one `Vec` per row) against
    // the slab path (`get_batch_into`: one reusable flat buffer, no
    // per-row heap allocation) — the PR's zero-copy redesign, measured.
    let mut rng = StdRng::seed_from_u64(9);
    let spec = MethodSpec::MemCom {
        hash_size: VOCAB / 10,
        bias: false,
    };
    let emb = spec.build(VOCAB, DIM, &mut rng).expect("memcom builds");
    let ids = zipf_ids(BATCH, 17);
    let server =
        EmbedServer::start(emb.as_ref(), ServeConfig::with_shards(4)).expect("server starts");
    let handle = server.handle();

    let mut group = c.benchmark_group("serve_batch_api");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("get_many", |b| {
        b.iter(|| {
            handle
                .get_many(std::hint::black_box(&ids))
                .expect("batch served")
        });
    });
    group.bench_function("get_batch_into", |b| {
        let mut batch = EmbedBatch::new();
        b.iter(|| {
            handle
                .get_batch_into(std::hint::black_box(&ids), &mut batch)
                .expect("batch served");
            std::hint::black_box(batch.data().len())
        });
    });
    group.finish();
    drop(server);
}

fn bench_dtype_sweep(c: &mut Criterion) {
    // Quantized serving: the same table at fp32/f16/int8/int4 row
    // storage, measured on the zero-copy batch path. The cache is
    // disabled so every row pays the dequantize-on-miss cost — the
    // worst case for sub-fp32 dtypes (cache hits are fp32 memcpys and
    // identical across dtypes).
    let mut rng = StdRng::seed_from_u64(21);
    let emb = MethodSpec::Uncompressed
        .build(VOCAB, DIM, &mut rng)
        .expect("full table builds");
    let ids = zipf_ids(BATCH, 23);

    let mut group = c.benchmark_group("serve_dtype");
    group.throughput(Throughput::Elements(BATCH as u64));
    for (name, dtype) in [
        ("fp32", Dtype::F32),
        ("f16", Dtype::F16),
        ("int8", Dtype::Int8),
        ("int4", Dtype::Int4),
    ] {
        let store = ShardedStore::build_quantized(emb.as_ref(), 4, 0, 16 * 1024, dtype)
            .expect("store builds");
        let server = EmbedServer::start_with_store(
            store,
            ServeConfig {
                cache_capacity: 0,
                ..ServeConfig::with_shards(4)
            },
        )
        .expect("server starts");
        let handle = server.handle();
        group.bench_with_input(BenchmarkId::from_parameter(name), &handle, |b, handle| {
            let mut batch = EmbedBatch::new();
            b.iter(|| {
                handle
                    .get_batch_into(std::hint::black_box(&ids), &mut batch)
                    .expect("batch served");
                std::hint::black_box(batch.data().len())
            });
        });
        drop(server);
    }
    group.finish();
}

fn bench_shed(c: &mut Criterion) {
    // Admission-control cost: (a) the uncontended overhead of running
    // under a Shed policy at all — one extra timestamp per request —
    // and (b) the raw shed fast path, a `try_push` rejection against a
    // full queue, which under overload runs for most traffic and must
    // stay far cheaper than serving.
    let mut rng = StdRng::seed_from_u64(29);
    let spec = MethodSpec::MemCom {
        hash_size: VOCAB / 10,
        bias: false,
    };
    let emb = spec.build(VOCAB, DIM, &mut rng).expect("memcom builds");
    let ids = zipf_ids(BATCH, 31);

    let mut group = c.benchmark_group("serve_shed");
    group.throughput(Throughput::Elements(BATCH as u64));
    for (name, admission) in [
        ("block_policy", AdmissionPolicy::Block),
        (
            "shed_policy_uncontended",
            AdmissionPolicy::Shed {
                enqueue_timeout: Duration::from_micros(100),
                request_deadline: Some(Duration::from_millis(50)),
            },
        ),
    ] {
        let server = EmbedServer::start(
            emb.as_ref(),
            ServeConfig {
                admission,
                ..ServeConfig::with_shards(4)
            },
        )
        .expect("server starts");
        let handle = server.handle();
        group.bench_with_input(BenchmarkId::from_parameter(name), &handle, |b, handle| {
            let mut batch = EmbedBatch::new();
            b.iter(|| {
                handle
                    .get_batch_into(std::hint::black_box(&ids), &mut batch)
                    .expect("batch served");
                std::hint::black_box(batch.data().len())
            });
        });
        drop(server);
    }

    // The shed fast path in isolation: rejections per second against a
    // queue that is pinned full (no worker draining it).
    group.throughput(Throughput::Elements(1));
    group.bench_function("try_push_full_queue", |b| {
        let queue: ShardQueue<usize> = ShardQueue::new(4);
        for i in 0..4 {
            queue.try_push(i).expect("fills");
        }
        b.iter(|| {
            let rejected = queue.try_push(std::hint::black_box(99)).is_err();
            std::hint::black_box(rejected)
        });
    });
    group.finish();
}

fn bench_store_direct(c: &mut Criterion) {
    // The store without queues/batching: the per-lookup floor the
    // serving layers add latency on top of.
    let mut rng = StdRng::seed_from_u64(5);
    let spec = MethodSpec::MemCom {
        hash_size: VOCAB / 10,
        bias: false,
    };
    let emb = spec.build(VOCAB, DIM, &mut rng).expect("memcom builds");
    let ids = zipf_ids(BATCH, 13);

    let mut group = c.benchmark_group("store_direct");
    group.throughput(Throughput::Elements(BATCH as u64));
    for (name, cache_rows) in [("cached", 4096usize), ("uncached", 0)] {
        let store =
            ShardedStore::build(emb.as_ref(), 4, cache_rows, 16 * 1024).expect("store builds");
        group.bench_with_input(BenchmarkId::from_parameter(name), &store, |b, store| {
            b.iter(|| {
                for &id in &ids {
                    std::hint::black_box(store.get(std::hint::black_box(id)).expect("row"));
                }
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(12);
    targets = bench_shard_scaling, bench_method_comparison, bench_batch_api, bench_dtype_sweep,
        bench_shed, bench_store_direct
}
criterion_main!(benches);
