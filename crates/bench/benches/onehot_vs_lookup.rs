//! Microbenchmark: full on-device inference, lookup vs one-hot engines.
//!
//! Wall-clock companion to Table 3: the same serialized model graph with a
//! MEmCom front end vs a Weinberger one-hot front end, run through the
//! mmap-backed interpreter. The one-hot engine's dense `L×m×e` matmul and
//! whole-kernel reads dominate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memcom_core::{MemCom, MemComConfig, OneHotHashEncoder};
use memcom_nn::{AveragePool1d, BatchNorm1d, Dense, Relu, Sequential};
use memcom_ondevice::format::OnDeviceModel;
use memcom_ondevice::{Dtype, InferenceSession};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn session(vocab: usize, e: usize, m: usize, len: usize, onehot: bool) -> InferenceSession {
    let mut rng = StdRng::seed_from_u64(7);
    let mut head = Sequential::new();
    head.push(AveragePool1d::new());
    head.push(Relu::new());
    head.push(BatchNorm1d::new(e));
    head.push(Dense::new(e, 64, &mut rng));
    let bytes = if onehot {
        let emb = OneHotHashEncoder::new(vocab, e, m, &mut rng).expect("valid");
        OnDeviceModel::serialize(&emb, &head, len, Dtype::F32).expect("serializes")
    } else {
        let emb = MemCom::new(MemComConfig::new(vocab, e, m), &mut rng).expect("valid");
        OnDeviceModel::serialize(&emb, &head, len, Dtype::F32).expect("serializes")
    };
    InferenceSession::new(OnDeviceModel::parse(bytes).expect("own bytes"))
}

fn bench_engines(c: &mut Criterion) {
    let vocab = 20_000;
    let e = 32;
    let len = 128;
    let mut rng = StdRng::seed_from_u64(3);
    let ids: Vec<usize> = (0..len).map(|_| rng.gen_range(0..vocab)).collect();

    let mut group = c.benchmark_group("ondevice_inference");
    for m in [1_000usize, 4_000] {
        let lookup = session(vocab, e, m, len, false);
        group.bench_with_input(BenchmarkId::new("memcom_lookup", m), &lookup, |b, s| {
            b.iter(|| s.run(std::hint::black_box(&ids)).expect("runs"));
        });
        let onehot = session(vocab, e, m, len, true);
        group.bench_with_input(BenchmarkId::new("weinberger_onehot", m), &onehot, |b, s| {
            b.iter(|| s.run(std::hint::black_box(&ids)).expect("runs"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines
}
criterion_main!(benches);
