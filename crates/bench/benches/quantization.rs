//! Microbenchmark: quantize / dequantize throughput per dtype.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memcom_ondevice::{Dtype, QuantizedTable};
use memcom_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_quantize(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let table = Tensor::rand_uniform(&[4_096, 64], -1.0, 1.0, &mut rng);
    let elems = table.len() as u64;

    let mut group = c.benchmark_group("quantize");
    group.throughput(Throughput::Elements(elems));
    for dtype in [Dtype::F16, Dtype::Int8, Dtype::Int4, Dtype::Int2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{dtype:?}")),
            &dtype,
            |b, &d| {
                b.iter(|| {
                    QuantizedTable::quantize(std::hint::black_box(&table), d).expect("quantizes")
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("dequantize_row");
    group.throughput(Throughput::Elements(64));
    for dtype in [
        Dtype::F32,
        Dtype::F16,
        Dtype::Int8,
        Dtype::Int4,
        Dtype::Int2,
    ] {
        let q = QuantizedTable::quantize(&table, dtype).expect("quantizes");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{dtype:?}")),
            &q,
            |b, q| {
                let mut r = 0usize;
                b.iter(|| {
                    r = (r + 1) % q.rows;
                    q.dequantize_row(std::hint::black_box(r))
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_quantize
}
criterion_main!(benches);
