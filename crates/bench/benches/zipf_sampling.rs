//! Microbenchmark: Zipf sampling and dataset generation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memcom_data::{DatasetSpec, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_zipf(c: &mut Criterion) {
    let mut group = c.benchmark_group("zipf_sample");
    group.throughput(Throughput::Elements(1_000));
    for n in [1_000usize, 100_000, 1_000_000] {
        let zipf = Zipf::new(n, 1.05).expect("valid support");
        group.bench_with_input(BenchmarkId::from_parameter(n), &zipf, |b, z| {
            let mut rng = StdRng::seed_from_u64(0);
            b.iter(|| z.sample_many(1_000, &mut rng));
        });
    }
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut spec = DatasetSpec::movielens().scaled(50);
    spec.train_samples = 500;
    spec.eval_samples = 100;
    c.bench_function("dataset_generate_600_examples", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            spec.generate(std::hint::black_box(seed))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_zipf, bench_generation
}
criterion_main!(benches);
