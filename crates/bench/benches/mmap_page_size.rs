//! Ablation bench: mmap page-size sensitivity of the lookup engine.
//!
//! DESIGN.md calls out the footprint model's page-size dependence: larger
//! pages mean fewer faults but more resident bytes per touched row. This
//! bench measures the wall cost of a cold inference at 4 KiB / 16 KiB /
//! 64 KiB pages and prints the resident-byte ablation alongside.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memcom_core::{MemCom, MemComConfig};
use memcom_nn::{AveragePool1d, BatchNorm1d, Dense, Relu, Sequential};
use memcom_ondevice::format::OnDeviceModel;
use memcom_ondevice::{Dtype, InferenceSession};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_page_sizes(c: &mut Criterion) {
    let vocab = 100_000;
    let e = 64;
    let m = 10_000;
    let len = 128;
    let mut rng = StdRng::seed_from_u64(0);
    let emb = MemCom::new(MemComConfig::new(vocab, e, m), &mut rng).expect("valid");
    let mut head = Sequential::new();
    head.push(AveragePool1d::new());
    head.push(Relu::new());
    head.push(BatchNorm1d::new(e));
    head.push(Dense::new(e, 64, &mut rng));
    let bytes = OnDeviceModel::serialize(&emb, &head, len, Dtype::F32).expect("serializes");
    let ids: Vec<usize> = (0..len).map(|_| rng.gen_range(0..vocab)).collect();

    let mut group = c.benchmark_group("mmap_page_size_cold_inference");
    for page in [4_096usize, 16_384, 65_536] {
        let session = InferenceSession::with_page_size(
            OnDeviceModel::parse(bytes.clone()).expect("own bytes"),
            page,
        );
        // Print the footprint ablation once per configuration.
        session.reset();
        let (_, stats) = session.run(&ids).expect("runs");
        eprintln!(
            "page {page:>6}: resident {} bytes, faults {}",
            stats.resident_model_bytes,
            session.mmap().faults()
        );
        group.bench_with_input(BenchmarkId::from_parameter(page), &session, |b, s| {
            b.iter(|| {
                s.reset(); // every iteration is a cold start
                s.run(std::hint::black_box(&ids)).expect("runs")
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_page_sizes
}
criterion_main!(benches);
