//! Delta-snapshot microbenchmarks: what a row-level refresh costs.
//!
//! The headline comparison is `apply` (copy-on-write over shared pages,
//! work ∝ rows touched) against `rebuild` (the full-store construction a
//! `Router::swap` refresh needs, work ∝ table size): a 0.1% delta should
//! land orders of magnitude below the rebuild. The dtype points measure
//! the page-granular re-encode (quantize per changed row) on top of the
//! page copies, and `build` isolates the `StoreDelta` builder itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memcom_core::FullEmbedding;
use memcom_serve::{Dtype, ShardedStore, StoreDelta};
use rand::rngs::StdRng;
use rand::SeedableRng;

const VOCAB: usize = 100_000;
const DIM: usize = 16;
const N_SHARDS: usize = 4;
const PAGE: usize = 16 * 1024;

fn delta_of(rows: usize) -> StoreDelta {
    // Clustered ids (frequency-sorted vocabularies keep recently-active
    // entities adjacent), mid-table.
    let mut delta = StoreDelta::new(DIM);
    for k in 0..rows {
        let row: Vec<f32> = (0..DIM).map(|j| ((k + j) as f32) * 1e-3).collect();
        delta.upsert_row(VOCAB / 2 + k, &row).expect("dim matches");
    }
    delta
}

fn bench_delta(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let emb = FullEmbedding::new(VOCAB, DIM, &mut rng).expect("table builds");

    let mut group = c.benchmark_group("serve_delta");

    // Builder cost alone (upsert 100 rows into a fresh delta).
    group.throughput(Throughput::Elements(100));
    group.bench_function("build/100-rows", |b| {
        b.iter(|| delta_of(std::hint::black_box(100)))
    });

    // Apply cost per dtype and delta size: page CoW + per-row re-encode.
    for dtype in [Dtype::F32, Dtype::Int8] {
        let store =
            ShardedStore::build_quantized(&emb, N_SHARDS, 1024, PAGE, dtype).expect("store builds");
        for rows in [100usize, 1_000] {
            let delta = delta_of(rows);
            group.throughput(Throughput::Elements(rows as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("apply/{dtype:?}"), rows),
                &delta,
                |b, delta| {
                    b.iter(|| store.apply_delta(std::hint::black_box(delta)).unwrap());
                },
            );
        }
    }

    // The full-swap baseline the delta path replaces: rebuild the whole
    // 100k-row store from the compressor.
    group.sample_size(10);
    group.throughput(Throughput::Elements(VOCAB as u64));
    group.bench_function("rebuild/full-store", |b| {
        b.iter(|| ShardedStore::build(std::hint::black_box(&emb), N_SHARDS, 1024, PAGE).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_delta);
criterion_main!(benches);
