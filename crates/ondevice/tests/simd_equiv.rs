//! SIMD ≡ scalar, bit for bit.
//!
//! Property tests driving every dispatched kernel against the scalar
//! reference in `memcom_ondevice::simd::scalar` over arbitrary bit
//! patterns (NaNs with payloads, infinities, subnormals, negative
//! zero), every dtype, dims 1..257 (covering every vector-width tail),
//! and deliberately unaligned inputs. Equality is `to_bits()` — the
//! kernels promise bit-identical output, not "close enough": serving
//! correctness tests compare rows exactly, and a CI leg re-runs this
//! suite with `MEMCOM_FORCE_SCALAR=1` so both sides of the contract are
//! exercised.

use memcom_ondevice::quant::{f16_bits_to_f32, quantize_row, Dtype};
use memcom_ondevice::simd;
use proptest::prelude::*;

/// Asserts two f32 slices are bit-identical.
fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}[{i}]: {g} ({:#010x}) vs {w} ({:#010x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

/// Copies `bytes` into a buffer at offset 1 and returns the buffer, so
/// the slice handed to the kernel is guaranteed misaligned relative to
/// any vector width.
fn misalign(bytes: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(bytes.len() + 1);
    buf.push(0xA5);
    buf.extend_from_slice(bytes);
    buf
}

proptest! {
    // f32 copy: arbitrary bit patterns (incl. NaN payloads) survive
    // verbatim through both the aligned and misaligned entry.
    #[test]
    fn copy_f32_matches_scalar(words in proptest::collection::vec(0u32..=u32::MAX, 1..257)) {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let dim = words.len();
        let mut got = vec![0f32; dim];
        let mut want = vec![0f32; dim];
        simd::copy_f32(&bytes, &mut got);
        simd::scalar::copy_f32(&bytes, &mut want);
        assert_bits_eq(&got, &want, "copy_f32");
        let shifted = misalign(&bytes);
        simd::copy_f32(&shifted[1..], &mut got);
        assert_bits_eq(&got, &want, "copy_f32 misaligned");
    }

    // f16 decode: every one of the 2^16 half patterns is reachable here
    // (sign × exponent × mantissa), including sNaN payloads the
    // hardware F16C path would quiet — which is exactly why the kernel
    // does integer bit manipulation instead.
    #[test]
    fn decode_f16_matches_scalar(halves in proptest::collection::vec(0u16..=u16::MAX, 1..257)) {
        let bytes: Vec<u8> = halves.iter().flat_map(|h| h.to_le_bytes()).collect();
        let dim = halves.len();
        let mut got = vec![0f32; dim];
        let mut want = vec![0f32; dim];
        simd::decode_f16(&bytes, &mut got);
        simd::scalar::decode_f16(&bytes, &mut want);
        assert_bits_eq(&got, &want, "decode_f16");
        // Cross-check the scalar reference itself against the library
        // decoder on one lane.
        assert_eq!(want[0].to_bits(), f16_bits_to_f32(halves[0]).to_bits());
        let shifted = misalign(&bytes);
        simd::decode_f16(&shifted[1..], &mut got);
        assert_bits_eq(&got, &want, "decode_f16 misaligned");
    }

    // int8 dequant: all 256 code values × arbitrary scales (incl. inf
    // and tiny subnormal scales — the kernel multiplies whatever it is
    // given; scale hygiene lives in quantize_row).
    #[test]
    fn dequant_i8_matches_scalar(
        codes in proptest::collection::vec(0u8..=u8::MAX, 1..257),
        scale_bits in 0u32..=u32::MAX,
    ) {
        let scale = f32::from_bits(scale_bits);
        let dim = codes.len();
        let mut got = vec![0f32; dim];
        let mut want = vec![0f32; dim];
        simd::dequant_i8(&codes, scale, &mut got);
        simd::scalar::dequant_i8(&codes, scale, &mut want);
        assert_bits_eq(&got, &want, "dequant_i8");
        let shifted = misalign(&codes);
        simd::dequant_i8(&shifted[1..], scale, &mut got);
        assert_bits_eq(&got, &want, "dequant_i8 misaligned");
    }

    // int4: nibble order (low nibble = even element) must agree between
    // the 16-lane unpack and the scalar loop, at every odd/even tail.
    #[test]
    fn dequant_i4_matches_scalar(
        packed in proptest::collection::vec(0u8..=u8::MAX, 1..129),
        dim_offset in 0usize..2,
        scale in -8f32..8.0,
    ) {
        let dim = (packed.len() * 2 - dim_offset).max(1);
        let mut got = vec![0f32; dim];
        let mut want = vec![0f32; dim];
        simd::dequant_i4(&packed, scale, &mut got);
        simd::scalar::dequant_i4(&packed, scale, &mut want);
        assert_bits_eq(&got, &want, "dequant_i4");
        let shifted = misalign(&packed);
        simd::dequant_i4(&shifted[1..], scale, &mut got);
        assert_bits_eq(&got, &want, "dequant_i4 misaligned");
    }

    // int2 (scalar-only dispatch today, but the contract is the same).
    #[test]
    fn dequant_i2_matches_scalar(
        packed in proptest::collection::vec(0u8..=u8::MAX, 1..65),
        dim_offset in 0usize..4,
        scale in -8f32..8.0,
    ) {
        let dim = (packed.len() * 4 - dim_offset).max(1);
        let mut got = vec![0f32; dim];
        let mut want = vec![0f32; dim];
        simd::dequant_i2(&packed, scale, &mut got);
        simd::scalar::dequant_i2(&packed, scale, &mut want);
        assert_bits_eq(&got, &want, "dequant_i2");
    }

    // Fused scale kernels: u*v (+w) with arbitrary bit patterns. The
    // vector kernels must not use FMA (different rounding) and must
    // keep -0.0 (no "+ 0.0" shortcut in scale_mul).
    #[test]
    fn scale_kernels_match_scalar(
        words in proptest::collection::vec(0u32..=u32::MAX, 1..257),
        v_bits in 0u32..=u32::MAX,
        w_bits in 0u32..=u32::MAX,
    ) {
        let v = f32::from_bits(v_bits);
        let w = f32::from_bits(w_bits);
        let src: Vec<f32> = words.iter().map(|&b| f32::from_bits(b)).collect();
        let mut got = src.clone();
        let mut want = src.clone();
        simd::scale_mul(&mut got, v);
        simd::scalar::scale_mul(&mut want, v);
        assert_bits_eq(&got, &want, "scale_mul");
        let mut got = src.clone();
        let mut want = src;
        simd::scale_add(&mut got, v, w);
        simd::scalar::scale_add(&mut want, v, w);
        assert_bits_eq(&got, &want, "scale_add");
    }

    // Strided row gather: rows of `cols` f32s at a wider byte stride.
    #[test]
    fn copy_f32_strided_matches_scalar(
        rows in 1usize..8,
        cols in 1usize..33,
        pad in 0usize..9,
        seed in 0u32..=u32::MAX,
    ) {
        let stride = cols * 4 + pad;
        let mut src = vec![0u8; rows * stride];
        let mut state = seed;
        for b in src.iter_mut() {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            *b = (state >> 24) as u8;
        }
        let mut got = vec![0f32; rows * cols];
        let mut want = vec![0f32; rows * cols];
        simd::copy_f32_strided(&src, stride, cols, &mut got);
        for (row, out) in want.chunks_mut(cols).enumerate() {
            simd::scalar::copy_f32(&src[row * stride..], out);
        }
        assert_bits_eq(&got, &want, "copy_f32_strided");
    }

    // End-to-end: a quantize → dispatch-decode round trip equals the
    // quantize → scalar-decode round trip for every lossy dtype, even
    // when the source row is hostile (non-finite values included).
    #[test]
    fn quantized_roundtrip_decodes_identically(
        words in proptest::collection::vec(0u32..=u32::MAX, 1..257),
        dtype_idx in 0usize..4,
    ) {
        let dtype = [Dtype::F16, Dtype::Int8, Dtype::Int4, Dtype::Int2][dtype_idx];
        let row: Vec<f32> = words.iter().map(|&b| f32::from_bits(b)).collect();
        let mut payload = vec![0u8; dtype.row_bytes(row.len())];
        let scale = quantize_row(&row, dtype, &mut payload);
        let mut got = vec![0f32; row.len()];
        let mut want = vec![0f32; row.len()];
        match dtype {
            Dtype::F16 => {
                simd::decode_f16(&payload, &mut got);
                simd::scalar::decode_f16(&payload, &mut want);
            }
            Dtype::Int8 => {
                simd::dequant_i8(&payload, scale, &mut got);
                simd::scalar::dequant_i8(&payload, scale, &mut want);
            }
            Dtype::Int4 => {
                simd::dequant_i4(&payload, scale, &mut got);
                simd::scalar::dequant_i4(&payload, scale, &mut want);
            }
            Dtype::Int2 => {
                simd::dequant_i2(&payload, scale, &mut got);
                simd::scalar::dequant_i2(&payload, scale, &mut want);
            }
            Dtype::F32 => unreachable!(),
        }
        assert_bits_eq(&got, &want, "roundtrip");
    }
}

#[test]
fn active_kernel_honors_the_force_scalar_env() {
    // The dispatcher latches once per process, so this test only
    // asserts consistency: under MEMCOM_FORCE_SCALAR (the forced CI
    // leg) the kernel must be Scalar; otherwise on x86_64 it must not
    // be (SSE2 is baseline).
    let forced = std::env::var("MEMCOM_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0");
    let kernel = simd::active_kernel();
    if forced || cfg!(feature = "force-scalar") {
        assert_eq!(kernel, simd::Kernel::Scalar);
    } else if cfg!(target_arch = "x86_64") {
        assert_ne!(kernel, simd::Kernel::Scalar, "SSE2 is x86_64 baseline");
    }
}
