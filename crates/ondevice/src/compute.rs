//! Compute-unit latency models (the "phones" of Table 3).
//!
//! Each unit converts counted work — floating-point operations, cold bytes
//! faulted from storage, warm bytes re-read from the page cache, and
//! activation memory allocated — into simulated milliseconds:
//!
//! ```text
//! t = overhead + flops/throughput + cold/cold_bw + warm/warm_bw + alloc/alloc_bw
//! ```
//!
//! Constants are calibrated so the Table-3 workloads land in the paper's
//! magnitude ranges (sub-millisecond MEmCom lookups on CoreML, ~30 ms
//! Weinberger on TF-Lite's CPU path); the reproduced signal is the
//! *ordering and gap structure*, not the absolute numbers, which on real
//! phones depend on scheduler and thermal state.

/// The compute configurations benchmarked in Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComputeUnit {
    /// CoreML `MLComputeUnits.all` (Neural Engine eligible).
    CoreMlAll,
    /// CoreML `MLComputeUnits.cpuOnly`.
    CoreMlCpuOnly,
    /// CoreML `MLComputeUnits.cpuAndGPU`.
    CoreMlCpuAndGpu,
    /// TensorFlow Lite on the Pixel 2 CPU.
    TfLiteCpu,
}

impl ComputeUnit {
    /// All four units, in Table 3's column order.
    pub fn all() -> [ComputeUnit; 4] {
        [
            ComputeUnit::CoreMlAll,
            ComputeUnit::CoreMlCpuOnly,
            ComputeUnit::CoreMlCpuAndGpu,
            ComputeUnit::TfLiteCpu,
        ]
    }

    /// Column label as printed in Table 3.
    pub fn label(self) -> &'static str {
        match self {
            ComputeUnit::CoreMlAll => "coreml_all",
            ComputeUnit::CoreMlCpuOnly => "coreml_cpuOnly",
            ComputeUnit::CoreMlCpuAndGpu => "coreml_cpuAndGPU",
            ComputeUnit::TfLiteCpu => "tflite_cpu",
        }
    }

    /// The latency/footprint constants for this unit.
    pub fn profile(self) -> UnitProfile {
        match self {
            // iPhone 12 Pro class: high matmul throughput (ANE eligible),
            // fast NVMe-backed page cache.
            ComputeUnit::CoreMlAll => UnitProfile {
                overhead_ms: 0.05,
                flops_per_ms: 5.0e8,
                cold_bytes_per_ms: 3.0e7,
                warm_bytes_per_ms: 3.0e8,
                alloc_bytes_per_ms: 2.0e7,
                runtime_base_bytes: 2_500_000,
            },
            ComputeUnit::CoreMlCpuOnly => UnitProfile {
                overhead_ms: 0.05,
                flops_per_ms: 2.5e8,
                cold_bytes_per_ms: 2.5e7,
                warm_bytes_per_ms: 2.5e8,
                alloc_bytes_per_ms: 1.8e7,
                runtime_base_bytes: 2_200_000,
            },
            // GPU dispatch adds fixed overhead and buffer copies.
            ComputeUnit::CoreMlCpuAndGpu => UnitProfile {
                overhead_ms: 0.10,
                flops_per_ms: 3.0e8,
                cold_bytes_per_ms: 2.5e7,
                warm_bytes_per_ms: 2.0e8,
                alloc_bytes_per_ms: 1.2e7,
                runtime_base_bytes: 4_200_000,
            },
            // Pixel 2 CPU: an order of magnitude less matmul throughput,
            // and TF-Lite's mmap "tuned for lower memory footprint than
            // for faster inference time" (§5.3) — slow activation
            // allocation is where the one-hot front end bleeds.
            ComputeUnit::TfLiteCpu => UnitProfile {
                overhead_ms: 0.01,
                flops_per_ms: 5.0e7,
                cold_bytes_per_ms: 1.5e7,
                warm_bytes_per_ms: 1.0e8,
                alloc_bytes_per_ms: 2.0e5,
                runtime_base_bytes: 1_000_000,
            },
        }
    }
}

/// Latency and footprint constants of one compute unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitProfile {
    /// Fixed dispatch overhead per inference (ms).
    pub overhead_ms: f64,
    /// Arithmetic throughput (FLOPs per ms).
    pub flops_per_ms: f64,
    /// Storage bandwidth for page faults (bytes per ms).
    pub cold_bytes_per_ms: f64,
    /// Page-cache bandwidth for warm reads (bytes per ms).
    pub warm_bytes_per_ms: f64,
    /// Activation allocation + zeroing bandwidth (bytes per ms).
    pub alloc_bytes_per_ms: f64,
    /// Fixed runtime memory of the framework itself (bytes).
    pub runtime_base_bytes: usize,
}

/// Work counted during one inference (produced by the engines).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkCounts {
    /// Floating-point operations.
    pub flops: u64,
    /// Bytes faulted in from storage.
    pub cold_bytes: u64,
    /// Bytes re-read through the page cache.
    pub warm_bytes: u64,
    /// Peak activation bytes allocated.
    pub activation_bytes: u64,
}

impl UnitProfile {
    /// Simulated inference time in milliseconds for the counted work.
    pub fn time_ms(&self, work: &WorkCounts) -> f64 {
        self.overhead_ms
            + work.flops as f64 / self.flops_per_ms
            + work.cold_bytes as f64 / self.cold_bytes_per_ms
            + work.warm_bytes as f64 / self.warm_bytes_per_ms
            + work.activation_bytes as f64 / self.alloc_bytes_per_ms
    }

    /// Simulated runtime memory footprint in bytes: framework base +
    /// resident model pages + peak activations.
    pub fn footprint_bytes(&self, resident_model_bytes: usize, work: &WorkCounts) -> usize {
        self.runtime_base_bytes + resident_model_bytes + work.activation_bytes as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_table3_columns() {
        let labels: Vec<&str> = ComputeUnit::all().iter().map(|u| u.label()).collect();
        assert_eq!(
            labels,
            vec![
                "coreml_all",
                "coreml_cpuOnly",
                "coreml_cpuAndGPU",
                "tflite_cpu"
            ]
        );
    }

    #[test]
    fn zero_work_costs_only_overhead() {
        for unit in ComputeUnit::all() {
            let p = unit.profile();
            assert!((p.time_ms(&WorkCounts::default()) - p.overhead_ms).abs() < 1e-12);
        }
    }

    #[test]
    fn tflite_activation_allocation_dominates_onehot_style_work() {
        // One-hot front end: ~5 MB activation (128 × 10K × 4B).
        let work = WorkCounts {
            flops: 330_000_000, // 128·10K·256
            cold_bytes: 10_000_000,
            warm_bytes: 0,
            activation_bytes: 5_120_000,
        };
        let tflite = ComputeUnit::TfLiteCpu.profile().time_ms(&work);
        let coreml = ComputeUnit::CoreMlAll.profile().time_ms(&work);
        // Table 3 shape: ~31 ms vs ~0.9-1.2 ms.
        assert!(tflite > 20.0 && tflite < 60.0, "tflite {tflite}");
        assert!(coreml > 0.5 && coreml < 3.0, "coreml {coreml}");
        assert!(tflite / coreml > 10.0);
    }

    #[test]
    fn lookup_style_work_is_submillisecond_on_coreml() {
        // MEmCom front end: 128 row reads (~130 KB cold) + small head.
        let work = WorkCounts {
            flops: 200_000,
            cold_bytes: 130_000,
            warm_bytes: 50_000,
            activation_bytes: 140_000,
        };
        let t = ComputeUnit::CoreMlAll.profile().time_ms(&work);
        assert!(t < 0.2, "lookup work should be fast, got {t} ms");
    }

    #[test]
    fn footprint_composition() {
        let p = ComputeUnit::CoreMlAll.profile();
        let work = WorkCounts {
            activation_bytes: 1_000,
            ..WorkCounts::default()
        };
        assert_eq!(
            p.footprint_bytes(10_000, &work),
            p.runtime_base_bytes + 11_000
        );
    }

    #[test]
    fn time_monotone_in_every_dimension() {
        let p = ComputeUnit::CoreMlCpuOnly.profile();
        let base = WorkCounts {
            flops: 100,
            cold_bytes: 100,
            warm_bytes: 100,
            activation_bytes: 100,
        };
        let t0 = p.time_ms(&base);
        for bump in [
            WorkCounts { flops: 200, ..base },
            WorkCounts {
                cold_bytes: 200,
                ..base
            },
            WorkCounts {
                warm_bytes: 200,
                ..base
            },
            WorkCounts {
                activation_bytes: 200,
                ..base
            },
        ] {
            assert!(p.time_ms(&bump) > t0);
        }
    }
}
