//! Error type for the on-device simulator.

use std::error::Error;
use std::fmt;

use memcom_tensor::TensorError;

/// Errors produced by serialization, the mmap simulator, and the engines.
#[derive(Debug, Clone, PartialEq)]
pub enum OnDeviceError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// The byte stream is not a valid model file.
    BadFormat {
        /// What was wrong with the stream.
        context: String,
    },
    /// The model cannot be serialized (unsupported embedding kind, …).
    Unsupported {
        /// Why serialization is impossible.
        context: String,
    },
    /// A read past the end of the mapped file.
    OutOfBounds {
        /// Requested offset.
        offset: usize,
        /// Requested length.
        len: usize,
        /// File size.
        size: usize,
    },
    /// Inference input is invalid for the model.
    BadInput {
        /// Description of the mismatch.
        context: String,
    },
}

impl fmt::Display for OnDeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnDeviceError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            OnDeviceError::BadFormat { context } => write!(f, "bad model file: {context}"),
            OnDeviceError::Unsupported { context } => write!(f, "unsupported model: {context}"),
            OnDeviceError::OutOfBounds { offset, len, size } => {
                write!(
                    f,
                    "read of {len} bytes at {offset} exceeds file of {size} bytes"
                )
            }
            OnDeviceError::BadInput { context } => write!(f, "bad inference input: {context}"),
        }
    }
}

impl Error for OnDeviceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OnDeviceError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for OnDeviceError {
    fn from(e: TensorError) -> Self {
        OnDeviceError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            OnDeviceError::BadFormat {
                context: "magic".into(),
            },
            OnDeviceError::Unsupported {
                context: "qr".into(),
            },
            OnDeviceError::OutOfBounds {
                offset: 1,
                len: 2,
                size: 3,
            },
            OnDeviceError::BadInput {
                context: "len".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
        assert!(Error::source(&OnDeviceError::from(TensorError::EmptyTensor)).is_some());
    }
}
